# Empty compiler generated dependencies file for xomatiq_test.
# This may be replaced when dependencies are built.
