file(REMOVE_RECURSE
  "CMakeFiles/xomatiq_test.dir/xomatiq/builders_test.cc.o"
  "CMakeFiles/xomatiq_test.dir/xomatiq/builders_test.cc.o.d"
  "CMakeFiles/xomatiq_test.dir/xomatiq/tagger_test.cc.o"
  "CMakeFiles/xomatiq_test.dir/xomatiq/tagger_test.cc.o.d"
  "CMakeFiles/xomatiq_test.dir/xomatiq/xomatiq_query_test.cc.o"
  "CMakeFiles/xomatiq_test.dir/xomatiq/xomatiq_query_test.cc.o.d"
  "CMakeFiles/xomatiq_test.dir/xomatiq/xq2sql_test.cc.o"
  "CMakeFiles/xomatiq_test.dir/xomatiq/xq2sql_test.cc.o.d"
  "CMakeFiles/xomatiq_test.dir/xomatiq/xq_parser_test.cc.o"
  "CMakeFiles/xomatiq_test.dir/xomatiq/xq_parser_test.cc.o.d"
  "xomatiq_test"
  "xomatiq_test.pdb"
  "xomatiq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xomatiq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
