# Empty dependencies file for datahounds_test.
# This may be replaced when dependencies are built.
