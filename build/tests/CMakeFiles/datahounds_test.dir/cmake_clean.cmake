file(REMOVE_RECURSE
  "CMakeFiles/datahounds_test.dir/datahounds/shredder_test.cc.o"
  "CMakeFiles/datahounds_test.dir/datahounds/shredder_test.cc.o.d"
  "CMakeFiles/datahounds_test.dir/datahounds/transformer_test.cc.o"
  "CMakeFiles/datahounds_test.dir/datahounds/transformer_test.cc.o.d"
  "CMakeFiles/datahounds_test.dir/datahounds/warehouse_test.cc.o"
  "CMakeFiles/datahounds_test.dir/datahounds/warehouse_test.cc.o.d"
  "datahounds_test"
  "datahounds_test.pdb"
  "datahounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datahounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
