file(REMOVE_RECURSE
  "CMakeFiles/xml_test.dir/xml/dom_test.cc.o"
  "CMakeFiles/xml_test.dir/xml/dom_test.cc.o.d"
  "CMakeFiles/xml_test.dir/xml/dtd_test.cc.o"
  "CMakeFiles/xml_test.dir/xml/dtd_test.cc.o.d"
  "CMakeFiles/xml_test.dir/xml/xml_parser_test.cc.o"
  "CMakeFiles/xml_test.dir/xml/xml_parser_test.cc.o.d"
  "CMakeFiles/xml_test.dir/xml/xml_writer_test.cc.o"
  "CMakeFiles/xml_test.dir/xml/xml_writer_test.cc.o.d"
  "xml_test"
  "xml_test.pdb"
  "xml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
