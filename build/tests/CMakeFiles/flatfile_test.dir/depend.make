# Empty dependencies file for flatfile_test.
# This may be replaced when dependencies are built.
