file(REMOVE_RECURSE
  "CMakeFiles/flatfile_test.dir/flatfile/embl_test.cc.o"
  "CMakeFiles/flatfile_test.dir/flatfile/embl_test.cc.o.d"
  "CMakeFiles/flatfile_test.dir/flatfile/enzyme_test.cc.o"
  "CMakeFiles/flatfile_test.dir/flatfile/enzyme_test.cc.o.d"
  "CMakeFiles/flatfile_test.dir/flatfile/line_record_test.cc.o"
  "CMakeFiles/flatfile_test.dir/flatfile/line_record_test.cc.o.d"
  "CMakeFiles/flatfile_test.dir/flatfile/swissprot_test.cc.o"
  "CMakeFiles/flatfile_test.dir/flatfile/swissprot_test.cc.o.d"
  "flatfile_test"
  "flatfile_test.pdb"
  "flatfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flatfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
