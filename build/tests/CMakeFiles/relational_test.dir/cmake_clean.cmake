file(REMOVE_RECURSE
  "CMakeFiles/relational_test.dir/relational/btree_index_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/btree_index_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/database_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/database_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/hash_index_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/hash_index_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/inverted_index_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/inverted_index_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/recovery_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/recovery_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/schema_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/schema_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/serde_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/serde_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/table_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/table_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/value_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/value_test.cc.o.d"
  "CMakeFiles/relational_test.dir/relational/wal_test.cc.o"
  "CMakeFiles/relational_test.dir/relational/wal_test.cc.o.d"
  "relational_test"
  "relational_test.pdb"
  "relational_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
