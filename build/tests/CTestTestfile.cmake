# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/flatfile_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/datahounds_test[1]_include.cmake")
include("/root/repo/build/tests/xomatiq_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
