file(REMOVE_RECURSE
  "CMakeFiles/xq_relational.dir/btree_index.cc.o"
  "CMakeFiles/xq_relational.dir/btree_index.cc.o.d"
  "CMakeFiles/xq_relational.dir/database.cc.o"
  "CMakeFiles/xq_relational.dir/database.cc.o.d"
  "CMakeFiles/xq_relational.dir/hash_index.cc.o"
  "CMakeFiles/xq_relational.dir/hash_index.cc.o.d"
  "CMakeFiles/xq_relational.dir/inverted_index.cc.o"
  "CMakeFiles/xq_relational.dir/inverted_index.cc.o.d"
  "CMakeFiles/xq_relational.dir/schema.cc.o"
  "CMakeFiles/xq_relational.dir/schema.cc.o.d"
  "CMakeFiles/xq_relational.dir/serde.cc.o"
  "CMakeFiles/xq_relational.dir/serde.cc.o.d"
  "CMakeFiles/xq_relational.dir/table.cc.o"
  "CMakeFiles/xq_relational.dir/table.cc.o.d"
  "CMakeFiles/xq_relational.dir/value.cc.o"
  "CMakeFiles/xq_relational.dir/value.cc.o.d"
  "CMakeFiles/xq_relational.dir/wal.cc.o"
  "CMakeFiles/xq_relational.dir/wal.cc.o.d"
  "libxq_relational.a"
  "libxq_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xq_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
