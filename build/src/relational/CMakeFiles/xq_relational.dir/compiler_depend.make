# Empty compiler generated dependencies file for xq_relational.
# This may be replaced when dependencies are built.
