file(REMOVE_RECURSE
  "libxq_relational.a"
)
