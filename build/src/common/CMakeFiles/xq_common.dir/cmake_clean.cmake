file(REMOVE_RECURSE
  "CMakeFiles/xq_common.dir/status.cc.o"
  "CMakeFiles/xq_common.dir/status.cc.o.d"
  "CMakeFiles/xq_common.dir/string_util.cc.o"
  "CMakeFiles/xq_common.dir/string_util.cc.o.d"
  "libxq_common.a"
  "libxq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
