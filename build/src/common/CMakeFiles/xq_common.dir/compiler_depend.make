# Empty compiler generated dependencies file for xq_common.
# This may be replaced when dependencies are built.
