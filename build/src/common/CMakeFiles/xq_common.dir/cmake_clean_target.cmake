file(REMOVE_RECURSE
  "libxq_common.a"
)
