file(REMOVE_RECURSE
  "CMakeFiles/xq_datagen.dir/corpus.cc.o"
  "CMakeFiles/xq_datagen.dir/corpus.cc.o.d"
  "libxq_datagen.a"
  "libxq_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xq_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
