# Empty compiler generated dependencies file for xq_datagen.
# This may be replaced when dependencies are built.
