file(REMOVE_RECURSE
  "libxq_datagen.a"
)
