# Empty dependencies file for xq_sql.
# This may be replaced when dependencies are built.
