file(REMOVE_RECURSE
  "libxq_sql.a"
)
