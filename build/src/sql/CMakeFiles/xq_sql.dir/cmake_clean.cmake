file(REMOVE_RECURSE
  "CMakeFiles/xq_sql.dir/ast.cc.o"
  "CMakeFiles/xq_sql.dir/ast.cc.o.d"
  "CMakeFiles/xq_sql.dir/engine.cc.o"
  "CMakeFiles/xq_sql.dir/engine.cc.o.d"
  "CMakeFiles/xq_sql.dir/executor.cc.o"
  "CMakeFiles/xq_sql.dir/executor.cc.o.d"
  "CMakeFiles/xq_sql.dir/expr_eval.cc.o"
  "CMakeFiles/xq_sql.dir/expr_eval.cc.o.d"
  "CMakeFiles/xq_sql.dir/lexer.cc.o"
  "CMakeFiles/xq_sql.dir/lexer.cc.o.d"
  "CMakeFiles/xq_sql.dir/parser.cc.o"
  "CMakeFiles/xq_sql.dir/parser.cc.o.d"
  "CMakeFiles/xq_sql.dir/plan.cc.o"
  "CMakeFiles/xq_sql.dir/plan.cc.o.d"
  "CMakeFiles/xq_sql.dir/planner.cc.o"
  "CMakeFiles/xq_sql.dir/planner.cc.o.d"
  "libxq_sql.a"
  "libxq_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xq_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
