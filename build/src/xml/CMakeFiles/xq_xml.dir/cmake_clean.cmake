file(REMOVE_RECURSE
  "CMakeFiles/xq_xml.dir/dom.cc.o"
  "CMakeFiles/xq_xml.dir/dom.cc.o.d"
  "CMakeFiles/xq_xml.dir/dtd.cc.o"
  "CMakeFiles/xq_xml.dir/dtd.cc.o.d"
  "CMakeFiles/xq_xml.dir/parser.cc.o"
  "CMakeFiles/xq_xml.dir/parser.cc.o.d"
  "CMakeFiles/xq_xml.dir/writer.cc.o"
  "CMakeFiles/xq_xml.dir/writer.cc.o.d"
  "libxq_xml.a"
  "libxq_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xq_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
