# Empty dependencies file for xq_xml.
# This may be replaced when dependencies are built.
