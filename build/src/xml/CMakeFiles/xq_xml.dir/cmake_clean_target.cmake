file(REMOVE_RECURSE
  "libxq_xml.a"
)
