file(REMOVE_RECURSE
  "CMakeFiles/xq_datahounds.dir/generic_schema.cc.o"
  "CMakeFiles/xq_datahounds.dir/generic_schema.cc.o.d"
  "CMakeFiles/xq_datahounds.dir/shredder.cc.o"
  "CMakeFiles/xq_datahounds.dir/shredder.cc.o.d"
  "CMakeFiles/xq_datahounds.dir/warehouse.cc.o"
  "CMakeFiles/xq_datahounds.dir/warehouse.cc.o.d"
  "CMakeFiles/xq_datahounds.dir/xml_transformer.cc.o"
  "CMakeFiles/xq_datahounds.dir/xml_transformer.cc.o.d"
  "libxq_datahounds.a"
  "libxq_datahounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xq_datahounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
