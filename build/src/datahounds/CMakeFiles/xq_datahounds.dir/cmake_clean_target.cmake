file(REMOVE_RECURSE
  "libxq_datahounds.a"
)
