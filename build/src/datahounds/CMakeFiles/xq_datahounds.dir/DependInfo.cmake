
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datahounds/generic_schema.cc" "src/datahounds/CMakeFiles/xq_datahounds.dir/generic_schema.cc.o" "gcc" "src/datahounds/CMakeFiles/xq_datahounds.dir/generic_schema.cc.o.d"
  "/root/repo/src/datahounds/shredder.cc" "src/datahounds/CMakeFiles/xq_datahounds.dir/shredder.cc.o" "gcc" "src/datahounds/CMakeFiles/xq_datahounds.dir/shredder.cc.o.d"
  "/root/repo/src/datahounds/warehouse.cc" "src/datahounds/CMakeFiles/xq_datahounds.dir/warehouse.cc.o" "gcc" "src/datahounds/CMakeFiles/xq_datahounds.dir/warehouse.cc.o.d"
  "/root/repo/src/datahounds/xml_transformer.cc" "src/datahounds/CMakeFiles/xq_datahounds.dir/xml_transformer.cc.o" "gcc" "src/datahounds/CMakeFiles/xq_datahounds.dir/xml_transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/xq_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/flatfile/CMakeFiles/xq_flatfile.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
