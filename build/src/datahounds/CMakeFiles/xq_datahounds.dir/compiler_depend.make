# Empty compiler generated dependencies file for xq_datahounds.
# This may be replaced when dependencies are built.
