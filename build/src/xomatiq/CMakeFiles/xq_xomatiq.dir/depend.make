# Empty dependencies file for xq_xomatiq.
# This may be replaced when dependencies are built.
