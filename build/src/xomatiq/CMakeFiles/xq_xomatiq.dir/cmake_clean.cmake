file(REMOVE_RECURSE
  "CMakeFiles/xq_xomatiq.dir/tagger.cc.o"
  "CMakeFiles/xq_xomatiq.dir/tagger.cc.o.d"
  "CMakeFiles/xq_xomatiq.dir/xomatiq.cc.o"
  "CMakeFiles/xq_xomatiq.dir/xomatiq.cc.o.d"
  "CMakeFiles/xq_xomatiq.dir/xq2sql.cc.o"
  "CMakeFiles/xq_xomatiq.dir/xq2sql.cc.o.d"
  "CMakeFiles/xq_xomatiq.dir/xq_ast.cc.o"
  "CMakeFiles/xq_xomatiq.dir/xq_ast.cc.o.d"
  "CMakeFiles/xq_xomatiq.dir/xq_parser.cc.o"
  "CMakeFiles/xq_xomatiq.dir/xq_parser.cc.o.d"
  "libxq_xomatiq.a"
  "libxq_xomatiq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xq_xomatiq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
