file(REMOVE_RECURSE
  "libxq_xomatiq.a"
)
