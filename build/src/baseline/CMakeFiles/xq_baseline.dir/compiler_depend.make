# Empty compiler generated dependencies file for xq_baseline.
# This may be replaced when dependencies are built.
