file(REMOVE_RECURSE
  "CMakeFiles/xq_baseline.dir/native_xml.cc.o"
  "CMakeFiles/xq_baseline.dir/native_xml.cc.o.d"
  "CMakeFiles/xq_baseline.dir/path_partitioned.cc.o"
  "CMakeFiles/xq_baseline.dir/path_partitioned.cc.o.d"
  "CMakeFiles/xq_baseline.dir/srs.cc.o"
  "CMakeFiles/xq_baseline.dir/srs.cc.o.d"
  "libxq_baseline.a"
  "libxq_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xq_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
