file(REMOVE_RECURSE
  "libxq_baseline.a"
)
