file(REMOVE_RECURSE
  "CMakeFiles/xq_flatfile.dir/embl.cc.o"
  "CMakeFiles/xq_flatfile.dir/embl.cc.o.d"
  "CMakeFiles/xq_flatfile.dir/enzyme.cc.o"
  "CMakeFiles/xq_flatfile.dir/enzyme.cc.o.d"
  "CMakeFiles/xq_flatfile.dir/line_record.cc.o"
  "CMakeFiles/xq_flatfile.dir/line_record.cc.o.d"
  "CMakeFiles/xq_flatfile.dir/swissprot.cc.o"
  "CMakeFiles/xq_flatfile.dir/swissprot.cc.o.d"
  "libxq_flatfile.a"
  "libxq_flatfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xq_flatfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
