file(REMOVE_RECURSE
  "libxq_flatfile.a"
)
