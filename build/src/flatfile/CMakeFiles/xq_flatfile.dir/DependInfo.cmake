
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flatfile/embl.cc" "src/flatfile/CMakeFiles/xq_flatfile.dir/embl.cc.o" "gcc" "src/flatfile/CMakeFiles/xq_flatfile.dir/embl.cc.o.d"
  "/root/repo/src/flatfile/enzyme.cc" "src/flatfile/CMakeFiles/xq_flatfile.dir/enzyme.cc.o" "gcc" "src/flatfile/CMakeFiles/xq_flatfile.dir/enzyme.cc.o.d"
  "/root/repo/src/flatfile/line_record.cc" "src/flatfile/CMakeFiles/xq_flatfile.dir/line_record.cc.o" "gcc" "src/flatfile/CMakeFiles/xq_flatfile.dir/line_record.cc.o.d"
  "/root/repo/src/flatfile/swissprot.cc" "src/flatfile/CMakeFiles/xq_flatfile.dir/swissprot.cc.o" "gcc" "src/flatfile/CMakeFiles/xq_flatfile.dir/swissprot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
