# Empty dependencies file for xq_flatfile.
# This may be replaced when dependencies are built.
