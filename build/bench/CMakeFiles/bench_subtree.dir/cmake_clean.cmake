file(REMOVE_RECURSE
  "CMakeFiles/bench_subtree.dir/bench_subtree.cc.o"
  "CMakeFiles/bench_subtree.dir/bench_subtree.cc.o.d"
  "bench_subtree"
  "bench_subtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
