# Empty dependencies file for bench_keyword.
# This may be replaced when dependencies are built.
