file(REMOVE_RECURSE
  "CMakeFiles/bench_warehouse.dir/bench_warehouse.cc.o"
  "CMakeFiles/bench_warehouse.dir/bench_warehouse.cc.o.d"
  "bench_warehouse"
  "bench_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
