file(REMOVE_RECURSE
  "CMakeFiles/bench_shred.dir/bench_shred.cc.o"
  "CMakeFiles/bench_shred.dir/bench_shred.cc.o.d"
  "bench_shred"
  "bench_shred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
