# Empty dependencies file for bench_schema.
# This may be replaced when dependencies are built.
