# Empty dependencies file for enzyme_warehouse.
# This may be replaced when dependencies are built.
