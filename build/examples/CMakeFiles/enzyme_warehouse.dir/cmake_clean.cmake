file(REMOVE_RECURSE
  "CMakeFiles/enzyme_warehouse.dir/enzyme_warehouse.cpp.o"
  "CMakeFiles/enzyme_warehouse.dir/enzyme_warehouse.cpp.o.d"
  "enzyme_warehouse"
  "enzyme_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzyme_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
