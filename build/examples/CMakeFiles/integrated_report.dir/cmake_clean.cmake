file(REMOVE_RECURSE
  "CMakeFiles/integrated_report.dir/integrated_report.cpp.o"
  "CMakeFiles/integrated_report.dir/integrated_report.cpp.o.d"
  "integrated_report"
  "integrated_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrated_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
