
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/integrated_report.cpp" "examples/CMakeFiles/integrated_report.dir/integrated_report.cpp.o" "gcc" "examples/CMakeFiles/integrated_report.dir/integrated_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xomatiq/CMakeFiles/xq_xomatiq.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/xq_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/xq_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/datahounds/CMakeFiles/xq_datahounds.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/xq_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/flatfile/CMakeFiles/xq_flatfile.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/xq_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
