# Empty dependencies file for integrated_report.
# This may be replaced when dependencies are built.
