file(REMOVE_RECURSE
  "CMakeFiles/cross_db_join.dir/cross_db_join.cpp.o"
  "CMakeFiles/cross_db_join.dir/cross_db_join.cpp.o.d"
  "cross_db_join"
  "cross_db_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_db_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
