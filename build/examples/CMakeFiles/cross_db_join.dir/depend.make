# Empty dependencies file for cross_db_join.
# This may be replaced when dependencies are built.
