file(REMOVE_RECURSE
  "CMakeFiles/xq_shell.dir/xq_shell.cpp.o"
  "CMakeFiles/xq_shell.dir/xq_shell.cpp.o.d"
  "xq_shell"
  "xq_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xq_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
