# Empty dependencies file for xq_shell.
# This may be replaced when dependencies are built.
