# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_enzyme_warehouse "/root/repo/build/examples/enzyme_warehouse")
set_tests_properties(example_enzyme_warehouse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cross_db_join "/root/repo/build/examples/cross_db_join")
set_tests_properties(example_cross_db_join PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_incremental_update "/root/repo/build/examples/incremental_update")
set_tests_properties(example_incremental_update PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_integrated_report "/root/repo/build/examples/integrated_report")
set_tests_properties(example_integrated_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xq_shell "sh" "-c" "printf '\\\\demo\\nFOR \$a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme RETURN \$a//enzyme_id ;\\n\\\\quit\\n' | /root/repo/build/examples/xq_shell")
set_tests_properties(example_xq_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
