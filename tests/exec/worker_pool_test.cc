#include "exec/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace xomatiq::exec {
namespace {

TEST(MorselQueueTest, CoversRangeDisjointly) {
  MorselQueue q(1000, 64);
  EXPECT_EQ(q.num_morsels(), (1000u + 63u) / 64u);
  std::vector<int> hits(1000, 0);
  size_t mi = 0, first = 0, last = 0;
  size_t morsels = 0;
  size_t max_index = 0;
  while (q.Next(&mi, &first, &last)) {
    ++morsels;
    max_index = std::max(max_index, mi);
    ASSERT_LT(first, last);
    ASSERT_LE(last, hits.size());
    for (size_t i = first; i < last; ++i) ++hits[i];
  }
  EXPECT_EQ(morsels, q.num_morsels());
  EXPECT_EQ(max_index, q.num_morsels() - 1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(MorselQueueTest, EmptyInputYieldsNoMorsels) {
  MorselQueue q(0, 64);
  EXPECT_EQ(q.num_morsels(), 0u);
  size_t mi = 0, first = 0, last = 0;
  EXPECT_FALSE(q.Next(&mi, &first, &last));
}

TEST(MorselQueueTest, SpanLargerThanTotalIsOneMorsel) {
  MorselQueue q(10, 4096);
  EXPECT_EQ(q.num_morsels(), 1u);
  size_t mi = 0, first = 0, last = 0;
  ASSERT_TRUE(q.Next(&mi, &first, &last));
  EXPECT_EQ(mi, 0u);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(last, 10u);
  EXPECT_FALSE(q.Next(&mi, &first, &last));
}

TEST(WorkerPoolTest, EverySlotRunsExactlyOnce) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  // Each slot index is claimed by exactly one runner, so plain per-slot
  // counters are race-free; the final read happens after the barrier.
  std::vector<int> counts(64, 0);
  pool.ParallelFor(64, [&](size_t s) { ++counts[s]; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(WorkerPoolTest, ZeroWorkerPoolRunsSerially) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> counts(8, 0);
  pool.ParallelFor(8, [&](size_t s) { ++counts[s]; });
  for (int c : counts) EXPECT_EQ(c, 1);
  // A pool with no threads never admits a fan-out.
  EXPECT_EQ(pool.AdmitDegree(4), 1u);
}

TEST(WorkerPoolTest, SingleSlotAndZeroSlotAreFine) {
  WorkerPool pool(2);
  int ran = 0;
  pool.ParallelFor(1, [&](size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
  pool.ParallelFor(0, [&](size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(WorkerPoolTest, AdmitDegreeCapsAtRequestAndWidth) {
  WorkerPool pool(7);
  // Idle pool: full width (workers + the caller) capped by the request.
  EXPECT_EQ(pool.AdmitDegree(4), 4u);
  EXPECT_EQ(pool.AdmitDegree(100), 8u);
  EXPECT_EQ(pool.AdmitDegree(0), 8u);  // 0 = no cap from the caller
}

TEST(WorkerPoolTest, ConcurrentGroupsAllComplete) {
  WorkerPool pool(2);
  constexpr long long kDrivers = 4, kSlots = 32, kReps = 25;
  std::atomic<long long> total{0};
  std::vector<std::thread> drivers;
  for (long long d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&] {
      for (long long rep = 0; rep < kReps; ++rep) {
        pool.ParallelFor(static_cast<size_t>(kSlots), [&](size_t s) {
          total.fetch_add(static_cast<long long>(s) + 1);
        });
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(total.load(), kDrivers * kReps * (kSlots * (kSlots + 1) / 2));
}

}  // namespace
}  // namespace xomatiq::exec
