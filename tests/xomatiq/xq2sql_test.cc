#include "xomatiq/xq2sql.h"

#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "sql/parser.h"
#include "xomatiq/xq_parser.h"

namespace xomatiq::xq {
namespace {

using rel::Database;

class Xq2SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::OpenInMemory();
    auto warehouse = hounds::Warehouse::Open(db_.get());
    ASSERT_TRUE(warehouse.ok());
    warehouse_ = std::move(*warehouse);
    datagen::CorpusOptions options;
    options.num_enzymes = 8;
    options.num_proteins = 8;
    options.num_nucleotides = 8;
    datagen::Corpus corpus = datagen::GenerateCorpus(options);
    hounds::EnzymeXmlTransformer enzyme_tf;
    hounds::EmblXmlTransformer embl_tf;
    ASSERT_TRUE(warehouse_
                    ->LoadSource("hlx_enzyme.DEFAULT", enzyme_tf,
                                 datagen::ToEnzymeFlatFile(corpus))
                    .ok());
    ASSERT_TRUE(warehouse_
                    ->LoadSource("hlx_embl.inv", embl_tf,
                                 datagen::ToEmblFlatFile(corpus))
                    .ok());
    translator_ = std::make_unique<Xq2SqlTranslator>(warehouse_.get());
  }

  Translation MustTranslate(const std::string& query) {
    auto ast = ParseXQuery(query);
    EXPECT_TRUE(ast.ok()) << ast.status().ToString();
    auto translation = translator_->Translate(*ast);
    EXPECT_TRUE(translation.ok()) << translation.status().ToString();
    return translation.ok() ? std::move(*translation) : Translation{};
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<hounds::Warehouse> warehouse_;
  std::unique_ptr<Xq2SqlTranslator> translator_;
};

TEST_F(Xq2SqlTest, GeneratedSqlParses) {
  Translation t = MustTranslate(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description)");
  ASSERT_EQ(t.sql.size(), 1u);
  auto stmt = sql::ParseStatement(t.sql[0]);
  EXPECT_TRUE(stmt.ok()) << t.sql[0] << "\n" << stmt.status().ToString();
  EXPECT_EQ(t.column_names,
            (std::vector<std::string>{"enzyme_id", "enzyme_description"}));
}

TEST_F(Xq2SqlTest, CollectionConstraintPresent) {
  Translation t = MustTranslate(
      "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme "
      "RETURN $a//enzyme_id");
  EXPECT_NE(t.sql[0].find("collection = 'hlx_enzyme.DEFAULT'"),
            std::string::npos)
      << t.sql[0];
  EXPECT_NE(t.sql[0].find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(t.sql[0].find("ORDER BY d_a.doc_id"), std::string::npos);
}

TEST_F(Xq2SqlTest, ContainsUsesSqlContains) {
  Translation t = MustTranslate(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a, "copper", any)
RETURN $a//enzyme_id)");
  EXPECT_NE(t.sql[0].find("CONTAINS("), std::string::npos) << t.sql[0];
  // Subtree search joins an extra node alias with interval containment.
  EXPECT_NE(t.sql[0].find(".ordinal >="), std::string::npos) << t.sql[0];
}

TEST_F(Xq2SqlTest, OrProducesTwoStatements) {
  Translation t = MustTranslate(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//enzyme_description, "kinase")
   OR contains($a//enzyme_description, "oxidase")
RETURN $a//enzyme_id)");
  EXPECT_EQ(t.sql.size(), 2u);
  for (const std::string& sql : t.sql) {
    EXPECT_TRUE(sql::ParseStatement(sql).ok()) << sql;
  }
}

TEST_F(Xq2SqlTest, NotPushesIntoComparison) {
  Translation t = MustTranslate(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE NOT $a/enzyme_id = "1.1.1.1"
RETURN $a/enzyme_id)");
  ASSERT_EQ(t.sql.size(), 1u);
  EXPECT_NE(t.sql[0].find("!= '1.1.1.1'"), std::string::npos) << t.sql[0];
}

TEST_F(Xq2SqlTest, NotContainsUnsupported) {
  auto ast = ParseXQuery(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE NOT contains($a, "x", any)
RETURN $a//enzyme_id)");
  ASSERT_TRUE(ast.ok());
  auto t = translator_->Translate(*ast);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), common::StatusCode::kUnsupported);
}

TEST_F(Xq2SqlTest, UnknownCollectionRejected) {
  auto ast =
      ParseXQuery("FOR $a IN document(\"nope\")/r RETURN $a/x");
  ASSERT_TRUE(ast.ok());
  auto t = translator_->Translate(*ast);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), common::StatusCode::kNotFound);
}

TEST_F(Xq2SqlTest, UnresolvedPathStillValidSql) {
  // A path that matches nothing in the dictionary yields an always-false
  // constraint, not an error (queries over absent structure return empty).
  Translation t = MustTranslate(
      "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme "
      "RETURN $a//no_such_element");
  EXPECT_NE(t.sql[0].find("path_id = -1"), std::string::npos) << t.sql[0];
  EXPECT_TRUE(sql::ParseStatement(t.sql[0]).ok());
}

TEST_F(Xq2SqlTest, NumericComparisonUsesNumberTable) {
  Translation t = MustTranslate(R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE $a//sequence/@length > 100
RETURN $a//embl_accession_number)");
  EXPECT_NE(t.sql[0].find("xml_number"), std::string::npos) << t.sql[0];
}

TEST_F(Xq2SqlTest, StringEqualityUsesTextTable) {
  Translation t = MustTranslate(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a/enzyme_id = "1.14.17.3"
RETURN $a/enzyme_id)");
  EXPECT_NE(t.sql[0].find("xml_text"), std::string::npos);
  EXPECT_NE(t.sql[0].find("= '1.14.17.3'"), std::string::npos) << t.sql[0];
}

TEST_F(Xq2SqlTest, OrderConditionComparesOrdinals) {
  Translation t = MustTranslate(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a/enzyme_id BEFORE $a/disease_list
RETURN $a/enzyme_id)");
  EXPECT_NE(t.sql[0].find(".ordinal <"), std::string::npos) << t.sql[0];
}

TEST_F(Xq2SqlTest, ReturnWholeVariableYieldsDocId) {
  Translation t = MustTranslate(
      "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme RETURN $a");
  EXPECT_EQ(t.column_names, std::vector<std::string>{"a_doc"});
  EXPECT_NE(t.sql[0].find("d_a.doc_id AS a_doc"), std::string::npos)
      << t.sql[0];
}

TEST_F(Xq2SqlTest, EscapesQuotesInLiterals) {
  Translation t = MustTranslate(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a/enzyme_id = "it's"
RETURN $a/enzyme_id)");
  EXPECT_NE(t.sql[0].find("'it''s'"), std::string::npos) << t.sql[0];
  EXPECT_TRUE(sql::ParseStatement(t.sql[0]).ok());
}

TEST_F(Xq2SqlTest, DeepOrNestingWithinLimit) {
  // (c1 OR c2) AND (c3 OR c4) -> 4 disjuncts.
  Translation t = MustTranslate(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE (contains($a//enzyme_description, "a")
       OR contains($a//enzyme_description, "b"))
  AND (contains($a//cofactor, "c") OR contains($a//cofactor, "d"))
RETURN $a//enzyme_id)");
  EXPECT_EQ(t.sql.size(), 4u);
}

}  // namespace
}  // namespace xomatiq::xq
