#include "xomatiq/xomatiq.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/corpus.h"
#include "xml/writer.h"

namespace xomatiq::xq {
namespace {

using rel::Database;

// Full query-level tests over a warehoused corpus with known ground truth.
class XomatiqQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::CorpusOptions options;
    options.num_enzymes = 60;
    options.num_proteins = 80;
    options.num_nucleotides = 100;
    options.keyword_fraction = 0.1;
    options.ketone_fraction = 0.15;
    options.ec_link_fraction = 0.4;
    corpus_ = datagen::GenerateCorpus(options);

    db_ = Database::OpenInMemory();
    auto warehouse = hounds::Warehouse::Open(db_.get());
    ASSERT_TRUE(warehouse.ok());
    warehouse_ = std::move(*warehouse);
    hounds::EnzymeXmlTransformer enzyme_tf;
    hounds::EmblXmlTransformer embl_tf;
    hounds::SwissProtXmlTransformer sprot_tf;
    ASSERT_TRUE(warehouse_
                    ->LoadSource("hlx_enzyme.DEFAULT", enzyme_tf,
                                 datagen::ToEnzymeFlatFile(corpus_))
                    .ok());
    ASSERT_TRUE(warehouse_
                    ->LoadSource("hlx_embl.inv", embl_tf,
                                 datagen::ToEmblFlatFile(corpus_))
                    .ok());
    ASSERT_TRUE(warehouse_
                    ->LoadSource("hlx_sprot.all", sprot_tf,
                                 datagen::ToSwissProtFlatFile(corpus_))
                    .ok());
    xomatiq_ = std::make_unique<XomatiQ>(warehouse_.get());
  }

  XqResult MustExecute(const std::string& query) {
    auto r = xomatiq_->Execute(query);
    EXPECT_TRUE(r.ok()) << query << "\n" << r.status().ToString();
    return r.ok() ? std::move(*r) : XqResult{};
  }

  datagen::Corpus corpus_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<hounds::Warehouse> warehouse_;
  std::unique_ptr<XomatiQ> xomatiq_;
};

TEST_F(XomatiqQueryTest, Figure9SubtreeQueryMatchesGroundTruth) {
  XqResult r = MustExecute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description)");
  EXPECT_EQ(r.rows.size(), corpus_.enzymes_with_ketone);
  // Every returned id really has a "ketone" catalytic activity.
  std::set<std::string> ketone_ids;
  for (const auto& e : corpus_.enzymes) {
    for (const auto& ca : e.catalytic_activities) {
      if (ca.find("ketone") != std::string::npos) ketone_ids.insert(e.id);
    }
  }
  for (const auto& row : r.rows) {
    EXPECT_TRUE(ketone_ids.count(row[0].AsText()) > 0) << row[0].AsText();
  }
}

TEST_F(XomatiqQueryTest, Figure8KeywordQueryMatchesGroundTruth) {
  XqResult r = MustExecute(R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains($a, "cdc6", any) AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number)");
  // Cross product of matching documents from the two databases.
  EXPECT_EQ(r.rows.size(), corpus_.proteins_with_keyword *
                               corpus_.nucleotides_with_keyword);
  ASSERT_EQ(r.columns.size(), 2u);
  EXPECT_EQ(r.columns[0], "sprot_accession_number");
}

TEST_F(XomatiqQueryTest, Figure11JoinQueryMatchesGroundTruth) {
  XqResult r = MustExecute(R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description)");
  EXPECT_EQ(r.rows.size(), corpus_.nucleotides_with_ec_link);
  EXPECT_EQ(r.columns,
            (std::vector<std::string>{"Accession_Number",
                                      "Accession_Description"}));
  // Spot check one row against the corpus.
  std::set<std::string> linked;
  for (const auto& n : corpus_.nucleotides) {
    for (const auto& f : n.features) {
      for (const auto& q : f.qualifiers) {
        if (q.name == "EC_number") linked.insert(n.accessions.front());
      }
    }
  }
  for (const auto& row : r.rows) {
    EXPECT_TRUE(linked.count(row[0].AsText()) > 0) << row[0].AsText();
  }
}

TEST_F(XomatiqQueryTest, ValueEqualityQuery) {
  const std::string& target = corpus_.enzymes[5].id;
  XqResult r = MustExecute(
      "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme/db_entry "
      "WHERE $a/enzyme_id = \"" + target + "\" "
      "RETURN $a/enzyme_id, $a//enzyme_description");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), target);
  EXPECT_EQ(r.rows[0][1].AsText(), corpus_.enzymes[5].descriptions[0]);
}

TEST_F(XomatiqQueryTest, NumericComparisonOnAttribute) {
  XqResult r = MustExecute(R"(
FOR $a IN document("hlx_sprot.all")/hlx_n_sequence
WHERE $a//sequence/@length > 0
RETURN $a//entry_name)");
  // Every protein has a positive length.
  EXPECT_EQ(r.rows.size(), corpus_.proteins.size());
}

TEST_F(XomatiqQueryTest, OrUnionsDisjunctsWithoutDuplicates) {
  // description contains kinase OR description contains kinase: identical
  // disjuncts must not duplicate rows.
  XqResult once = MustExecute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//enzyme_description, "kinase")
RETURN $a//enzyme_id)");
  XqResult twice = MustExecute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//enzyme_description, "kinase")
   OR contains($a//enzyme_description, "kinase")
RETURN $a//enzyme_id)");
  EXPECT_EQ(once.rows.size(), twice.rows.size());
}

TEST_F(XomatiqQueryTest, BeforeAfterOrderOperators) {
  // enzyme_id precedes disease_list in every document (Fig 5 DTD order).
  XqResult before = MustExecute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a/enzyme_id BEFORE $a/disease_list
RETURN $a/enzyme_id)");
  EXPECT_EQ(before.rows.size(), corpus_.enzymes.size());
  XqResult after = MustExecute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a/enzyme_id AFTER $a/disease_list
RETURN $a/enzyme_id)");
  EXPECT_EQ(after.rows.size(), 0u);
}

TEST_F(XomatiqQueryTest, SequenceDataExcludedFromKeywordSearch) {
  // Nucleotide sequences are lowercase acgt; a keyword query for a random
  // 4-mer must not match sequence content (it lives in xml_sequence).
  XqResult r = MustExecute(R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE contains($a, "acgt", any)
RETURN $a//entry_name)");
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(XomatiqQueryTest, PlansSeedFromSelectiveIndexes) {
  // Fig 9: the inverted-index KeywordScan must be the leaf the plan grows
  // from (deepest operator), not a late filter over a document scan.
  auto fig9 = xomatiq_->Explain(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id)");
  ASSERT_TRUE(fig9.ok());
  // The deepest (= last printed, most indented) access path is the
  // keyword scan; assert it appears after every join operator.
  size_t kw = fig9->find("KeywordScan");
  ASSERT_NE(kw, std::string::npos) << *fig9;
  EXPECT_GT(kw, fig9->rfind("IndexNLJoin")) << *fig9;
  // Fig 8's two keyword legs must both be filtered below the single
  // cross product (exactly one NestedLoopJoin, two KeywordScans).
  auto fig8 = xomatiq_->Explain(R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains($a, "cdc6", any) AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number)");
  ASSERT_TRUE(fig8.ok());
  size_t first_nl = fig8->find("NestedLoopJoin");
  ASSERT_NE(first_nl, std::string::npos) << *fig8;
  EXPECT_EQ(fig8->find("NestedLoopJoin", first_nl + 1), std::string::npos)
      << "more than one cross product:\n" << *fig8;
  size_t first_kw = fig8->find("KeywordScan");
  ASSERT_NE(first_kw, std::string::npos);
  EXPECT_NE(fig8->find("KeywordScan", first_kw + 1), std::string::npos)
      << *fig8;
  // Both keyword scans sit below the cross product in the printed tree.
  EXPECT_GT(first_kw, first_nl) << *fig8;
}

TEST_F(XomatiqQueryTest, ExplainShowsRelationalPlans) {
  auto explain = xomatiq_->Explain(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id)");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("KeywordScan"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("IndexScan"), std::string::npos) << *explain;
}

TEST_F(XomatiqQueryTest, ReturnConstructorNamesRowElements) {
  XqResult r = MustExecute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a/enzyme_id = ")" + corpus_.enzymes[0].id + R"("
RETURN <enzyme_hit>{ $a/enzyme_id, $a//enzyme_description }</enzyme_hit>)");
  EXPECT_EQ(r.constructor_name, "enzyme_hit");
  xml::XmlDocument doc = xomatiq_->ResultsAsXml(r);
  auto hits = doc.root()->ChildElements("enzyme_hit");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->ChildText("enzyme_id"), corpus_.enzymes[0].id);
}

TEST_F(XomatiqQueryTest, ResultsAsXmlTagsRows) {
  XqResult r = MustExecute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a/enzyme_id = ")" + corpus_.enzymes[0].id + R"("
RETURN $a/enzyme_id, $a//enzyme_description)");
  xml::XmlDocument doc = xomatiq_->ResultsAsXml(r);
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_EQ(doc.root()->name(), "results");
  auto results = doc.root()->ChildElements("result");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0]->ChildText("enzyme_id"), corpus_.enzymes[0].id);
}

TEST_F(XomatiqQueryTest, ToTableRenders) {
  XqResult r = MustExecute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a/enzyme_id = ")" + corpus_.enzymes[0].id + R"("
RETURN $a/enzyme_id)");
  std::string table = r.ToTable();
  EXPECT_NE(table.find("enzyme_id"), std::string::npos);
  EXPECT_NE(table.find(corpus_.enzymes[0].id), std::string::npos);
  EXPECT_NE(table.find("1 row(s)"), std::string::npos);
}

TEST_F(XomatiqQueryTest, DtdTreePanel) {
  auto tree = xomatiq_->FormatDtdTree("hlx_enzyme.DEFAULT");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->find("hlx_enzyme"), 0u);
  EXPECT_NE(tree->find("catalytic_activity"), std::string::npos);
  EXPECT_FALSE(xomatiq_->FormatDtdTree("ghost").ok());
}

TEST_F(XomatiqQueryTest, ViewDocumentReconstructs) {
  auto doc_id = warehouse_->FindDocument("enzyme:" + corpus_.enzymes[2].id);
  ASSERT_TRUE(doc_id.ok());
  auto doc = xomatiq_->ViewDocument(*doc_id);
  ASSERT_TRUE(doc.ok());
  auto entry = hounds::EnzymeXmlTransformer::XmlToEntry(*doc->root());
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(*entry, corpus_.enzymes[2]);
}

TEST(XomatiqPositionalTest, PositionalPredicateSelectsNthSibling) {
  auto db = Database::OpenInMemory();
  auto warehouse = hounds::Warehouse::Open(db.get());
  ASSERT_TRUE(warehouse.ok());
  hounds::EnzymeXmlTransformer transformer;
  // Fig 2's entry has two alternate names in document order.
  ASSERT_TRUE((*warehouse)
                  ->LoadSource("hlx_enzyme.DEFAULT", transformer,
                               flatfile::FormatEnzymeEntry(
                                   datagen::Figure2Entry()))
                  .ok());
  xq::XomatiQ xomatiq(warehouse->get());
  auto first = xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
RETURN $a//alternate_name[1])");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->rows.size(), 1u);
  EXPECT_EQ(first->rows[0][0].AsText(), "Peptidyl alpha-amidating enzyme");
  auto second = xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
RETURN $a//alternate_name[2])");
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->rows.size(), 1u);
  EXPECT_EQ(second->rows[0][0].AsText(), "Peptidylglycine 2-hydroxylase");
  auto third = xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
RETURN $a//alternate_name[3])");
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->rows.empty());
  // Positional composes with a value predicate elsewhere in the query.
  auto combined = xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a/enzyme_id = "1.14.17.3"
RETURN $a//reference[5]/@swissprot_accession_number)");
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  ASSERT_EQ(combined->rows.size(), 1u);
  EXPECT_EQ(combined->rows[0][0].AsText(), "P12890");
}

TEST(XomatiqRelativeBindingTest, AlignsValuesOfOneElement) {
  auto db = Database::OpenInMemory();
  auto warehouse = hounds::Warehouse::Open(db.get());
  ASSERT_TRUE(warehouse.ok());
  hounds::EnzymeXmlTransformer transformer;
  ASSERT_TRUE((*warehouse)
                  ->LoadSource("hlx_enzyme.DEFAULT", transformer,
                               flatfile::FormatEnzymeEntry(
                                   datagen::Figure2Entry()))
                  .ok());
  xq::XomatiQ xomatiq(warehouse->get());
  // Independent paths cross-multiply: 5 references -> 25 pairs.
  auto crossed = xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
RETURN $a//reference/@swissprot_accession_number, $a//reference/@name)");
  ASSERT_TRUE(crossed.ok());
  EXPECT_EQ(crossed->rows.size(), 25u);
  // A variable-relative binding keeps the pairs aligned: 5 rows.
  auto aligned = xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme,
    $r IN $a//reference
RETURN $r/@swissprot_accession_number, $r/@name)");
  ASSERT_TRUE(aligned.ok()) << aligned.status().ToString();
  ASSERT_EQ(aligned->rows.size(), 5u);
  // Verify one known pair stays together.
  bool found = false;
  for (const auto& row : aligned->rows) {
    if (row[0].AsText() == "P10731") {
      EXPECT_EQ(row[1].AsText(), "AMD_BOVIN");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Relative bindings compose with predicates.
  auto filtered = xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme,
    $r IN $a//reference[@name = "AMD_RAT"]
RETURN $r/@swissprot_accession_number)");
  ASSERT_TRUE(filtered.ok());
  ASSERT_EQ(filtered->rows.size(), 1u);
  EXPECT_EQ(filtered->rows[0][0].AsText(), "P14925");
  // Base variable must be bound before use.
  EXPECT_FALSE(xomatiq
                   .Execute("FOR $r IN $a//reference, $a IN "
                            "document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme "
                            "RETURN $r/@name")
                   .ok());
}

TEST_F(XomatiqQueryTest, EmptyResultForUnmatchedKeyword) {
  XqResult r = MustExecute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a, "zzznotthere", any)
RETURN $a//enzyme_id)");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(XomatiqQueryTest, MultiKeywordContainsIsConjunctive) {
  // Fig 8-style extension: "keywords ... implicitly meant to be located
  // close to one another in the same XML document".
  size_t single = MustExecute(R"(
FOR $a IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains($a, "cdc6", any)
RETURN $a//entry_name)").rows.size();
  size_t both = MustExecute(R"(
FOR $a IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains($a, "cdc6 replication", any)
RETURN $a//entry_name)").rows.size();
  EXPECT_EQ(single, corpus_.proteins_with_keyword);
  EXPECT_LE(both, single);
  EXPECT_GT(both, 0u);  // generator plants "replication licensing" text
}

}  // namespace
}  // namespace xomatiq::xq
