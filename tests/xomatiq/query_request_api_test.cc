// The unified common::QueryRequest surface: engines validate the mode,
// honor read_epoch snapshot pinning, and the deprecated (text, options)
// shims still route through the same entry points.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/query_request.h"
#include "datagen/corpus.h"
#include "relational/snapshot.h"
#include "xomatiq/xomatiq.h"

namespace xomatiq::xq {
namespace {

using rel::Database;

class QueryRequestApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::CorpusOptions options;
    options.seed = 42;
    options.num_enzymes = 12;
    options.num_proteins = 12;
    options.num_nucleotides = 12;
    corpus_ = datagen::GenerateCorpus(options);
    db_ = Database::OpenInMemory();
    auto warehouse = hounds::Warehouse::Open(db_.get());
    ASSERT_TRUE(warehouse.ok());
    warehouse_ = std::move(*warehouse);
    hounds::EnzymeXmlTransformer transformer;
    ASSERT_TRUE(warehouse_
                    ->LoadSource("hlx_enzyme.DEFAULT", transformer,
                                 datagen::ToEnzymeFlatFile(corpus_))
                    .ok());
    xomatiq_ = std::make_unique<XomatiQ>(warehouse_.get());
  }

  static constexpr const char* kListQuery =
      R"(FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
RETURN $a//enzyme_id)";

  datagen::Corpus corpus_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<hounds::Warehouse> warehouse_;
  std::unique_ptr<XomatiQ> xomatiq_;
};

TEST_F(QueryRequestApiTest, FactoriesSetTheMode) {
  EXPECT_EQ(common::QueryRequest::Sql("SELECT 1").mode,
            common::QueryMode::kSql);
  EXPECT_EQ(common::QueryRequest::Xq("FOR ...").mode, common::QueryMode::kXq);
  EXPECT_FALSE(common::QueryRequest::Sql("SELECT 1").read_epoch.has_value());
}

TEST_F(QueryRequestApiTest, EnginesRejectForeignModes) {
  // A request built for one engine handed to the other is a typed error,
  // not a parse failure: the mode is checked before the text is touched.
  auto sql_r = xomatiq_->engine()->Execute(common::QueryRequest::Xq("x"));
  ASSERT_FALSE(sql_r.ok());
  EXPECT_EQ(sql_r.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(sql_r.status().message().find("mode=sql"), std::string::npos);

  auto xq_r = xomatiq_->Execute(common::QueryRequest::Sql("SELECT 1"));
  ASSERT_FALSE(xq_r.ok());
  EXPECT_EQ(xq_r.status().code(), common::StatusCode::kInvalidArgument);
}

TEST_F(QueryRequestApiTest, ReadEpochPinsXqAcrossSync) {
  rel::Snapshot snap = db_->BeginSnapshot();
  common::QueryRequest pinned = common::QueryRequest::Xq(kListQuery);
  pinned.read_epoch = snap.epoch();
  auto before = xomatiq_->Execute(pinned);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->rows.size(), 12u);

  datagen::Corpus updated = corpus_;
  updated.enzymes.erase(updated.enzymes.begin());
  hounds::EnzymeXmlTransformer transformer;
  ASSERT_TRUE(warehouse_
                  ->SyncSource("hlx_enzyme.DEFAULT", transformer,
                               datagen::ToEnzymeFlatFile(updated))
                  .ok());

  // The pinned request still evaluates at the pre-sync cut; without the
  // token the engine takes a fresh snapshot and sees the removal.
  auto old_read = xomatiq_->Execute(pinned);
  ASSERT_TRUE(old_read.ok());
  EXPECT_EQ(old_read->rows.size(), 12u);
  auto fresh = xomatiq_->Execute(common::QueryRequest::Xq(kListQuery));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows.size(), 11u);
}

TEST_F(QueryRequestApiTest, ReadEpochPinsSqlAcrossDml) {
  sql::SqlEngine* engine = xomatiq_->engine();
  rel::Snapshot snap = db_->BeginSnapshot();
  common::QueryRequest pinned = common::QueryRequest::Sql(
      "SELECT doc_id FROM xml_document");
  pinned.read_epoch = snap.epoch();
  auto before = engine->Execute(pinned);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  const size_t docs = before->rows.size();
  ASSERT_EQ(docs, 12u);

  hounds::EnzymeXmlTransformer transformer;
  datagen::Corpus updated = corpus_;
  updated.enzymes.erase(updated.enzymes.begin());
  ASSERT_TRUE(warehouse_
                  ->SyncSource("hlx_enzyme.DEFAULT", transformer,
                               datagen::ToEnzymeFlatFile(updated))
                  .ok());

  auto old_read = engine->Execute(pinned);
  ASSERT_TRUE(old_read.ok());
  EXPECT_EQ(old_read->rows.size(), docs);
  auto fresh = engine->Execute(
      common::QueryRequest::Sql("SELECT doc_id FROM xml_document"));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows.size(), docs - 1);
}

TEST_F(QueryRequestApiTest, DeprecatedShimsStillRoute) {
  // The (text, options) overload triples survive one release as
  // forwarding shims; they must produce the same answers as the
  // QueryRequest path.
  common::QueryOptions opts;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  auto sql_r = xomatiq_->engine()->Execute("SELECT doc_id FROM xml_document",
                                           opts);
  auto xq_r = xomatiq_->Execute(kListQuery, opts);
#pragma GCC diagnostic pop
  ASSERT_TRUE(sql_r.ok()) << sql_r.status().ToString();
  EXPECT_EQ(sql_r->rows.size(), 12u);
  ASSERT_TRUE(xq_r.ok()) << xq_r.status().ToString();
  EXPECT_EQ(xq_r->rows.size(), 12u);
}

}  // namespace
}  // namespace xomatiq::xq
