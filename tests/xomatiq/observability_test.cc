#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "datagen/corpus.h"
#include "xomatiq/xomatiq.h"

namespace xomatiq::xq {
namespace {

using rel::Database;

// Golden coverage for the query-lifecycle observability: a full FLWR query
// executed under a trace must emit the pipeline's named stage spans in
// order, the trace must serialize to well-formed Chrome JSON, and the
// stage latencies must land in the metrics snapshot.
class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::CorpusOptions options;
    options.num_enzymes = 30;
    options.num_proteins = 30;
    options.num_nucleotides = 30;
    options.ketone_fraction = 0.2;
    corpus_ = datagen::GenerateCorpus(options);

    db_ = Database::OpenInMemory();
    auto warehouse = hounds::Warehouse::Open(db_.get());
    ASSERT_TRUE(warehouse.ok());
    warehouse_ = std::move(*warehouse);
    hounds::EnzymeXmlTransformer enzyme_tf;
    ASSERT_TRUE(warehouse_
                    ->LoadSource("hlx_enzyme.DEFAULT", enzyme_tf,
                                 datagen::ToEnzymeFlatFile(corpus_))
                    .ok());
    xomatiq_ = std::make_unique<XomatiQ>(warehouse_.get());
  }

  datagen::Corpus corpus_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<hounds::Warehouse> warehouse_;
  std::unique_ptr<XomatiQ> xomatiq_;
};

constexpr char kFlwrQuery[] = R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description)";

TEST_F(ObservabilityTest, FlwrQueryEmitsGoldenStageSpans) {
  common::Trace trace;
  {
    common::TraceScope scope(&trace);
    auto r = xomatiq_->Execute(kFlwrQuery);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    xomatiq_->ResultsAsXml(*r);
  }
  std::vector<std::string> names = trace.SpanNames();
  // The pipeline's own stages appear in lifecycle order:
  // parse -> translate -> execute -> tag.
  const std::vector<std::string> golden = {"xq.parse", "xq.translate",
                                           "xq.execute", "xq.tag"};
  std::vector<std::string> stages;
  for (const std::string& n : names) {
    if (std::find(golden.begin(), golden.end(), n) != golden.end()) {
      stages.push_back(n);
    }
  }
  EXPECT_EQ(stages, golden) << "spans recorded:\n"
                            << [&] {
                                 std::string all;
                                 for (const auto& n : names) all += n + "\n";
                                 return all;
                               }();
}

TEST_F(ObservabilityTest, DirectXqPathNeverReParsesGeneratedSql) {
  // The translator hands the engine structured SelectStmt ASTs, so an XQ
  // execution must plan and execute its SQL ("sql.plan" / "sql.execute"
  // spans, plus a plan fingerprint) without a single "sql.parse" span —
  // that span only exists on the SQL-text entry point.
  common::Trace trace;
  {
    common::TraceScope scope(&trace);
    auto r = xomatiq_->Execute(kFlwrQuery);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  std::vector<std::string> names = trace.SpanNames();
  auto count = [&](const std::string& name) {
    return std::count(names.begin(), names.end(), name);
  };
  EXPECT_EQ(count("sql.parse"), 0) << [&] {
    std::string all;
    for (const auto& n : names) all += n + "\n";
    return all;
  }();
  EXPECT_GT(count("sql.plan"), 0);
  EXPECT_GT(count("sql.execute"), 0);
  bool fingerprint_seen = false;
  for (const std::string& n : names) {
    if (n.rfind("sql.plan.fp=", 0) == 0) fingerprint_seen = true;
  }
  EXPECT_TRUE(fingerprint_seen);
}

TEST_F(ObservabilityTest, TraceJsonIsWellFormed) {
  common::Trace trace;
  {
    common::TraceScope scope(&trace);
    auto r = xomatiq_->Execute(kFlwrQuery);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  std::string json = trace.ToChromeJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"xq.execute\""), std::string::npos);
  // Balanced structure outside string literals.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << "unbalanced at offset " << i;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(ObservabilityTest, MetricsSnapshotBreaksDownQueryLatency) {
  common::MetricsRegistry::Global().Reset();
  auto r = xomatiq_->Execute(kFlwrQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  xomatiq_->ResultsAsXml(*r);

  common::MetricsSnapshot snap = Database::MetricsSnapshot();
  auto hist_count = [&](const std::string& name) -> uint64_t {
    for (const auto& h : snap.histograms) {
      if (h.name == name) return h.count;
    }
    return 0;
  };
  // Each stage recorded exactly one latency sample for the one query, so
  // the snapshot decomposes query latency into translate/execute/retag.
  EXPECT_EQ(hist_count("xq.stage.parse"), 1u);
  EXPECT_EQ(hist_count("xq.stage.translate"), 1u);
  EXPECT_EQ(hist_count("xq.stage.execute"), 1u);
  EXPECT_EQ(hist_count("xq.stage.tag"), 1u);
  auto counter_value = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  EXPECT_EQ(counter_value("xq.queries"), 1u);
  // The relational layer under the query recorded scan work.
  EXPECT_GT(counter_value("rel.table.rows_scanned"), 0u);
}

TEST_F(ObservabilityTest, LoadRecordsWarehouseStageMetrics) {
  // SetUp loaded one collection; its transform and shred stages must have
  // produced latency samples and a per-document counter.
  common::MetricsSnapshot snap = Database::MetricsSnapshot();
  bool transform_seen = false, shred_seen = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "hounds.stage.transform" && h.count > 0) {
      transform_seen = true;
    }
    if (h.name == "hounds.stage.shred" && h.count > 0) shred_seen = true;
  }
  EXPECT_TRUE(transform_seen);
  EXPECT_TRUE(shred_seen);
  for (const auto& [n, v] : snap.counters) {
    if (n == "hounds.documents_loaded") {
      EXPECT_GE(v, static_cast<uint64_t>(corpus_.enzymes.size()));
    }
  }
}

}  // namespace
}  // namespace xomatiq::xq
