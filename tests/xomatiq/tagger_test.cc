#include "xomatiq/tagger.h"

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/writer.h"

namespace xomatiq::xq {
namespace {

using rel::Tuple;
using rel::Value;

TEST(SanitizeElementNameTest, Rules) {
  EXPECT_EQ(SanitizeElementName("enzyme_id"), "enzyme_id");
  EXPECT_EQ(SanitizeElementName("Accession Number"), "Accession_Number");
  EXPECT_EQ(SanitizeElementName("COUNT(*)"), "COUNT___");
  EXPECT_EQ(SanitizeElementName("9lives"), "_9lives");
  EXPECT_EQ(SanitizeElementName(""), "column");
  EXPECT_EQ(SanitizeElementName("-x"), "_-x");
}

TEST(TaggerTest, BasicStructure) {
  std::vector<std::string> columns{"enzyme_id", "description"};
  std::vector<Tuple> rows{
      {Value::Text("1.1.1.1"), Value::Text("alcohol dehydrogenase")},
      {Value::Text("2.7.7.7"), Value::Null()},
  };
  xml::XmlDocument doc = TagResults(columns, rows);
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_EQ(doc.root()->name(), "results");
  auto results = doc.root()->ChildElements("result");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0]->ChildText("enzyme_id"), "1.1.1.1");
  EXPECT_EQ(results[0]->ChildText("description"), "alcohol dehydrogenase");
  // NULL becomes an empty element.
  const xml::XmlNode* null_el = results[1]->FirstChildElement("description");
  ASSERT_NE(null_el, nullptr);
  EXPECT_TRUE(null_el->children().empty());
}

TEST(TaggerTest, EmptyResultSet) {
  xml::XmlDocument doc = TagResults({"a"}, {});
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_TRUE(doc.root()->children().empty());
}

TEST(TaggerTest, CustomRootAndRowNames) {
  std::vector<Tuple> rows{{Value::Int(1)}};
  xml::XmlDocument doc = TagResults({"id"}, rows, "enzymes", "enzyme");
  EXPECT_EQ(doc.root()->name(), "enzymes");
  EXPECT_EQ(doc.root()->ChildElements("enzyme").size(), 1u);
}

TEST(TaggerTest, OutputIsWellFormedXml) {
  std::vector<Tuple> rows{
      {Value::Text("<danger> & 'quotes'")},
  };
  xml::XmlDocument doc = TagResults({"weird col!"}, rows);
  std::string text = xml::WriteXml(doc);
  auto reparsed = xml::ParseXml(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(reparsed->root()
                ->ChildElements("result")[0]
                ->ChildText("weird_col_"),
            "<danger> & 'quotes'");
}

TEST(TaggerTest, NumericValuesRendered) {
  std::vector<Tuple> rows{{Value::Int(42), Value::Double(2.5)}};
  xml::XmlDocument doc = TagResults({"n", "score"}, rows);
  auto result = doc.root()->ChildElements("result")[0];
  EXPECT_EQ(result->ChildText("n"), "42");
  EXPECT_EQ(result->ChildText("score"), "2.5");
}

}  // namespace
}  // namespace xomatiq::xq
