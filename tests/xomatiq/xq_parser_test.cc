#include "xomatiq/xq_parser.h"

#include <gtest/gtest.h>

namespace xomatiq::xq {
namespace {

TEST(XqParserTest, Figure9SubtreeQuery) {
  auto ast = ParseXQuery(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->bindings.size(), 1u);
  EXPECT_EQ(ast->bindings[0].var, "a");
  EXPECT_EQ(ast->bindings[0].collection, "hlx_enzyme.DEFAULT");
  ASSERT_EQ(ast->bindings[0].steps.size(), 1u);
  EXPECT_EQ(ast->bindings[0].steps[0].name, "hlx_enzyme");
  EXPECT_FALSE(ast->bindings[0].steps[0].descendant);
  ASSERT_NE(ast->where, nullptr);
  EXPECT_EQ(ast->where->kind, XqCondKind::kContains);
  EXPECT_EQ(ast->where->keyword, "ketone");
  EXPECT_FALSE(ast->where->any);
  ASSERT_EQ(ast->where->scope.steps.size(), 1u);
  EXPECT_TRUE(ast->where->scope.steps[0].descendant);
  ASSERT_EQ(ast->returns.size(), 2u);
  EXPECT_EQ(ast->returns[0].path.steps[0].name, "enzyme_id");
}

TEST(XqParserTest, Figure8KeywordQuery) {
  auto ast = ParseXQuery(R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains($a, "cdc6", any)
AND   contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->bindings.size(), 2u);
  ASSERT_EQ(ast->where->kind, XqCondKind::kAnd);
  ASSERT_EQ(ast->where->children.size(), 2u);
  EXPECT_TRUE(ast->where->children[0]->any);
  EXPECT_TRUE(ast->where->children[0]->scope.steps.empty());
}

TEST(XqParserTest, Figure11JoinQuery) {
  auto ast = ParseXQuery(R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->bindings.size(), 2u);
  EXPECT_EQ(ast->bindings[0].steps.size(), 2u);
  ASSERT_EQ(ast->where->kind, XqCondKind::kCompare);
  EXPECT_EQ(ast->where->op, "=");
  EXPECT_TRUE(ast->where->right_is_path);
  const XqStep& qualifier = ast->where->left.steps.back();
  EXPECT_EQ(qualifier.name, "qualifier");
  ASSERT_EQ(qualifier.predicates.size(), 1u);
  EXPECT_TRUE(qualifier.predicates[0].path[0].is_attribute);
  EXPECT_EQ(qualifier.predicates[0].path[0].name, "qualifier_type");
  EXPECT_EQ(qualifier.predicates[0].literal.AsText(), "EC number");
  ASSERT_EQ(ast->returns.size(), 2u);
  EXPECT_EQ(ast->returns[0].alias, "Accession_Number");
  EXPECT_EQ(ast->returns[1].alias, "Accession_Description");
}

TEST(XqParserTest, KeywordsAreCaseInsensitive) {
  auto ast = ParseXQuery(
      "for $a in document(\"c\")/r where Contains($a, \"x\", ANY) "
      "return $a/id");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
}

TEST(XqParserTest, LetExpansion) {
  auto ast = ParseXQuery(R"(
FOR $a IN document("c")/root
LET $entry := $a/db_entry, $id := $entry/enzyme_id
WHERE $id = "1.1.1.1"
RETURN $id)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_TRUE(ast->lets.empty());  // expanded away
  // $id expands to $a/db_entry/enzyme_id.
  EXPECT_EQ(ast->where->left.var, "a");
  ASSERT_EQ(ast->where->left.steps.size(), 2u);
  EXPECT_EQ(ast->where->left.steps[1].name, "enzyme_id");
  EXPECT_EQ(ast->returns[0].path.steps.size(), 2u);
}

TEST(XqParserTest, OrNotAndPrecedence) {
  auto ast = ParseXQuery(R"(
FOR $a IN document("c")/r
WHERE contains($a/x, "k1") OR contains($a/y, "k2") AND NOT $a/z = "v"
RETURN $a/id)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  // OR at top; right child is AND.
  ASSERT_EQ(ast->where->kind, XqCondKind::kOr);
  ASSERT_EQ(ast->where->children.size(), 2u);
  EXPECT_EQ(ast->where->children[1]->kind, XqCondKind::kAnd);
  EXPECT_EQ(ast->where->children[1]->children[1]->kind, XqCondKind::kNot);
}

TEST(XqParserTest, OrderOperators) {
  auto ast = ParseXQuery(R"(
FOR $a IN document("c")/r
WHERE $a/x BEFORE $a/y AND $a/z AFTER $a/x
RETURN $a/id)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->where->children.size(), 2u);
  EXPECT_EQ(ast->where->children[0]->kind, XqCondKind::kOrder);
  EXPECT_EQ(ast->where->children[0]->op, "BEFORE");
  EXPECT_EQ(ast->where->children[1]->op, "AFTER");
}

TEST(XqParserTest, NumericLiterals) {
  auto ast = ParseXQuery(R"(
FOR $a IN document("c")/r
WHERE $a/length > 100 AND $a/score <= 2.5
RETURN $a/id)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const XqCond& gt = *ast->where->children[0];
  EXPECT_EQ(gt.right_literal.AsInt(), 100);
  const XqCond& le = *ast->where->children[1];
  EXPECT_DOUBLE_EQ(le.right_literal.AsDouble(), 2.5);
}

TEST(XqParserTest, PositionalPredicates) {
  auto ast = ParseXQuery(
      "FOR $a IN document(\"c\")/r RETURN $a//alternate_name[2]");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const XqStep& last = ast->returns[0].path.steps.back();
  ASSERT_EQ(last.predicates.size(), 1u);
  EXPECT_TRUE(last.predicates[0].is_position);
  EXPECT_EQ(last.predicates[0].position, 2);
  // Round trip through ToString.
  auto reparsed = ParseXQuery(ast->ToString());
  ASSERT_TRUE(reparsed.ok()) << ast->ToString();
  // Zero / negative positions rejected (1-based).
  EXPECT_FALSE(
      ParseXQuery("FOR $a IN document(\"c\")/r RETURN $a/x[0]").ok());
}

TEST(XqParserTest, AttributeReturnPath) {
  auto ast = ParseXQuery(
      "FOR $a IN document(\"c\")/r RETURN $a//reference/@name");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const XqStep& last = ast->returns[0].path.steps.back();
  EXPECT_TRUE(last.is_attribute);
  EXPECT_EQ(last.name, "name");
}

TEST(XqParserTest, ToStringReparses) {
  const char* query = R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
AND   contains($a, "cdc6", any)
RETURN $X = $a//embl_accession_number, $b/enzyme_id)";
  auto ast = ParseXQuery(query);
  ASSERT_TRUE(ast.ok());
  auto reparsed = ParseXQuery(ast->ToString());
  ASSERT_TRUE(reparsed.ok()) << ast->ToString() << "\n"
                             << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToString(), ast->ToString());
}

TEST(XqParserTest, ReturnElementConstructor) {
  auto ast = ParseXQuery(R"(
FOR $a IN document("c")/r
RETURN <hit>{ $a//enzyme_id, $E = $a//enzyme_description }</hit>)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->constructor_name, "hit");
  ASSERT_EQ(ast->returns.size(), 2u);
  EXPECT_EQ(ast->returns[1].alias, "E");
  // Round trip.
  auto reparsed = ParseXQuery(ast->ToString());
  ASSERT_TRUE(reparsed.ok()) << ast->ToString();
  EXPECT_EQ(reparsed->constructor_name, "hit");
  // Mismatched close tag rejected.
  EXPECT_FALSE(ParseXQuery(
                   "FOR $a IN document(\"c\")/r RETURN <x>{ $a/y }</z>")
                   .ok());
  // Unclosed constructor rejected.
  EXPECT_FALSE(
      ParseXQuery("FOR $a IN document(\"c\")/r RETURN <x>{ $a/y }").ok());
}

TEST(XqParserTest, RelativeBindingParses) {
  auto ast = ParseXQuery(R"(
FOR $a IN document("c")/r, $x IN $a//item
RETURN $x/@id)");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->bindings.size(), 2u);
  EXPECT_EQ(ast->bindings[1].base_var, "a");
  EXPECT_TRUE(ast->bindings[1].collection.empty());
  auto reparsed = ParseXQuery(ast->ToString());
  ASSERT_TRUE(reparsed.ok()) << ast->ToString();
  // A relative binding with no steps is rejected.
  EXPECT_FALSE(
      ParseXQuery("FOR $a IN document(\"c\")/r, $x IN $a RETURN $x").ok());
}

TEST(XqParserTest, Errors) {
  const char* bad[] = {
      "",                                             // empty
      "FOR $a IN foo(\"c\")/r RETURN $a/x",           // not document()
      "FOR $a IN document(c)/r RETURN $a/x",          // unquoted collection
      "FOR $a IN document(\"c\")/r",                  // missing RETURN
      "FOR $a IN document(\"c\")/r RETURN",           // empty RETURN
      "FOR $a IN document(\"c\")/r WHERE RETURN $a",  // empty WHERE
      "FOR $a IN document(\"c\")/r RETURN $b/x",      // unbound var
      "FOR $a IN document(\"c\")/r WHERE $b/x = \"1\" RETURN $a/x",
      "FOR $a IN document(\"c\")/r WHERE contains($a/x) RETURN $a/x",
      "FOR $a IN document(\"c\")/r WHERE $a/x RETURN $a/x",  // no operator
      "FOR $a IN document(\"c\")/r, $a IN document(\"d\")/s RETURN $a/x",
      "FOR $a IN document(\"c\")/r RETURN $a/x trailing",
  };
  for (const char* query : bad) {
    EXPECT_FALSE(ParseXQuery(query).ok()) << query;
  }
}

TEST(XqParserTest, DuplicateVarRejectedAtTranslationLevel) {
  // Duplicate FOR variables are caught by the parser's binding check or
  // the translator; here the parser accepts distinct vars only.
  auto ast = ParseXQuery(
      "FOR $a IN document(\"c\")/r, $b IN document(\"c\")/r "
      "RETURN $a/x, $b/x");
  EXPECT_TRUE(ast.ok());
}

TEST(XqParserTest, CyclicLetRejected) {
  auto ast = ParseXQuery(R"(
FOR $a IN document("c")/r
LET $x := $y/p, $y := $x/q
RETURN $x)");
  EXPECT_FALSE(ast.ok());
}

}  // namespace
}  // namespace xomatiq::xq
