#include <gtest/gtest.h>

#include "xomatiq/xomatiq.h"
#include "xomatiq/xq_parser.h"

namespace xomatiq::xq {
namespace {

TEST(KeywordQueryBuilderTest, ReproducesFigure8Shape) {
  KeywordQueryBuilder builder;
  builder.AddDatabase("hlx_embl.inv", "hlx_n_sequence",
                      "//embl_accession_number")
      .AddDatabase("hlx_sprot.all", "hlx_n_sequence",
                   "//sprot_accession_number")
      .SetKeyword("cdc6");
  std::string query = builder.Build();
  // Text matches the Fig 8 pattern.
  EXPECT_NE(query.find("document(\"hlx_embl.inv\")/hlx_n_sequence"),
            std::string::npos)
      << query;
  EXPECT_NE(query.find("contains($a, \"cdc6\", any)"), std::string::npos);
  EXPECT_NE(query.find("contains($b, \"cdc6\", any)"), std::string::npos);
  EXPECT_NE(query.find("$b//sprot_accession_number"), std::string::npos);
  // And it parses.
  auto ast = ParseXQuery(query);
  ASSERT_TRUE(ast.ok()) << query << "\n" << ast.status().ToString();
  EXPECT_EQ(ast->bindings.size(), 2u);
}

TEST(SubtreeQueryBuilderTest, ReproducesFigure9Shape) {
  SubtreeQueryBuilder builder("hlx_enzyme.DEFAULT", "hlx_enzyme");
  builder.AddCondition("catalytic_activity", "ketone")
      .AddReturn("enzyme_id")
      .AddReturn("enzyme_description");
  std::string query = builder.Build();
  EXPECT_NE(query.find("contains($a//catalytic_activity, \"ketone\")"),
            std::string::npos)
      << query;
  auto ast = ParseXQuery(query);
  ASSERT_TRUE(ast.ok()) << query;
  EXPECT_EQ(ast->returns.size(), 2u);
}

TEST(SubtreeQueryBuilderTest, DisjunctiveConditions) {
  SubtreeQueryBuilder builder("c", "root");
  builder.AddCondition("x", "k1")
      .AddCondition("y", "k2")
      .SetDisjunctive(true)
      .AddReturn("id");
  std::string query = builder.Build();
  EXPECT_NE(query.find("OR"), std::string::npos) << query;
  auto ast = ParseXQuery(query);
  ASSERT_TRUE(ast.ok()) << query;
  EXPECT_EQ(ast->where->kind, XqCondKind::kOr);
}

TEST(SubtreeQueryBuilderTest, ComparisonConditions) {
  SubtreeQueryBuilder builder("c", "root");
  builder.AddComparison("enzyme_id", "=", "1.1.1.1").AddReturn("enzyme_id");
  std::string query = builder.Build();
  auto ast = ParseXQuery(query);
  ASSERT_TRUE(ast.ok()) << query;
  EXPECT_EQ(ast->where->kind, XqCondKind::kCompare);
}

TEST(JoinQueryBuilderTest, ReproducesFigure11) {
  JoinQueryBuilder builder("hlx_embl.inv", "/hlx_n_sequence/db_entry",
                           "hlx_enzyme.DEFAULT", "/hlx_enzyme/db_entry");
  builder.AddJoin("//qualifier[@qualifier_type = \"EC number\"]",
                  "/enzyme_id");
  builder.AddReturn('a', "//embl_accession_number", "Accession_Number");
  builder.AddReturn('a', "//description", "Accession_Description");
  std::string query = builder.Build();
  EXPECT_NE(
      query.find(
          "$a//qualifier[@qualifier_type = \"EC number\"] = $b/enzyme_id"),
      std::string::npos)
      << query;
  EXPECT_NE(query.find("$Accession_Number = $a//embl_accession_number"),
            std::string::npos)
      << query;
  auto ast = ParseXQuery(query);
  ASSERT_TRUE(ast.ok()) << query << "\n" << ast.status().ToString();
  EXPECT_EQ(ast->bindings.size(), 2u);
  EXPECT_EQ(ast->returns[0].alias, "Accession_Number");
}

TEST(JoinQueryBuilderTest, ExtraConditions) {
  JoinQueryBuilder builder("c1", "/r1", "c2", "/r2");
  builder.AddJoin("/x", "/y");
  builder.AddLeftCondition("contains($a//kw, \"cell\")");
  builder.AddReturn('b', "/id");
  auto ast = ParseXQuery(builder.Build());
  ASSERT_TRUE(ast.ok()) << builder.Build();
  EXPECT_EQ(ast->where->kind, XqCondKind::kAnd);
}

}  // namespace
}  // namespace xomatiq::xq
