#include "datagen/corpus.h"

#include <gtest/gtest.h>

#include <set>

namespace xomatiq::datagen {
namespace {

TEST(CorpusTest, DeterministicBySeed) {
  CorpusOptions options;
  options.num_enzymes = 30;
  options.num_proteins = 30;
  options.num_nucleotides = 30;
  Corpus a = GenerateCorpus(options);
  Corpus b = GenerateCorpus(options);
  ASSERT_EQ(a.enzymes.size(), b.enzymes.size());
  for (size_t i = 0; i < a.enzymes.size(); ++i) {
    EXPECT_EQ(a.enzymes[i], b.enzymes[i]);
  }
  for (size_t i = 0; i < a.proteins.size(); ++i) {
    EXPECT_EQ(a.proteins[i], b.proteins[i]);
  }
  for (size_t i = 0; i < a.nucleotides.size(); ++i) {
    EXPECT_EQ(a.nucleotides[i], b.nucleotides[i]);
  }
  options.seed = 999;
  Corpus c = GenerateCorpus(options);
  EXPECT_FALSE(a.enzymes.front() == c.enzymes.front());
}

TEST(CorpusTest, SizesMatchOptions) {
  CorpusOptions options;
  options.num_enzymes = 17;
  options.num_proteins = 23;
  options.num_nucleotides = 31;
  Corpus corpus = GenerateCorpus(options);
  EXPECT_EQ(corpus.enzymes.size(), 17u);
  EXPECT_EQ(corpus.proteins.size(), 23u);
  EXPECT_EQ(corpus.nucleotides.size(), 31u);
}

TEST(CorpusTest, EcNumbersUnique) {
  CorpusOptions options;
  options.num_enzymes = 200;
  Corpus corpus = GenerateCorpus(options);
  std::set<std::string> ids;
  for (const auto& e : corpus.enzymes) {
    EXPECT_TRUE(ids.insert(e.id).second) << "duplicate EC " << e.id;
  }
}

TEST(CorpusTest, GroundTruthCountsMatchContent) {
  CorpusOptions options;
  options.num_enzymes = 100;
  options.num_proteins = 150;
  options.num_nucleotides = 200;
  options.keyword_fraction = 0.2;
  Corpus corpus = GenerateCorpus(options);
  size_t kw_proteins = 0;
  for (const auto& p : corpus.proteins) {
    bool has = false;
    for (const auto& kw : p.keywords) {
      if (kw == options.planted_keyword) has = true;
    }
    if (has) ++kw_proteins;
  }
  EXPECT_EQ(kw_proteins, corpus.proteins_with_keyword);
  size_t ec_links = 0;
  for (const auto& n : corpus.nucleotides) {
    for (const auto& f : n.features) {
      for (const auto& q : f.qualifiers) {
        if (q.name == "EC_number") ++ec_links;
      }
    }
  }
  EXPECT_EQ(ec_links, corpus.nucleotides_with_ec_link);
  size_t ketone = 0;
  for (const auto& e : corpus.enzymes) {
    for (const auto& ca : e.catalytic_activities) {
      if (ca.find("ketone") != std::string::npos) {
        ++ketone;
        break;
      }
    }
  }
  EXPECT_EQ(ketone, corpus.enzymes_with_ketone);
}

TEST(CorpusTest, FractionsApproximatelyRespected) {
  CorpusOptions options;
  options.num_enzymes = 500;
  options.num_proteins = 500;
  options.num_nucleotides = 500;
  options.keyword_fraction = 0.2;
  options.ketone_fraction = 0.3;
  options.ec_link_fraction = 0.5;
  Corpus corpus = GenerateCorpus(options);
  EXPECT_NEAR(corpus.proteins_with_keyword / 500.0, 0.2, 0.07);
  EXPECT_NEAR(corpus.enzymes_with_ketone / 500.0, 0.3, 0.07);
  EXPECT_NEAR(corpus.nucleotides_with_ec_link / 500.0, 0.5, 0.07);
}

TEST(CorpusTest, CrossLinksAreConsistent) {
  CorpusOptions options;
  options.num_enzymes = 50;
  options.num_proteins = 80;
  options.num_nucleotides = 80;
  Corpus corpus = GenerateCorpus(options);
  std::set<std::string> ec_ids;
  for (const auto& e : corpus.enzymes) ec_ids.insert(e.id);
  std::set<std::string> protein_accessions;
  for (const auto& p : corpus.proteins) {
    protein_accessions.insert(p.accessions.front());
  }
  // EMBL EC qualifiers point at real enzymes.
  for (const auto& n : corpus.nucleotides) {
    for (const auto& f : n.features) {
      for (const auto& q : f.qualifiers) {
        if (q.name == "EC_number") {
          EXPECT_TRUE(ec_ids.count(q.value) > 0) << q.value;
        }
      }
    }
  }
  // Enzyme DR lines point back at generated proteins.
  for (const auto& e : corpus.enzymes) {
    for (const auto& ref : e.swissprot_refs) {
      EXPECT_TRUE(protein_accessions.count(ref.accession) > 0)
          << ref.accession;
    }
  }
  // Protein ENZYME xrefs point at real enzymes.
  for (const auto& p : corpus.proteins) {
    for (const auto& x : p.xrefs) {
      if (x.database == "ENZYME") {
        EXPECT_TRUE(ec_ids.count(x.primary) > 0) << x.primary;
      }
    }
  }
}

TEST(CorpusTest, FlatFilesParseBack) {
  CorpusOptions options;
  options.num_enzymes = 20;
  options.num_proteins = 20;
  options.num_nucleotides = 20;
  Corpus corpus = GenerateCorpus(options);
  auto enzymes = flatfile::ParseEnzymeFile(ToEnzymeFlatFile(corpus));
  ASSERT_TRUE(enzymes.ok());
  EXPECT_EQ(enzymes->size(), 20u);
  auto proteins = flatfile::ParseSwissProtFile(ToSwissProtFlatFile(corpus));
  ASSERT_TRUE(proteins.ok());
  EXPECT_EQ(proteins->size(), 20u);
  auto nucleotides = flatfile::ParseEmblFile(ToEmblFlatFile(corpus));
  ASSERT_TRUE(nucleotides.ok());
  EXPECT_EQ(nucleotides->size(), 20u);
}

TEST(CorpusTest, SequencesUseProperAlphabets) {
  CorpusOptions options;
  options.num_enzymes = 5;
  options.num_proteins = 10;
  options.num_nucleotides = 10;
  Corpus corpus = GenerateCorpus(options);
  for (const auto& n : corpus.nucleotides) {
    EXPECT_EQ(n.sequence.size(), options.nucleotide_length);
    EXPECT_EQ(n.sequence.find_first_not_of("acgt"), std::string::npos);
  }
  for (const auto& p : corpus.proteins) {
    EXPECT_EQ(p.sequence.size(), options.protein_length);
    EXPECT_EQ(p.sequence.find_first_not_of("ACDEFGHIKLMNPQRSTVWY"),
              std::string::npos);
  }
}

TEST(Figure2EntryTest, MatchesPaperContent) {
  flatfile::EnzymeEntry e = Figure2Entry();
  EXPECT_EQ(e.id, "1.14.17.3");
  EXPECT_EQ(e.descriptions.front(), "Peptidylglycine monooxygenase");
  EXPECT_EQ(e.swissprot_refs.size(), 5u);
  EXPECT_EQ(e.cofactors, std::vector<std::string>{"Copper"});
  // And it serializes into valid ENZYME flat-file format.
  auto reparsed = flatfile::ParseEnzymeFile(FormatEnzymeEntry(e));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->front(), e);
}

}  // namespace
}  // namespace xomatiq::datagen
