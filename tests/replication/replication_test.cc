// End-to-end replication tests: snapshot bootstrap equivalence, WAL tail
// streaming, primary restart with LSN-tracked resume, corrupt-frame
// recovery, read-only enforcement, min_lsn read-your-writes, cluster
// client routing, cache invalidation on apply, stale-replica health, and
// a concurrent writer/reader hammer (run under TSan in CI).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "client/client.h"
#include "client/cluster_client.h"
#include "common/fault_injector.h"
#include "common/query_options.h"
#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "relational/database.h"
#include "replication/repl_server.h"
#include "replication/replica.h"
#include "server/server.h"

namespace xomatiq::repl {
namespace {

using common::StatusCode;

constexpr char kEnzymes[] = "hlx_enzyme.DEFAULT";
constexpr char kEnzymeIdsXq[] =
    "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme "
    "RETURN $a//enzyme_id";

datagen::Corpus MakeCorpus(size_t enzymes) {
  datagen::CorpusOptions options;
  options.num_enzymes = enzymes;
  options.num_proteins = 5;
  options.num_nucleotides = 0;
  return datagen::GenerateCorpus(options);
}

bool PollUntil(const std::function<bool()>& pred, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// Blocking one-shot HTTP exchange against 127.0.0.1:port (the admin
// endpoint is HTTP/1.0 with Connection: close, so read-until-EOF frames
// the response).
std::string HttpGet(uint16_t port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// A primary: database (+ optional warehouse / writable query server) and
// the WAL shipper. Members declare in dependency order so destruction
// tears the servers down before the database.
struct PrimaryNode {
  std::unique_ptr<rel::Database> db;
  std::unique_ptr<hounds::Warehouse> warehouse;
  std::unique_ptr<ReplicationServer> shipper;
  std::unique_ptr<srv::QueryServer> server;
};

// A replica: database, applier, and optionally the read-only serving
// stack wired exactly like server_main.
struct ReplicaNode {
  std::unique_ptr<rel::Database> db;
  std::unique_ptr<ReplicaApplier> applier;
  std::unique_ptr<hounds::Warehouse> warehouse;
  std::shared_ptr<srv::ResultCache> cache;
  std::unique_ptr<srv::QueryServer> server;
};

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = testing::TempDir() + "/xq_repl_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(base_);
    common::FaultInjector::Global().Reset();
  }
  void TearDown() override {
    common::FaultInjector::Global().Reset();
    std::filesystem::remove_all(base_);
  }

  std::string Dir(const std::string& name) { return base_ + "/" + name; }

  // Primary with the warehouse schema installed (so replicas can open a
  // warehouse over replicated state without local writes).
  void StartPrimary(PrimaryNode* node, size_t enzymes = 0) {
    node->db = rel::Database::OpenInMemory();
    auto warehouse = hounds::Warehouse::Open(node->db.get());
    ASSERT_TRUE(warehouse.ok()) << warehouse.status().ToString();
    node->warehouse = std::move(warehouse).value();
    if (enzymes > 0) {
      hounds::EnzymeXmlTransformer enzyme;
      ASSERT_TRUE(node->warehouse
                      ->LoadSource(kEnzymes, enzyme,
                                   datagen::ToEnzymeFlatFile(
                                       MakeCorpus(enzymes)))
                      .ok());
    }
    StartShipper(node);
  }

  void StartShipper(PrimaryNode* node,
                    ReplicationServerOptions sopts = {}) {
    node->shipper =
        std::make_unique<ReplicationServer>(node->db.get(), sopts);
    ASSERT_TRUE(node->shipper->Start().ok());
  }

  // Writable query server on the primary (for cluster-client tests).
  void ServePrimary(PrimaryNode* node) {
    srv::ServerOptions options;
    options.port = 0;
    node->server =
        std::make_unique<srv::QueryServer>(node->warehouse.get(), options);
    ASSERT_TRUE(node->server->Start().ok());
  }

  // Database + applier, caught up past the bootstrap.
  void StartReplica(ReplicaNode* node, uint16_t primary_port,
                    ReplicaApplierOptions ropts = {}) {
    node->db = rel::Database::OpenInMemory();
    ropts.primary_port = primary_port;
    if (node->cache != nullptr) {
      std::weak_ptr<srv::ResultCache> weak = node->cache;
      ropts.invalidate = [weak](const std::string& collection) {
        auto c = weak.lock();
        if (c == nullptr) return;
        if (collection.empty()) {
          c->Clear();
        } else {
          c->Invalidate(collection);
        }
      };
    }
    node->applier =
        std::make_unique<ReplicaApplier>(node->db.get(), ropts);
    ASSERT_TRUE(node->applier->Start().ok());
    ASSERT_TRUE(node->applier->WaitUntilCaughtUp(10000).ok());
  }

  // Warehouse + read-only query server over an already caught-up replica,
  // wired exactly as server_main wires one.
  void ServeReplica(ReplicaNode* node, int admin_port = -1,
                    uint32_t min_lsn_wait_ms = 300) {
    auto warehouse = hounds::Warehouse::Open(node->db.get());
    ASSERT_TRUE(warehouse.ok()) << warehouse.status().ToString();
    node->warehouse = std::move(warehouse).value();
    srv::ServerOptions options;
    options.port = 0;
    options.admin_port = admin_port;
    options.service.cache = node->cache;
    options.service.read_only = true;
    options.service.min_lsn_wait_ms = min_lsn_wait_ms;
    ReplicaApplier* applier = node->applier.get();
    options.service.wait_for_lsn = [applier](uint64_t lsn,
                                             uint32_t budget_ms) {
      return applier->WaitForLsn(lsn, budget_ms);
    };
    options.replica_ready = [applier] { return applier->ready(); };
    options.replication_statusz = [applier] {
      return applier->StatuszJson();
    };
    node->server =
        std::make_unique<srv::QueryServer>(node->warehouse.get(), options);
    ASSERT_TRUE(node->server->Start().ok());
  }

  cli::Client Connect(uint16_t port) {
    auto client = cli::Client::Connect("127.0.0.1", port);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  // DDL/DML straight on the database, under the exclusive latch exactly
  // like the engine would hold it.
  void CreateKv(rel::Database* db) {
    std::unique_lock<std::shared_mutex> lock(db->latch());
    ASSERT_TRUE(
        db->CreateTable("kv", rel::Schema({{"k", rel::ValueType::kInt,
                                            false}}))
            .ok());
  }
  void InsertKv(rel::Database* db, int from, int to) {
    std::unique_lock<std::shared_mutex> lock(db->latch());
    for (int i = from; i < to; ++i) {
      ASSERT_TRUE(db->Insert("kv", {rel::Value::Int(i)}).ok());
    }
  }
  size_t KvRows(rel::Database* db) {
    std::shared_lock<std::shared_mutex> lock(db->latch());
    auto table = db->GetTable("kv");
    EXPECT_TRUE(table.ok());
    return table.ok() ? (*table)->num_live_rows() : 0;
  }

  std::string base_;
};

TEST_F(ReplicationTest, SnapshotBootstrapMatchesPrimaryState) {
  PrimaryNode primary;
  ASSERT_NO_FATAL_FAILURE(StartPrimary(&primary, /*enzymes=*/12));
  const uint64_t loaded_lsn = primary.db->durable_lsn();
  ASSERT_GT(loaded_lsn, 0u);

  ReplicaNode replica;
  ASSERT_NO_FATAL_FAILURE(StartReplica(&replica, primary.shipper->port()));
  EXPECT_EQ(replica.db->applied_lsn(), loaded_lsn);
  EXPECT_EQ(replica.applier->status().snapshots_installed, 1u);
  EXPECT_EQ(primary.shipper->stats().snapshots_shipped, 1u);

  // The installed state is the primary's state, byte for byte.
  std::string primary_state, replica_state;
  {
    std::shared_lock<std::shared_mutex> lock(primary.db->latch());
    primary_state = primary.db->EncodeState();
  }
  {
    std::shared_lock<std::shared_mutex> lock(replica.db->latch());
    replica_state = replica.db->EncodeState();
  }
  EXPECT_EQ(primary_state, replica_state);

  // And the replica serves it through the normal query path.
  ASSERT_NO_FATAL_FAILURE(ServeReplica(&replica));
  auto client = Connect(replica.server->port());
  auto ids = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_TRUE(ids->ok()) << ids->error;
  EXPECT_EQ(ids->rows.size(), 12u);
  EXPECT_GT(ids->lsn, 0u);  // responses carry the serving position
}

TEST_F(ReplicationTest, ColdStartTailsRecordsWithoutSnapshot) {
  // Replica connects while the primary is empty: both are at LSN 0, so no
  // snapshot is needed and every subsequent write arrives as a record.
  PrimaryNode primary;
  primary.db = rel::Database::OpenInMemory();
  ASSERT_NO_FATAL_FAILURE(StartShipper(&primary));

  ReplicaNode replica;
  ASSERT_NO_FATAL_FAILURE(StartReplica(&replica, primary.shipper->port()));
  EXPECT_EQ(replica.applier->status().snapshots_installed, 0u);

  ASSERT_NO_FATAL_FAILURE(CreateKv(primary.db.get()));
  ASSERT_NO_FATAL_FAILURE(InsertKv(primary.db.get(), 0, 25));
  const uint64_t target = primary.db->durable_lsn();
  EXPECT_EQ(target, 26u);  // CREATE + 25 inserts, numbered from 1

  ASSERT_TRUE(replica.applier->WaitForLsn(target, 10000));
  EXPECT_EQ(replica.db->applied_lsn(), target);
  EXPECT_EQ(KvRows(replica.db.get()), 25u);
  ReplicaStatus status = replica.applier->status();
  EXPECT_EQ(status.snapshots_installed, 0u);
  EXPECT_EQ(status.records_applied, target);
  EXPECT_GE(primary.shipper->stats().records_shipped, target);
}

TEST_F(ReplicationTest, ReplicaResumesAfterPrimaryRestart) {
  const std::string dir = Dir("primary");
  PrimaryNode primary;
  {
    auto opened = rel::Database::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    primary.db = std::move(opened).value();
  }
  ASSERT_NO_FATAL_FAILURE(CreateKv(primary.db.get()));
  ASSERT_NO_FATAL_FAILURE(InsertKv(primary.db.get(), 0, 20));
  ASSERT_NO_FATAL_FAILURE(StartShipper(&primary));
  const uint16_t port = primary.shipper->port();

  ReplicaNode replica;
  ASSERT_NO_FATAL_FAILURE(StartReplica(&replica, port));
  const uint64_t before_restart = primary.db->durable_lsn();
  EXPECT_EQ(replica.db->applied_lsn(), before_restart);
  EXPECT_EQ(replica.applier->status().snapshots_installed, 1u);

  // Primary crashes and comes back on the same port; the replica keeps
  // running, reconnects, and resumes from its applied LSN.
  primary.shipper->Shutdown();
  primary.shipper.reset();
  primary.db.reset();
  {
    auto opened = rel::Database::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    primary.db = std::move(opened).value();
  }
  EXPECT_EQ(primary.db->durable_lsn(), before_restart);
  ReplicationServerOptions sopts;
  sopts.port = port;
  ASSERT_NO_FATAL_FAILURE(StartShipper(&primary, sopts));
  // Written after the shipper is back up, so the records pass through its
  // ring and the replica can tail from its applied LSN (a write that the
  // ring never saw would correctly force a re-bootstrap instead).
  ASSERT_NO_FATAL_FAILURE(InsertKv(primary.db.get(), 20, 30));

  const uint64_t target = primary.db->durable_lsn();
  ASSERT_TRUE(replica.applier->WaitForLsn(target, 15000));
  EXPECT_EQ(KvRows(replica.db.get()), 30u);
  ReplicaStatus status = replica.applier->status();
  EXPECT_GE(status.reconnects, 1u);
  // Resume streamed from the applied LSN: no second bootstrap.
  EXPECT_EQ(status.snapshots_installed, 1u);
}

TEST_F(ReplicationTest, CorruptShippedFrameReconnectsAndRecovers) {
  PrimaryNode primary;
  primary.db = rel::Database::OpenInMemory();
  ASSERT_NO_FATAL_FAILURE(CreateKv(primary.db.get()));
  ASSERT_NO_FATAL_FAILURE(StartShipper(&primary));

  ReplicaNode replica;
  ASSERT_NO_FATAL_FAILURE(StartReplica(&replica, primary.shipper->port()));

  // Arm the ship-path fault with the XOMATIQ_FAULTS spec syntax: the 3rd
  // outbound message leaves the primary with a flipped payload byte. The
  // replica's CRC check must catch it and treat it like a torn record:
  // drop the stream, reconnect, resume from the applied LSN.
  ASSERT_TRUE(common::FaultInjector::Global()
                  .Configure("repl.ship.corrupt=nth:3@corruption")
                  .ok());
  ASSERT_NO_FATAL_FAILURE(InsertKv(primary.db.get(), 0, 40));

  const uint64_t target = primary.db->durable_lsn();
  ASSERT_TRUE(replica.applier->WaitForLsn(target, 15000));
  EXPECT_EQ(KvRows(replica.db.get()), 40u);
  EXPECT_EQ(common::FaultInjector::Global().fires("repl.ship.corrupt"), 1u);
  ReplicaStatus status = replica.applier->status();
  EXPECT_GE(status.corrupt_frames, 1u);
  EXPECT_GE(status.reconnects, 1u);
}

TEST_F(ReplicationTest, ReplicaRejectsWritesAndReportsWalStatus) {
  PrimaryNode primary;
  ASSERT_NO_FATAL_FAILURE(StartPrimary(&primary, /*enzymes=*/8));
  ReplicaNode replica;
  ASSERT_NO_FATAL_FAILURE(StartReplica(&replica, primary.shipper->port()));
  ASSERT_NO_FATAL_FAILURE(ServeReplica(&replica));

  auto client = Connect(replica.server->port());
  for (const char* stmt :
       {"INSERT INTO kv VALUES (1)", "CREATE TABLE kv (k INT)",
        "DELETE FROM kv WHERE k = 1", "ANALYZE xml_document"}) {
    auto response = client.Sql(stmt);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->code, StatusCode::kReadOnly) << stmt;
  }

  // Reads still serve, including WAL STATUS, which reports the LSNs.
  auto count = client.Sql("SELECT COUNT(*) FROM xml_document");
  ASSERT_TRUE(count.ok() && count->ok());
  EXPECT_GT(count->rows[0][0].AsInt(), 0);

  auto wal = client.Sql("WAL STATUS");
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE(wal->ok()) << wal->error;
  bool saw_applied = false;
  for (const auto& row : wal->rows) {
    if (row[0].AsText() == "applied_lsn") {
      saw_applied = true;
      EXPECT_EQ(row[1].AsText(),
                std::to_string(replica.db->applied_lsn()));
    }
  }
  EXPECT_TRUE(saw_applied);
}

TEST_F(ReplicationTest, MinLsnWaitsForCatchUpOrRefusesLagging) {
  PrimaryNode primary;
  ASSERT_NO_FATAL_FAILURE(StartPrimary(&primary));
  ASSERT_NO_FATAL_FAILURE(CreateKv(primary.db.get()));
  ReplicaNode replica;
  ASSERT_NO_FATAL_FAILURE(StartReplica(&replica, primary.shipper->port()));
  ASSERT_NO_FATAL_FAILURE(ServeReplica(&replica, /*admin_port=*/-1,
                                       /*min_lsn_wait_ms=*/300));
  auto client = Connect(replica.server->port());

  // Freeze the applier, commit on the primary, and demand the commit LSN:
  // the replica waits out its budget, then answers kLagging.
  replica.applier->PauseApply(true);
  ASSERT_NO_FATAL_FAILURE(InsertKv(primary.db.get(), 0, 1));
  const uint64_t commit_lsn = primary.db->durable_lsn();
  ASSERT_GT(commit_lsn, replica.db->applied_lsn());

  common::QueryOptions opts;
  opts.min_lsn = commit_lsn;
  auto lagging =
      client.Execute(common::QueryRequest::Sql("SELECT COUNT(*) FROM kv", opts));
  ASSERT_TRUE(lagging.ok()) << lagging.status().ToString();
  EXPECT_EQ(lagging->code, StatusCode::kLagging);

  // Same read while replication catches up mid-wait: the gate wakes and
  // the response observes the write.
  std::thread unpause([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    replica.applier->PauseApply(false);
  });
  auto served =
      client.Execute(common::QueryRequest::Sql("SELECT COUNT(*) FROM kv", opts));
  unpause.join();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ASSERT_TRUE(served->ok()) << served->error;
  EXPECT_EQ(served->rows[0][0].AsInt(), 1);
  EXPECT_GE(served->lsn, commit_lsn);
}

TEST_F(ReplicationTest, ClusterClientSplitsReadsAndWrites) {
  PrimaryNode primary;
  ASSERT_NO_FATAL_FAILURE(StartPrimary(&primary));
  ASSERT_NO_FATAL_FAILURE(ServePrimary(&primary));
  ReplicaNode replica;
  ASSERT_NO_FATAL_FAILURE(StartReplica(&replica, primary.shipper->port()));
  ASSERT_NO_FATAL_FAILURE(ServeReplica(&replica, /*admin_port=*/-1,
                                       /*min_lsn_wait_ms=*/300));

  cli::ClusterOptions copts;
  copts.primary = {"127.0.0.1", primary.server->port()};
  copts.replicas = {{"127.0.0.1", replica.server->port()}};
  cli::ClusterClient cluster(copts);

  // Writes route to the primary and record the commit LSN.
  auto ddl = cluster.Sql("CREATE TABLE kv (k INT)");
  ASSERT_TRUE(ddl.ok() && ddl->ok()) << ddl.status().ToString();
  for (int i = 0; i < 5; ++i) {
    auto ins =
        cluster.Sql("INSERT INTO kv VALUES (" + std::to_string(i) + ")");
    ASSERT_TRUE(ins.ok() && ins->ok());
  }
  EXPECT_EQ(cluster.last_write_lsn(), primary.db->durable_lsn());
  EXPECT_GE(cluster.stats().primary_requests, 6u);

  // A read right after the writes carries min_lsn, so the replica answer
  // can never be the pre-write state.
  auto count = cluster.Sql("SELECT COUNT(*) FROM kv");
  ASSERT_TRUE(count.ok() && count->ok()) << count.status().ToString();
  EXPECT_EQ(count->rows[0][0].AsInt(), 5);
  EXPECT_GE(cluster.stats().replica_requests, 1u);

  // A lagging replica bounces the read to the primary, which still sees
  // the write.
  replica.applier->PauseApply(true);
  auto ins = cluster.Sql("INSERT INTO kv VALUES (5)");
  ASSERT_TRUE(ins.ok() && ins->ok());
  auto fallback = cluster.Sql("SELECT COUNT(*) FROM kv");
  ASSERT_TRUE(fallback.ok() && fallback->ok())
      << fallback.status().ToString();
  EXPECT_EQ(fallback->rows[0][0].AsInt(), 6);
  EXPECT_GE(cluster.stats().replica_fallbacks, 1u);

  // A write misrouted through Read() is refused by the replica with
  // kReadOnly and lands on the primary.
  auto misrouted = cluster.Read(common::QueryRequest::Sql("INSERT INTO kv VALUES (100)"));
  ASSERT_TRUE(misrouted.ok() && misrouted->ok())
      << misrouted.status().ToString();
  EXPECT_GE(cluster.stats().replica_fallbacks, 2u);

  replica.applier->PauseApply(false);
  ASSERT_TRUE(
      replica.applier->WaitForLsn(primary.db->durable_lsn(), 10000));
  auto final_count = cluster.Sql("SELECT COUNT(*) FROM kv");
  ASSERT_TRUE(final_count.ok() && final_count->ok());
  EXPECT_EQ(final_count->rows[0][0].AsInt(), 7);
}

TEST_F(ReplicationTest, ReplicaCacheInvalidatedOnApply) {
  PrimaryNode primary;
  ASSERT_NO_FATAL_FAILURE(StartPrimary(&primary, /*enzymes=*/12));
  ReplicaNode replica;
  replica.cache = std::make_shared<srv::ResultCache>(64);
  ASSERT_NO_FATAL_FAILURE(StartReplica(&replica, primary.shipper->port()));
  ASSERT_NO_FATAL_FAILURE(ServeReplica(&replica));
  auto client = Connect(replica.server->port());

  auto first = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(first.ok() && first->ok()) << first.status().ToString();
  EXPECT_EQ(first->rows.size(), 12u);
  EXPECT_FALSE(first->cached());
  auto second = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(second.ok() && second->ok());
  EXPECT_TRUE(second->cached());

  // New documents land on the primary; the applied records must evict the
  // replica's cached results before the next read.
  hounds::EnzymeXmlTransformer enzyme;
  ASSERT_TRUE(primary.warehouse
                  ->SyncSource(kEnzymes, enzyme,
                               datagen::ToEnzymeFlatFile(MakeCorpus(20)))
                  .ok());
  ASSERT_TRUE(
      replica.applier->WaitForLsn(primary.db->durable_lsn(), 10000));

  auto third = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(third.ok() && third->ok()) << third.status().ToString();
  EXPECT_FALSE(third->cached());
  EXPECT_EQ(third->rows.size(), 20u);
}

TEST_F(ReplicationTest, StaleReplicaTurnsHealthzUnready) {
  PrimaryNode primary;
  ReplicationServerOptions sopts;
  sopts.heartbeat_ms = 50;
  primary.db = rel::Database::OpenInMemory();
  {
    auto warehouse = hounds::Warehouse::Open(primary.db.get());
    ASSERT_TRUE(warehouse.ok());
    primary.warehouse = std::move(warehouse).value();
  }
  ASSERT_NO_FATAL_FAILURE(StartShipper(&primary, sopts));

  ReplicaNode replica;
  ReplicaApplierOptions ropts;
  ropts.stale_after_ms = 400;
  ASSERT_NO_FATAL_FAILURE(
      StartReplica(&replica, primary.shipper->port(), ropts));
  ASSERT_NO_FATAL_FAILURE(ServeReplica(&replica, /*admin_port=*/0));
  const uint16_t admin = replica.server->admin_port();
  ASSERT_NE(admin, 0);

  ASSERT_TRUE(PollUntil([&] { return replica.applier->ready(); }, 5000));
  std::string healthy = HttpGet(admin, "/healthz");
  EXPECT_NE(healthy.find("200"), std::string::npos) << healthy;
  EXPECT_NE(healthy.find("\"replica_ready\":true"), std::string::npos)
      << healthy;

  // Primary disappears: heartbeats stop, the freshness window expires,
  // and the replica reports itself unready (load balancers drain it).
  primary.shipper->Shutdown();
  ASSERT_TRUE(PollUntil([&] { return !replica.applier->ready(); }, 5000));
  std::string stale = HttpGet(admin, "/healthz");
  EXPECT_NE(stale.find("503"), std::string::npos) << stale;
  EXPECT_NE(stale.find("replica_stale"), std::string::npos) << stale;

  // /statusz carries the applier's replication section.
  std::string statusz = HttpGet(admin, "/statusz");
  EXPECT_NE(statusz.find("\"replication\""), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("\"role\":\"replica\""), std::string::npos)
      << statusz;
}

TEST_F(ReplicationTest, ConcurrentWritesStreamToReplicaUnderReads) {
  constexpr int kRows = 200;
  constexpr int kReaders = 3;

  PrimaryNode primary;
  ASSERT_NO_FATAL_FAILURE(StartPrimary(&primary));
  ASSERT_NO_FATAL_FAILURE(CreateKv(primary.db.get()));
  ReplicaNode replica;
  ASSERT_NO_FATAL_FAILURE(StartReplica(&replica, primary.shipper->port()));
  ASSERT_NO_FATAL_FAILURE(ServeReplica(&replica));

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int i = 0; i < kRows; ++i) {
      {
        std::unique_lock<std::shared_mutex> lock(primary.db->latch());
        if (!primary.db->Insert("kv", {rel::Value::Int(i)}).ok()) {
          failures.fetch_add(1);
          break;
        }
      }
      if (i % 16 == 0) std::this_thread::yield();
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      auto client = cli::Client::Connect("127.0.0.1",
                                         replica.server->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      int64_t last = -1;
      while (!done.load()) {
        auto response = client->Sql("SELECT COUNT(*) FROM kv");
        if (!response.ok() || !response->ok()) {
          failures.fetch_add(1);
          return;
        }
        int64_t count = response->rows[0][0].AsInt();
        // A single in-order applier means counts never go backwards.
        if (count < last) {
          failures.fetch_add(1);
          return;
        }
        last = count;
      }
    });
  }
  writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  const uint64_t target = primary.db->durable_lsn();
  ASSERT_TRUE(replica.applier->WaitForLsn(target, 15000));
  EXPECT_EQ(KvRows(replica.db.get()), static_cast<size_t>(kRows));
  EXPECT_EQ(replica.db->applied_lsn(), target);
}

}  // namespace
}  // namespace xomatiq::repl
