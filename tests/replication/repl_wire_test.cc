// XQRP wire-format tests: hello and message roundtrips, the per-payload
// CRC catching in-flight damage, and rejection of malformed frames.

#include "replication/repl_wire.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace xomatiq::repl {
namespace {

using common::StatusCode;

TEST(ReplWireTest, HelloRoundtrip) {
  ReplHello hello;
  hello.start_lsn = 12345;
  auto decoded = DecodeReplHello(EncodeReplHello(hello));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->major, kReplMajor);
  EXPECT_EQ(decoded->minor, kReplMinor);
  EXPECT_EQ(decoded->start_lsn, 12345u);
}

TEST(ReplWireTest, HelloRejectsBadMagic) {
  std::string body = EncodeReplHello(ReplHello{});
  body[0] = 'Y';
  auto decoded = DecodeReplHello(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReplWireTest, HelloRejectsTrailingBytes) {
  std::string body = EncodeReplHello(ReplHello{}) + "x";
  EXPECT_EQ(DecodeReplHello(body).status().code(), StatusCode::kCorruption);
}

TEST(ReplWireTest, MessageRoundtripAllTypes) {
  for (ReplMsgType type :
       {ReplMsgType::kSnapshot, ReplMsgType::kRecord, ReplMsgType::kHeartbeat,
        ReplMsgType::kError}) {
    ReplMsg msg;
    msg.type = type;
    msg.lsn = 777;
    msg.send_unix_ms = 1700000000123;
    msg.payload = type == ReplMsgType::kHeartbeat ? "" : "some payload";
    auto decoded = DecodeReplMsg(EncodeReplMsg(msg));
    ASSERT_TRUE(decoded.ok())
        << ReplMsgTypeName(type) << ": " << decoded.status().ToString();
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->lsn, 777u);
    EXPECT_EQ(decoded->send_unix_ms, 1700000000123u);
    EXPECT_EQ(decoded->payload, msg.payload);
  }
}

TEST(ReplWireTest, CrcCatchesPayloadDamage) {
  ReplMsg msg;
  msg.type = ReplMsgType::kRecord;
  msg.lsn = 9;
  msg.payload = "the record bytes";
  std::string body = EncodeReplMsg(msg);
  body.back() = static_cast<char>(body.back() ^ 0xff);  // damage the payload
  auto decoded = DecodeReplMsg(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ReplWireTest, CrcCatchesHeaderDamage) {
  ReplMsg msg;
  msg.type = ReplMsgType::kRecord;
  msg.lsn = 9;
  msg.payload = "payload";
  std::string body = EncodeReplMsg(msg);
  // Flip a bit inside the stored CRC itself.
  body[1 + 8 + 8] = static_cast<char>(body[1 + 8 + 8] ^ 0x01);
  EXPECT_FALSE(DecodeReplMsg(body).ok());
}

TEST(ReplWireTest, RejectsBadType) {
  ReplMsg msg;
  msg.type = ReplMsgType::kRecord;
  msg.payload = "p";
  std::string body = EncodeReplMsg(msg);
  body[0] = 99;
  EXPECT_EQ(DecodeReplMsg(body).status().code(), StatusCode::kCorruption);
  body[0] = 0;
  EXPECT_EQ(DecodeReplMsg(body).status().code(), StatusCode::kCorruption);
}

TEST(ReplWireTest, RejectsTruncatedAndTrailing) {
  ReplMsg msg;
  msg.type = ReplMsgType::kRecord;
  msg.payload = "p";
  std::string body = EncodeReplMsg(msg);
  EXPECT_FALSE(DecodeReplMsg(body.substr(0, body.size() - 1)).ok());
  EXPECT_FALSE(DecodeReplMsg(body + "z").ok());
}

}  // namespace
}  // namespace xomatiq::repl
