// Randomized differential testing: XomatiQ (shred + XQ2SQL + relational
// evaluation) must agree with the native DOM evaluator on generated
// sub-tree keyword queries and value-equality queries over the same
// corpus. Random paths come from the documents themselves; random
// keywords are drawn from real text values (plus misses), so both hit and
// empty results are exercised.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baseline/native_xml.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "sql/expr_eval.h"
#include "xomatiq/xomatiq.h"

namespace xomatiq {
namespace {

using rel::Database;

struct CorpusFixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<hounds::Warehouse> warehouse;
  std::unique_ptr<xq::XomatiQ> xomatiq;
  baseline::NativeXmlStore native;
  // Leaf element names with their observed text values (per collection).
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      leaf_values;
};

CorpusFixture* BuildFixture() {
  static CorpusFixture* fixture = [] {
    auto* f = new CorpusFixture();
    datagen::CorpusOptions options;
    options.seed = 99;
    options.num_enzymes = 30;
    options.num_proteins = 40;
    options.num_nucleotides = 50;
    datagen::Corpus corpus = datagen::GenerateCorpus(options);
    f->db = Database::OpenInMemory();
    {
      auto wh = hounds::Warehouse::Open(f->db.get());
      EXPECT_TRUE(wh.ok());
      f->warehouse = std::move(*wh);
    }
    hounds::EnzymeXmlTransformer enzyme_tf;
    hounds::EmblXmlTransformer embl_tf;
    hounds::SwissProtXmlTransformer sprot_tf;
    struct Source {
      const char* collection;
      const hounds::XmlTransformer* transformer;
      std::string raw;
    };
    const Source sources[] = {
        {"hlx_enzyme.DEFAULT", &enzyme_tf, datagen::ToEnzymeFlatFile(corpus)},
        {"hlx_embl.inv", &embl_tf, datagen::ToEmblFlatFile(corpus)},
        {"hlx_sprot.all", &sprot_tf, datagen::ToSwissProtFlatFile(corpus)},
    };
    for (const Source& s : sources) {
      auto stats = f->warehouse->LoadSource(s.collection, *s.transformer,
                                            s.raw);
      EXPECT_TRUE(stats.ok()) << stats.status().ToString();
      auto docs = s.transformer->Transform(s.raw);
      EXPECT_TRUE(docs.ok());
      for (auto& d : *docs) {
        // Collect leaf (element name, text value) pairs for query seeds;
        // skip sequences (not keyword-searchable by design).
        d.document.root()->Visit([&](const xml::XmlNode& node) {
          if (node.kind() == xml::NodeKind::kElement &&
              node.name() != "sequence" && !node.Text().empty() &&
              node.ChildElements().empty()) {
            f->leaf_values[s.collection].emplace_back(node.name(),
                                                      node.Text());
          }
          return true;
        });
        f->native.Load(s.collection, std::move(d.document));
      }
    }
    f->xomatiq = std::make_unique<xq::XomatiQ>(f->warehouse.get());
    return f;
  }();
  return fixture;
}

std::multiset<std::string> Sorted(const std::vector<rel::Tuple>& rows) {
  std::multiset<std::string> out;
  for (const auto& row : rows) out.insert(rel::TupleToString(row));
  return out;
}

std::multiset<std::string> Sorted(
    const std::vector<std::vector<std::string>>& rows) {
  std::multiset<std::string> out;
  for (const auto& row : rows) out.insert(common::Join(row, ", "));
  return out;
}

struct RootInfo {
  const char* collection;
  const char* root;
  const char* id_path;
};
constexpr RootInfo kRoots[] = {
    {"hlx_enzyme.DEFAULT", "hlx_enzyme", "enzyme_id"},
    {"hlx_embl.inv", "hlx_n_sequence", "entry_name"},
    {"hlx_sprot.all", "hlx_n_sequence", "entry_name"},
};

class RandomQueryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomQueryTest, SubtreeKeywordQueriesAgreeWithNativeDom) {
  CorpusFixture* f = BuildFixture();
  common::Rng rng(GetParam());
  for (int round = 0; round < 25; ++round) {
    const RootInfo& info = kRoots[rng.Uniform(3)];
    const auto& leaves = f->leaf_values[info.collection];
    ASSERT_FALSE(leaves.empty());
    const auto& [element, text] = leaves[rng.Uniform(leaves.size())];
    // Pick a token from a real value, or a guaranteed miss.
    std::vector<std::string> tokens = common::TokenizeKeywords(text);
    std::string keyword = tokens.empty() || rng.Bernoulli(0.2)
                              ? "zz_definitely_absent"
                              : tokens[rng.Uniform(tokens.size())];
    xq::SubtreeQueryBuilder builder(info.collection, info.root);
    builder.AddCondition(element, keyword).AddReturn(info.id_path);
    std::string query = builder.Build();

    auto xq_result = f->xomatiq->Execute(query);
    ASSERT_TRUE(xq_result.ok()) << query << "\n"
                                << xq_result.status().ToString();
    auto native = f->native.SubtreeQuery(info.collection, element, keyword,
                                         {std::string("//") + info.id_path});
    ASSERT_TRUE(native.ok()) << query;
    EXPECT_EQ(Sorted(xq_result->rows), Sorted(*native))
        << query << "\nkeyword=" << keyword;
  }
}

TEST_P(RandomQueryTest, ValueEqualityQueriesAgreeWithNativeDom) {
  CorpusFixture* f = BuildFixture();
  common::Rng rng(GetParam() + 5000);
  for (int round = 0; round < 25; ++round) {
    const RootInfo& info = kRoots[rng.Uniform(3)];
    const auto& leaves = f->leaf_values[info.collection];
    const auto& [element, text] = leaves[rng.Uniform(leaves.size())];
    std::string literal =
        rng.Bernoulli(0.2) ? "no such value anywhere" : text;
    // Escape is unnecessary: generator values contain no quotes.
    std::string query = std::string("FOR $a IN document(\"") +
                        info.collection + "\")/" + info.root +
                        " WHERE $a//" + element + " = \"" + literal +
                        "\" RETURN $a//" + info.id_path;
    auto xq_result = f->xomatiq->Execute(query);
    ASSERT_TRUE(xq_result.ok()) << query << "\n"
                                << xq_result.status().ToString();
    // Native evaluation: docs with any matching element value.
    std::vector<std::vector<std::string>> native_rows;
    auto cond_steps = baseline::ParseNativePath(std::string("//") + element);
    auto ret_steps =
        baseline::ParseNativePath(std::string("//") + info.id_path);
    ASSERT_TRUE(cond_steps.ok());
    ASSERT_TRUE(ret_steps.ok());
    for (const xml::XmlDocument& doc : f->native.Docs(info.collection)) {
      bool match = false;
      for (const std::string& value :
           baseline::EvalPathValues(*doc.root(), *cond_steps)) {
        if (value == literal) match = true;
      }
      if (!match) continue;
      auto ids = baseline::EvalPathValues(*doc.root(), *ret_steps);
      native_rows.push_back({ids.empty() ? "" : ids.front()});
    }
    EXPECT_EQ(Sorted(xq_result->rows), Sorted(native_rows)) << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace xomatiq
