#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "baseline/native_xml.h"
#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "xomatiq/xomatiq.h"

namespace xomatiq {
namespace {

using rel::Database;

// Full-pipeline tests: flat files -> Data Hounds -> warehouse -> XomatiQ,
// with differential checks against the native-DOM baseline and durability
// across restarts.
class EndToEndTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void LoadAll(hounds::Warehouse* warehouse, const datagen::Corpus& corpus) {
    hounds::EnzymeXmlTransformer enzyme_tf;
    hounds::EmblXmlTransformer embl_tf;
    hounds::SwissProtXmlTransformer sprot_tf;
    ASSERT_TRUE(warehouse
                    ->LoadSource("hlx_enzyme.DEFAULT", enzyme_tf,
                                 datagen::ToEnzymeFlatFile(corpus))
                    .ok());
    ASSERT_TRUE(warehouse
                    ->LoadSource("hlx_embl.inv", embl_tf,
                                 datagen::ToEmblFlatFile(corpus))
                    .ok());
    ASSERT_TRUE(warehouse
                    ->LoadSource("hlx_sprot.all", sprot_tf,
                                 datagen::ToSwissProtFlatFile(corpus))
                    .ok());
  }

  void LoadNative(baseline::NativeXmlStore* store,
                  const datagen::Corpus& corpus) {
    hounds::EnzymeXmlTransformer enzyme_tf;
    hounds::EmblXmlTransformer embl_tf;
    auto enzyme_docs = enzyme_tf.Transform(datagen::ToEnzymeFlatFile(corpus));
    ASSERT_TRUE(enzyme_docs.ok());
    for (auto& d : *enzyme_docs) {
      store->Load("hlx_enzyme.DEFAULT", std::move(d.document));
    }
    auto embl_docs = embl_tf.Transform(datagen::ToEmblFlatFile(corpus));
    ASSERT_TRUE(embl_docs.ok());
    for (auto& d : *embl_docs) {
      store->Load("hlx_embl.inv", std::move(d.document));
    }
  }

  datagen::Corpus MakeCorpus() {
    datagen::CorpusOptions options;
    options.seed = GetParam();
    options.num_enzymes = 40;
    options.num_proteins = 50;
    options.num_nucleotides = 60;
    options.keyword_fraction = 0.12;
    options.ketone_fraction = 0.2;
    options.ec_link_fraction = 0.5;
    return datagen::GenerateCorpus(options);
  }
};

TEST_P(EndToEndTest, XomatiqAgreesWithNativeDomBaseline) {
  datagen::Corpus corpus = MakeCorpus();
  auto db = Database::OpenInMemory();
  auto warehouse = hounds::Warehouse::Open(db.get());
  ASSERT_TRUE(warehouse.ok());
  LoadAll(warehouse->get(), corpus);
  xq::XomatiQ xomatiq(warehouse->get());

  baseline::NativeXmlStore native;
  LoadNative(&native, corpus);

  // Fig 9 shape: sub-tree keyword query.
  auto xq_result = xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id)");
  ASSERT_TRUE(xq_result.ok()) << xq_result.status().ToString();
  auto native_rows = native.SubtreeQuery(
      "hlx_enzyme.DEFAULT", "//catalytic_activity", "ketone",
      {"//enzyme_id"});
  ASSERT_TRUE(native_rows.ok());
  std::multiset<std::string> xq_ids, native_ids;
  for (const auto& row : xq_result->rows) xq_ids.insert(row[0].AsText());
  for (const auto& row : *native_rows) native_ids.insert(row[0]);
  EXPECT_EQ(xq_ids, native_ids);

  // Fig 11 shape: EC join.
  auto xq_join = xomatiq.Execute(R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $a//embl_accession_number)");
  ASSERT_TRUE(xq_join.ok());
  auto native_join = native.JoinQuery(
      "hlx_embl.inv", "//qualifier", "hlx_enzyme.DEFAULT", "//enzyme_id",
      {"//embl_accession_number"});
  ASSERT_TRUE(native_join.ok());
  // The native join matches any qualifier value (it cannot filter on the
  // qualifier_type attribute inline), but EC qualifiers are the only ones
  // whose values collide with enzyme ids, so the result sets agree.
  std::multiset<std::string> xq_accs, native_accs;
  for (const auto& row : xq_join->rows) xq_accs.insert(row[0].AsText());
  for (const auto& row : *native_join) native_accs.insert(row[0]);
  EXPECT_EQ(xq_accs, native_accs);

  // Fig 8 shape: per-collection keyword legs.
  auto xq_kw = xomatiq.Execute(R"(
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE contains($a, "cdc6", any)
RETURN $a//entry_name)");
  ASSERT_TRUE(xq_kw.ok());
  EXPECT_EQ(xq_kw->rows.size(),
            native.KeywordSearch("hlx_embl.inv", "cdc6").size());
}

TEST_P(EndToEndTest, DurableWarehouseAnswersAfterRestart) {
  datagen::Corpus corpus = MakeCorpus();
  std::string dir = testing::TempDir() + "/xq_e2e_" +
                    std::to_string(GetParam());
  std::filesystem::remove_all(dir);
  size_t expected_rows = 0;
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok());
    auto warehouse = hounds::Warehouse::Open(db->get());
    ASSERT_TRUE(warehouse.ok());
    LoadAll(warehouse->get(), corpus);
    xq::XomatiQ xomatiq(warehouse->get());
    auto r = xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id)");
    ASSERT_TRUE(r.ok());
    expected_rows = r->rows.size();
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok());
    auto warehouse = hounds::Warehouse::Open(db->get());
    ASSERT_TRUE(warehouse.ok());
    xq::XomatiQ xomatiq(warehouse->get());
    auto r = xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id)");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows.size(), expected_rows);
    EXPECT_EQ(r->rows.size(), corpus.enzymes_with_ketone);
  }
  std::filesystem::remove_all(dir);
}

TEST_P(EndToEndTest, SyncThenQueryReflectsUpdates) {
  datagen::Corpus corpus = MakeCorpus();
  auto db = Database::OpenInMemory();
  auto warehouse = hounds::Warehouse::Open(db.get());
  ASSERT_TRUE(warehouse.ok());
  LoadAll(warehouse->get(), corpus);
  xq::XomatiQ xomatiq(warehouse->get());

  // Plant "ketone" into an enzyme that did not have it and re-sync.
  datagen::Corpus updated = corpus;
  flatfile::EnzymeEntry* victim = nullptr;
  for (auto& e : updated.enzymes) {
    bool has = false;
    for (const auto& ca : e.catalytic_activities) {
      if (ca.find("ketone") != std::string::npos) has = true;
    }
    if (!has) {
      victim = &e;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  victim->catalytic_activities.push_back("something = ketone body");
  hounds::EnzymeXmlTransformer transformer;
  auto stats = (*warehouse)
                   ->SyncSource("hlx_enzyme.DEFAULT", transformer,
                                datagen::ToEnzymeFlatFile(updated));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->updated, 1u);

  auto r = xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), corpus.enzymes_with_ketone + 1);
  bool found = false;
  for (const auto& row : r->rows) {
    if (row[0].AsText() == victim->id) found = true;
  }
  EXPECT_TRUE(found);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndTest, ::testing::Values(42, 77, 123));

}  // namespace
}  // namespace xomatiq
