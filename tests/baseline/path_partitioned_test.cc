#include "baseline/path_partitioned.h"

#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "sql/engine.h"

namespace xomatiq::baseline {
namespace {

using rel::Database;

class PathPartitionedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::OpenInMemory();
    store_ = std::make_unique<PathPartitionedStore>(db_.get());
    ASSERT_TRUE(store_->Init().ok());
    datagen::CorpusOptions options;
    options.seed = 7;
    options.num_enzymes = 25;
    options.num_proteins = 10;
    options.num_nucleotides = 30;
    options.ketone_fraction = 0.2;
    options.ec_link_fraction = 0.5;
    corpus_ = datagen::GenerateCorpus(options);
    hounds::EnzymeXmlTransformer enzyme_tf;
    hounds::EmblXmlTransformer embl_tf;
    auto enzyme_docs =
        enzyme_tf.Transform(datagen::ToEnzymeFlatFile(corpus_));
    ASSERT_TRUE(enzyme_docs.ok());
    auto stats =
        store_->LoadDocuments("hlx_enzyme.DEFAULT", *enzyme_docs);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->documents, 25u);
    EXPECT_GT(stats->tables, 3u);
    auto embl_docs = embl_tf.Transform(datagen::ToEmblFlatFile(corpus_));
    ASSERT_TRUE(embl_docs.ok());
    ASSERT_TRUE(store_->LoadDocuments("hlx_embl.inv", *embl_docs).ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<PathPartitionedStore> store_;
  datagen::Corpus corpus_;
};

TEST_F(PathPartitionedTest, PathSuffixResolution) {
  auto id_table =
      store_->TableForPathSuffix("hlx_enzyme.DEFAULT", "enzyme_id");
  ASSERT_TRUE(id_table.ok()) << id_table.status().ToString();
  EXPECT_TRUE(db_->HasTable(*id_table));
  // Attribute paths resolve too.
  auto attr = store_->TableForPathSuffix("hlx_embl.inv",
                                         "sequence/@length");
  EXPECT_TRUE(attr.ok()) << attr.status().ToString();
  // Unknown and cross-collection suffixes fail.
  EXPECT_FALSE(
      store_->TableForPathSuffix("hlx_enzyme.DEFAULT", "ghost").ok());
  EXPECT_FALSE(
      store_->TableForPathSuffix("hlx_embl.inv", "enzyme_id").ok());
}

TEST_F(PathPartitionedTest, Fig9ShapeMatchesGroundTruth) {
  sql::SqlEngine engine(db_.get());
  std::string activity = *store_->TableForPathSuffix("hlx_enzyme.DEFAULT",
                                                     "catalytic_activity");
  std::string id = *store_->TableForPathSuffix("hlx_enzyme.DEFAULT",
                                               "enzyme_id");
  auto r = engine.Execute(
      "SELECT DISTINCT i.value FROM " + activity + " c, " + id +
      " i WHERE CONTAINS(c.value, 'ketone') AND i.doc_id = c.doc_id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), corpus_.enzymes_with_ketone);
}

TEST_F(PathPartitionedTest, Fig11ShapeMatchesGroundTruth) {
  sql::SqlEngine engine(db_.get());
  std::string qualifier =
      *store_->TableForPathSuffix("hlx_embl.inv", "qualifier");
  std::string ec =
      *store_->TableForPathSuffix("hlx_enzyme.DEFAULT", "enzyme_id");
  std::string accession = *store_->TableForPathSuffix(
      "hlx_embl.inv", "embl_accession_number");
  // Caveat of the partitioned layout: the qualifier_type attribute lives
  // in its own table; the join needs it only when qualifier values could
  // collide with EC numbers, which the generator avoids.
  auto r = engine.Execute("SELECT DISTINCT a.value FROM " + qualifier +
                          " q, " + ec + " e, " + accession +
                          " a WHERE q.value = e.value AND a.doc_id = "
                          "q.doc_id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), corpus_.nucleotides_with_ec_link);
}

TEST_F(PathPartitionedTest, InitReloadsCatalog) {
  size_t before = store_->num_tables();
  PathPartitionedStore fresh(db_.get());
  ASSERT_TRUE(fresh.Init().ok());
  EXPECT_EQ(fresh.num_tables(), before);
  EXPECT_TRUE(
      fresh.TableForPathSuffix("hlx_enzyme.DEFAULT", "enzyme_id").ok());
}

}  // namespace
}  // namespace xomatiq::baseline
