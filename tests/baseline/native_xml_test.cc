#include "baseline/native_xml.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xomatiq::baseline {
namespace {

xml::XmlDocument Doc(const std::string& text) {
  auto doc = xml::ParseXml(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(*doc);
}

TEST(ParseNativePathTest, Forms) {
  auto steps = ParseNativePath("/a/b//c/@d");
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 4u);
  EXPECT_FALSE((*steps)[0].descendant);
  EXPECT_TRUE((*steps)[2].descendant);
  EXPECT_TRUE((*steps)[3].is_attribute);
  // Bare name defaults to a descendant step.
  auto bare = ParseNativePath("enzyme_id");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE((*bare)[0].descendant);
  EXPECT_FALSE(ParseNativePath("/a//").ok());
}

TEST(EvalPathValuesTest, ChildAndDescendant) {
  xml::XmlDocument doc = Doc(
      "<r><a><b>one</b></a><c><a><b>two</b></a></c><b>top</b></r>");
  auto child = ParseNativePath("/a/b");
  EXPECT_EQ(EvalPathValues(*doc.root(), *child),
            (std::vector<std::string>{"one"}));
  auto descendant = ParseNativePath("//b");
  EXPECT_EQ(EvalPathValues(*doc.root(), *descendant),
            (std::vector<std::string>{"one", "two", "top"}));
}

TEST(EvalPathValuesTest, Attributes) {
  xml::XmlDocument doc =
      Doc("<r><q t=\"EC\">1.1.1.1</q><q t=\"other\">x</q></r>");
  auto attrs = ParseNativePath("//q/@t");
  EXPECT_EQ(EvalPathValues(*doc.root(), *attrs),
            (std::vector<std::string>{"EC", "other"}));
}

TEST(SubtreeContainsTest, TextAndAttributes) {
  xml::XmlDocument doc =
      Doc("<r><a note=\"special marker\">plain</a><b>cdc6 protein</b></r>");
  EXPECT_TRUE(SubtreeContains(*doc.root(), "cdc6"));
  EXPECT_TRUE(SubtreeContains(*doc.root(), "marker"));  // attribute value
  EXPECT_TRUE(SubtreeContains(*doc.root(), "cdc6 protein"));
  EXPECT_FALSE(SubtreeContains(*doc.root(), "absent"));
  EXPECT_FALSE(SubtreeContains(*doc.root(), "cdc6 absent"));
}

TEST(NativeXmlStoreTest, KeywordSearch) {
  NativeXmlStore store;
  store.Load("c", Doc("<r><x>has cdc6 here</x></r>"));
  store.Load("c", Doc("<r><x>nothing</x></r>"));
  store.Load("d", Doc("<r><x>cdc6 too but other collection</x></r>"));
  EXPECT_EQ(store.KeywordSearch("c", "cdc6").size(), 1u);
  EXPECT_EQ(store.KeywordSearch("d", "cdc6").size(), 1u);
  EXPECT_TRUE(store.KeywordSearch("ghost", "cdc6").empty());
  EXPECT_EQ(store.TotalDocs(), 3u);
}

TEST(NativeXmlStoreTest, SubtreeQuery) {
  NativeXmlStore store;
  store.Load("c", Doc("<e><id>1</id><act>makes ketone body</act></e>"));
  store.Load("c", Doc("<e><id>2</id><act>plain</act></e>"));
  auto rows = store.SubtreeQuery("c", "//act", "ketone", {"//id", "//act"});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "1");
}

TEST(NativeXmlStoreTest, JoinQuery) {
  NativeXmlStore store;
  store.Load("left", Doc("<l><id>L1</id><q t=\"EC\">1.1.1.1</q></l>"));
  store.Load("left", Doc("<l><id>L2</id><q t=\"EC\">9.9.9.9</q></l>"));
  store.Load("right", Doc("<r><ec>1.1.1.1</ec></r>"));
  auto rows =
      store.JoinQuery("left", "//q", "right", "//ec", {"//id"});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "L1");
}

}  // namespace
}  // namespace xomatiq::baseline
