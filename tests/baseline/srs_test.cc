#include "baseline/srs.h"

#include <gtest/gtest.h>

namespace xomatiq::baseline {
namespace {

class SrsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(srs_.CreateLibrary("EMBL", {"id", "des", "kw"}).ok());
    ASSERT_TRUE(srs_.CreateLibrary("SWISSPROT", {"id", "des"}).ok());
    SrsEngine::Entry e1;
    e1.id = "AB000001";
    e1.fields["id"] = {"AB000001"};
    e1.fields["des"] = {"cell division cycle protein cdc6"};
    e1.fields["kw"] = {"cdc6", "Cell cycle"};
    e1.fields["org"] = {"Homo sapiens"};  // not indexed
    ASSERT_TRUE(srs_.AddEntry("EMBL", e1).ok());
    SrsEngine::Entry e2;
    e2.id = "AB000002";
    e2.fields["id"] = {"AB000002"};
    e2.fields["des"] = {"alcohol dehydrogenase gene"};
    ASSERT_TRUE(srs_.AddEntry("EMBL", e2).ok());
    SrsEngine::Entry p1;
    p1.id = "CDC6_HUMAN";
    p1.fields["id"] = {"CDC6_HUMAN"};
    p1.fields["des"] = {"cdc6 related protein"};
    ASSERT_TRUE(srs_.AddEntry("SWISSPROT", p1).ok());
    ASSERT_TRUE(
        srs_.AddLink("EMBL", "AB000001", "SWISSPROT", "CDC6_HUMAN").ok());
  }

  SrsEngine srs_;
};

TEST_F(SrsTest, IndexedFieldLookup) {
  auto hits = srs_.Lookup("EMBL", "kw", "cdc6");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, std::vector<std::string>{"AB000001"});
  auto misses = srs_.Lookup("EMBL", "kw", "kinase");
  ASSERT_TRUE(misses.ok());
  EXPECT_TRUE(misses->empty());
}

TEST_F(SrsTest, TokenizedAndCaseInsensitive) {
  auto hits = srs_.Lookup("EMBL", "des", "DIVISION");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST_F(SrsTest, UnindexedFieldIsUnsupported) {
  // The SRS expressiveness restriction (§4): searches only on
  // pre-defined indexed attributes.
  auto r = srs_.Lookup("EMBL", "org", "sapiens");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kUnsupported);
}

TEST_F(SrsTest, LookupAnyFieldDeduplicates) {
  // "cdc6" appears in both des and kw of AB000001.
  auto hits = srs_.LookupAnyField("EMBL", "cdc6");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, std::vector<std::string>{"AB000001"});
}

TEST_F(SrsTest, FollowPredefinedLinks) {
  auto linked = srs_.FollowLinks("EMBL", "AB000001", "SWISSPROT");
  ASSERT_TRUE(linked.ok());
  EXPECT_EQ(*linked, std::vector<std::string>{"CDC6_HUMAN"});
  auto none = srs_.FollowLinks("EMBL", "AB000002", "SWISSPROT");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(SrsTest, ErrorsOnUnknownEntities) {
  EXPECT_FALSE(srs_.Lookup("GHOST", "id", "x").ok());
  EXPECT_FALSE(srs_.FollowLinks("EMBL", "NOPE", "SWISSPROT").ok());
  EXPECT_FALSE(srs_.AddLink("EMBL", "NOPE", "SWISSPROT", "X").ok());
  EXPECT_FALSE(srs_.GetEntry("EMBL", "NOPE").ok());
  EXPECT_FALSE(srs_.CreateLibrary("EMBL", {}).ok());  // duplicate
  SrsEngine::Entry dup;
  dup.id = "AB000001";
  EXPECT_FALSE(srs_.AddEntry("EMBL", dup).ok());
}

TEST_F(SrsTest, GetEntryReturnsFields) {
  auto entry = srs_.GetEntry("EMBL", "AB000001");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->fields.at("org").front(), "Homo sapiens");
  EXPECT_EQ(srs_.NumEntries("EMBL"), 2u);
  EXPECT_EQ(srs_.NumEntries("GHOST"), 0u);
}

}  // namespace
}  // namespace xomatiq::baseline
