#include "common/string_util.h"

#include <gtest/gtest.h>

namespace xomatiq::common {
namespace {

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace(" \t\r\n "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringUtilTest, StripTrailingWhitespace) {
  EXPECT_EQ(StripTrailingWhitespace("  abc  "), "  abc");
  EXPECT_EQ(StripTrailingWhitespace("abc\r\n"), "abc");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, "; "), "only");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(AsciiToLower("AbC-12"), "abc-12");
  EXPECT_TRUE(EqualsIgnoreCase("Hello", "hELLO"));
  EXPECT_FALSE(EqualsIgnoreCase("Hello", "Hello!"));
  EXPECT_TRUE(ContainsIgnoreCase("Peptidylglycine Monooxygenase", "MONO"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("enzyme_id", "enzyme"));
  EXPECT_FALSE(StartsWith("enzyme", "enzyme_id"));
  EXPECT_TRUE(EndsWith("enzyme_id", "_id"));
  EXPECT_FALSE(EndsWith("id", "_id"));
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64(" 13 "), 13);
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e3"), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5kg").has_value());
  // Non-finite values are rejected: NaN has no place in a total order.
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("NaN").has_value());
  EXPECT_FALSE(ParseDouble("inf").has_value());
  EXPECT_FALSE(ParseDouble("-inf").has_value());
  EXPECT_FALSE(ParseDouble("infinity").has_value());
}

TEST(StringUtilTest, LooksNumeric) {
  EXPECT_TRUE(LooksNumeric("368"));
  EXPECT_TRUE(LooksNumeric("3.14"));
  EXPECT_FALSE(LooksNumeric("1.14.17.3"));  // EC numbers stay textual
  EXPECT_FALSE(LooksNumeric("P10731"));
  EXPECT_FALSE(LooksNumeric("nan"));  // would corrupt index ordering
}

TEST(StringUtilTest, TokenizeKeywordsBasics) {
  EXPECT_EQ(TokenizeKeywords("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_TRUE(TokenizeKeywords("  ...  ").empty());
}

TEST(StringUtilTest, TokenizeKeywordsKeepsAccessionShapes) {
  // EC numbers and hyphenated accessions must index as single tokens.
  EXPECT_EQ(TokenizeKeywords("EC 1.14.17.3"),
            (std::vector<std::string>{"ec", "1.14.17.3"}));
  EXPECT_EQ(TokenizeKeywords("AMD-BOVIN"),
            (std::vector<std::string>{"amd-bovin"}));
  // A sentence-final period does not glue tokens.
  EXPECT_EQ(TokenizeKeywords("monooxygenase."),
            (std::vector<std::string>{"monooxygenase"}));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("P%05d", 42), "P00042");
  EXPECT_EQ(StrFormat("%s=%d", "x", 7), "x=7");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

}  // namespace
}  // namespace xomatiq::common
