#include "common/rng.h"

#include <gtest/gtest.h>

namespace xomatiq::common {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, PickCoversAllElements) {
  Rng rng(17);
  std::vector<int> items{1, 2, 3, 4};
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[static_cast<size_t>(rng.Pick(items))];
  }
  for (int v : items) {
    EXPECT_GT(counts[static_cast<size_t>(v)], 0) << v;
  }
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(19);
  int low = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    uint64_t r = rng.Zipf(1000);
    EXPECT_LT(r, 1000u);
    if (r < 10) ++low;
  }
  // Under the 1/x density the first 10 ranks get ~ log(11)/log(1001) of
  // the mass (~35%); uniform would give 1%.
  EXPECT_GT(low, kTrials / 10);
}

}  // namespace
}  // namespace xomatiq::common
