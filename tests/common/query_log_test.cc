// Query-log ring semantics (wrap-around, slow-ring survival, truncation),
// scope ownership across nesting, concurrent writers vs readers (run under
// TSan in CI), and the SQL engine's est-vs-actual annotations for both
// rule-based and cost-based plans.

#include "common/query_log.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sql/engine.h"

namespace xomatiq::common {
namespace {

QueryLogRecord MakeRecord(const std::string& text, uint64_t latency_ns) {
  QueryLogRecord rec;
  rec.text = text;
  rec.mode = "sql";
  rec.latency_ns = latency_ns;
  return rec;
}

// The global log is shared by every test in this binary; each test resets
// it and restores the default threshold on the way out.
class QueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QueryLog::Global().set_enabled(true);
    QueryLog::Global().set_slow_threshold_ns(QueryLog::kDefaultSlowThresholdNs);
    QueryLog::Global().Clear();
  }
  void TearDown() override {
    QueryLog::Global().set_enabled(true);
    QueryLog::Global().set_slow_threshold_ns(QueryLog::kDefaultSlowThresholdNs);
    QueryLog::Global().Clear();
  }
};

TEST_F(QueryLogTest, RingWrapKeepsNewestAndTotalKeepsCounting) {
  QueryLog& log = QueryLog::Global();
  const size_t n = QueryLog::kRecentCapacity + 44;
  for (size_t i = 0; i < n; ++i) {
    log.Append(MakeRecord("q" + std::to_string(i), /*latency_ns=*/1));
  }
  EXPECT_EQ(log.total(), n);
  std::vector<QueryLogRecord> recent = log.Recent();
  ASSERT_EQ(recent.size(), QueryLog::kRecentCapacity);
  // Newest first; ids are the append sequence numbers.
  EXPECT_EQ(recent.front().id, n);
  EXPECT_EQ(recent.front().text, "q" + std::to_string(n - 1));
  EXPECT_EQ(recent.back().id, n - QueryLog::kRecentCapacity + 1);
  // max caps the snapshot from the newest end.
  EXPECT_EQ(log.Recent(3).size(), 3u);
  EXPECT_EQ(log.Recent(3).front().id, n);
}

TEST_F(QueryLogTest, SlowRingSurvivesFastQueryFlood) {
  QueryLog& log = QueryLog::Global();
  log.set_slow_threshold_ns(1000);
  QueryLogRecord slow = MakeRecord("the slow one", /*latency_ns=*/5000);
  slow.explain = "SeqScan t (rows=9)";
  log.Append(std::move(slow));
  // Flood with enough fast queries to lap the recent ring twice.
  for (size_t i = 0; i < 2 * QueryLog::kRecentCapacity; ++i) {
    log.Append(MakeRecord("fast", /*latency_ns=*/1));
  }
  // The slow entry has been evicted from Recent() but not from Slow().
  for (const QueryLogRecord& rec : log.Recent()) {
    EXPECT_NE(rec.text, "the slow one");
  }
  std::vector<QueryLogRecord> slow_ring = log.Slow();
  ASSERT_EQ(slow_ring.size(), 1u);
  EXPECT_EQ(slow_ring[0].text, "the slow one");
  EXPECT_TRUE(slow_ring[0].slow);
  EXPECT_EQ(slow_ring[0].explain, "SeqScan t (rows=9)");
}

TEST_F(QueryLogTest, FastEntriesDropHeavyweightCaptures) {
  QueryLog& log = QueryLog::Global();
  log.set_slow_threshold_ns(1'000'000'000);
  QueryLogRecord fast = MakeRecord("quick", /*latency_ns=*/10);
  fast.explain = "would be wasted memory";
  fast.trace_json = "{}";
  log.Append(std::move(fast));
  std::vector<QueryLogRecord> recent = log.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_FALSE(recent[0].slow);
  EXPECT_TRUE(recent[0].explain.empty());
  EXPECT_TRUE(recent[0].trace_json.empty());
  EXPECT_TRUE(log.Slow().empty());
}

TEST_F(QueryLogTest, DisabledLogIgnoresAppendsAndScopesDoNotArm) {
  QueryLog& log = QueryLog::Global();
  log.set_enabled(false);
  log.Append(MakeRecord("dropped", 1));
  EXPECT_EQ(log.total(), 0u);
  EXPECT_TRUE(log.Recent().empty());
  {
    QueryLogScope scope("SELECT 1", "sql");
    EXPECT_FALSE(scope.armed());
    EXPECT_EQ(QueryLogScope::Current(), nullptr);
    EXPECT_EQ(scope.ElapsedNs(), 0u);
  }
  EXPECT_EQ(log.total(), 0u);
  EXPECT_FALSE(log.ShouldSampleTrace());
}

TEST_F(QueryLogTest, OutermostScopeOwnsRecordAndInnerScopesObserve) {
  QueryLog& log = QueryLog::Global();
  {
    QueryLogScope outer("SELECT * FROM t", "sql");
    ASSERT_TRUE(outer.armed());
    QueryLogRecord* rec = QueryLogScope::Current();
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->text, "SELECT * FROM t");
    EXPECT_EQ(rec->mode, "sql");
    {
      QueryLogScope inner("inner text must not win", "xquery");
      EXPECT_FALSE(inner.armed());
      // Same record all the way down the stack.
      EXPECT_EQ(QueryLogScope::Current(), rec);
    }
    // The inner scope's destruction must not append or disown the record.
    EXPECT_EQ(log.total(), 0u);
    EXPECT_EQ(QueryLogScope::Current(), rec);
    rec->plan_fp = 0xabcd1234;
    rec->est_rows = 10;
    rec->actual_rows = 7;
  }
  EXPECT_EQ(QueryLogScope::Current(), nullptr);
  std::vector<QueryLogRecord> recent = log.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].text, "SELECT * FROM t");
  EXPECT_EQ(recent[0].plan_fp, 0xabcd1234u);
  EXPECT_EQ(recent[0].est_rows, 10);
  EXPECT_EQ(recent[0].actual_rows, 7);
  EXPECT_GT(recent[0].latency_ns, 0u);
  EXPECT_GT(recent[0].wall_ms, 0);
}

TEST_F(QueryLogTest, TextTruncatedToCap) {
  QueryLog& log = QueryLog::Global();
  std::string huge(3 * QueryLog::kMaxTextBytes, 'x');
  { QueryLogScope scope(huge, "sql"); }
  std::vector<QueryLogRecord> recent = log.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].text.size(), QueryLog::kMaxTextBytes);
}

TEST_F(QueryLogTest, TraceSamplingFiresEveryNth) {
  QueryLog& log = QueryLog::Global();
  EXPECT_TRUE(log.ShouldSampleTrace());  // tick 0
  for (uint64_t i = 1; i < QueryLog::kTraceSampleEvery; ++i) {
    EXPECT_FALSE(log.ShouldSampleTrace()) << "tick " << i;
  }
  EXPECT_TRUE(log.ShouldSampleTrace());  // tick kTraceSampleEvery
}

// Many writer threads (each running full scopes, which exercises the
// thread_local ownership) against concurrent snapshot readers. Run under
// TSan in CI; the invariant here is losslessness of total() and that
// snapshots always see fully-formed records.
TEST_F(QueryLogTest, ConcurrentScopesAndReadersAreLossless) {
  QueryLog& log = QueryLog::Global();
  log.set_slow_threshold_ns(0);  // everything also lands in the slow ring
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const QueryLogRecord& rec : log.Recent()) {
        // A snapshot must never expose a half-written record.
        EXPECT_NE(rec.id, 0u);
        EXPECT_FALSE(rec.text.empty());
      }
      log.Slow(8);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        QueryLogScope scope("w" + std::to_string(t), "sql");
        QueryLogRecord* rec = QueryLogScope::Current();
        ASSERT_NE(rec, nullptr);
        rec->actual_rows = i;
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(log.total(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(log.Recent().size(), QueryLog::kRecentCapacity);
}

TEST_F(QueryLogTest, JsonRenderingEscapesAndEmitsOptionalFields) {
  QueryLogRecord rec;
  rec.id = 7;
  rec.text = "SELECT \"a\"\nFROM t";
  rec.mode = "sql";
  rec.planner = "cost";
  rec.plan_fp = 0xdeadbeef;
  rec.est_rows = 12;
  rec.actual_rows = 9;
  rec.latency_ns = 1500;
  rec.ok = false;
  rec.error = "boom";
  rec.slow = true;
  rec.explain = "SeqScan";
  rec.trace_id = 0x1234;
  rec.trace_json = "{\"traceEvents\":[]}";
  std::string out;
  AppendQueryLogRecordJson(&out, rec);
  EXPECT_NE(out.find("\"id\":7"), std::string::npos);
  EXPECT_NE(out.find("\\\"a\\\"\\nFROM t"), std::string::npos);
  EXPECT_NE(out.find("\"planner\":\"cost\""), std::string::npos);
  EXPECT_NE(out.find("\"plan_fp\":\"deadbeef\""), std::string::npos);
  EXPECT_NE(out.find("\"est_rows\":12"), std::string::npos);
  EXPECT_NE(out.find("\"actual_rows\":9"), std::string::npos);
  EXPECT_NE(out.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(out.find("\"error\":\"boom\""), std::string::npos);
  EXPECT_NE(out.find("\"explain\":\"SeqScan\""), std::string::npos);
  EXPECT_NE(out.find("\"trace_id\":\"0000000000001234\""), std::string::npos);
  // The sampled trace splices in as raw JSON, not a double-encoded string.
  EXPECT_NE(out.find("\"trace\":{\"traceEvents\":[]}"), std::string::npos);
  // Optional fields stay out when absent.
  std::string minimal;
  AppendQueryLogRecordJson(&minimal, MakeRecord("q", 1));
  EXPECT_EQ(minimal.find("\"error\""), std::string::npos);
  EXPECT_EQ(minimal.find("\"explain\""), std::string::npos);
  EXPECT_EQ(minimal.find("\"trace_id\""), std::string::npos);
}

// The engine annotates whatever record is current: plan fingerprint,
// planner pipeline, and est-vs-actual rows. Rule-based plans carry no
// estimate (est_rows = -1); cost-based plans (post-ANALYZE) do.
class EngineAnnotationTest : public QueryLogTest {
 protected:
  void SetUp() override {
    QueryLogTest::SetUp();
    db_ = rel::Database::OpenInMemory();
    engine_ = std::make_unique<sql::SqlEngine>(db_.get());
    ASSERT_TRUE(engine_->Execute("CREATE TABLE t (id INT, grp INT)").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(engine_
                      ->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                                ", " + std::to_string(i % 10) + ")")
                      .ok());
    }
    QueryLog::Global().Clear();
  }

  QueryLogRecord Newest() {
    std::vector<QueryLogRecord> recent = QueryLog::Global().Recent(1);
    EXPECT_EQ(recent.size(), 1u);
    return recent.empty() ? QueryLogRecord{} : recent[0];
  }

  std::unique_ptr<rel::Database> db_;
  std::unique_ptr<sql::SqlEngine> engine_;
};

TEST_F(EngineAnnotationTest, RuleBasedPlanLogsFingerprintAndActualRows) {
  // No ANALYZE yet: kAuto falls back to the rule-based pipeline.
  auto r = engine_->Execute("SELECT * FROM t WHERE id < 25");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 25u);
  QueryLogRecord rec = Newest();
  EXPECT_EQ(rec.mode, "sql");
  EXPECT_EQ(rec.planner, "rule");
  EXPECT_NE(rec.plan_fp, 0u);
  EXPECT_EQ(rec.est_rows, -1);
  EXPECT_EQ(rec.actual_rows, 25);
  EXPECT_TRUE(rec.ok);
}

TEST_F(EngineAnnotationTest, CostBasedPlanLogsEstimateVsActual) {
  ASSERT_TRUE(engine_->Execute("ANALYZE").ok());
  QueryLog::Global().Clear();
  auto r = engine_->Execute("SELECT * FROM t WHERE id < 25");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 25u);
  QueryLogRecord rec = Newest();
  EXPECT_EQ(rec.planner, "cost");
  EXPECT_NE(rec.plan_fp, 0u);
  EXPECT_GE(rec.est_rows, 0);
  EXPECT_EQ(rec.actual_rows, 25);
}

TEST_F(EngineAnnotationTest, FailedQueryLogsErrorStatus) {
  auto r = engine_->Execute("SELECT * FROM no_such_table");
  ASSERT_FALSE(r.ok());
  QueryLogRecord rec = Newest();
  EXPECT_FALSE(rec.ok);
  EXPECT_FALSE(rec.error.empty());
}

TEST_F(EngineAnnotationTest, SlowThresholdCapturesExplainAnalyze) {
  QueryLog::Global().set_slow_threshold_ns(0);  // every query is "slow"
  ASSERT_TRUE(engine_->Execute("SELECT * FROM t WHERE id < 5").ok());
  std::vector<QueryLogRecord> slow = QueryLog::Global().Slow();
  ASSERT_FALSE(slow.empty());
  // The capture is the EXPLAIN ANALYZE rendering: operators plus actual
  // row counts from the instrumented run.
  EXPECT_NE(slow[0].explain.find("actual rows="), std::string::npos)
      << slow[0].explain;
  EXPECT_TRUE(slow[0].slow);
}

TEST_F(EngineAnnotationTest, SlowQueriesStatementRendersTheLog) {
  QueryLog::Global().set_slow_threshold_ns(0);
  ASSERT_TRUE(engine_->Execute("SELECT * FROM t WHERE grp = 3").ok());
  auto r = engine_->Execute("SLOW QUERIES");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  EXPECT_NE(r->explain_text.find("slow quer"), std::string::npos)
      << r->explain_text;
  EXPECT_NE(r->explain_text.find("SELECT * FROM t WHERE grp = 3"),
            std::string::npos)
      << r->explain_text;
  EXPECT_NE(r->explain_text.find("planner="), std::string::npos);
}

}  // namespace
}  // namespace xomatiq::common
