#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace xomatiq::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::ParseError("d"), StatusCode::kParseError, "ParseError"},
      {Status::TypeError("e"), StatusCode::kTypeError, "TypeError"},
      {Status::ConstraintViolation("f"), StatusCode::kConstraintViolation,
       "ConstraintViolation"},
      {Status::IoError("g"), StatusCode::kIoError, "IoError"},
      {Status::Corruption("h"), StatusCode::kCorruption, "Corruption"},
      {Status::Unsupported("i"), StatusCode::kUnsupported, "Unsupported"},
      {Status::Internal("j"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeName(c.code), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  XQ_ASSIGN_OR_RETURN(int half, Half(v));
  XQ_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Result<int> err = Half(3);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(Half(4).value_or(-1), 2);
  EXPECT_EQ(Half(3).value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status CheckAll(std::initializer_list<int> values) {
  for (int v : values) {
    XQ_RETURN_IF_ERROR(FailIfNegative(v));
  }
  return Status::OK();
}

TEST(StatusTest, ReturnIfError) {
  EXPECT_TRUE(CheckAll({1, 2, 3}).ok());
  EXPECT_FALSE(CheckAll({1, -2, 3}).ok());
}

}  // namespace
}  // namespace xomatiq::common
