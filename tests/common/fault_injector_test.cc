#include "common/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace xomatiq::common {
namespace {

// The registry is process-global; every test starts and ends clean so the
// suites sharing this binary can't contaminate each other.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  FaultInjector& fi() { return FaultInjector::Global(); }
};

TEST_F(FaultInjectorTest, UnarmedPointIsOkAndUncounted) {
  EXPECT_FALSE(fi().any_armed());
  EXPECT_TRUE(fi().Check("nowhere").ok());
  EXPECT_EQ(fi().calls("nowhere"), 0u);
  EXPECT_EQ(fi().fires("nowhere"), 0u);
}

TEST_F(FaultInjectorTest, AlwaysFiresEveryCall) {
  FaultConfig config;
  config.policy = FaultPolicy::kAlways;
  fi().Arm("p", config);
  EXPECT_TRUE(fi().any_armed());
  for (int i = 0; i < 5; ++i) {
    Status s = fi().Check("p");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kIoError);
    // Default message names the point.
    EXPECT_NE(s.message().find("p"), std::string::npos);
  }
  EXPECT_EQ(fi().calls("p"), 5u);
  EXPECT_EQ(fi().fires("p"), 5u);
}

TEST_F(FaultInjectorTest, NthFiresOnceThenDisarms) {
  FaultConfig config;
  config.policy = FaultPolicy::kNth;
  config.n = 3;
  fi().Arm("p", config);
  EXPECT_TRUE(fi().Check("p").ok());
  EXPECT_TRUE(fi().Check("p").ok());
  EXPECT_FALSE(fi().Check("p").ok());  // the 3rd call
  // One-shot: the point is spent.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fi().Check("p").ok());
  EXPECT_EQ(fi().fires("p"), 1u);
}

TEST_F(FaultInjectorTest, EveryNthFiresPeriodically) {
  FaultConfig config;
  config.policy = FaultPolicy::kEveryNth;
  config.n = 3;
  fi().Arm("p", config);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!fi().Check("p").ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(fi().fires("p"), 3u);
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  auto schedule = [&](uint64_t seed) {
    fi().Reset();
    FaultConfig config;
    config.policy = FaultPolicy::kProbability;
    config.probability = 0.3;
    config.seed = seed;
    fi().Arm("p", config);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!fi().Check("p").ok());
    return fired;
  };
  auto a = schedule(7);
  auto b = schedule(7);
  EXPECT_EQ(a, b) << "same seed must replay the same fault schedule";
  auto c = schedule(8);
  EXPECT_NE(a, c) << "different seeds should differ (64 draws at p=0.3)";
  // Sanity: roughly p of the calls fired, not none and not all.
  size_t fires = static_cast<size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 4u);
  EXPECT_LT(fires, 40u);
}

TEST_F(FaultInjectorTest, ConfiguredStatusCodeAndMessage) {
  FaultConfig config;
  config.code = StatusCode::kTimeout;
  config.message = "synthetic stall";
  fi().Arm("p", config);
  Status s = fi().Check("p");
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(s.message(), "synthetic stall");
}

TEST_F(FaultInjectorTest, DisarmStopsFiringAndResetClearsCounters) {
  fi().Arm("p", FaultConfig{});
  EXPECT_FALSE(fi().Check("p").ok());
  fi().Disarm("p");
  EXPECT_TRUE(fi().Check("p").ok());
  // Counters survive Disarm (observability) but not Reset.
  EXPECT_EQ(fi().fires("p"), 1u);
  fi().Reset();
  EXPECT_EQ(fi().calls("p"), 0u);
  EXPECT_EQ(fi().fires("p"), 0u);
  EXPECT_FALSE(fi().any_armed());
}

TEST_F(FaultInjectorTest, ConfigureParsesEverySpecForm) {
  ASSERT_TRUE(fi().Configure("a=always;b=nth:2;c=every:4;d=prob:0.5:9").ok());
  EXPECT_FALSE(fi().Check("a").ok());
  EXPECT_TRUE(fi().Check("b").ok());
  EXPECT_FALSE(fi().Check("b").ok());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(fi().Check("c").ok());
  EXPECT_FALSE(fi().Check("c").ok());
  // d is probabilistic; just confirm it's armed and counted.
  fi().ShouldFail("d");
  EXPECT_EQ(fi().calls("d"), 1u);
}

TEST_F(FaultInjectorTest, ConfigureParsesCodeSuffix) {
  ASSERT_TRUE(
      fi().Configure("a=always@timeout;b=always@overloaded;c=nth:1@corruption")
          .ok());
  EXPECT_EQ(fi().Check("a").code(), StatusCode::kTimeout);
  EXPECT_EQ(fi().Check("b").code(), StatusCode::kOverloaded);
  EXPECT_EQ(fi().Check("c").code(), StatusCode::kCorruption);
}

TEST_F(FaultInjectorTest, ConfigureRejectsMalformedSpecs) {
  EXPECT_FALSE(fi().Configure("justapoint").ok());
  EXPECT_FALSE(fi().Configure("p=sometimes").ok());
  EXPECT_FALSE(fi().Configure("p=nth:zero").ok());
  EXPECT_FALSE(fi().Configure("p=prob:notanumber").ok());
  EXPECT_FALSE(fi().Configure("p=always@sigsegv").ok());
  EXPECT_FALSE(fi().Configure("=always").ok());
}

TEST_F(FaultInjectorTest, ShouldFailMirrorsCheck) {
  FaultConfig config;
  config.policy = FaultPolicy::kNth;
  config.n = 2;
  fi().Arm("p", config);
  EXPECT_FALSE(fi().ShouldFail("p"));
  EXPECT_TRUE(fi().ShouldFail("p"));
  EXPECT_FALSE(fi().ShouldFail("p"));
}

// XQ_FAULT_POINT propagates the injected Status out of the enclosing
// function, exactly like a real failure at that site.
Status GuardedOperation() {
  XQ_FAULT_POINT("test.guarded");
  return Status::OK();
}

TEST_F(FaultInjectorTest, FaultPointMacroPropagates) {
  EXPECT_TRUE(GuardedOperation().ok());
  FaultConfig config;
  config.code = StatusCode::kCorruption;
  fi().Arm("test.guarded", config);
  Status s = GuardedOperation();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  fi().Disarm("test.guarded");
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FaultInjectorTest, ThreadSafeUnderConcurrentChecks) {
  FaultConfig config;
  config.policy = FaultPolicy::kEveryNth;
  config.n = 10;
  fi().Arm("p", config);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) fi().ShouldFail("p");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fi().calls("p"), kThreads * kCallsPerThread);
  EXPECT_EQ(fi().fires("p"), kThreads * kCallsPerThread / 10);
}

}  // namespace
}  // namespace xomatiq::common
