#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace xomatiq::common {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(MetricTest, PaddedAgainstFalseSharing) {
  // Counters and gauges occupy (at least) a full cache line each so
  // adjacent registry entries never share one.
  EXPECT_GE(sizeof(Counter), kCacheLineSize);
  EXPECT_GE(sizeof(Gauge), kCacheLineSize);
  EXPECT_EQ(alignof(Counter), kCacheLineSize);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds everything below the first bound.
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(Histogram::kFirstBucketNs - 1), 0u);
  // Exactly at a bound rolls into the next bucket.
  EXPECT_EQ(Histogram::BucketFor(Histogram::kFirstBucketNs), 1u);
  EXPECT_EQ(Histogram::BucketFor(2 * Histogram::kFirstBucketNs), 2u);
  // Far beyond the last bound saturates at the final bucket.
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperNs(Histogram::kNumBuckets - 1), UINT64_MAX);
}

TEST(HistogramTest, RecordAccumulatesCountAndSum) {
  Histogram h;
  h.Record(100);
  h.Record(5000);
  h.Record(5000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumNs(), 10100u);
  uint64_t total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    total += h.BucketCount(i);
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(100)), 1u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(5000)), 2u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumNs(), 0u);
}

TEST(MetricsRegistryTest, GetReturnsStableSharedHandles) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("test.registry.stable");
  Counter* b = reg.GetCounter("test.registry.stable");
  EXPECT_EQ(a, b);
  // Registering more metrics must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("test.registry.churn." + std::to_string(i));
  }
  EXPECT_EQ(reg.GetCounter("test.registry.stable"), a);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.concurrent.inc");
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.concurrent.hist");
  c->Reset();
  h->Reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, h] {
      for (int i = 0; i < kIters; ++i) {
        c->Inc();
        h->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistryTest, SnapshotAndReset) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.snapshot.counter");
  Gauge* g = reg.GetGauge("test.snapshot.gauge");
  Histogram* h = reg.GetHistogram("test.snapshot.hist");
  c->Reset();
  c->Inc(7);
  g->Set(-5);
  h->Reset();
  h->Record(2048);

  MetricsSnapshot snap = reg.Snapshot();
  auto find_counter = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "counter not in snapshot: " << name;
    return 0;
  };
  EXPECT_EQ(find_counter("test.snapshot.counter"), 7u);
  bool found_gauge = false;
  for (const auto& [n, v] : snap.gauges) {
    if (n == "test.snapshot.gauge") {
      found_gauge = true;
      EXPECT_EQ(v, -5);
    }
  }
  EXPECT_TRUE(found_gauge);
  bool found_hist = false;
  for (const auto& s : snap.histograms) {
    if (s.name == "test.snapshot.hist") {
      found_hist = true;
      EXPECT_EQ(s.count, 1u);
      EXPECT_EQ(s.sum_ns, 2048u);
    }
  }
  EXPECT_TRUE(found_hist);

  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
}

TEST(MetricsSnapshotTest, PrometheusTextFormat) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.prom.counter")->Reset();
  reg.GetCounter("test.prom.counter")->Inc(3);
  std::string text = reg.Snapshot().ToPrometheusText();
  // Dots become underscores; the TYPE line precedes the sample line.
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 3"), std::string::npos);
  // Histograms (registered by other tests and the engine) emit cumulative
  // buckets ending at +Inf plus _sum/_count lines.
  reg.GetHistogram("test.prom.hist")->Record(1);
  text = reg.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE test_prom_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_sum"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 1"), std::string::npos);
}

TEST(MetricsSnapshotTest, JsonFormat) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.json.counter")->Reset();
  reg.GetCounter("test.json.counter")->Inc(9);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\":9"), std::string::npos);
}

TEST(ScopedLatencyTest, RecordsOnExitAndStopDisarms) {
  Histogram h;
  { ScopedLatency timer(&h); }
  EXPECT_EQ(h.Count(), 1u);
  {
    ScopedLatency timer(&h);
    timer.Stop();
    // The destructor must not double-record after an explicit Stop().
  }
  EXPECT_EQ(h.Count(), 2u);
  // Null histogram is a no-op.
  { ScopedLatency timer(nullptr); }
}

}  // namespace
}  // namespace xomatiq::common
