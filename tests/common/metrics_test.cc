#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace xomatiq::common {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(MetricTest, PaddedAgainstFalseSharing) {
  // Counters and gauges occupy (at least) a full cache line each so
  // adjacent registry entries never share one.
  EXPECT_GE(sizeof(Counter), kCacheLineSize);
  EXPECT_GE(sizeof(Gauge), kCacheLineSize);
  EXPECT_EQ(alignof(Counter), kCacheLineSize);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds everything below the first bound.
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(Histogram::kFirstBucketNs - 1), 0u);
  // Exactly at a bound rolls into the next bucket.
  EXPECT_EQ(Histogram::BucketFor(Histogram::kFirstBucketNs), 1u);
  EXPECT_EQ(Histogram::BucketFor(2 * Histogram::kFirstBucketNs), 2u);
  // Far beyond the last bound saturates at the final bucket.
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperNs(Histogram::kNumBuckets - 1), UINT64_MAX);
}

TEST(HistogramTest, RecordAccumulatesCountAndSum) {
  Histogram h;
  h.Record(100);
  h.Record(5000);
  h.Record(5000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumNs(), 10100u);
  uint64_t total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    total += h.BucketCount(i);
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(100)), 1u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(5000)), 2u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumNs(), 0u);
}

TEST(MetricsRegistryTest, GetReturnsStableSharedHandles) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("test.registry.stable");
  Counter* b = reg.GetCounter("test.registry.stable");
  EXPECT_EQ(a, b);
  // Registering more metrics must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("test.registry.churn." + std::to_string(i));
  }
  EXPECT_EQ(reg.GetCounter("test.registry.stable"), a);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.concurrent.inc");
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.concurrent.hist");
  c->Reset();
  h->Reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, h] {
      for (int i = 0; i < kIters; ++i) {
        c->Inc();
        h->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistryTest, SnapshotAndReset) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.snapshot.counter");
  Gauge* g = reg.GetGauge("test.snapshot.gauge");
  Histogram* h = reg.GetHistogram("test.snapshot.hist");
  c->Reset();
  c->Inc(7);
  g->Set(-5);
  h->Reset();
  h->Record(2048);

  MetricsSnapshot snap = reg.Snapshot();
  auto find_counter = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "counter not in snapshot: " << name;
    return 0;
  };
  EXPECT_EQ(find_counter("test.snapshot.counter"), 7u);
  bool found_gauge = false;
  for (const auto& [n, v] : snap.gauges) {
    if (n == "test.snapshot.gauge") {
      found_gauge = true;
      EXPECT_EQ(v, -5);
    }
  }
  EXPECT_TRUE(found_gauge);
  bool found_hist = false;
  for (const auto& s : snap.histograms) {
    if (s.name == "test.snapshot.hist") {
      found_hist = true;
      EXPECT_EQ(s.count, 1u);
      EXPECT_EQ(s.sum_ns, 2048u);
    }
  }
  EXPECT_TRUE(found_hist);

  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
}

TEST(MetricsSnapshotTest, PrometheusTextFormat) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.prom.counter")->Reset();
  reg.GetCounter("test.prom.counter")->Inc(3);
  std::string text = reg.Snapshot().ToPrometheusText();
  // Dots become underscores; the TYPE line precedes the sample line.
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 3"), std::string::npos);
  // Histograms (registered by other tests and the engine) emit cumulative
  // buckets ending at +Inf plus _sum/_count lines.
  reg.GetHistogram("test.prom.hist")->Record(1);
  text = reg.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE test_prom_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_sum"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 1"), std::string::npos);
}

TEST(MetricsSnapshotTest, JsonFormat) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.json.counter")->Reset();
  reg.GetCounter("test.json.counter")->Inc(9);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\":9"), std::string::npos);
}

TEST(HistogramTest, QuantileEstimatesTrackRecordedValues) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0);  // empty histogram
  for (int i = 0; i < 100; ++i) h.Record(100'000);
  // All mass sits in one bucket; the estimate must stay inside its
  // [65536, 131072) bounds.
  double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 65536.0);
  EXPECT_LE(p50, 131072.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.95));
  EXPECT_LE(h.Quantile(0.95), h.Quantile(0.99));
}

TEST(HistogramTest, QuantileFromBucketsInterpolatesWithinBucket) {
  std::vector<uint64_t> buckets(Histogram::kNumBuckets, 0);
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 0.5), 0);
  // 100 samples in bucket 1, i.e. [1024, 2048): the 25th-percentile rank
  // lands a quarter of the way into the bucket under linear interpolation.
  buckets[1] = 100;
  EXPECT_NEAR(Histogram::QuantileFromBuckets(buckets, 0.25),
              1024.0 + 0.25 * 1024.0, 16.0);
  EXPECT_NEAR(Histogram::QuantileFromBuckets(buckets, 1.0), 2048.0, 16.0);
}

TEST(MetricsTest, PercentileOfSamplesSelectsFromSortedOrder) {
  EXPECT_EQ(PercentileOfSamples({}, 0.5), 0);
  std::vector<double> s{5, 1, 9, 3, 7};
  EXPECT_EQ(PercentileOfSamples(s, 0.0), 1);
  EXPECT_EQ(PercentileOfSamples(s, 0.5), 5);
  EXPECT_EQ(PercentileOfSamples(s, 1.0), 9);
}

TEST(MetricsSnapshotTest, PrometheusSanitizesNamesAndEscapesHelp) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.prom/weird-name")->Inc();
  reg.GetCounter("test.prom.esc\\slash")->Inc();
  std::string text = reg.Snapshot().ToPrometheusText();
  // Non-identifier characters map to underscores in the metric name; the
  // HELP text keeps the original dotted name.
  EXPECT_NE(text.find("# HELP test_prom_weird_name test.prom/weird-name"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_weird_name counter"),
            std::string::npos);
  // A backslash in the HELP text is escaped per the exposition format.
  EXPECT_NE(text.find("test.prom.esc\\\\slash"), std::string::npos);
}

TEST(MetricsSnapshotTest, PrometheusQuantilesAreASiblingSummaryFamily) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("test.prom.qhist");
  h->Reset();
  for (int i = 0; i < 10; ++i) h->Record(100'000);
  std::string text = reg.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE test_prom_qhist_quantiles summary"),
            std::string::npos);
  for (const char* q : {"0.5", "0.95", "0.99"}) {
    EXPECT_NE(text.find(std::string("test_prom_qhist_quantiles{quantile=\"") +
                        q + "\"} "),
              std::string::npos)
        << q;
  }
  EXPECT_NE(text.find("test_prom_qhist_quantiles_count 10"),
            std::string::npos);
  // A histogram family must not carry quantile samples itself — that is
  // the whole reason the summary gets a sibling name.
  EXPECT_EQ(text.find("test_prom_qhist{quantile"), std::string::npos);
}

// Line-level validity of the whole exposition: every line is either a
// HELP/TYPE comment or `name[{labels}] value` with a numeric value.
TEST(MetricsSnapshotTest, PrometheusExpositionIsWellFormedLineByLine) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.prom.valid.counter")->Inc(5);
  reg.GetGauge("test.prom.valid.gauge")->Set(-3);
  reg.GetHistogram("test.prom.valid.hist")->Record(4096);
  std::string text = reg.Snapshot().ToPrometheusText();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  auto is_name_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == ':';
  };
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "unterminated line";
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    ASSERT_FALSE(line.empty());
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    // Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
    size_t i = 0;
    ASSERT_TRUE(is_name_char(line[0]) && !(line[0] >= '0' && line[0] <= '9'))
        << line;
    while (i < line.size() && is_name_char(line[i])) ++i;
    // Optional label set: braces with balanced quotes.
    if (i < line.size() && line[i] == '{') {
      size_t close = line.find('}', i);
      ASSERT_NE(close, std::string::npos) << line;
      i = close + 1;
    }
    ASSERT_LT(i, line.size()) << line;
    ASSERT_EQ(line[i], ' ') << line;
    // The remainder must parse fully as a number.
    char* parse_end = nullptr;
    std::string value = line.substr(i + 1);
    ASSERT_FALSE(value.empty()) << line;
    std::strtod(value.c_str(), &parse_end);
    EXPECT_EQ(*parse_end, '\0') << "trailing garbage in: " << line;
  }
}

TEST(MetricsSnapshotTest, JsonIncludesQuantileEstimates) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("test.json.qhist");
  h->Reset();
  h->Record(2048);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"p50_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\":"), std::string::npos);
}

TEST(ScopedLatencyTest, RecordsOnExitAndStopDisarms) {
  Histogram h;
  { ScopedLatency timer(&h); }
  EXPECT_EQ(h.Count(), 1u);
  {
    ScopedLatency timer(&h);
    timer.Stop();
    // The destructor must not double-record after an explicit Stop().
  }
  EXPECT_EQ(h.Count(), 2u);
  // Null histogram is a no-op.
  { ScopedLatency timer(nullptr); }
}

}  // namespace
}  // namespace xomatiq::common
