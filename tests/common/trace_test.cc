#include "common/trace.h"

#include <gtest/gtest.h>

#include <thread>

namespace xomatiq::common {
namespace {

TEST(TraceTest, NoTraceInstalledIsNoOp) {
  EXPECT_EQ(Trace::Current(), nullptr);
  // Spans constructed without an installed trace must be inert.
  TraceSpan span("orphan");
}

TEST(TraceTest, RecordsNestedSpans) {
  Trace trace;
  {
    TraceScope scope(&trace);
    ASSERT_EQ(Trace::Current(), &trace);
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
  }
  EXPECT_EQ(Trace::Current(), nullptr);
  std::vector<Trace::Span> spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  // inner's parent is outer; outer is a root.
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  // Durations are recorded and nesting is consistent.
  EXPECT_GE(spans[0].duration_ns, spans[1].duration_ns);
  EXPECT_NE(spans[0].thread_id, 0u);
}

TEST(TraceTest, SpanNamesInBeginOrder) {
  Trace trace;
  {
    TraceScope scope(&trace);
    TraceSpan a("first");
    TraceSpan b("second");
    TraceSpan c("third");
  }
  EXPECT_EQ(trace.SpanNames(),
            (std::vector<std::string>{"first", "second", "third"}));
}

TEST(TraceTest, WorkerThreadsDoNotInheritTrace) {
  Trace trace;
  TraceScope scope(&trace);
  std::thread worker([] {
    EXPECT_EQ(Trace::Current(), nullptr);
    TraceSpan span("worker-span");  // must be a no-op
  });
  worker.join();
  EXPECT_TRUE(trace.spans().empty());
}

TEST(TraceTest, SpanMirrorsIntoHistogram) {
  Histogram h;
  // Mirrors even with no trace installed.
  { TraceSpan span("stage", &h); }
  EXPECT_EQ(h.Count(), 1u);
  Trace trace;
  {
    TraceScope scope(&trace);
    TraceSpan span("stage", &h);
  }
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(trace.spans().size(), 1u);
}

TEST(TraceTest, ChromeJsonWellFormed) {
  Trace trace;
  {
    TraceScope scope(&trace);
    TraceSpan outer("query");
    TraceSpan inner("stage \"quoted\"");
  }
  std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Quotes in span names must be escaped.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  // Balanced braces/brackets (crude well-formedness check).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceTest, ChromeJsonCarriesTraceIdAndPid) {
  Trace trace;
  trace.set_trace_id(0xabcULL);
  {
    TraceScope scope(&trace);
    TraceSpan span("stage");
  }
  std::string json = trace.ToChromeJson(/*pid=*/2);
  EXPECT_NE(json.find("\"traceId\":\"0000000000000abc\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  // Default pid is the server's.
  EXPECT_NE(trace.ToChromeJson().find("\"pid\":1"), std::string::npos);
}

TEST(TraceTest, MergeChromeTraceJsonStitchesBothTimelines) {
  Trace client;
  client.set_trace_id(0x77);
  {
    TraceScope scope(&client);
    TraceSpan span("client.rtt");
  }
  Trace server;
  server.set_trace_id(0x77);
  {
    TraceScope scope(&server);
    TraceSpan span("server.handle");
  }
  std::string merged =
      MergeChromeTraceJson(client.ToChromeJson(2), server.ToChromeJson(1));
  EXPECT_NE(merged.find("\"traceId\":\"0000000000000077\""),
            std::string::npos)
      << merged;
  EXPECT_NE(merged.find("client.rtt"), std::string::npos);
  EXPECT_NE(merged.find("server.handle"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":2"), std::string::npos);
  // The merge is itself a loadable Chrome dump: one traceEvents array,
  // not two concatenated documents.
  EXPECT_EQ(merged.find("\"traceEvents\""),
            merged.rfind("\"traceEvents\""));
}

TEST(TraceTest, MergeTakesFirstNonZeroTraceId) {
  Trace anon;  // never tagged
  {
    TraceScope scope(&anon);
    TraceSpan span("a");
  }
  Trace tagged;
  tagged.set_trace_id(0x5);
  {
    TraceScope scope(&tagged);
    TraceSpan span("b");
  }
  std::string merged =
      MergeChromeTraceJson(anon.ToChromeJson(), tagged.ToChromeJson());
  EXPECT_NE(merged.find("\"traceId\":\"0000000000000005\""),
            std::string::npos)
      << merged;
}

}  // namespace
}  // namespace xomatiq::common
