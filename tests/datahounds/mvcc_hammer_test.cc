// Concurrent reader/writer behavior of the warehouse under MVCC-lite:
// snapshot readers run latch-free against a SyncSource loop (the TSan
// hammer), pinned SQL reads stay byte-identical across a sync, and
// ChangeEvent callbacks — fired after the epoch publish, outside the
// write latch — may query the warehouse back and see the new state.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/query_request.h"
#include "datagen/corpus.h"
#include "datahounds/generic_schema.h"
#include "datahounds/warehouse.h"
#include "relational/database.h"
#include "relational/snapshot.h"
#include "sql/engine.h"

namespace xomatiq::hounds {
namespace {

using rel::Database;

datagen::Corpus SmallCorpus(uint64_t seed = 42) {
  datagen::CorpusOptions options;
  options.seed = seed;
  options.num_enzymes = 12;
  options.num_proteins = 12;
  options.num_nucleotides = 12;
  return datagen::GenerateCorpus(options);
}

std::string DumpRows(const sql::QueryResult& result) {
  std::string out;
  for (const rel::Tuple& t : result.rows) {
    for (const rel::Value& v : t) out += v.ToString() + "|";
    out += "\n";
  }
  return out;
}

TEST(MvccHammerTest, PinnedSqlReadIsByteIdenticalAcrossSync) {
  auto db = Database::OpenInMemory();
  auto warehouse = Warehouse::Open(db.get());
  datagen::Corpus corpus = SmallCorpus();
  EnzymeXmlTransformer transformer;
  ASSERT_TRUE((*warehouse)
                  ->LoadSource("hlx_enzyme.DEFAULT", transformer,
                               datagen::ToEnzymeFlatFile(corpus))
                  .ok());
  sql::SqlEngine engine(db.get());
  const std::string query = "SELECT doc_id, uri FROM xml_document";

  rel::Snapshot snap = db->BeginSnapshot();
  common::QueryRequest pinned = common::QueryRequest::Sql(query);
  pinned.read_epoch = snap.epoch();
  auto before = engine.Execute(pinned);
  ASSERT_TRUE(before.ok());
  const std::string before_dump = DumpRows(*before);
  EXPECT_EQ(before->rows.size(), 12u);

  // Sync away one document and add another while the snapshot is live.
  datagen::Corpus updated = corpus;
  updated.enzymes.erase(updated.enzymes.begin());
  ASSERT_TRUE((*warehouse)
                  ->SyncSource("hlx_enzyme.DEFAULT", transformer,
                               datagen::ToEnzymeFlatFile(updated))
                  .ok());

  // The pinned request re-reads the old cut byte-identically; an
  // unpinned request sees the sync.
  auto old_read = engine.Execute(pinned);
  ASSERT_TRUE(old_read.ok());
  EXPECT_EQ(DumpRows(*old_read), before_dump);
  auto fresh = engine.Execute(common::QueryRequest::Sql(query));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows.size(), 11u);
  EXPECT_NE(DumpRows(*fresh), before_dump);
}

TEST(MvccHammerTest, ChangeEventCallbacksRunAfterEpochPublishAndMayQueryBack) {
  auto db = Database::OpenInMemory();
  auto warehouse = Warehouse::Open(db.get());
  datagen::Corpus corpus = SmallCorpus();
  EnzymeXmlTransformer transformer;
  ASSERT_TRUE((*warehouse)
                  ->LoadSource("hlx_enzyme.DEFAULT", transformer,
                               datagen::ToEnzymeFlatFile(corpus))
                  .ok());
  // The callback queries the warehouse it was notified by. Before
  // ChangeEvents were deferred past the epoch publish + latch release,
  // this deadlocked (callback under the exclusive latch, read wanting a
  // snapshot) — and could not have seen the change it announces.
  Warehouse* wh = warehouse->get();
  std::vector<std::string> observed;
  wh->Subscribe([&](const ChangeEvent& e) {
    auto ids = wh->DocumentsIn(e.collection);
    ASSERT_TRUE(ids.ok());
    if (e.kind == ChangeEvent::Kind::kRemoved) {
      EXPECT_FALSE(wh->FindDocument(e.uri).ok());
    } else {
      auto found = wh->FindDocument(e.uri);
      ASSERT_TRUE(found.ok());
      EXPECT_EQ(*found, e.doc_id);
    }
    observed.push_back(e.uri);
  });

  datagen::Corpus updated = corpus;
  updated.enzymes[0].comments.push_back("new comment");
  updated.enzymes.erase(updated.enzymes.begin() + 1);
  flatfile::EnzymeEntry fresh = datagen::Figure2Entry();
  updated.enzymes.push_back(fresh);
  auto stats = (*warehouse)
                   ->SyncSource("hlx_enzyme.DEFAULT", transformer,
                                datagen::ToEnzymeFlatFile(updated));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(observed.size(), 3u);
}

// The TSan target: N snapshot readers (document listing, URI lookup, full
// reconstruction, SQL scans) loop against a writer alternating SyncSource
// between two corpus states. Every read must come back either consistent
// with one of the two states or as a clean NotFound (a doc that vanished
// between listing and lookup); no torn counts, no crashes, no races.
TEST(MvccHammerTest, ReadersVsSyncLoop) {
  auto db = Database::OpenInMemory();
  auto warehouse = Warehouse::Open(db.get());
  datagen::Corpus corpus_a = SmallCorpus();
  datagen::Corpus corpus_b = corpus_a;
  corpus_b.enzymes.erase(corpus_b.enzymes.begin());  // 12 docs vs 11 docs
  for (auto& e : corpus_b.enzymes) e.comments.push_back("state b");
  EnzymeXmlTransformer transformer;
  const std::string raw_a = datagen::ToEnzymeFlatFile(corpus_a);
  const std::string raw_b = datagen::ToEnzymeFlatFile(corpus_b);
  ASSERT_TRUE(
      (*warehouse)->LoadSource("hlx_enzyme.DEFAULT", transformer, raw_a).ok());
  Warehouse* wh = warehouse->get();

  constexpr int kReaders = 4;
  constexpr int kIterations = 60;
  constexpr int kSyncs = 12;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  auto note_failure = [&](const std::string& what) {
    failures.fetch_add(1);
    ADD_FAILURE() << what;
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      sql::SqlEngine engine(db.get());
      for (int i = 0; i < kIterations && !stop.load(); ++i) {
        auto ids = wh->DocumentsIn("hlx_enzyme.DEFAULT");
        if (!ids.ok()) {
          note_failure("DocumentsIn: " + ids.status().ToString());
          continue;
        }
        if (ids->size() != 12u && ids->size() != 11u) {
          note_failure("torn document count: " +
                       std::to_string(ids->size()));
        }
        if (!ids->empty()) {
          int64_t doc = (*ids)[static_cast<size_t>(r + i) % ids->size()];
          auto rec = wh->ReconstructDocument(doc);
          // NotFound is legal (the doc was synced away); anything else
          // must be a complete, well-formed document.
          if (rec.ok()) {
            if (rec->root() == nullptr) note_failure("empty reconstruction");
          } else if (rec.status().code() != common::StatusCode::kNotFound) {
            note_failure("Reconstruct: " + rec.status().ToString());
          }
        }
        auto rows = engine.Execute(common::QueryRequest::Sql(
            "SELECT doc_id, uri FROM xml_document"));
        if (!rows.ok()) {
          note_failure("SELECT: " + rows.status().ToString());
        } else if (rows->rows.size() != 12u && rows->rows.size() != 11u) {
          note_failure("torn SQL count: " +
                       std::to_string(rows->rows.size()));
        }
      }
    });
  }

  std::thread writer([&] {
    for (int s = 0; s < kSyncs; ++s) {
      auto stats = wh->SyncSource("hlx_enzyme.DEFAULT", transformer,
                                  (s % 2 == 0) ? raw_b : raw_a);
      if (!stats.ok()) {
        note_failure("SyncSource: " + stats.status().ToString());
        break;
      }
    }
    stop.store(true);
  });

  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace xomatiq::hounds
