#include "datahounds/shredder.h"

#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "datahounds/generic_schema.h"
#include "datahounds/xml_transformer.h"
#include "xml/parser.h"

namespace xomatiq::hounds {
namespace {

using rel::Database;
using rel::RowId;
using rel::Tuple;
using rel::Value;

class ShredderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::OpenInMemory();
    ASSERT_TRUE(EnsureGenericTables(db_.get()).ok());
    ASSERT_TRUE(EnsureGenericIndexes(db_.get()).ok());
    shredder_ = std::make_unique<Shredder>(db_.get());
    ASSERT_TRUE(shredder_->Init().ok());
  }

  xml::XmlDocument Parse(const std::string& text) {
    auto doc = xml::ParseXml(text);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    return std::move(*doc);
  }

  int64_t CountRows(const char* table) {
    auto t = db_->GetTable(table);
    EXPECT_TRUE(t.ok());
    return static_cast<int64_t>((*t)->num_live_rows());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Shredder> shredder_;
};

TEST_F(ShredderTest, CountsPerKind) {
  xml::XmlDocument doc = Parse(
      "<root><a x=\"1\" y=\"two\">text</a><b>42</b><c/></root>");
  auto stats = shredder_->ShredDocument(doc, "col", "uri:1", {}, 0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->nodes, 4u);       // root, a, b, c
  EXPECT_EQ(stats->attributes, 2u);  // x, y
  // Values: a's text, b's 42, x=1, y=two.
  EXPECT_EQ(stats->text_values, 4u);
  EXPECT_EQ(stats->numeric_values, 2u);  // "1" and "42"
  EXPECT_EQ(stats->sequence_values, 0u);
  EXPECT_EQ(CountRows(kNodeTable), 6);  // 4 elements + 2 attributes
  EXPECT_EQ(CountRows(kDocumentTable), 1);
}

TEST_F(ShredderTest, OrdinalIntervalEncoding) {
  xml::XmlDocument doc = Parse("<r><a><b>x</b></a><c>y</c></r>");
  auto stats = shredder_->ShredDocument(doc, "col", "uri:1", {}, 0);
  ASSERT_TRUE(stats.ok());
  // Collect (name_id->name, ordinal, end_ordinal).
  std::map<std::string, std::pair<int64_t, int64_t>> intervals;
  std::map<int64_t, std::string> names;
  (*db_->GetTable(kNameTable))->Scan([&](RowId, const Tuple& t) {
    names[t[0].AsInt()] = t[1].AsText();
    return true;
  });
  (*db_->GetTable(kNodeTable))->Scan([&](RowId, const Tuple& t) {
    intervals[names[t[4].AsInt()]] = {t[6].AsInt(), t[7].AsInt()};
    return true;
  });
  // r contains everything; a contains b; c is after b.
  EXPECT_LT(intervals["r"].first, intervals["a"].first);
  EXPECT_GE(intervals["r"].second, intervals["c"].second);
  EXPECT_GT(intervals["b"].first, intervals["a"].first);
  EXPECT_LE(intervals["b"].second, intervals["a"].second);
  EXPECT_GT(intervals["c"].first, intervals["a"].second);
}

TEST_F(ShredderTest, PathDictionary) {
  xml::XmlDocument doc = Parse("<r><a k=\"v\"><b>x</b></a></r>");
  ASSERT_TRUE(shredder_->ShredDocument(doc, "col", "u", {}, 0).ok());
  std::set<std::string> paths;
  (*db_->GetTable(kPathTable))->Scan([&](RowId, const Tuple& t) {
    paths.insert(t[1].AsText());
    return true;
  });
  EXPECT_TRUE(paths.count("/r"));
  EXPECT_TRUE(paths.count("/r/a"));
  EXPECT_TRUE(paths.count("/r/a/@k"));
  EXPECT_TRUE(paths.count("/r/a/b"));
  // Shared dictionary across documents: shredding a second identical doc
  // adds no paths.
  size_t before = paths.size();
  ASSERT_TRUE(shredder_->ShredDocument(doc, "col", "u2", {}, 0).ok());
  EXPECT_EQ(CountRows(kPathTable), static_cast<int64_t>(before));
}

TEST_F(ShredderTest, SequenceRouting) {
  xml::XmlDocument doc = Parse(
      "<r><sequence length=\"4\">acgt</sequence><note>acgt</note></r>");
  auto stats = shredder_->ShredDocument(doc, "col", "u", {"sequence"}, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->sequence_values, 1u);
  // The note text and the length attribute go to xml_text; the residues
  // do not (no DNA in the keyword index, §2.2).
  EXPECT_EQ(CountRows(kSequenceTable), 1);
  const rel::IndexEntry* kw = db_->FindIndexByName("idx_text_keyword");
  ASSERT_NE(kw, nullptr);
  // "acgt" appears once in xml_text (the note), not twice.
  EXPECT_EQ(kw->inverted->Lookup("acgt").size(), 1u);
}

TEST_F(ShredderTest, NumericProjectionKeepsExactText) {
  xml::XmlDocument doc = Parse("<r><v>1.50</v></r>");
  ASSERT_TRUE(shredder_->ShredDocument(doc, "col", "u", {}, 0).ok());
  auto rebuilt = shredder_->ReconstructDocument(1);
  ASSERT_TRUE(rebuilt.ok());
  // Reconstruction must return "1.50", not a re-formatted "1.5".
  EXPECT_EQ(rebuilt->root()->ChildText("v"), "1.50");
  EXPECT_EQ(CountRows(kNumberTable), 1);
}

TEST_F(ShredderTest, MixedContentRejected) {
  xml::XmlDocument doc = Parse("<r>leading<b>x</b></r>");
  auto stats = shredder_->ShredDocument(doc, "col", "u", {}, 0);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), common::StatusCode::kUnsupported);
}

TEST_F(ShredderTest, DeleteDocumentRemovesEverything) {
  xml::XmlDocument doc = Parse(
      "<r><a x=\"1\">t</a><sequence>acgt</sequence></r>");
  auto stats = shredder_->ShredDocument(doc, "col", "u", {"sequence"}, 0);
  ASSERT_TRUE(stats.ok());
  int64_t doc_id = stats->doc_id;
  ASSERT_TRUE(shredder_->DeleteDocument(doc_id).ok());
  EXPECT_EQ(CountRows(kNodeTable), 0);
  EXPECT_EQ(CountRows(kTextTable), 0);
  EXPECT_EQ(CountRows(kNumberTable), 0);
  EXPECT_EQ(CountRows(kSequenceTable), 0);
  EXPECT_EQ(CountRows(kDocumentTable), 0);
  // Dictionaries persist (shared across documents).
  EXPECT_GT(CountRows(kPathTable), 0);
  EXPECT_FALSE(shredder_->DeleteDocument(doc_id).ok());
}

TEST_F(ShredderTest, DocIdsMonotonicAndInitRestoresCounters) {
  xml::XmlDocument doc = Parse("<r><a>1</a></r>");
  auto s1 = shredder_->ShredDocument(doc, "col", "u1", {}, 0);
  auto s2 = shredder_->ShredDocument(doc, "col", "u2", {}, 0);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->doc_id, s1->doc_id + 1);
  // A fresh shredder over the same database resumes counters.
  Shredder fresh(db_.get());
  ASSERT_TRUE(fresh.Init().ok());
  auto s3 = fresh.ShredDocument(doc, "col", "u3", {}, 0);
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(s3->doc_id, s2->doc_id + 1);
}

TEST_F(ShredderTest, ReconstructPreservesOrderAndAttributes) {
  const char* text =
      "<hlx_enzyme><db_entry>"
      "<enzyme_id>1.14.17.3</enzyme_id>"
      "<enzyme_description>first</enzyme_description>"
      "<enzyme_description>second</enzyme_description>"
      "<reference name=\"AMD_BOVIN\" swissprot_accession_number=\"P10731\"/>"
      "<empty_list/>"
      "</db_entry></hlx_enzyme>";
  xml::XmlDocument doc = Parse(text);
  auto stats = shredder_->ShredDocument(doc, "col", "u", {}, 0);
  ASSERT_TRUE(stats.ok());
  auto rebuilt = shredder_->ReconstructDocument(stats->doc_id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(xml::XmlNode::DeepEqual(*doc.root(), *rebuilt->root()));
}

TEST_F(ShredderTest, ReconstructMissingDocIsNotFound) {
  EXPECT_FALSE(shredder_->ReconstructDocument(12345).ok());
}

TEST_F(ShredderTest, WorksWithoutIndexes) {
  // The shredder's delete/reconstruct paths must survive index ablation.
  ASSERT_TRUE(DropGenericIndexes(db_.get()).ok());
  xml::XmlDocument doc = Parse("<r><a x=\"1\">t</a></r>");
  auto stats = shredder_->ShredDocument(doc, "col", "u", {}, 0);
  ASSERT_TRUE(stats.ok());
  auto rebuilt = shredder_->ReconstructDocument(stats->doc_id);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(xml::XmlNode::DeepEqual(*doc.root(), *rebuilt->root()));
  EXPECT_TRUE(shredder_->DeleteDocument(stats->doc_id).ok());
  EXPECT_EQ(CountRows(kNodeTable), 0);
}

// Property: shred + reconstruct is the identity for every document the
// three transformers emit over a seeded corpus.
class ShredRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShredRoundTripTest, TransformedDocumentsRoundTrip) {
  auto db = Database::OpenInMemory();
  ASSERT_TRUE(EnsureGenericTables(db.get()).ok());
  ASSERT_TRUE(EnsureGenericIndexes(db.get()).ok());
  Shredder shredder(db.get());
  ASSERT_TRUE(shredder.Init().ok());

  datagen::CorpusOptions options;
  options.seed = GetParam();
  options.num_enzymes = 10;
  options.num_proteins = 10;
  options.num_nucleotides = 10;
  datagen::Corpus corpus = datagen::GenerateCorpus(options);

  EnzymeXmlTransformer enzyme_tf;
  EmblXmlTransformer embl_tf;
  SwissProtXmlTransformer sprot_tf;
  struct Source {
    const XmlTransformer* transformer;
    std::string raw;
  };
  const Source sources[] = {
      {&enzyme_tf, datagen::ToEnzymeFlatFile(corpus)},
      {&embl_tf, datagen::ToEmblFlatFile(corpus)},
      {&sprot_tf, datagen::ToSwissProtFlatFile(corpus)},
  };
  for (const Source& source : sources) {
    auto docs = source.transformer->Transform(source.raw);
    ASSERT_TRUE(docs.ok());
    std::vector<std::string> seq_names =
        source.transformer->sequence_elements();
    std::set<std::string> seq(seq_names.begin(), seq_names.end());
    for (const TransformedDocument& doc : *docs) {
      auto stats =
          shredder.ShredDocument(doc.document, "c", doc.uri, seq, 0);
      ASSERT_TRUE(stats.ok()) << doc.uri;
      auto rebuilt = shredder.ReconstructDocument(stats->doc_id);
      ASSERT_TRUE(rebuilt.ok()) << doc.uri;
      EXPECT_TRUE(
          xml::XmlNode::DeepEqual(*doc.document.root(), *rebuilt->root()))
          << doc.uri;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShredRoundTripTest,
                         ::testing::Values(7, 17, 27));

}  // namespace
}  // namespace xomatiq::hounds
