#include "datahounds/xml_transformer.h"

#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xomatiq::hounds {
namespace {

using flatfile::EmblEntry;
using flatfile::EnzymeEntry;
using flatfile::SwissProtEntry;

TEST(EnzymeTransformerTest, DtdParsesAndDescribesFigure5) {
  EnzymeXmlTransformer transformer;
  auto dtd = xml::ParseDtd(transformer.dtd_text());
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  // Fig 5 structure: root with one db_entry; db_entry's ordered model.
  const xml::DtdElement* root = dtd->FindElement("hlx_enzyme");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->model.ToString(), "(db_entry)");
  const xml::DtdElement* entry = dtd->FindElement("db_entry");
  ASSERT_NE(entry, nullptr);
  EXPECT_NE(entry->model.ToString().find("enzyme_description+"),
            std::string::npos);
  const xml::DtdElement* reference = dtd->FindElement("reference");
  ASSERT_NE(reference, nullptr);
  ASSERT_EQ(reference->attributes.size(), 2u);
  EXPECT_EQ(reference->attributes[1].name, "swissprot_accession_number");
  EXPECT_EQ(reference->attributes[1].type, xml::AttrType::kNmtoken);
  EXPECT_EQ(dtd->InferRootElement(), "hlx_enzyme");
}

TEST(EnzymeTransformerTest, Figure2ProducesFigure6Document) {
  EnzymeEntry entry = datagen::Figure2Entry();
  xml::XmlDocument doc = EnzymeXmlTransformer::EntryToXml(entry);
  const xml::XmlNode* root = doc.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name(), "hlx_enzyme");
  const xml::XmlNode* db = root->FirstChildElement("db_entry");
  ASSERT_NE(db, nullptr);
  // Spot checks against the paper's Fig 6.
  EXPECT_EQ(db->ChildText("enzyme_id"), "1.14.17.3");
  EXPECT_EQ(db->ChildText("enzyme_description"),
            "Peptidylglycine monooxygenase");
  auto alternates = db->FirstChildElement("alternate_name_list")
                        ->ChildElements("alternate_name");
  ASSERT_EQ(alternates.size(), 2u);
  EXPECT_EQ(alternates[0]->Text(), "Peptidyl alpha-amidating enzyme");
  EXPECT_EQ(db->ChildElements("catalytic_activity").size(), 2u);
  auto references = db->FirstChildElement("swissprot_reference_list")
                        ->ChildElements("reference");
  ASSERT_EQ(references.size(), 5u);
  EXPECT_EQ(*references[0]->FindAttribute("name"), "AMD_BOVIN");
  EXPECT_EQ(*references[0]->FindAttribute("swissprot_accession_number"),
            "P10731");
  // Fig 6 shows an empty <disease_list/>.
  const xml::XmlNode* diseases = db->FirstChildElement("disease_list");
  ASSERT_NE(diseases, nullptr);
  EXPECT_TRUE(diseases->children().empty());
}

TEST(EnzymeTransformerTest, Figure6ValidatesAgainstFigure5Dtd) {
  EnzymeXmlTransformer transformer;
  auto dtd = xml::ParseDtd(transformer.dtd_text());
  ASSERT_TRUE(dtd.ok());
  xml::XmlDocument doc =
      EnzymeXmlTransformer::EntryToXml(datagen::Figure2Entry());
  std::vector<std::string> errors;
  EXPECT_TRUE(dtd->Validate(doc, &errors))
      << (errors.empty() ? "" : errors[0]);
}

TEST(EnzymeTransformerTest, TransformSplitsPerEntry) {
  datagen::CorpusOptions options;
  options.num_enzymes = 7;
  options.num_proteins = 3;
  options.num_nucleotides = 0;
  datagen::Corpus corpus = datagen::GenerateCorpus(options);
  EnzymeXmlTransformer transformer;
  auto docs = transformer.Transform(datagen::ToEnzymeFlatFile(corpus));
  ASSERT_TRUE(docs.ok());
  // "our algorithm produces one XML file per entry" (§2.1).
  ASSERT_EQ(docs->size(), 7u);
  EXPECT_EQ((*docs)[0].uri, "enzyme:" + corpus.enzymes[0].id);
}

// Property: flat -> XML -> flat is the identity on every generator output,
// for all three sources, and every produced document is DTD-valid.
class TransformerRoundTripTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  datagen::Corpus MakeCorpus() {
    datagen::CorpusOptions options;
    options.seed = GetParam();
    options.num_enzymes = 15;
    options.num_proteins = 15;
    options.num_nucleotides = 15;
    return datagen::GenerateCorpus(options);
  }
};

TEST_P(TransformerRoundTripTest, Enzyme) {
  datagen::Corpus corpus = MakeCorpus();
  EnzymeXmlTransformer transformer;
  auto dtd = xml::ParseDtd(transformer.dtd_text());
  ASSERT_TRUE(dtd.ok());
  for (const EnzymeEntry& entry : corpus.enzymes) {
    xml::XmlDocument doc = EnzymeXmlTransformer::EntryToXml(entry);
    std::vector<std::string> errors;
    ASSERT_TRUE(dtd->Validate(doc, &errors)) << errors[0];
    auto back = EnzymeXmlTransformer::XmlToEntry(*doc.root());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, entry);
    // And through text serialization too.
    auto reparsed = xml::ParseXml(xml::WriteXml(doc));
    ASSERT_TRUE(reparsed.ok());
    auto back2 = EnzymeXmlTransformer::XmlToEntry(*reparsed->root());
    ASSERT_TRUE(back2.ok());
    EXPECT_EQ(*back2, entry);
  }
}

TEST_P(TransformerRoundTripTest, Embl) {
  datagen::Corpus corpus = MakeCorpus();
  EmblXmlTransformer transformer;
  auto dtd = xml::ParseDtd(transformer.dtd_text());
  ASSERT_TRUE(dtd.ok());
  for (const EmblEntry& entry : corpus.nucleotides) {
    xml::XmlDocument doc = EmblXmlTransformer::EntryToXml(entry);
    std::vector<std::string> errors;
    ASSERT_TRUE(dtd->Validate(doc, &errors)) << errors[0];
    auto back = EmblXmlTransformer::XmlToEntry(*doc.root());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, entry);
  }
}

TEST_P(TransformerRoundTripTest, SwissProt) {
  datagen::Corpus corpus = MakeCorpus();
  SwissProtXmlTransformer transformer;
  auto dtd = xml::ParseDtd(transformer.dtd_text());
  ASSERT_TRUE(dtd.ok());
  for (const SwissProtEntry& entry : corpus.proteins) {
    xml::XmlDocument doc = SwissProtXmlTransformer::EntryToXml(entry);
    std::vector<std::string> errors;
    ASSERT_TRUE(dtd->Validate(doc, &errors)) << errors[0];
    auto back = SwissProtXmlTransformer::XmlToEntry(*doc.root());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, entry);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformerRoundTripTest,
                         ::testing::Values(2, 12, 32, 52));

TEST(EmblTransformerTest, EcQualifierGetsPaperDisplayName) {
  EmblEntry entry;
  entry.id = "X1";
  entry.division = "INV";
  entry.molecule = "DNA";
  entry.accessions = {"X1"};
  flatfile::EmblFeature cds;
  cds.key = "CDS";
  cds.location = "1..9";
  cds.qualifiers.push_back({"EC_number", "1.14.17.3"});
  entry.features.push_back(cds);
  entry.sequence = "acgtacgta";
  xml::XmlDocument doc = EmblXmlTransformer::EntryToXml(entry);
  auto qualifiers = doc.root()->Descendants("qualifier");
  ASSERT_EQ(qualifiers.size(), 1u);
  // Fig 11 matches @qualifier_type = "EC number" (with a space).
  EXPECT_EQ(*qualifiers[0]->FindAttribute("qualifier_type"), "EC number");
  EXPECT_EQ(qualifiers[0]->Text(), "1.14.17.3");
}

TEST(TransformerTest, SequenceElementsDeclared) {
  EXPECT_TRUE(EnzymeXmlTransformer().sequence_elements().empty());
  EXPECT_EQ(EmblXmlTransformer().sequence_elements(),
            std::vector<std::string>{"sequence"});
  EXPECT_EQ(SwissProtXmlTransformer().sequence_elements(),
            std::vector<std::string>{"sequence"});
}

TEST(TransformerTest, BadInputPropagatesParseError) {
  EnzymeXmlTransformer transformer;
  auto docs = transformer.Transform("garbage that is not ENZYME format");
  EXPECT_FALSE(docs.ok());
}

}  // namespace
}  // namespace xomatiq::hounds
