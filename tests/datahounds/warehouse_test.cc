#include "datahounds/warehouse.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "datagen/corpus.h"
#include "datahounds/generic_schema.h"

namespace xomatiq::hounds {
namespace {

using rel::Database;

datagen::Corpus SmallCorpus(uint64_t seed = 42) {
  datagen::CorpusOptions options;
  options.seed = seed;
  options.num_enzymes = 12;
  options.num_proteins = 12;
  options.num_nucleotides = 12;
  return datagen::GenerateCorpus(options);
}

TEST(WarehouseTest, LoadSourceShredsAllEntries) {
  auto db = Database::OpenInMemory();
  auto warehouse = Warehouse::Open(db.get());
  ASSERT_TRUE(warehouse.ok());
  datagen::Corpus corpus = SmallCorpus();
  EnzymeXmlTransformer transformer;
  auto stats = (*warehouse)
                   ->LoadSource("hlx_enzyme.DEFAULT", transformer,
                                datagen::ToEnzymeFlatFile(corpus));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->documents, 12u);
  EXPECT_GT(stats->nodes, 12u * 8);
  auto ids = (*warehouse)->DocumentsIn("hlx_enzyme.DEFAULT");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 12u);
}

TEST(WarehouseTest, CollectionMetadataRegistered) {
  auto db = Database::OpenInMemory();
  auto warehouse = Warehouse::Open(db.get());
  EnzymeXmlTransformer transformer;
  ASSERT_TRUE(
      (*warehouse)->RegisterCollection("hlx_enzyme.DEFAULT", transformer)
          .ok());
  const Warehouse::Collection* c =
      (*warehouse)->FindCollection("hlx_enzyme.DEFAULT");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->root_element, "hlx_enzyme");
  EXPECT_EQ(c->source, "enzyme");
  EXPECT_FALSE(c->dtd.elements().empty());
  // Registration is idempotent.
  EXPECT_TRUE(
      (*warehouse)->RegisterCollection("hlx_enzyme.DEFAULT", transformer)
          .ok());
  EXPECT_EQ((*warehouse)->CollectionNames(),
            std::vector<std::string>{"hlx_enzyme.DEFAULT"});
}

TEST(WarehouseTest, InvalidDocumentRejected) {
  auto db = Database::OpenInMemory();
  auto warehouse = Warehouse::Open(db.get());
  EnzymeXmlTransformer transformer;
  ASSERT_TRUE(
      (*warehouse)->RegisterCollection("hlx_enzyme.DEFAULT", transformer)
          .ok());
  xml::XmlDocument bogus;
  bogus.CreateRoot("hlx_enzyme")->AddElement("wrong_child");
  auto r = (*warehouse)->LoadDocument("hlx_enzyme.DEFAULT", bogus, "u");
  ASSERT_FALSE(r.ok());
  // DTD violations are typed as constraint violations (Dtd::CheckValid).
  EXPECT_EQ(r.status().code(), common::StatusCode::kConstraintViolation);
  EXPECT_NE(r.status().message().find("DTD"), std::string::npos);
}

TEST(WarehouseTest, UnknownCollectionRejected) {
  auto db = Database::OpenInMemory();
  auto warehouse = Warehouse::Open(db.get());
  xml::XmlDocument doc;
  doc.CreateRoot("x");
  EXPECT_FALSE((*warehouse)->LoadDocument("ghost", doc, "u").ok());
}

TEST(WarehouseTest, SyncDetectsAddUpdateRemoveUnchanged) {
  auto db = Database::OpenInMemory();
  auto warehouse = Warehouse::Open(db.get());
  datagen::Corpus corpus = SmallCorpus();
  EnzymeXmlTransformer transformer;
  ASSERT_TRUE((*warehouse)
                  ->LoadSource("hlx_enzyme.DEFAULT", transformer,
                               datagen::ToEnzymeFlatFile(corpus))
                  .ok());
  std::vector<ChangeEvent> events;
  (*warehouse)->Subscribe([&](const ChangeEvent& e) { events.push_back(e); });

  // Mutate the remote copy: change entry 0, drop entry 1, add a new one.
  datagen::Corpus updated = corpus;
  updated.enzymes[0].comments.push_back("a brand new comment");
  updated.enzymes.erase(updated.enzymes.begin() + 1);
  flatfile::EnzymeEntry fresh = datagen::Figure2Entry();
  updated.enzymes.push_back(fresh);

  auto stats = (*warehouse)
                   ->SyncSource("hlx_enzyme.DEFAULT", transformer,
                                datagen::ToEnzymeFlatFile(updated));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->added, 1u);
  EXPECT_EQ(stats->updated, 1u);
  EXPECT_EQ(stats->removed, 1u);
  EXPECT_EQ(stats->unchanged, 10u);

  // Triggers fired once per change (paper §2.2: "sends out triggers to
  // related applications").
  ASSERT_EQ(events.size(), 3u);
  size_t added = 0, updated_count = 0, removed = 0;
  for (const ChangeEvent& e : events) {
    switch (e.kind) {
      case ChangeEvent::Kind::kAdded:
        ++added;
        EXPECT_EQ(e.uri, "enzyme:" + fresh.id);
        break;
      case ChangeEvent::Kind::kUpdated:
        ++updated_count;
        break;
      case ChangeEvent::Kind::kRemoved:
        ++removed;
        break;
    }
  }
  EXPECT_EQ(added, 1u);
  EXPECT_EQ(updated_count, 1u);
  EXPECT_EQ(removed, 1u);

  // Document count adjusted.
  auto ids = (*warehouse)->DocumentsIn("hlx_enzyme.DEFAULT");
  EXPECT_EQ(ids->size(), 12u);
  // The removed entry's uri is gone; the new one resolvable.
  EXPECT_FALSE(
      (*warehouse)->FindDocument("enzyme:" + corpus.enzymes[1].id).ok());
  EXPECT_TRUE((*warehouse)->FindDocument("enzyme:" + fresh.id).ok());
}

TEST(WarehouseTest, SyncIsIdempotent) {
  auto db = Database::OpenInMemory();
  auto warehouse = Warehouse::Open(db.get());
  datagen::Corpus corpus = SmallCorpus();
  EnzymeXmlTransformer transformer;
  std::string raw = datagen::ToEnzymeFlatFile(corpus);
  ASSERT_TRUE(
      (*warehouse)->LoadSource("hlx_enzyme.DEFAULT", transformer, raw).ok());
  auto stats =
      (*warehouse)->SyncSource("hlx_enzyme.DEFAULT", transformer, raw);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->added, 0u);
  EXPECT_EQ(stats->updated, 0u);
  EXPECT_EQ(stats->removed, 0u);
  EXPECT_EQ(stats->unchanged, 12u);
}

TEST(WarehouseTest, ReconstructDocumentMatchesSource) {
  auto db = Database::OpenInMemory();
  auto warehouse = Warehouse::Open(db.get());
  datagen::Corpus corpus = SmallCorpus();
  EnzymeXmlTransformer transformer;
  ASSERT_TRUE((*warehouse)
                  ->LoadSource("hlx_enzyme.DEFAULT", transformer,
                               datagen::ToEnzymeFlatFile(corpus))
                  .ok());
  auto doc_id =
      (*warehouse)->FindDocument("enzyme:" + corpus.enzymes[3].id);
  ASSERT_TRUE(doc_id.ok());
  auto doc = (*warehouse)->ReconstructDocument(*doc_id);
  ASSERT_TRUE(doc.ok());
  auto entry = EnzymeXmlTransformer::XmlToEntry(*doc->root());
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(*entry, corpus.enzymes[3]);
}

TEST(WarehouseTest, PersistsAcrossReopen) {
  std::string dir = testing::TempDir() + "/xq_wh_persist";
  std::filesystem::remove_all(dir);
  datagen::Corpus corpus = SmallCorpus();
  EnzymeXmlTransformer transformer;
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok());
    auto warehouse = Warehouse::Open(db->get());
    ASSERT_TRUE(warehouse.ok());
    ASSERT_TRUE((*warehouse)
                    ->LoadSource("hlx_enzyme.DEFAULT", transformer,
                                 datagen::ToEnzymeFlatFile(corpus))
                    .ok());
  }  // crash before checkpoint: WAL only
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok());
    auto warehouse = Warehouse::Open(db->get());
    ASSERT_TRUE(warehouse.ok());
    // Collections come back from the catalog table.
    ASSERT_NE((*warehouse)->FindCollection("hlx_enzyme.DEFAULT"), nullptr);
    auto ids = (*warehouse)->DocumentsIn("hlx_enzyme.DEFAULT");
    ASSERT_TRUE(ids.ok());
    EXPECT_EQ(ids->size(), 12u);
    // Reconstruction works on recovered state.
    auto doc = (*warehouse)->ReconstructDocument(ids->front());
    ASSERT_TRUE(doc.ok());
    auto entry = EnzymeXmlTransformer::XmlToEntry(*doc->root());
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(*entry, corpus.enzymes[0]);
    // And incremental sync still works after recovery.
    auto stats = (*warehouse)
                     ->SyncSource("hlx_enzyme.DEFAULT", transformer,
                                  datagen::ToEnzymeFlatFile(corpus));
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->unchanged, 12u);
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  std::filesystem::remove_all(dir);
}

TEST(WarehouseTest, DuplicateUriRejected) {
  auto db = Database::OpenInMemory();
  auto warehouse = Warehouse::Open(db.get());
  EnzymeXmlTransformer transformer;
  std::string raw =
      flatfile::FormatEnzymeEntry(datagen::Figure2Entry());
  ASSERT_TRUE(
      (*warehouse)->LoadSource("hlx_enzyme.DEFAULT", transformer, raw).ok());
  // A second full load of the same entry collides on the unique uri
  // index (use SyncSource for refreshes).
  auto again =
      (*warehouse)->LoadSource("hlx_enzyme.DEFAULT", transformer, raw);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(),
            common::StatusCode::kConstraintViolation);
  // SyncSource handles it as an unchanged entry.
  auto sync =
      (*warehouse)->SyncSource("hlx_enzyme.DEFAULT", transformer, raw);
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ(sync->unchanged, 1u);
}

TEST(ContentHashTest, SensitiveToContent) {
  xml::XmlDocument a;
  a.CreateRoot("r")->AddTextElement("x", "1");
  xml::XmlDocument b;
  b.CreateRoot("r")->AddTextElement("x", "2");
  xml::XmlDocument a2;
  a2.CreateRoot("r")->AddTextElement("x", "1");
  EXPECT_NE(ContentHash(a), ContentHash(b));
  EXPECT_EQ(ContentHash(a), ContentHash(a2));
}

}  // namespace
}  // namespace xomatiq::hounds
