#include "xml/parser.h"

#include <gtest/gtest.h>

namespace xomatiq::xml {
namespace {

TEST(XmlParserTest, MinimalDocument) {
  auto doc = ParseXml("<root/>");
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->root(), nullptr);
  EXPECT_EQ(doc->root()->name(), "root");
  EXPECT_TRUE(doc->root()->children().empty());
}

TEST(XmlParserTest, DeclarationAndDoctype) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE hlx_enzyme [ <!ELEMENT hlx_enzyme (x)> ]>\n"
      "<hlx_enzyme><x>1</x></hlx_enzyme>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->doctype_name(), "hlx_enzyme");
  EXPECT_EQ(doc->root()->ChildText("x"), "1");
}

TEST(XmlParserTest, AttributesBothQuoteStyles) {
  auto doc = ParseXml("<e a=\"1\" b='two' c=\"with 'quotes'\"/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->root()->FindAttribute("a"), "1");
  EXPECT_EQ(*doc->root()->FindAttribute("b"), "two");
  EXPECT_EQ(*doc->root()->FindAttribute("c"), "with 'quotes'");
}

TEST(XmlParserTest, DuplicateAttributeRejected) {
  EXPECT_FALSE(ParseXml("<e a=\"1\" a=\"2\"/>").ok());
}

TEST(XmlParserTest, EntityDecoding) {
  auto doc = ParseXml("<e a=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->root()->FindAttribute("a"), "<&>");
  EXPECT_EQ(doc->root()->Text(), "\"x' AB");
}

TEST(XmlParserTest, NumericEntityUtf8) {
  auto doc = ParseXml("<e>&#955;&#x1F9EC;</e>");  // lambda + dna emoji
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->Text(), "\xCE\xBB\xF0\x9F\xA7\xAC");
}

TEST(XmlParserTest, BadEntitiesRejected) {
  EXPECT_FALSE(ParseXml("<e>&nope;</e>").ok());
  EXPECT_FALSE(ParseXml("<e>&#xZZ;</e>").ok());
  EXPECT_FALSE(ParseXml("<e>&#0;</e>").ok());
  EXPECT_FALSE(ParseXml("<e>& loose</e>").ok());
}

TEST(XmlParserTest, Cdata) {
  auto doc = ParseXml("<e><![CDATA[a <raw> & b]]></e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->Text(), "a <raw> & b");
}

TEST(XmlParserTest, CommentsSkippedByDefault) {
  auto doc = ParseXml("<e><!-- hidden --><x>1</x></e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->children().size(), 1u);
}

TEST(XmlParserTest, CommentsKeptOnRequest) {
  ParseOptions options;
  options.keep_comments = true;
  auto doc = ParseXml("<e><!-- hello --></e>", options);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root()->children().size(), 1u);
  EXPECT_EQ(doc->root()->children()[0]->kind(), NodeKind::kComment);
  EXPECT_EQ(doc->root()->children()[0]->value(), " hello ");
}

TEST(XmlParserTest, WhitespaceStrippingToggle) {
  const char* text = "<e>\n  <x>1</x>\n</e>";
  auto stripped = ParseXml(text);
  ASSERT_TRUE(stripped.ok());
  EXPECT_EQ(stripped->root()->children().size(), 1u);
  ParseOptions keep;
  keep.strip_whitespace_text = false;
  auto kept = ParseXml(text, keep);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->root()->children().size(), 3u);
}

TEST(XmlParserTest, NestedStructure) {
  auto doc = ParseXml(
      "<a><b><c>deep</c></b><b><c>two</c></b></a>");
  ASSERT_TRUE(doc.ok());
  auto bs = doc->root()->ChildElements("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[1]->ChildText("c"), "two");
}

TEST(XmlParserTest, WellFormednessErrors) {
  const char* bad[] = {
      "",                          // empty
      "<a>",                       // unterminated
      "<a></b>",                   // mismatched tags
      "<a><b></a></b>",            // interleaved
      "<a attr></a>",              // attribute without value
      "<a 'x'=1/>",                // bad attribute name
      "<a/><b/>",                  // two roots
      "text only",                 // no element
      "<a>text</a> trailing<b/>",  // trailing content
      "<a attr=\"x></a>",          // unterminated attribute
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseXml(text).ok()) << text;
  }
}

TEST(XmlParserTest, DepthLimitGuardsTheStack) {
  // 400 levels parse fine; 600 exceed the limit and fail cleanly.
  auto nested = [](size_t depth) {
    std::string text;
    for (size_t i = 0; i < depth; ++i) text += "<e>";
    text += "x";
    for (size_t i = 0; i < depth; ++i) text += "</e>";
    return text;
  };
  EXPECT_TRUE(ParseXml(nested(400)).ok());
  auto deep = ParseXml(nested(600));
  ASSERT_FALSE(deep.ok());
  EXPECT_NE(deep.status().message().find("depth limit"), std::string::npos);
}

TEST(XmlParserTest, ProcessingInstructionsKeptOnRequest) {
  ParseOptions options;
  options.keep_processing_instructions = true;
  auto doc = ParseXml("<e><?target payload here?></e>", options);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root()->children().size(), 1u);
  EXPECT_EQ(doc->root()->children()[0]->kind(),
            NodeKind::kProcessingInstruction);
  EXPECT_EQ(doc->root()->children()[0]->name(), "target");
  EXPECT_EQ(doc->root()->children()[0]->value(), "payload here");
}

TEST(XmlParserTest, NamesAllowColonsAndDots) {
  auto doc = ParseXml("<ns:e x.y-z=\"1\"/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->name(), "ns:e");
}

TEST(DecodeEntitiesTest, PlainTextPassThrough) {
  auto out = DecodeEntities("no entities at all");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "no entities at all");
}

}  // namespace
}  // namespace xomatiq::xml
