#include "xml/dtd.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "xml/parser.h"

namespace xomatiq::xml {
namespace {

constexpr char kEnzymeDtd[] = R"(
<!ELEMENT hlx_enzyme (db_entry)>
<!ELEMENT db_entry (enzyme_id, enzyme_description+, alternate_name_list,
  catalytic_activity*, cofactor_list?)>
<!ELEMENT enzyme_id (#PCDATA)>
<!ELEMENT enzyme_description (#PCDATA)>
<!ELEMENT alternate_name_list (alternate_name*)>
<!ELEMENT alternate_name (#PCDATA)>
<!ELEMENT catalytic_activity (#PCDATA)>
<!ELEMENT cofactor_list (cofactor*)>
<!ELEMENT cofactor (#PCDATA)>
<!ATTLIST cofactor
  role (primary | secondary) "primary"
  code NMTOKEN #REQUIRED
  note CDATA #IMPLIED
  fixed_val CDATA #FIXED "constant">
)";

Dtd MustParse(std::string_view text) {
  auto dtd = ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return dtd.ok() ? std::move(*dtd) : Dtd();
}

TEST(DtdParserTest, ParsesDeclarations) {
  Dtd dtd = MustParse(kEnzymeDtd);
  EXPECT_EQ(dtd.elements().size(), 9u);
  const DtdElement* entry = dtd.FindElement("db_entry");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->content, ContentKind::kModel);
  EXPECT_EQ(entry->model.ToString(),
            "(enzyme_id, enzyme_description+, alternate_name_list, "
            "catalytic_activity*, cofactor_list?)");
  const DtdElement* id = dtd.FindElement("enzyme_id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->content, ContentKind::kPcdataOnly);
}

TEST(DtdParserTest, ParsesAttributes) {
  Dtd dtd = MustParse(kEnzymeDtd);
  const DtdElement* cofactor = dtd.FindElement("cofactor");
  ASSERT_NE(cofactor, nullptr);
  ASSERT_EQ(cofactor->attributes.size(), 4u);
  EXPECT_EQ(cofactor->attributes[0].type, AttrType::kEnum);
  EXPECT_EQ(cofactor->attributes[0].enum_values,
            (std::vector<std::string>{"primary", "secondary"}));
  EXPECT_EQ(cofactor->attributes[0].def, AttrDefault::kDefault);
  EXPECT_EQ(cofactor->attributes[0].default_value, "primary");
  EXPECT_EQ(cofactor->attributes[1].type, AttrType::kNmtoken);
  EXPECT_EQ(cofactor->attributes[1].def, AttrDefault::kRequired);
  EXPECT_EQ(cofactor->attributes[3].def, AttrDefault::kFixed);
  EXPECT_EQ(cofactor->attributes[3].default_value, "constant");
}

TEST(DtdParserTest, MixedEmptyAnyChoice) {
  Dtd dtd = MustParse(R"(
<!ELEMENT para (#PCDATA | em | strong)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT strong (#PCDATA)>
<!ELEMENT hr EMPTY>
<!ELEMENT anybox ANY>
<!ELEMENT choice ((a | b), c)>
<!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>
)");
  EXPECT_EQ(dtd.FindElement("para")->content, ContentKind::kMixed);
  EXPECT_EQ(dtd.FindElement("para")->mixed_names,
            (std::vector<std::string>{"em", "strong"}));
  EXPECT_EQ(dtd.FindElement("hr")->content, ContentKind::kEmpty);
  EXPECT_EQ(dtd.FindElement("anybox")->content, ContentKind::kAny);
  EXPECT_EQ(dtd.FindElement("choice")->model.ToString(), "((a | b), c)");
}

TEST(DtdParserTest, Errors) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT broken").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT x (a,|b)>").ok());
  EXPECT_FALSE(ParseDtd("<!WEIRD x>").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT x (#PCDATA)>\n<!ELEMENT x (#PCDATA)>").ok());
  EXPECT_FALSE(ParseDtd("<!ATTLIST e a BADTYPE #REQUIRED>").ok());
}

TEST(DtdParserTest, InferRootElement) {
  Dtd dtd = MustParse(kEnzymeDtd);
  EXPECT_EQ(dtd.InferRootElement(), "hlx_enzyme");
}

TEST(DtdParserTest, ToStringRoundTrips) {
  Dtd dtd = MustParse(kEnzymeDtd);
  std::string emitted = dtd.ToString();
  Dtd reparsed = MustParse(emitted);
  EXPECT_EQ(reparsed.elements().size(), dtd.elements().size());
  EXPECT_EQ(reparsed.ToString(), emitted);
}

// --- validation ---------------------------------------------------------

class DtdValidatorTest : public ::testing::Test {
 protected:
  DtdValidatorTest() : dtd_(MustParse(kEnzymeDtd)) {}

  bool Valid(const std::string& xml_text,
             std::vector<std::string>* errors = nullptr) {
    auto doc = ParseXml(xml_text);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    std::vector<std::string> local;
    bool ok = dtd_.Validate(*doc, errors != nullptr ? errors : &local);
    return ok;
  }

  Dtd dtd_;
};

TEST_F(DtdValidatorTest, AcceptsConformingDocument) {
  EXPECT_TRUE(Valid(R"(
<hlx_enzyme><db_entry>
  <enzyme_id>1.1.1.1</enzyme_id>
  <enzyme_description>one</enzyme_description>
  <enzyme_description>two</enzyme_description>
  <alternate_name_list/>
  <catalytic_activity>a = b</catalytic_activity>
  <cofactor_list><cofactor code="CU">Copper</cofactor></cofactor_list>
</db_entry></hlx_enzyme>)"));
}

TEST_F(DtdValidatorTest, OptionalPartsMayBeAbsent) {
  // catalytic_activity* and cofactor_list? can both be missing.
  EXPECT_TRUE(Valid(R"(
<hlx_enzyme><db_entry>
  <enzyme_id>1.1.1.1</enzyme_id>
  <enzyme_description>one</enzyme_description>
  <alternate_name_list/>
</db_entry></hlx_enzyme>)"));
}

TEST_F(DtdValidatorTest, MissingRequiredChildFails) {
  std::vector<std::string> errors;
  EXPECT_FALSE(Valid(R"(
<hlx_enzyme><db_entry>
  <enzyme_id>1.1.1.1</enzyme_id>
  <alternate_name_list/>
</db_entry></hlx_enzyme>)",
                     &errors));
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("do not match model"), std::string::npos);
}

TEST_F(DtdValidatorTest, WrongOrderFails) {
  EXPECT_FALSE(Valid(R"(
<hlx_enzyme><db_entry>
  <enzyme_description>one</enzyme_description>
  <enzyme_id>1.1.1.1</enzyme_id>
  <alternate_name_list/>
</db_entry></hlx_enzyme>)"));
}

TEST_F(DtdValidatorTest, UndeclaredElementFails) {
  std::vector<std::string> errors;
  EXPECT_FALSE(Valid("<mystery/>", &errors));
  EXPECT_NE(errors[0].find("undeclared element"), std::string::npos);
}

TEST_F(DtdValidatorTest, TextInsideElementContentFails) {
  EXPECT_FALSE(Valid(R"(
<hlx_enzyme><db_entry>stray text<enzyme_id>1</enzyme_id>
  <enzyme_description>d</enzyme_description><alternate_name_list/>
</db_entry></hlx_enzyme>)"));
}

TEST_F(DtdValidatorTest, ElementInsidePcdataFails) {
  EXPECT_FALSE(Valid(R"(
<hlx_enzyme><db_entry>
  <enzyme_id><alternate_name/></enzyme_id>
  <enzyme_description>d</enzyme_description><alternate_name_list/>
</db_entry></hlx_enzyme>)"));
}

TEST_F(DtdValidatorTest, AttributeChecks) {
  std::vector<std::string> errors;
  // Missing #REQUIRED code.
  EXPECT_FALSE(Valid(R"(
<hlx_enzyme><db_entry>
  <enzyme_id>1</enzyme_id><enzyme_description>d</enzyme_description>
  <alternate_name_list/>
  <cofactor_list><cofactor>Cu</cofactor></cofactor_list>
</db_entry></hlx_enzyme>)",
                     &errors));
  EXPECT_NE(errors.back().find("required attribute"), std::string::npos);
  // Enum violation.
  EXPECT_FALSE(Valid(R"(
<hlx_enzyme><db_entry>
  <enzyme_id>1</enzyme_id><enzyme_description>d</enzyme_description>
  <alternate_name_list/>
  <cofactor_list><cofactor code="CU" role="tertiary">x</cofactor></cofactor_list>
</db_entry></hlx_enzyme>)"));
  // NMTOKEN violation (space inside).
  EXPECT_FALSE(Valid(R"(
<hlx_enzyme><db_entry>
  <enzyme_id>1</enzyme_id><enzyme_description>d</enzyme_description>
  <alternate_name_list/>
  <cofactor_list><cofactor code="C U">x</cofactor></cofactor_list>
</db_entry></hlx_enzyme>)"));
  // Fixed value violation.
  EXPECT_FALSE(Valid(R"(
<hlx_enzyme><db_entry>
  <enzyme_id>1</enzyme_id><enzyme_description>d</enzyme_description>
  <alternate_name_list/>
  <cofactor_list><cofactor code="CU" fixed_val="other">x</cofactor></cofactor_list>
</db_entry></hlx_enzyme>)"));
  // Undeclared attribute.
  EXPECT_FALSE(Valid(R"(
<hlx_enzyme><db_entry>
  <enzyme_id>1</enzyme_id><enzyme_description>d</enzyme_description>
  <alternate_name_list/>
  <cofactor_list><cofactor code="CU" bogus="1">x</cofactor></cofactor_list>
</db_entry></hlx_enzyme>)"));
}

TEST_F(DtdValidatorTest, CollectsMultipleErrors) {
  std::vector<std::string> errors;
  Valid("<hlx_enzyme><db_entry><unknown1/><unknown2/></db_entry></hlx_enzyme>",
        &errors);
  EXPECT_GE(errors.size(), 2u);
}

// Content-model matching corner cases exercised through tiny DTDs.
struct ModelCase {
  const char* model;
  const char* children;  // comma-separated child names, "" = none
  bool valid;
};

class ContentModelTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(ContentModelTest, Matches) {
  const ModelCase& c = GetParam();
  std::string dtd_text = std::string("<!ELEMENT r ") + c.model + ">";
  for (const char* name : {"a", "b", "c"}) {
    dtd_text += std::string("\n<!ELEMENT ") + name + " (#PCDATA)>";
  }
  Dtd dtd = MustParse(dtd_text);
  std::string xml_text = "<r>";
  if (c.children[0] != '\0') {
    for (const std::string& name :
         common::Split(c.children, ',')) {
      xml_text += "<" + name + "/>";
    }
  }
  xml_text += "</r>";
  auto doc = ParseXml(xml_text);
  ASSERT_TRUE(doc.ok());
  std::vector<std::string> errors;
  EXPECT_EQ(dtd.Validate(*doc, &errors), c.valid)
      << c.model << " vs " << c.children << ": "
      << (errors.empty() ? "" : errors[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ContentModelTest,
    ::testing::Values(
        ModelCase{"(a, b)", "a,b", true},
        ModelCase{"(a, b)", "a", false},
        ModelCase{"(a, b)", "b,a", false},
        ModelCase{"(a | b)", "a", true},
        ModelCase{"(a | b)", "b", true},
        ModelCase{"(a | b)", "c", false},
        ModelCase{"(a*)", "", true},
        ModelCase{"(a*)", "a,a,a", true},
        ModelCase{"(a+)", "", false},
        ModelCase{"(a+)", "a,a", true},
        ModelCase{"(a?, b)", "b", true},
        ModelCase{"(a?, b)", "a,b", true},
        ModelCase{"(a?, b)", "a,a,b", false},
        ModelCase{"((a | b)*, c)", "a,b,b,a,c", true},
        ModelCase{"((a | b)*, c)", "c", true},
        ModelCase{"((a | b)*, c)", "a,c,b", false},
        ModelCase{"((a, b)+)", "a,b,a,b", true},
        ModelCase{"((a, b)+)", "a,b,a", false},
        ModelCase{"((a?)*)", "", true},       // empty-matching star must
        ModelCase{"((a?)*)", "a,a", true},    // terminate
        ModelCase{"(a, (b | c)+)", "a,b,c,b", true},
        ModelCase{"(a, (b | c)+)", "a", false}));

TEST(DtdTreeTest, FormatTreeShowsStructure) {
  Dtd dtd = MustParse(kEnzymeDtd);
  std::string tree = dtd.FormatTree("hlx_enzyme");
  EXPECT_EQ(tree.find("hlx_enzyme"), 0u);
  EXPECT_NE(tree.find("+- db_entry"), std::string::npos) << tree;
  EXPECT_NE(tree.find("enzyme_id (#PCDATA)"), std::string::npos) << tree;
  EXPECT_NE(tree.find("@code"), std::string::npos) << tree;
  EXPECT_EQ(dtd.FormatTree("nonexistent"), "(unknown element nonexistent)\n");
}

TEST(DtdTreeTest, RecursiveModelsDoNotLoop) {
  Dtd dtd = MustParse(R"(
<!ELEMENT tree (leaf | tree)*>
<!ELEMENT leaf (#PCDATA)>
)");
  std::string out = dtd.FormatTree("tree");
  EXPECT_FALSE(out.empty());
  EXPECT_LT(out.size(), 10000u);
}

}  // namespace
}  // namespace xomatiq::xml
