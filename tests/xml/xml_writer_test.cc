#include "xml/writer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/parser.h"

namespace xomatiq::xml {
namespace {

TEST(XmlWriterTest, EscapesSpecials) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeText("\"q\" 'a'", /*for_attribute=*/true),
            "&quot;q&quot; &apos;a&apos;");
  EXPECT_EQ(EscapeText("\"q\""), "\"q\"");
}

TEST(XmlWriterTest, CompactSerialization) {
  XmlDocument doc;
  XmlNode* root = doc.CreateRoot("r");
  root->AddTextElement("x", "1 < 2");
  XmlNode* e = root->AddElement("e");
  e->AddAttribute("a", "v&w");
  WriteOptions options;
  options.pretty = false;
  options.declaration = false;
  EXPECT_EQ(WriteXml(doc, options),
            "<r><x>1 &lt; 2</x><e a=\"v&amp;w\"/></r>");
}

TEST(XmlWriterTest, DeclarationEmitted) {
  XmlDocument doc;
  doc.CreateRoot("r");
  std::string out = WriteXml(doc);
  EXPECT_EQ(out.find("<?xml version=\"1.0\" encoding=\"UTF-8\"?>"), 0u);
}

TEST(XmlWriterTest, PrettyIndentation) {
  XmlDocument doc;
  XmlNode* root = doc.CreateRoot("r");
  root->AddElement("list")->AddTextElement("item", "x");
  std::string out = WriteXml(doc);
  EXPECT_NE(out.find("\n  <list>"), std::string::npos) << out;
  EXPECT_NE(out.find("\n    <item>x</item>"), std::string::npos) << out;
}

// Deterministic random data-centric document (text only in leaves).
std::unique_ptr<XmlNode> RandomTree(common::Rng* rng, int depth) {
  static const char* kNames[] = {"entry", "name", "list", "value", "ref"};
  auto node = std::make_unique<XmlNode>(NodeKind::kElement,
                                        kNames[rng->Uniform(5)]);
  if (rng->Bernoulli(0.5)) {
    node->AddAttribute("id", std::to_string(rng->Uniform(1000)));
  }
  if (rng->Bernoulli(0.3)) {
    node->AddAttribute("type", "a<&>'\"b");
  }
  size_t children = depth > 0 ? rng->Uniform(4) : 0;
  if (children == 0) {
    if (rng->Bernoulli(0.8)) {
      node->AddText("text & <" + std::to_string(rng->Uniform(100)) + ">");
    }
    return node;
  }
  for (size_t i = 0; i < children; ++i) {
    node->AppendChild(RandomTree(rng, depth - 1));
  }
  return node;
}

// Property: Parse(Write(doc)) == doc for every serialization mode on
// data-centric documents.
class WriterRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WriterRoundTripTest, CompactRoundTrip) {
  common::Rng rng(GetParam());
  XmlDocument doc;
  doc.SetRoot(RandomTree(&rng, 4));
  WriteOptions options;
  options.pretty = false;
  std::string text = WriteXml(doc, options);
  auto reparsed = ParseXml(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_TRUE(XmlNode::DeepEqual(*doc.root(), *reparsed->root())) << text;
}

TEST_P(WriterRoundTripTest, PrettyRoundTrip) {
  common::Rng rng(GetParam() + 1000);
  XmlDocument doc;
  doc.SetRoot(RandomTree(&rng, 4));
  std::string text = WriteXml(doc);
  auto reparsed = ParseXml(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_TRUE(XmlNode::DeepEqual(*doc.root(), *reparsed->root())) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriterRoundTripTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace xomatiq::xml
