#include "xml/dom.h"

#include <gtest/gtest.h>

namespace xomatiq::xml {
namespace {

std::unique_ptr<XmlNode> BuildSample() {
  auto root = std::make_unique<XmlNode>(NodeKind::kElement, "db_entry");
  root->AddTextElement("enzyme_id", "1.14.17.3");
  XmlNode* list = root->AddElement("alternate_name_list");
  list->AddTextElement("alternate_name", "first");
  list->AddTextElement("alternate_name", "second");
  XmlNode* ref = root->AddElement("reference");
  ref->AddAttribute("name", "AMD_BOVIN");
  ref->AddAttribute("swissprot_accession_number", "P10731");
  return root;
}

TEST(DomTest, ChildNavigation) {
  auto root = BuildSample();
  EXPECT_EQ(root->ChildText("enzyme_id"), "1.14.17.3");
  EXPECT_EQ(root->FirstChildElement("missing"), nullptr);
  const XmlNode* list = root->FirstChildElement("alternate_name_list");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->ChildElements("alternate_name").size(), 2u);
  EXPECT_EQ(root->ChildElements().size(), 3u);
}

TEST(DomTest, Attributes) {
  auto root = BuildSample();
  const XmlNode* ref = root->FirstChildElement("reference");
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(ref->FindAttribute("name"), nullptr);
  EXPECT_EQ(*ref->FindAttribute("name"), "AMD_BOVIN");
  EXPECT_EQ(ref->FindAttribute("nope"), nullptr);
  EXPECT_EQ(ref->attributes().size(), 2u);
}

TEST(DomTest, DescendantsAndVisit) {
  auto root = BuildSample();
  EXPECT_EQ(root->Descendants("alternate_name").size(), 2u);
  size_t visited = 0;
  root->Visit([&](const XmlNode&) {
    ++visited;
    return true;
  });
  // db_entry + enzyme_id + text + list + 2*(name + text) + reference.
  EXPECT_EQ(visited, root->SubtreeSize());
  EXPECT_EQ(visited, 9u);
  // Early stop.
  size_t stopped = 0;
  root->Visit([&](const XmlNode&) { return ++stopped < 3; });
  EXPECT_EQ(stopped, 3u);
}

TEST(DomTest, LabelPath) {
  XmlDocument doc;
  XmlNode* root = doc.CreateRoot("hlx_enzyme");
  XmlNode* entry = root->AddElement("db_entry");
  XmlNode* id = entry->AddElement("enzyme_id");
  EXPECT_EQ(root->LabelPath(), "/hlx_enzyme");
  EXPECT_EQ(id->LabelPath(), "/hlx_enzyme/db_entry/enzyme_id");
}

TEST(DomTest, CloneIsDeepAndEqual) {
  auto root = BuildSample();
  auto copy = root->Clone();
  EXPECT_TRUE(XmlNode::DeepEqual(*root, *copy));
  EXPECT_NE(root.get(), copy.get());
  copy->AddElement("extra");
  EXPECT_FALSE(XmlNode::DeepEqual(*root, *copy));
}

TEST(DomTest, DeepEqualIsOrderSensitive) {
  auto a = std::make_unique<XmlNode>(NodeKind::kElement, "r");
  a->AddTextElement("x", "1");
  a->AddTextElement("y", "2");
  auto b = std::make_unique<XmlNode>(NodeKind::kElement, "r");
  b->AddTextElement("y", "2");
  b->AddTextElement("x", "1");
  EXPECT_FALSE(XmlNode::DeepEqual(*a, *b));
}

TEST(DomTest, DocumentRootAccess) {
  XmlDocument doc;
  EXPECT_EQ(doc.root(), nullptr);
  doc.CreateRoot("top");
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_EQ(doc.root()->name(), "top");
  EXPECT_EQ(doc.root()->parent(), &doc.document_node());
}

TEST(DomTest, DocumentMoveKeepsParentPointers) {
  XmlDocument doc;
  doc.CreateRoot("top")->AddElement("child");
  XmlDocument moved = std::move(doc);
  const XmlNode* root = moved.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->children().front()->parent(), root);
  EXPECT_EQ(root->LabelPath(), "/top");
}

TEST(DomTest, MixedTextConcatenation) {
  auto node = std::make_unique<XmlNode>(NodeKind::kElement, "e");
  node->AddText("a");
  node->AddText("b");
  EXPECT_EQ(node->Text(), "ab");
}

}  // namespace
}  // namespace xomatiq::xml
