// Wire-protocol robustness: encode/decode round trips, rejection of
// malformed bodies, and the framing layer's behavior on truncated frames,
// oversized lengths, partial reads/writes, clean EOF and slow peers.

#include "server/protocol.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <thread>

#include <gtest/gtest.h>

namespace xomatiq::srv {
namespace {

using common::StatusCode;

TEST(ProtocolTest, RequestRoundTrip) {
  Request request;
  request.id = 0x1122334455667788ull;
  request.mode = RequestMode::kXqXml;
  request.text = "FOR $a IN document(\"db\")/root RETURN $a";
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_EQ(decoded->mode, request.mode);
  EXPECT_EQ(decoded->text, request.text);
}

TEST(ProtocolTest, OptionsTraceIdRoundTrip) {
  Request request;
  request.id = 3;
  request.mode = RequestMode::kSql;
  request.text = "SELECT 1";
  request.has_options = true;
  request.options.trace = true;
  request.options.deadline_ms = 250;
  request.options.trace_id = 0xfeedfacecafebeefULL;
  std::string with_id = EncodeRequest(request);
  auto decoded = DecodeRequest(with_id);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->has_options);
  EXPECT_TRUE(decoded->options.trace);
  EXPECT_EQ(decoded->options.deadline_ms, 250u);
  EXPECT_EQ(decoded->options.trace_id, 0xfeedfacecafebeefULL);
  // Without an id the options tail keeps its pre-trace-context shape —
  // exactly 8 bytes shorter — so 1.1 decoders still accept it.
  request.options.trace_id = 0;
  std::string without_id = EncodeRequest(request);
  EXPECT_EQ(without_id.size() + 8, with_id.size());
  auto decoded_plain = DecodeRequest(without_id);
  ASSERT_TRUE(decoded_plain.ok());
  EXPECT_EQ(decoded_plain->options.trace_id, 0u);
}

TEST(ProtocolTest, OptionsMinLsnRoundTrip) {
  Request request;
  request.id = 4;
  request.mode = RequestMode::kSql;
  request.text = "SELECT COUNT(*) FROM kv";
  request.has_options = true;
  request.options.min_lsn = 0x1000000001ULL;
  std::string with_lsn = EncodeRequest(request);
  auto decoded = DecodeRequest(with_lsn);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->has_options);
  EXPECT_EQ(decoded->options.min_lsn, 0x1000000001ULL);
  // Without a token the tail keeps its pre-1.3 shape — exactly 8 bytes
  // shorter — so 1.2 decoders still accept it.
  request.options.min_lsn = 0;
  std::string without_lsn = EncodeRequest(request);
  EXPECT_EQ(without_lsn.size() + 8, with_lsn.size());
  auto decoded_plain = DecodeRequest(without_lsn);
  ASSERT_TRUE(decoded_plain.ok());
  EXPECT_EQ(decoded_plain->options.min_lsn, 0u);
}

TEST(ProtocolTest, ResponseLsnRoundTrip) {
  Response response;
  response.id = 11;
  response.kind = PayloadKind::kRows;
  response.columns = {"n"};
  response.rows.push_back({rel::Value::Int(5)});
  response.flags = kFlagLsn;
  response.lsn = 987654321;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->lsn, 987654321u);
  ASSERT_EQ(decoded->rows.size(), 1u);
  EXPECT_EQ(decoded->rows[0][0].AsInt(), 5);
  // No flag, no trailing u64 — a 1.2 response decodes with lsn 0.
  response.flags = 0;
  response.lsn = 0;
  auto decoded_plain = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded_plain.ok());
  EXPECT_EQ(decoded_plain->lsn, 0u);
}

TEST(ProtocolTest, LsnTrailsPayloadSoCachedBodiesStayPatchable) {
  // The trailing LSN sits AFTER the payload, so the result cache's
  // flags-byte patching (previous test) remains valid for LSN-stamped
  // bodies: byte kFlagsOffset is still the flags byte.
  Response response;
  response.id = 12;
  response.kind = PayloadKind::kText;
  response.text = "payload";
  std::string plain = EncodeResponseBody(response);
  response.flags = kFlagLsn;
  response.lsn = 42;
  std::string stamped = EncodeResponseBody(response);
  EXPECT_EQ(stamped.size(), plain.size() + 8);
  EXPECT_EQ(stamped[kFlagsOffset] & kFlagLsn, kFlagLsn);
  stamped[kFlagsOffset] |= kFlagCached;
  std::string framed = EncodeResponse(response);
  framed[8 + kFlagsOffset] |= kFlagCached;
  auto decoded = DecodeResponse(framed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->cached());
  EXPECT_EQ(decoded->lsn, 42u);
  EXPECT_EQ(decoded->text, "payload");
}

TEST(ProtocolTest, HelloAdvertisesLsnFeature) {
  EXPECT_NE(kSupportedFeatures & kFeatureLsn, 0u);
}

TEST(ProtocolTest, HelloAdvertisesTraceContextFeature) {
  Hello hello;
  EXPECT_NE(kSupportedFeatures & kFeatureTraceContext, 0u);
  auto decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->features, hello.features);
}

TEST(ProtocolTest, RowsResponseRoundTrip) {
  Response response;
  response.id = 7;
  response.kind = PayloadKind::kRows;
  response.columns = {"id", "score", "name"};
  response.rows.push_back(
      {rel::Value::Int(42), rel::Value::Double(1.5), rel::Value::Text("x")});
  response.rows.push_back(
      {rel::Value::Null(), rel::Value::Int(-1), rel::Value::Text("")});
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, 7u);
  EXPECT_TRUE(decoded->ok());
  EXPECT_FALSE(decoded->cached());
  EXPECT_EQ(decoded->columns, response.columns);
  ASSERT_EQ(decoded->rows.size(), 2u);
  EXPECT_EQ(decoded->rows[0][0].AsInt(), 42);
  EXPECT_EQ(decoded->rows[0][2].AsText(), "x");
  EXPECT_TRUE(decoded->rows[1][0].is_null());
}

TEST(ProtocolTest, ErrorResponseRoundTrip) {
  std::string encoded =
      EncodeErrorResponse(9, common::Status::Overloaded("queue full"));
  auto decoded = DecodeResponse(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, 9u);
  EXPECT_EQ(decoded->code, StatusCode::kOverloaded);
  EXPECT_EQ(decoded->error, "queue full");
}

TEST(ProtocolTest, CachedFlagPatchesAtDocumentedOffset) {
  Response response;
  response.id = 3;
  response.kind = PayloadKind::kText;
  response.text = "hello";
  std::string body = EncodeResponseBody(response);
  ASSERT_GT(body.size(), kFlagsOffset);
  body[kFlagsOffset] |= kFlagCached;
  std::string framed = EncodeResponse(response);
  framed[8 + kFlagsOffset] |= kFlagCached;  // after the u64 id
  auto decoded = DecodeResponse(framed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->cached());
  EXPECT_EQ(decoded->text, "hello");
}

TEST(ProtocolTest, DecodeRejectsBadMode) {
  Request request;
  request.text = "q";
  std::string encoded = EncodeRequest(request);
  encoded[8] = 0x7f;  // mode byte
  EXPECT_FALSE(DecodeRequest(encoded).ok());
}

TEST(ProtocolTest, DecodeRejectsTrailingGarbage) {
  std::string encoded = EncodeRequest(Request{});
  encoded += "zzz";
  auto decoded = DecodeRequest(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ProtocolTest, DecodeRejectsTruncatedBody) {
  std::string encoded = EncodeRequest(Request{0, RequestMode::kSql, "select"});
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodeRequest(std::string_view(encoded.data(), len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(ProtocolTest, DecodeResponseRejectsBadStatusAndKind) {
  Response response;
  response.kind = PayloadKind::kText;
  std::string encoded = EncodeResponse(response);
  std::string bad_status = encoded;
  bad_status[8] = 0x7f;
  EXPECT_FALSE(DecodeResponse(bad_status).ok());
  std::string bad_kind = encoded;
  bad_kind[9] = 0x7f;
  EXPECT_FALSE(DecodeResponse(bad_kind).ok());
}

// --- framing over a socketpair ---

class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  void CloseWriter() {
    ::close(fds_[1]);
    fds_[1] = -1;
  }
  int reader() const { return fds_[0]; }
  int writer() const { return fds_[1]; }

  int fds_[2] = {-1, -1};
};

TEST_F(FramingTest, RoundTrip) {
  ASSERT_TRUE(WriteFrame(writer(), "payload").ok());
  ASSERT_TRUE(WriteFrame(writer(), "").ok());
  auto first = ReadFrame(reader(), kDefaultMaxFrameBytes);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, "payload");
  auto second = ReadFrame(reader(), kDefaultMaxFrameBytes);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "");
}

TEST_F(FramingTest, CleanEofIsNotFound) {
  CloseWriter();
  auto frame = ReadFrame(reader(), kDefaultMaxFrameBytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
}

TEST_F(FramingTest, EofMidHeaderIsCorruption) {
  ASSERT_EQ(::send(writer(), "\x08\x00", 2, 0), 2);
  CloseWriter();
  auto frame = ReadFrame(reader(), kDefaultMaxFrameBytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST_F(FramingTest, EofMidBodyIsCorruption) {
  uint32_t len = 100;
  ASSERT_EQ(::send(writer(), &len, 4, 0), 4);
  ASSERT_EQ(::send(writer(), "partial", 7, 0), 7);
  CloseWriter();
  auto frame = ReadFrame(reader(), kDefaultMaxFrameBytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST_F(FramingTest, OversizedLengthIsInvalidArgument) {
  uint32_t len = 1u << 30;
  ASSERT_EQ(::send(writer(), &len, 4, 0), 4);
  auto frame = ReadFrame(reader(), /*max_bytes=*/1024);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FramingTest, PartialWritesReassemble) {
  std::string body(1000, 'q');
  std::thread writer_thread([this, &body] {
    std::string framed;
    uint32_t len = static_cast<uint32_t>(body.size());
    framed.append(reinterpret_cast<char*>(&len), 4);
    framed += body;
    for (char c : framed) {
      ASSERT_EQ(::send(writer(), &c, 1, 0), 1);
    }
  });
  auto frame = ReadFrame(reader(), kDefaultMaxFrameBytes);
  writer_thread.join();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(*frame, body);
}

TEST_F(FramingTest, SlowPeerMidFrameTimesOut) {
  timeval tv{0, 50 * 1000};  // 50ms
  ASSERT_EQ(::setsockopt(reader(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)),
            0);
  uint32_t len = 64;
  ASSERT_EQ(::send(writer(), &len, 4, 0), 4);
  ASSERT_EQ(::send(writer(), "abc", 3, 0), 3);
  // ... and then the peer stalls without closing.
  auto frame = ReadFrame(reader(), kDefaultMaxFrameBytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kTimeout);
}

}  // namespace
}  // namespace xomatiq::srv
