// Result-cache semantics: LRU eviction at capacity, tag-based and
// wildcard invalidation, the generation guard against stale inserts, and
// the hit/miss metrics.

#include "server/result_cache.h"

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace xomatiq::srv {
namespace {

common::Counter* Hits() {
  return common::MetricsRegistry::Global().GetCounter("server.cache.hits");
}
common::Counter* Misses() {
  return common::MetricsRegistry::Global().GetCounter("server.cache.misses");
}

TEST(ResultCacheTest, MakeKeyNormalizesWhitespace) {
  EXPECT_EQ(ResultCache::MakeKey(0, "SELECT  *\n FROM\tt", 7),
            ResultCache::MakeKey(0, "SELECT * FROM t", 7));
  EXPECT_EQ(ResultCache::MakeKey(0, "  SELECT 1  ", 7),
            ResultCache::MakeKey(0, "SELECT 1", 7));
  // Case is preserved and modes do not collide.
  EXPECT_NE(ResultCache::MakeKey(0, "select 1", 7),
            ResultCache::MakeKey(0, "SELECT 1", 7));
  EXPECT_NE(ResultCache::MakeKey(0, "SELECT 1", 7),
            ResultCache::MakeKey(1, "SELECT 1", 7));
}

TEST(ResultCacheTest, MakeKeySeparatesSnapshotEpochs) {
  // One query pinned at two committed epochs must not share a body: the
  // cached rows are byte-exact for the snapshot they were computed at.
  EXPECT_NE(ResultCache::MakeKey(0, "SELECT 1", 7),
            ResultCache::MakeKey(0, "SELECT 1", 8));
  // The epoch is part of the prefix, not the normalized text: a query
  // whose literal happens to contain the epoch digits cannot collide.
  EXPECT_NE(ResultCache::MakeKey(0, "8:SELECT 1", 7),
            ResultCache::MakeKey(0, "SELECT 1", 8));
}

TEST(ResultCacheTest, HitMissAndCounters) {
  ResultCache cache(4);
  uint64_t hits0 = Hits()->Value();
  uint64_t misses0 = Misses()->Value();
  EXPECT_FALSE(cache.Lookup("k").has_value());
  cache.Insert("k", "body", {}, cache.generation());
  auto body = cache.Lookup("k");
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, "body");
  EXPECT_EQ(Hits()->Value(), hits0 + 1);
  EXPECT_EQ(Misses()->Value(), misses0 + 1);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  ResultCache cache(2);
  cache.Insert("a", "1", {}, cache.generation());
  cache.Insert("b", "2", {}, cache.generation());
  ASSERT_TRUE(cache.Lookup("a").has_value());  // refresh a; b is now LRU
  cache.Insert("c", "3", {}, cache.generation());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
}

TEST(ResultCacheTest, InvalidateByTag) {
  ResultCache cache(8);
  cache.Insert("q1", "1", {"hlx_enzyme.DEFAULT"}, cache.generation());
  cache.Insert("q2", "2", {"hlx_sprot.DEFAULT"}, cache.generation());
  cache.Insert("q3", "3", {"hlx_enzyme.DEFAULT", "hlx_sprot.DEFAULT"},
               cache.generation());
  cache.Insert("sql", "4", {}, cache.generation());  // untagged
  cache.Invalidate("hlx_enzyme.DEFAULT");
  EXPECT_FALSE(cache.Lookup("q1").has_value());
  EXPECT_TRUE(cache.Lookup("q2").has_value());
  EXPECT_FALSE(cache.Lookup("q3").has_value());
  // Untagged entries die on any change.
  EXPECT_FALSE(cache.Lookup("sql").has_value());
}

TEST(ResultCacheTest, InvalidateBumpsGenerationAndBlocksStaleInsert) {
  ResultCache cache(8);
  uint64_t generation = cache.generation();
  // A sync happens while the query is executing ...
  cache.Invalidate("hlx_enzyme.DEFAULT");
  // ... so the result computed against the old state must not land.
  cache.Insert("q", "stale", {"hlx_enzyme.DEFAULT"}, generation);
  EXPECT_FALSE(cache.Lookup("q").has_value());
  // With the current generation it lands fine.
  cache.Insert("q", "fresh", {"hlx_enzyme.DEFAULT"}, cache.generation());
  EXPECT_TRUE(cache.Lookup("q").has_value());
}

TEST(ResultCacheTest, ClearEmptiesAndBumps) {
  ResultCache cache(8);
  uint64_t generation = cache.generation();
  cache.Insert("a", "1", {}, generation);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_GT(cache.generation(), generation);
}

TEST(ResultCacheTest, InsertRefreshesExistingEntry) {
  ResultCache cache(2);
  cache.Insert("a", "old", {}, cache.generation());
  cache.Insert("b", "2", {}, cache.generation());
  cache.Insert("a", "new", {"t"}, cache.generation());  // refresh, no growth
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.Lookup("a"), "new");
  cache.Invalidate("t");
  EXPECT_FALSE(cache.Lookup("a").has_value());  // tags were replaced too
}

}  // namespace
}  // namespace xomatiq::srv
