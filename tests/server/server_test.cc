// End-to-end TCP service tests: concurrent mixed SQL/XQuery clients,
// STATS over the wire, overload rejection, protocol robustness against a
// hostile peer, cache invalidation on warehouse sync, graceful shutdown.

#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "client/client.h"
#include "common/metrics.h"
#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "relational/database.h"

namespace xomatiq::srv {
namespace {

using common::StatusCode;

constexpr char kEnzymes[] = "hlx_enzyme.DEFAULT";
constexpr char kEnzymeIdsXq[] =
    "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme "
    "RETURN $a//enzyme_id";

datagen::Corpus MakeCorpus(size_t enzymes) {
  datagen::CorpusOptions options;
  options.num_enzymes = enzymes;
  options.num_proteins = 10;
  options.num_nucleotides = 0;
  return datagen::GenerateCorpus(options);
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = rel::Database::OpenInMemory();
    auto warehouse = hounds::Warehouse::Open(db_.get());
    ASSERT_TRUE(warehouse.ok());
    warehouse_ = std::move(warehouse).value();
    ASSERT_TRUE(warehouse_
                    ->LoadSource(kEnzymes, enzyme_,
                                 datagen::ToEnzymeFlatFile(MakeCorpus(12)))
                    .ok());
    hounds::SwissProtXmlTransformer sprot;
    ASSERT_TRUE(warehouse_
                    ->LoadSource("hlx_sprot.DEFAULT", sprot,
                                 datagen::ToSwissProtFlatFile(MakeCorpus(12)))
                    .ok());
  }

  // Ephemeral port; options.port is overridden.
  void StartServer(ServerOptions options = {}) {
    options.port = 0;
    if (options.service.cache == nullptr) {
      options.service.cache = std::make_shared<ResultCache>(128);
    }
    cache_ = options.service.cache;
    server_ = std::make_unique<QueryServer>(warehouse_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  cli::Client Connect() {
    auto client = cli::Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  // Raw socket for hostile-peer tests.
  int RawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }

  std::unique_ptr<rel::Database> db_;
  std::unique_ptr<hounds::Warehouse> warehouse_;
  hounds::EnzymeXmlTransformer enzyme_;
  std::shared_ptr<ResultCache> cache_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(ServerTest, MixedWorkloadEightConcurrentClients) {
  StartServer();
  // Ground truth established over the same wire before the storm.
  int64_t doc_count = 0;
  size_t enzyme_rows = 0;
  {
    auto client = Connect();
    auto docs = client.Sql("SELECT COUNT(*) FROM xml_document");
    ASSERT_TRUE(docs.ok() && docs->ok());
    doc_count = docs->rows[0][0].AsInt();
    ASSERT_GT(doc_count, 0);
    auto ids = client.Xq(kEnzymeIdsXq);
    ASSERT_TRUE(ids.ok() && ids->ok());
    enzyme_rows = ids->rows.size();
    ASSERT_EQ(enzyme_rows, 12u);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      auto client = cli::Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 25; ++i) {
        switch ((t + i) % 3) {
          case 0: {
            auto r = client->Sql("SELECT COUNT(*) FROM xml_document");
            if (!r.ok() || !r->ok() || r->rows.size() != 1 ||
                r->rows[0][0].AsInt() != doc_count) {
              failures.fetch_add(1);
            }
            break;
          }
          case 1: {
            auto r = client->Xq(kEnzymeIdsXq);
            if (!r.ok() || !r->ok() || r->rows.size() != enzyme_rows) {
              failures.fetch_add(1);
            }
            break;
          }
          default: {
            auto r = client->Execute(RequestMode::kXqXml, kEnzymeIdsXq);
            if (!r.ok() || !r->ok() ||
                r->text.find("<enzyme_id>") == std::string::npos) {
              failures.fetch_add(1);
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The identical queries hammered from 8 threads must have hit the cache.
  auto hits = common::MetricsRegistry::Global()
                  .GetCounter("server.cache.hits")
                  ->Value();
  EXPECT_GT(hits, 0u);
}

TEST_F(ServerTest, StatsOverWireShowsNonzeroCounters) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.Sql("SELECT COUNT(*) FROM xml_node").ok());
  ASSERT_TRUE(client.Xq(kEnzymeIdsXq).ok());
  auto stats = client.Execute(RequestMode::kStats, "");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->ok()) << stats->error;
  const std::string& json = stats->text;
  for (const char* metric :
       {"server.requests", "server.connections", "xq.queries"}) {
    size_t pos = json.find(std::string("\"") + metric + "\":");
    ASSERT_NE(pos, std::string::npos) << metric << " missing\n" << json;
    size_t digits = json.find_first_of("0123456789", pos);
    ASSERT_NE(digits, std::string::npos);
    EXPECT_NE(json[digits], '0') << metric << " is zero";
  }
}

TEST_F(ServerTest, XqExplainOverWireShowsPhysicalPlans) {
  StartServer();
  auto client = Connect();
  // EXPLAIN mode renders, per generated SQL statement, the statement text
  // followed by the physical plan tree the engine will actually run.
  auto plain = client.Execute(RequestMode::kExplain, kEnzymeIdsXq);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(plain->ok()) << plain->error;
  EXPECT_EQ(plain->kind, PayloadKind::kText);
  EXPECT_NE(plain->text.find("SELECT DISTINCT"), std::string::npos)
      << plain->text;
  EXPECT_NE(plain->text.find("Distinct"), std::string::npos) << plain->text;
  EXPECT_NE(plain->text.find("Sort"), std::string::npos) << plain->text;
  EXPECT_NE(plain->text.find("Scan"), std::string::npos) << plain->text;
  // Before ANALYZE no estimates appear; after ANALYZE over the same wire
  // the plans come back costed.
  EXPECT_EQ(plain->text.find("est rows="), std::string::npos) << plain->text;
  auto analyze = client.Sql("ANALYZE");
  ASSERT_TRUE(analyze.ok());
  ASSERT_TRUE(analyze->ok()) << analyze->error;
  auto costed = client.Execute(RequestMode::kExplain, kEnzymeIdsXq);
  ASSERT_TRUE(costed.ok());
  ASSERT_TRUE(costed->ok()) << costed->error;
  EXPECT_NE(costed->text.find("est rows="), std::string::npos)
      << costed->text;
}

TEST_F(ServerTest, SyncInvalidatesCachedResultsMidRun) {
  StartServer();
  auto client = Connect();

  auto first = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(first.ok() && first->ok());
  EXPECT_EQ(first->rows.size(), 12u);
  EXPECT_FALSE(first->cached());

  auto second = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(second.ok() && second->ok());
  EXPECT_TRUE(second->cached());
  EXPECT_EQ(second->rows.size(), 12u);

  // Sync the warehouse to a larger corpus mid-run; the ChangeEvents must
  // evict the cached entry.
  ASSERT_TRUE(warehouse_
                  ->SyncSource(kEnzymes, enzyme_,
                               datagen::ToEnzymeFlatFile(MakeCorpus(16)))
                  .ok());

  auto third = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(third.ok() && third->ok());
  EXPECT_FALSE(third->cached()) << "stale cache entry survived the sync";
  EXPECT_EQ(third->rows.size(), 16u) << "served stale pre-sync rows";

  auto fourth = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(fourth.ok() && fourth->ok());
  EXPECT_TRUE(fourth->cached());
  EXPECT_EQ(fourth->rows.size(), 16u);
}

TEST_F(ServerTest, OverloadGetsTypedError) {
  ServerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  options.service.allow_sleep = true;
  StartServer(options);
  auto* rejected =
      common::MetricsRegistry::Global().GetCounter("server.rejected_overload");
  uint64_t rejected0 = rejected->Value();

  // Pin the single worker, then fill the single queue slot.
  std::thread t1([&] {
    auto client = Connect();
    auto r = client.Execute(RequestMode::kPing, "#sleep 400");
    EXPECT_TRUE(r.ok() && r->ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread t2([&] {
    auto client = Connect();
    auto r = client.Execute(RequestMode::kPing, "#sleep 100");
    EXPECT_TRUE(r.ok() && r->ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Worker busy + queue full: the third request must be refused, typed.
  auto client = Connect();
  auto r = client.Execute(RequestMode::kPing, "");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->code, StatusCode::kOverloaded) << r->error;
  EXPECT_GT(rejected->Value(), rejected0);

  t1.join();
  t2.join();
  // Once drained the same session is served again (backpressure, not a
  // ban).
  auto again = client.Execute(RequestMode::kPing, "");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->ok());
}

TEST_F(ServerTest, MalformedRequestBodyGetsErrorThenClose) {
  StartServer();
  int fd = RawConnect();
  ASSERT_TRUE(WriteFrame(fd, "\xff garbage that is not a request").ok());
  auto reply = ReadFrame(fd, kDefaultMaxFrameBytes);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto response = DecodeResponse(*reply);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->id, 0u);
  // The server then drops the connection: next read is a clean EOF.
  auto next = ReadFrame(fd, kDefaultMaxFrameBytes);
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kNotFound);
  ::close(fd);
}

TEST_F(ServerTest, OversizedFrameRejected) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  StartServer(options);
  int fd = RawConnect();
  uint32_t huge = 1u << 28;
  ASSERT_EQ(::send(fd, &huge, 4, 0), 4);
  auto reply = ReadFrame(fd, kDefaultMaxFrameBytes);
  ASSERT_TRUE(reply.ok());
  auto response = DecodeResponse(*reply);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
  ::close(fd);
}

TEST_F(ServerTest, SlowClientMidFrameTimesOut) {
  ServerOptions options;
  options.read_timeout_ms = 100;
  StartServer(options);
  int fd = RawConnect();
  // Declare a 32-byte frame, deliver 3 bytes, then stall.
  uint32_t len = 32;
  ASSERT_EQ(::send(fd, &len, 4, 0), 4);
  ASSERT_EQ(::send(fd, "abc", 3, 0), 3);
  auto reply = ReadFrame(fd, kDefaultMaxFrameBytes);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto response = DecodeResponse(*reply);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kTimeout);
  auto next = ReadFrame(fd, kDefaultMaxFrameBytes);
  EXPECT_FALSE(next.ok());
  ::close(fd);
}

TEST_F(ServerTest, TruncatedFrameThenHangupClosesCleanly) {
  StartServer();
  int fd = RawConnect();
  uint32_t len = 64;
  ASSERT_EQ(::send(fd, &len, 4, 0), 4);
  ASSERT_EQ(::send(fd, "abc", 3, 0), 3);
  ::close(fd);  // server sees EOF mid-frame; must not crash or hang
  // The server is still healthy for other clients.
  auto client = Connect();
  auto r = client.Execute(RequestMode::kPing, "");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ok());
}

TEST_F(ServerTest, GracefulShutdownDrainsInFlightQueries) {
  ServerOptions options;
  options.service.allow_sleep = true;
  StartServer(options);
  std::atomic<bool> got_response{false};
  std::thread inflight([&] {
    auto client = Connect();
    auto r = client.Execute(RequestMode::kPing, "#sleep 300");
    if (r.ok() && r->ok() && r->text == "pong") got_response.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_->Shutdown();
  inflight.join();
  EXPECT_TRUE(got_response.load())
      << "in-flight request was dropped by shutdown";
  // New connections are refused after shutdown.
  auto late = cli::Client::Connect("127.0.0.1", server_->port());
  if (late.ok()) {
    auto r = late->Execute(RequestMode::kPing, "");
    EXPECT_FALSE(r.ok());
  }
}

}  // namespace
}  // namespace xomatiq::srv
