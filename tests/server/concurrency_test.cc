// Concurrency audit without TCP: hammers one Database/Warehouse/XomatiQ
// stack from reader threads while a writer syncs the warehouse, exactly
// the interleavings the server's worker pool produces. Run under
// -DXOMATIQ_SANITIZE_THREAD=ON in CI; any data race is a test failure
// there even when the assertions below pass.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "relational/database.h"
#include "server/query_service.h"
#include "server/thread_pool.h"
#include "xomatiq/xomatiq.h"

namespace xomatiq::srv {
namespace {

constexpr char kEnzymes[] = "hlx_enzyme.DEFAULT";

datagen::Corpus MakeCorpus(size_t n) {
  datagen::CorpusOptions options;
  options.num_enzymes = n;
  options.num_proteins = n;
  options.num_nucleotides = 0;
  options.ketone_fraction = 0.5;
  return datagen::GenerateCorpus(options);
}

struct Stack {
  std::unique_ptr<rel::Database> db;
  std::unique_ptr<hounds::Warehouse> warehouse;
  hounds::EnzymeXmlTransformer enzyme;
  hounds::SwissProtXmlTransformer sprot;

  explicit Stack(size_t n = 12) {
    db = rel::Database::OpenInMemory();
    auto opened = hounds::Warehouse::Open(db.get());
    EXPECT_TRUE(opened.ok());
    warehouse = std::move(opened).value();
    datagen::Corpus corpus = MakeCorpus(n);
    EXPECT_TRUE(warehouse
                    ->LoadSource(kEnzymes, enzyme,
                                 datagen::ToEnzymeFlatFile(corpus))
                    .ok());
    EXPECT_TRUE(warehouse
                    ->LoadSource("hlx_sprot.DEFAULT", sprot,
                                 datagen::ToSwissProtFlatFile(corpus))
                    .ok());
  }
};

TEST(ConcurrencyTest, ReadersProceedWhileWriterSyncs) {
  Stack stack;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&, t] {
      sql::SqlEngine engine(stack.db.get());
      xq::XomatiQ xomatiq(stack.warehouse.get());
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if ((t + i++) % 2 == 0) {
          auto result = engine.Execute(
              "SELECT COUNT(*) FROM xml_node");
          if (!result.ok()) failures.fetch_add(1);
        } else {
          auto result = xomatiq.Execute(
              "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme "
              "RETURN $a//enzyme_id");
          if (!result.ok()) failures.fetch_add(1);
        }
        // Leave gaps between shared acquisitions: back-to-back readers
        // would starve the writer on reader-preferring rwlocks and turn
        // this into a minutes-long test.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  // Writer: repeated syncs alternating between two corpus sizes, so every
  // round adds or removes documents under the exclusive latch.
  std::string small = datagen::ToEnzymeFlatFile(MakeCorpus(12));
  std::string large = datagen::ToEnzymeFlatFile(MakeCorpus(14));
  for (int round = 0; round < 4; ++round) {
    auto stats = stack.warehouse->SyncSource(
        kEnzymes, stack.enzyme, (round % 2 == 0) ? large : small);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, QueryServiceParallelMixedModes) {
  Stack stack;
  auto cache = std::make_shared<ResultCache>(64);
  ServiceOptions service_options;
  service_options.cache = cache;
  QueryService service(stack.warehouse.get(), service_options);
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        Request request;
        request.id = static_cast<uint64_t>(t * 1000 + i);
        switch ((t + i) % 3) {
          case 0:
            request.mode = RequestMode::kSql;
            request.text = "SELECT COUNT(*) FROM xml_node";
            break;
          case 1:
            request.mode = RequestMode::kXq;
            request.text =
                "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme "
                "RETURN $a//enzyme_id";
            break;
          default:
            request.mode = RequestMode::kStats;
            break;
        }
        auto response = DecodeResponse(service.Handle(request));
        if (!response.ok() || !response->ok() ||
            response->id != request.id) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  // The repeated identical queries must have produced cache hits.
  EXPECT_GT(cache->size(), 0u);
}

TEST(ConcurrencyTest, CacheInvalidationRacesWithQueries) {
  Stack stack;
  auto cache = std::make_shared<ResultCache>(64);
  ServiceOptions service_options;
  service_options.cache = cache;
  QueryService service(stack.warehouse.get(), service_options);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t id = static_cast<uint64_t>(t) << 32;
      while (!stop.load(std::memory_order_relaxed)) {
        Request request;
        request.id = ++id;
        request.mode = RequestMode::kXq;
        request.text =
            "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme "
            "RETURN $a//enzyme_id";
        auto response = DecodeResponse(service.Handle(request));
        ASSERT_TRUE(response.ok());
      }
    });
  }
  std::string a = datagen::ToEnzymeFlatFile(MakeCorpus(12));
  std::string b = datagen::ToEnzymeFlatFile(MakeCorpus(14));
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(stack.warehouse
                    ->SyncSource(kEnzymes, stack.enzyme,
                                 (round % 2 == 0) ? b : a)
                    .ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
}

TEST(BoundedThreadPoolTest, RefusesWhenQueueFull) {
  BoundedThreadPool pool(1, 1);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Occupy the single worker ...
  ASSERT_TRUE(pool.TryEnqueue([&] {
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  }));
  // ... wait for it to be picked up, then fill the single queue slot.
  while (pool.queue_depth() > 0) std::this_thread::yield();
  ASSERT_TRUE(pool.TryEnqueue([&] { ran.fetch_add(1); }));
  // Queue is now full: admission must refuse, not block.
  EXPECT_FALSE(pool.TryEnqueue([&] { ran.fetch_add(1); }));
  release.store(true);
  pool.Drain();
  EXPECT_EQ(ran.load(), 2);
  // After Drain everything is refused.
  EXPECT_FALSE(pool.TryEnqueue([] {}));
}

TEST(BoundedThreadPoolTest, DrainWaitsForQueuedTasks) {
  BoundedThreadPool pool(2, 16);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(pool.TryEnqueue([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    }));
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace xomatiq::srv
