// Ops-plane end-to-end tests: every admin endpoint served over real HTTP,
// slow queries surfacing in /queryz with plan fingerprints and
// est-vs-actual rows, and a traced request whose client and server halves
// merge into one Chrome timeline sharing the wire-propagated trace id.

#include "server/http_admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "client/client.h"
#include "common/metrics.h"
#include "common/query_log.h"
#include "common/trace.h"
#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "relational/database.h"
#include "server/server.h"

namespace xomatiq::srv {
namespace {

constexpr char kEnzymeIdsXq[] =
    "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme "
    "RETURN $a//enzyme_id";

datagen::Corpus MakeCorpus(size_t enzymes) {
  datagen::CorpusOptions options;
  options.num_enzymes = enzymes;
  options.num_proteins = 5;
  options.num_nucleotides = 0;
  return datagen::GenerateCorpus(options);
}

// Blocking one-shot HTTP exchange against 127.0.0.1:port. Returns the full
// response (status line + headers + body) — the endpoint is HTTP/1.0 with
// Connection: close, so "read until EOF" is the framing.
std::string HttpRequest(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& target) {
  return HttpRequest(port, "GET " + target + " HTTP/1.0\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

class HttpAdminTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::QueryLog::Global().set_enabled(true);
    common::QueryLog::Global().set_slow_threshold_ns(
        common::QueryLog::kDefaultSlowThresholdNs);
    common::QueryLog::Global().Clear();
    db_ = rel::Database::OpenInMemory();
    auto warehouse = hounds::Warehouse::Open(db_.get());
    ASSERT_TRUE(warehouse.ok());
    warehouse_ = std::move(warehouse).value();
    hounds::EnzymeXmlTransformer enzyme;
    ASSERT_TRUE(warehouse_
                    ->LoadSource("hlx_enzyme.DEFAULT", enzyme,
                                 datagen::ToEnzymeFlatFile(MakeCorpus(8)))
                    .ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    common::QueryLog::Global().set_slow_threshold_ns(
        common::QueryLog::kDefaultSlowThresholdNs);
    common::QueryLog::Global().Clear();
  }

  void StartServer() {
    ServerOptions options;
    options.port = 0;
    options.admin_port = 0;  // ephemeral admin endpoint
    options.service.cache = std::make_shared<ResultCache>(64);
    server_ = std::make_unique<QueryServer>(warehouse_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->admin_port(), 0);
  }

  cli::Client Connect() {
    auto client = cli::Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::unique_ptr<rel::Database> db_;
  std::unique_ptr<hounds::Warehouse> warehouse_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(HttpAdminTest, AdminDisabledByDefault) {
  ServerOptions options;
  options.port = 0;  // admin_port stays at the -1 default
  QueryServer server(warehouse_.get(), options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.admin_port(), 0);
  server.Shutdown();
}

TEST_F(HttpAdminTest, HealthzReportsServing) {
  StartServer();
  std::string response = HttpGet(server_->admin_port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  std::string body = BodyOf(response);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"durable\":false"), std::string::npos);
}

TEST_F(HttpAdminTest, MetricsServesPrometheusText) {
  StartServer();
  cli::Client client = Connect();
  ASSERT_TRUE(client.Sql("SELECT COUNT(*) FROM xml_document").ok());
  std::string response = HttpGet(server_->admin_port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  std::string body = BodyOf(response);
  // The request we just made is visible, with HELP/TYPE metadata.
  EXPECT_NE(body.find("# TYPE server_requests counter"), std::string::npos);
  EXPECT_NE(body.find("# HELP server_requests"), std::string::npos);
  ASSERT_NE(body.find("\nserver_requests "), std::string::npos);
  EXPECT_EQ(body.find("\nserver_requests 0\n"), std::string::npos);
}

TEST_F(HttpAdminTest, StatuszReportsServerVitals) {
  StartServer();
  cli::Client client = Connect();
  ASSERT_TRUE(client.Xq(kEnzymeIdsXq).ok());
  ASSERT_TRUE(client.Xq(kEnzymeIdsXq).ok());  // second hit is cached
  std::string body = BodyOf(HttpGet(server_->admin_port(), "/statusz"));
  for (const char* field :
       {"\"uptime_s\":", "\"active_sessions\":", "\"inflight_requests\":",
        "\"pool_queue_depth\":", "\"requests\":", "\"cache_hit_rate\":",
        "\"slow_queries\":", "\"query_log_total\":"}) {
    EXPECT_NE(body.find(field), std::string::npos) << field << " in " << body;
  }
  // The reader session holding `client` open is counted, and the repeated
  // XQuery registered at least one cache hit (counters are global to the
  // process, so "nonzero" is the portable assertion).
  EXPECT_NE(body.find("\"active_sessions\":1"), std::string::npos) << body;
  EXPECT_EQ(body.find("\"cache_hits\":0,"), std::string::npos) << body;
}

TEST_F(HttpAdminTest, QueryzShowsSlowQueryWithPlanAndRowCounts) {
  StartServer();
  common::QueryLog::Global().set_slow_threshold_ns(0);  // everything is slow
  cli::Client client = Connect();
  ASSERT_TRUE(client.Sql("SELECT COUNT(*) FROM xml_document").ok());
  std::string body = BodyOf(HttpGet(server_->admin_port(), "/queryz"));
  EXPECT_NE(body.find("\"slow_threshold_ms\":0.000"), std::string::npos);
  EXPECT_NE(body.find("\"recent\":["), std::string::npos);
  size_t slow = body.find("\"slow\":[");
  ASSERT_NE(slow, std::string::npos);
  std::string slow_json = body.substr(slow);
  EXPECT_NE(slow_json.find("SELECT COUNT(*) FROM xml_document"),
            std::string::npos)
      << body;
  EXPECT_NE(slow_json.find("\"plan_fp\":"), std::string::npos);
  EXPECT_NE(slow_json.find("\"est_rows\":"), std::string::npos);
  EXPECT_NE(slow_json.find("\"actual_rows\":1"), std::string::npos);
  // Slow entries carry the EXPLAIN ANALYZE capture.
  EXPECT_NE(slow_json.find("\"explain\":"), std::string::npos);
  EXPECT_NE(slow_json.find("actual rows="), std::string::npos);
}

TEST_F(HttpAdminTest, QueryzMarksCacheHits) {
  StartServer();
  cli::Client client = Connect();
  ASSERT_TRUE(client.Xq(kEnzymeIdsXq).ok());
  ASSERT_TRUE(client.Xq(kEnzymeIdsXq).ok());
  std::string body = BodyOf(HttpGet(server_->admin_port(), "/queryz"));
  // Newest first: the second (cached) request leads the recent list.
  size_t first = body.find("\"cache_hit\":true");
  size_t second = body.find("\"cache_hit\":false");
  ASSERT_NE(first, std::string::npos) << body;
  ASSERT_NE(second, std::string::npos) << body;
  EXPECT_LT(first, second);
}

TEST_F(HttpAdminTest, TracedRequestMergesIntoOneCrossProcessTimeline) {
  StartServer();
  cli::Client client = Connect();
  ASSERT_NE(client.features() & kFeatureTraceContext, 0u);
  common::QueryOptions opts;
  opts.trace = true;
  auto response = client.Execute(common::QueryRequest::Xq(kEnzymeIdsXq, opts));
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok());

  // The client generated an id, put it on the wire, and kept its half.
  uint64_t id = client.last_trace_id();
  ASSERT_NE(id, 0u);
  std::string client_half = client.LastTraceJson();
  EXPECT_NE(client_half.find("client.rtt"), std::string::npos);
  EXPECT_NE(client_half.find("\"pid\":2"), std::string::npos);

  // The server's half is retrievable over HTTP by that id.
  char target[64];
  std::snprintf(target, sizeof target, "/tracez?id=%016llx",
                static_cast<unsigned long long>(id));
  std::string http_response = HttpGet(server_->admin_port(), target);
  EXPECT_NE(http_response.find("HTTP/1.0 200"), std::string::npos);
  std::string server_half = BodyOf(http_response);
  EXPECT_EQ(server_half, server_->service()->TraceJsonFor(id));
  EXPECT_NE(server_half.find("\"pid\":1"), std::string::npos) << server_half;

  // Both halves carry the shared id and merge into one timeline.
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(id));
  EXPECT_NE(client_half.find(hex), std::string::npos);
  EXPECT_NE(server_half.find(hex), std::string::npos);
  std::string merged = common::MergeChromeTraceJson(client_half, server_half);
  EXPECT_NE(merged.find(std::string("\"traceId\":\"") + hex + "\""),
            std::string::npos)
      << merged;
  EXPECT_NE(merged.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(merged.find("client.rtt"), std::string::npos);

  // An unknown id is a well-formed miss, not a crash.
  EXPECT_NE(BodyOf(HttpGet(server_->admin_port(), "/tracez?id=ffffffffffffffff"))
                .find("no such trace"),
            std::string::npos);
  // And the bare listing includes our trace's id.
  EXPECT_NE(BodyOf(HttpGet(server_->admin_port(), "/tracez")).find(hex),
            std::string::npos);
}

TEST_F(HttpAdminTest, IndexUnknownPathAndMethodGuards) {
  StartServer();
  uint16_t port = server_->admin_port();
  // "/" serves a plain-text index of the endpoints.
  std::string index = HttpGet(port, "/");
  EXPECT_NE(index.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(index.find("/metrics"), std::string::npos);
  EXPECT_NE(HttpGet(port, "/no-such-endpoint").find("HTTP/1.0 404"),
            std::string::npos);
  EXPECT_NE(HttpRequest(port, "POST /metrics HTTP/1.0\r\n\r\n")
                .find("HTTP/1.0 405"),
            std::string::npos);
  // Garbage that never becomes a request line is dropped without serving.
  EXPECT_EQ(HttpRequest(port, "not http at all\r\n\r\n").find("200"),
            std::string::npos);
  // The endpoint survives all of the above and still serves.
  EXPECT_NE(HttpGet(port, "/healthz").find("HTTP/1.0 200"),
            std::string::npos);
}

}  // namespace
}  // namespace xomatiq::srv
