// Client-resilience and query-options tests over a live TCP server:
// handshake versioning, fault-injected dropped responses recovered by
// ExecuteWithRetry, OVERLOADED backoff, per-query deadlines, cache bypass,
// tracing, and a lossy result cache.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "client/client.h"
#include "common/fault_injector.h"
#include "common/query_options.h"
#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "relational/database.h"
#include "server/server.h"

namespace xomatiq::srv {
namespace {

using common::FaultConfig;
using common::FaultInjector;
using common::FaultPolicy;
using common::QueryOptions;
using common::StatusCode;

constexpr char kEnzymes[] = "hlx_enzyme.DEFAULT";
constexpr char kEnzymeIdsXq[] =
    "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme "
    "RETURN $a//enzyme_id";
// Big enough that the quadratic join below runs for tens of milliseconds
// (so a 1 ms deadline reliably lands mid-execution, not before it).
constexpr size_t kNumEnzymes = 200;
// Quadratic self-join over xml_node: long enough that a short deadline
// reliably lands inside execution rather than before it.
constexpr char kSlowSql[] =
    "SELECT COUNT(*) FROM xml_node a, xml_node b WHERE a.node_id < b.node_id";

class RetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    db_ = rel::Database::OpenInMemory();
    auto warehouse = hounds::Warehouse::Open(db_.get());
    ASSERT_TRUE(warehouse.ok());
    warehouse_ = std::move(warehouse).value();
    datagen::CorpusOptions corpus;
    corpus.num_enzymes = kNumEnzymes;
    corpus.num_proteins = 10;
    corpus.num_nucleotides = 0;
    ASSERT_TRUE(
        warehouse_
            ->LoadSource(kEnzymes, enzyme_,
                         datagen::ToEnzymeFlatFile(
                             datagen::GenerateCorpus(corpus)))
            .ok());
  }
  void TearDown() override { FaultInjector::Global().Reset(); }

  void StartServer(ServerOptions options = {}) {
    options.port = 0;
    if (options.service.cache == nullptr) {
      options.service.cache = std::make_shared<ResultCache>(128);
    }
    server_ = std::make_unique<QueryServer>(warehouse_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  cli::Client Connect() {
    auto client = cli::Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  int RawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  std::unique_ptr<rel::Database> db_;
  std::unique_ptr<hounds::Warehouse> warehouse_;
  hounds::EnzymeXmlTransformer enzyme_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(RetryTest, HandshakeNegotiatesQueryOptionsFeature) {
  StartServer();
  auto client = Connect();
  EXPECT_NE(client.features() & kFeatureQueryOptions, 0u)
      << "server should acknowledge the query-options feature";
}

TEST_F(RetryTest, MajorVersionMismatchRejectedWithTypedStatus) {
  StartServer();
  int fd = RawConnect();
  Hello hello;
  hello.major = kProtocolMajor + 1;
  ASSERT_TRUE(WriteFrame(fd, EncodeHello(hello)).ok());
  auto reply = ReadFrame(fd, kDefaultMaxFrameBytes);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto response = DecodeResponse(*reply);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kUnsupported) << response->error;
  // The server closes the session after the rejection.
  auto next = ReadFrame(fd, kDefaultMaxFrameBytes);
  EXPECT_FALSE(next.ok());
  ::close(fd);

  // The client surfaces the same typed status, without retrying (a
  // version mismatch is deterministic).
  // (Covered implicitly: Connect() above succeeded with matching major.)
}

TEST_F(RetryTest, ExecuteWithRetryRecoversFromDroppedResponse) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.Sql("SELECT COUNT(*) FROM xml_document").ok());

  // Drop exactly the next response on the floor (and kill the session so
  // the client sees EOF, like a server-side connection reset).
  FaultConfig drop;
  drop.policy = FaultPolicy::kNth;
  drop.n = 1;
  FaultInjector::Global().Arm("server.session.write", drop);

  // A plain Execute loses the response...
  auto bare = client.Sql("SELECT COUNT(*) FROM xml_document");
  EXPECT_FALSE(bare.ok());
  EXPECT_EQ(FaultInjector::Global().fires("server.session.write"), 1u);

  // ...but ExecuteWithRetry reconnects and resends transparently.
  auto retried = client.ExecuteWithRetry(
      common::QueryRequest::Sql("SELECT COUNT(*) FROM xml_document"));
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  ASSERT_TRUE(retried->ok()) << retried->error;
  EXPECT_EQ(retried->rows[0][0].AsInt(), static_cast<int64_t>(kNumEnzymes));
}

TEST_F(RetryTest, ExecuteWithRetryRidesOutRepeatedDrops) {
  StartServer();
  auto client = Connect();
  FaultConfig drop;
  drop.policy = FaultPolicy::kEveryNth;
  drop.n = 2;  // every other response vanishes
  FaultInjector::Global().Arm("server.session.write", drop);
  cli::RetryPolicy policy;
  policy.initial_backoff_ms = 1;
  for (int i = 0; i < 6; ++i) {
    auto r = client.ExecuteWithRetry(
        common::QueryRequest::Sql("SELECT COUNT(*) FROM xml_document"), policy);
    ASSERT_TRUE(r.ok()) << "iteration " << i << ": " << r.status().ToString();
    ASSERT_TRUE(r->ok());
    EXPECT_EQ(r->rows[0][0].AsInt(), static_cast<int64_t>(kNumEnzymes));
  }
  EXPECT_GT(FaultInjector::Global().fires("server.session.write"), 0u);
}

TEST_F(RetryTest, OverloadedIsRetriedUntilTheQueueDrains) {
  ServerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  options.service.allow_sleep = true;
  StartServer(options);

  // Pin the single worker and fill the single queue slot.
  std::thread t1([&] {
    auto client = Connect();
    auto r = client.Execute(RequestMode::kPing, "#sleep 400");
    EXPECT_TRUE(r.ok() && r->ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread t2([&] {
    auto client = Connect();
    auto r = client.Execute(RequestMode::kPing, "#sleep 100");
    EXPECT_TRUE(r.ok() && r->ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // A bare Execute gets typed OVERLOADED pushback right now; the retrying
  // call backs off until the queue drains and then succeeds.
  auto client = Connect();
  auto refused = client.Execute(RequestMode::kPing, "");
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->code, StatusCode::kOverloaded);

  cli::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 50;
  policy.deadline_ms = 5000;
  common::QueryRequest ping;
  ping.mode = common::QueryMode::kPing;
  auto r = client.ExecuteWithRetry(ping, policy);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->ok()) << r->error;
  EXPECT_EQ(r->text, "pong");
  t1.join();
  t2.join();
}

TEST_F(RetryTest, PerQueryDeadlineCancelsWithTimeout) {
  StartServer();
  auto client = Connect();
  // Sanity: the slow query succeeds without a deadline.
  auto unbounded = client.Sql(kSlowSql);
  ASSERT_TRUE(unbounded.ok());
  ASSERT_TRUE(unbounded->ok()) << unbounded->error;
  ASSERT_GT(unbounded->rows[0][0].AsInt(), 0);

  QueryOptions opts;
  opts.deadline_ms = 1;
  opts.bypass_cache = true;  // must actually execute, not hit the cache
  auto bounded = client.Execute(common::QueryRequest::Sql(kSlowSql, opts));
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_EQ(bounded->code, StatusCode::kTimeout) << bounded->error;
}

TEST_F(RetryTest, ServiceDefaultDeadlineAppliesWhenRequestCarriesNone) {
  ServerOptions options;
  options.service.default_deadline_ms = 1;
  StartServer(options);
  auto client = Connect();
  auto r = client.Sql(kSlowSql);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, StatusCode::kTimeout) << r->error;
  // A request's own (longer) deadline wins over the default.
  QueryOptions opts;
  opts.deadline_ms = 60000;
  opts.bypass_cache = true;
  auto own = client.Execute(common::QueryRequest::Sql(kSlowSql, opts));
  ASSERT_TRUE(own.ok());
  EXPECT_TRUE(own->ok()) << own->error;
}

TEST_F(RetryTest, BypassCacheNeitherProbesNorInstalls) {
  StartServer();
  auto client = Connect();
  QueryOptions bypass;
  bypass.bypass_cache = true;

  auto first = client.Execute(common::QueryRequest::Xq(kEnzymeIdsXq, bypass));
  ASSERT_TRUE(first.ok() && first->ok());
  EXPECT_FALSE(first->cached());
  auto second = client.Execute(common::QueryRequest::Xq(kEnzymeIdsXq, bypass));
  ASSERT_TRUE(second.ok() && second->ok());
  EXPECT_FALSE(second->cached()) << "bypass run must not have installed";

  // Normal runs still populate and then hit the cache.
  auto third = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(third.ok() && third->ok());
  EXPECT_FALSE(third->cached());
  auto fourth = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(fourth.ok() && fourth->ok());
  EXPECT_TRUE(fourth->cached());

  // And bypass skips the probe even when an entry exists.
  auto fifth = client.Execute(common::QueryRequest::Xq(kEnzymeIdsXq, bypass));
  ASSERT_TRUE(fifth.ok() && fifth->ok());
  EXPECT_FALSE(fifth->cached());
}

TEST_F(RetryTest, TraceRequestSetsFlagAndRecordsJson) {
  StartServer();
  auto client = Connect();
  EXPECT_EQ(server_->service()->LastTraceJson(), "");

  QueryOptions traced;
  traced.trace = true;
  traced.bypass_cache = true;
  auto r = client.Execute(common::QueryRequest::Xq(kEnzymeIdsXq, traced));
  ASSERT_TRUE(r.ok() && r->ok());
  EXPECT_NE(r->flags & kFlagTraced, 0) << "traced response must carry flag";

  std::string json = server_->service()->LastTraceJson();
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("server.request"), std::string::npos) << json;

  // Untraced requests leave the last trace alone and carry no flag.
  auto plain = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(plain.ok() && plain->ok());
  EXPECT_EQ(plain->flags & kFlagTraced, 0);
  EXPECT_EQ(server_->service()->LastTraceJson(), json);
}

TEST_F(RetryTest, LossyCacheInsertOnlyCostsHitRate) {
  StartServer();
  FaultInjector::Global().Arm("cache.insert", FaultConfig{});
  auto client = Connect();
  for (int i = 0; i < 3; ++i) {
    auto r = client.Xq(kEnzymeIdsXq);
    ASSERT_TRUE(r.ok() && r->ok());
    EXPECT_EQ(r->rows.size(), kNumEnzymes);
    EXPECT_FALSE(r->cached()) << "inserts are dropped; nothing to hit";
  }
  EXPECT_GT(FaultInjector::Global().fires("cache.insert"), 0u);
  // Once the cache heals, hits resume.
  FaultInjector::Global().Reset();
  auto warm = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(warm.ok() && warm->ok());
  auto hit = client.Xq(kEnzymeIdsXq);
  ASSERT_TRUE(hit.ok() && hit->ok());
  EXPECT_TRUE(hit->cached());
}

TEST_F(RetryTest, ConnectWithRetryGivesUpTypedAndRecoversTransport) {
  StartServer();
  uint16_t port = server_->port();
  server_->Shutdown();
  // Nothing listening: every attempt is a transport error; the deadline
  // and attempt budget bound the total cost.
  cli::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.deadline_ms = 2000;
  auto gone = cli::Client::ConnectWithRetry("127.0.0.1", port, policy);
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kIoError);

  // Against a live server it connects (possibly first try).
  StartServer();
  auto live = cli::Client::ConnectWithRetry("127.0.0.1", server_->port());
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  auto r = live->Execute(RequestMode::kPing, "");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ok());
}

}  // namespace
}  // namespace xomatiq::srv
