// srv::Session: per-connection query execution scope. Each session owns
// snapshot acquisition (reads pin an epoch, mutations run unpinned), the
// read-your-writes min_lsn gate, and feeds the epoch into the result
// cache key — so cached bytes can never leak across committed states.

#include "server/session.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "relational/database.h"
#include "server/protocol.h"
#include "server/query_service.h"

namespace xomatiq::srv {
namespace {

constexpr char kEnzymes[] = "hlx_enzyme.DEFAULT";

struct Stack {
  std::unique_ptr<rel::Database> db;
  std::unique_ptr<hounds::Warehouse> warehouse;
  hounds::EnzymeXmlTransformer enzyme;

  Stack() {
    db = rel::Database::OpenInMemory();
    auto opened = hounds::Warehouse::Open(db.get());
    EXPECT_TRUE(opened.ok());
    warehouse = std::move(opened).value();
    datagen::CorpusOptions options;
    options.num_enzymes = 8;
    options.num_proteins = 0;
    options.num_nucleotides = 0;
    datagen::Corpus corpus = datagen::GenerateCorpus(options);
    EXPECT_TRUE(warehouse
                    ->LoadSource(kEnzymes, enzyme,
                                 datagen::ToEnzymeFlatFile(corpus))
                    .ok());
  }
};

Response Roundtrip(Session& session, RequestMode mode, const std::string& text,
                   const common::QueryOptions* opts = nullptr) {
  Request request;
  request.id = 7;
  request.mode = mode;
  request.text = text;
  if (opts != nullptr) {
    request.options = *opts;
    request.has_options = true;
  }
  auto decoded = DecodeResponse(session.Handle(request));
  EXPECT_TRUE(decoded.ok());
  return decoded.ok() ? std::move(*decoded) : Response{};
}

TEST(SessionTest, SessionsHaveDistinctIdsAndCountRequests) {
  Stack stack;
  QueryService service(stack.warehouse.get(), {});
  auto a = service.StartSession();
  auto b = service.StartSession();
  EXPECT_NE(a->id(), b->id());
  EXPECT_NE(a->id(), 0u);  // 0 is the internal sessionless scope
  EXPECT_EQ(a->requests_handled(), 0u);
  Response r = Roundtrip(*a, RequestMode::kPing, "");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(a->requests_handled(), 1u);
  EXPECT_EQ(b->requests_handled(), 0u);
}

TEST(SessionTest, CacheIsKeyedBySnapshotEpoch) {
  Stack stack;
  auto cache = std::make_shared<ResultCache>(64);
  ServiceOptions so;
  so.cache = cache;
  QueryService service(stack.warehouse.get(), so);
  auto session = service.StartSession();
  const std::string select = "SELECT doc_id FROM xml_document";

  Response first = Roundtrip(*session, RequestMode::kSql, select);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.cached());
  const size_t docs = first.rows.size();
  ASSERT_EQ(docs, 8u);
  Response second = Roundtrip(*session, RequestMode::kSql, select);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cached());

  // A committed write advances the epoch: the same text now misses the
  // cache (new key) and the re-executed answer includes the new row —
  // stale bytes are structurally unreachable, no invalidation needed.
  Response insert = Roundtrip(
      *session, RequestMode::kSql,
      "INSERT INTO xml_document (doc_id, collection, uri) "
      "VALUES (999, 'c', 'u')");
  ASSERT_TRUE(insert.ok()) << insert.error;
  Response third = Roundtrip(*session, RequestMode::kSql, select);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.cached());
  EXPECT_EQ(third.rows.size(), docs + 1);
}

TEST(SessionTest, MutationsRunUnpinnedAndReadYourWrites) {
  Stack stack;
  QueryService service(stack.warehouse.get(), {});
  auto session = service.StartSession();
  // DML and DDL must not pin a snapshot (a pinned DDL would self-deadlock
  // on the DDL latch); both run to completion through the session.
  Response ddl = Roundtrip(*session, RequestMode::kSql,
                           "CREATE TABLE session_t (x INT)");
  ASSERT_TRUE(ddl.ok()) << ddl.error;
  Response dml = Roundtrip(*session, RequestMode::kSql,
                           "INSERT INTO session_t (x) VALUES (1)");
  ASSERT_TRUE(dml.ok()) << dml.error;
  EXPECT_GT(dml.lsn, 0u);  // commit LSN attached for read-your-writes
  // The next read's snapshot is taken after the gate: it sees the write.
  Response read = Roundtrip(*session, RequestMode::kSql,
                            "SELECT x FROM session_t");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.rows.size(), 1u);
}

TEST(SessionTest, MinLsnGateRefusesUnreachablePosition) {
  Stack stack;
  // No wait_for_lsn hook: a min_lsn the database has not reached is
  // refused immediately with kLagging (the cluster client's signal to
  // bounce the read to another node).
  QueryService service(stack.warehouse.get(), {});
  auto session = service.StartSession();
  common::QueryOptions opts;
  opts.min_lsn = stack.db->committed_lsn() + 1000;
  Response r = Roundtrip(*session, RequestMode::kSql,
                         "SELECT doc_id FROM xml_document", &opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code, common::StatusCode::kLagging);
  // At or below the committed position the gate opens without waiting.
  opts.min_lsn = stack.db->committed_lsn();
  Response ok = Roundtrip(*session, RequestMode::kSql,
                          "SELECT doc_id FROM xml_document", &opts);
  EXPECT_TRUE(ok.ok());
}

}  // namespace
}  // namespace xomatiq::srv
