#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace xomatiq::sql {
namespace {

TEST(SqlLexerTest, KeywordsCaseInsensitive) {
  auto toks = Tokenize("select From WHERE");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 4u);  // + EOF
  EXPECT_TRUE((*toks)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*toks)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*toks)[2].IsKeyword("WHERE"));
  EXPECT_EQ((*toks)[3].type, TokenType::kEof);
}

TEST(SqlLexerTest, IdentifiersKeepCase) {
  auto toks = Tokenize("xml_Node d_a");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[0].text, "xml_Node");
  EXPECT_EQ((*toks)[1].text, "d_a");
}

TEST(SqlLexerTest, StringLiteralsWithEscapes) {
  auto toks = Tokenize("'it''s a ''test'''");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kString);
  EXPECT_EQ((*toks)[0].text, "it's a 'test'");
}

TEST(SqlLexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(SqlLexerTest, Numbers) {
  auto toks = Tokenize("42 -7 3.14 1e3 2.5E-2");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kInteger);
  EXPECT_EQ((*toks)[0].int_value, 42);
  // '-7' lexes as symbol '-' then integer 7 (unary minus is parsed).
  EXPECT_TRUE((*toks)[1].IsSymbol("-"));
  EXPECT_EQ((*toks)[2].int_value, 7);
  EXPECT_EQ((*toks)[3].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ((*toks)[3].double_value, 3.14);
  EXPECT_DOUBLE_EQ((*toks)[4].double_value, 1000.0);
  EXPECT_DOUBLE_EQ((*toks)[5].double_value, 0.025);
}

TEST(SqlLexerTest, MultiCharSymbols) {
  auto toks = Tokenize("<= >= != <> ||");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[0].IsSymbol("<="));
  EXPECT_TRUE((*toks)[1].IsSymbol(">="));
  EXPECT_TRUE((*toks)[2].IsSymbol("!="));
  EXPECT_TRUE((*toks)[3].IsSymbol("!="));  // <> normalizes
  EXPECT_TRUE((*toks)[4].IsSymbol("||"));
}

TEST(SqlLexerTest, LineComments) {
  auto toks = Tokenize("SELECT -- comment here\n 1");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);
  EXPECT_TRUE((*toks)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*toks)[1].int_value, 1);
}

TEST(SqlLexerTest, QuotedIdentifiers) {
  auto toks = Tokenize("\"weird name\"");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[0].text, "weird name");
}

TEST(SqlLexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

}  // namespace
}  // namespace xomatiq::sql
