// Concurrency hammer for the shared worker pool: 8 reader sessions fire
// parallel-annotated queries through one SqlEngine and one WorkerPool while
// a writer runs DML against the same database. Built for the TSan job —
// any unsynchronized sharing inside the pool, the parallel operators, or
// the per-query stats publication shows up here as a data race.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/worker_pool.h"
#include "sql/engine.h"

namespace xomatiq::sql {
namespace {

TEST(ParallelHammerTest, EightSessionsShareOnePool) {
  auto db = rel::Database::OpenInMemory();
  exec::WorkerPool pool(2);

  EngineOptions options;
  options.planner.parallel_scan_threshold = 1;
  options.planner.parallel_degree = 4;
  options.executor.pool = &pool;
  options.executor.morsel_rows = 32;
  options.executor.parallel_row_threshold = 8;
  SqlEngine engine(db.get(), options);

  auto seed = [&](const std::string& sql) {
    auto r = engine.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  };
  seed("CREATE TABLE t (id INT, grp INT, val INT)");
  for (int base = 0; base < 3000; base += 500) {
    std::string sql = "INSERT INTO t VALUES ";
    for (int i = base; i < base + 500; ++i) {
      if (i != base) sql += ", ";
      sql += "(" + std::to_string(i) + ", " + std::to_string(i % 23) + ", " +
             std::to_string((i * 7919) % 1000) + ")";
    }
    seed(sql);
  }

  constexpr int kReaders = 8;
  constexpr int kIters = 10;
  const std::string queries[] = {
      "SELECT grp, COUNT(*), SUM(val) FROM t GROUP BY grp",
      "SELECT id, val FROM t WHERE val > 500 ORDER BY val, id",
      "SELECT DISTINCT grp FROM t",
      "SELECT a.id, b.id FROM t a, t b "
      "WHERE a.grp = b.grp AND a.val > 970 AND b.val > 970",
  };

  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int it = 0; it < kIters && !failed.load(); ++it) {
        const std::string& q = queries[(r + it) % 4];
        auto res = engine.Execute(q);
        if (!res.ok()) {
          failed.store(true);
          ADD_FAILURE() << q << ": " << res.status().ToString();
          return;
        }
      }
    });
  }

  std::thread writer([&] {
    for (int i = 0; i < 60 && !failed.load(); ++i) {
      auto r = engine.Execute("INSERT INTO t VALUES (" +
                              std::to_string(10000 + i) + ", " +
                              std::to_string(i % 23) + ", 500)");
      if (!r.ok()) {
        failed.store(true);
        ADD_FAILURE() << "writer: " << r.status().ToString();
        return;
      }
      if (i % 2 == 0) {
        auto d = engine.Execute("DELETE FROM t WHERE id = " +
                                std::to_string(10000 + i));
        if (!d.ok()) {
          failed.store(true);
          ADD_FAILURE() << "delete: " << d.status().ToString();
          return;
        }
      }
    }
  });

  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_FALSE(failed.load());

  // The pool must be fully drained once every session has returned.
  EXPECT_EQ(pool.active_groups(), 0u);
}

}  // namespace
}  // namespace xomatiq::sql
