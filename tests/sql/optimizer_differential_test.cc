// Differential correctness harness for the cost-based optimizer: every
// query runs twice — once through the costed planner (kAuto over analyzed
// tables) and once through the worst-case kFromOrder baseline — and the
// two result sets must be identical as multisets. Join order and join
// method are pure physical choices; any row-level divergence is an
// optimizer bug.
//
// Also covers durability of the statistics that feed the optimizer: stats
// written by ANALYZE must survive a crash (WAL replay, with snapshot
// writes fault-injected to fail) and a clean checkpoint.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "sql/engine.h"

namespace xomatiq::sql {
namespace {

using common::FaultConfig;
using common::FaultInjector;
using common::FaultPolicy;
using rel::Database;

const std::vector<const char*>& Queries() {
  static const std::vector<const char*> queries = {
      // Single table, every predicate family.
      "SELECT id FROM node WHERE id = 17",
      "SELECT id FROM node WHERE path > 1 AND path <= 3",
      "SELECT id FROM node WHERE ord = 2 OR ord = 4",
      "SELECT id FROM node WHERE id IN (3, 5, 250)",
      "SELECT id FROM node WHERE id BETWEEN 10 AND 20",
      "SELECT value FROM txt WHERE CONTAINS(value, 'token7')",
      // Two-way joins, both directions.
      "SELECT t.value FROM txt t, node n WHERE t.node = n.id AND n.path = 2",
      "SELECT n.id FROM node n, txt t WHERE t.node = n.id "
      "AND CONTAINS(t.value, 'token3')",
      "SELECT n.id, m.id FROM node n, node m "
      "WHERE n.ord = m.ord AND n.id < 5",
      // Three-way joins in deliberately bad FROM orders.
      "SELECT n.id FROM node n, txt t, doc d "
      "WHERE t.node = n.id AND n.doc = d.id AND d.id = 3",
      "SELECT d.coll, n.id FROM txt t, node n, doc d "
      "WHERE t.node = n.id AND n.doc = d.id AND CONTAINS(t.value, 'token5')",
      // Shaping operators above the join.
      "SELECT doc, COUNT(*) FROM node GROUP BY doc HAVING COUNT(*) > 10",
      "SELECT DISTINCT d.coll FROM doc d, node n WHERE n.doc = d.id",
      "SELECT id FROM node WHERE path = 1 ORDER BY id LIMIT 7",
      "SELECT n.id FROM node n, doc d "
      "WHERE n.doc = d.id ORDER BY n.id LIMIT 10",
  };
  return queries;
}

void Seed(SqlEngine* engine) {
  auto run = [&](const std::string& sql) {
    auto r = engine->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  };
  run("CREATE TABLE doc (id INT, coll TEXT)");
  run("CREATE TABLE node (doc INT, id INT, path INT, ord INT)");
  run("CREATE TABLE txt (node INT, value TEXT)");
  run("CREATE INDEX doc_id ON doc (id) USING HASH");
  run("CREATE INDEX node_id ON node (id) USING HASH");
  run("CREATE INDEX node_path ON node (path)");
  run("CREATE INDEX node_doc ON node (doc)");
  run("CREATE INDEX txt_node ON txt (node) USING HASH");
  run("CREATE INDEX txt_kw ON txt (value) USING INVERTED");
  for (int i = 0; i < 10; ++i) {
    run("INSERT INTO doc VALUES (" + std::to_string(i) + ", 'c" +
        std::to_string(i % 3) + "')");
  }
  std::string nodes = "INSERT INTO node VALUES ";
  std::string txts = "INSERT INTO txt VALUES ";
  for (int i = 0; i < 240; ++i) {
    if (i > 0) {
      nodes += ", ";
      txts += ", ";
    }
    nodes += "(" + std::to_string(i % 10) + ", " + std::to_string(i) + ", " +
             std::to_string(i % 5) + ", " + std::to_string(i % 7) + ")";
    txts += "(" + std::to_string(i) + ", 'value token" +
            std::to_string(i % 30) + "')";
  }
  run(nodes);
  run(txts);
}

// Canonical multiset rendering of a result: one pipe-joined line per row,
// sorted.
std::vector<std::string> Canonical(const QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const rel::Tuple& tuple : result.rows) {
    std::string line;
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) line += "|";
      line += tuple[i].ToString();
    }
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(OptimizerDifferentialTest, CostBasedMatchesFromOrderBaseline) {
  auto db = Database::OpenInMemory();
  SqlEngine costed(db.get());
  EngineOptions baseline_opts;
  baseline_opts.planner.mode = PlannerMode::kFromOrder;
  SqlEngine baseline(db.get(), baseline_opts);
  Seed(&costed);
  ASSERT_TRUE(costed.Execute("ANALYZE").ok());

  for (const char* sql : Queries()) {
    auto a = costed.Execute(sql);
    auto b = baseline.Execute(sql);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    EXPECT_EQ(Canonical(*a), Canonical(*b)) << sql;
    // The costed engine really did plan with estimates.
    auto plan = costed.Execute(std::string("EXPLAIN ") + sql);
    ASSERT_TRUE(plan.ok()) << sql;
    EXPECT_NE(plan->explain_text.find("est rows="), std::string::npos)
        << sql << "\n"
        << plan->explain_text;
  }
}

TEST(OptimizerDifferentialTest, ErrorsMatchRuleBasedPipeline) {
  auto db = Database::OpenInMemory();
  SqlEngine costed(db.get());
  EngineOptions rule_opts;
  rule_opts.planner.mode = PlannerMode::kRuleBased;
  SqlEngine rule(db.get(), rule_opts);
  Seed(&costed);
  ASSERT_TRUE(costed.Execute("ANALYZE").ok());

  const char* bad[] = {
      "SELECT ghost FROM node",
      "SELECT id FROM node WHERE ghost = 1",
      "SELECT x.id FROM node x, txt x",
      "SELECT id, COUNT(*) FROM node GROUP BY doc",
      "SELECT n.id FROM node n WHERE m.id = 1",
  };
  for (const char* sql : bad) {
    auto a = costed.Execute(sql);
    auto b = rule.Execute(sql);
    ASSERT_FALSE(a.ok()) << sql;
    ASSERT_FALSE(b.ok()) << sql;
    EXPECT_EQ(a.status().ToString(), b.status().ToString()) << sql;
  }
}

class StatsRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/xq_stats_recovery_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::Global().Reset();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(StatsRecoveryTest, AnalyzeSurvivesCrashViaWalReplay) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    SqlEngine engine(db->get());
    Seed(&engine);
    ASSERT_TRUE(engine.Execute("ANALYZE").ok());
    // Snapshot writes fail deterministically (the XOMATIQ_FAULTS
    // db.snapshot.write point), so recovery must come from the WAL alone.
    FaultConfig config;
    config.policy = FaultPolicy::kAlways;
    FaultInjector::Global().Arm("db.snapshot.write", config);
    EXPECT_FALSE((*db)->Checkpoint().ok());
    // No clean shutdown: the Database object is simply dropped.
  }
  FaultInjector::Global().Reset();

  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_NE((*db)->StatsFor("node"), nullptr);
  EXPECT_EQ((*db)->StatsFor("node")->row_count, 240u);
  SqlEngine engine(db->get());
  auto plan = engine.Execute("EXPLAIN SELECT id FROM node WHERE id = 7");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->explain_text.find("est rows="), std::string::npos)
      << plan->explain_text;
}

TEST_F(StatsRecoveryTest, AnalyzeSurvivesCheckpointedRestart) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    SqlEngine engine(db->get());
    Seed(&engine);
    ASSERT_TRUE(engine.Execute("ANALYZE").ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_NE((*db)->StatsFor("txt"), nullptr);
  EXPECT_EQ((*db)->StatsFor("txt")->row_count, 240u);
  SqlEngine engine(db->get());
  auto plan = engine.Execute(
      "EXPLAIN SELECT t.value FROM txt t, node n WHERE t.node = n.id");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->explain_text.find("est rows="), std::string::npos)
      << plan->explain_text;
}

}  // namespace
}  // namespace xomatiq::sql
