#include "sql/executor.h"

#include <gtest/gtest.h>

#include "sql/engine.h"

namespace xomatiq::sql {
namespace {

using rel::Database;
using rel::Tuple;
using rel::Value;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::OpenInMemory();
    engine_ = std::make_unique<SqlEngine>(db_.get());
    Run("CREATE TABLE t (id INT, grp INT, name TEXT, score DOUBLE)");
    const char* rows[] = {
        "(1, 1, 'alpha', 1.0)",  "(2, 1, 'beta', 2.0)",
        "(3, 2, 'gamma', NULL)", "(4, 2, 'delta', 4.0)",
        "(5, 3, 'alpha', 5.0)",
    };
    for (const char* r : rows) {
      Run(std::string("INSERT INTO t VALUES ") + r);
    }
  }

  void Run(const std::string& sql) {
    auto r = engine_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }

  QueryResult Query(const std::string& sql) {
    auto r = engine_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<SqlEngine> engine_;
};

TEST_F(ExecutorTest, ProjectionAndFilter) {
  QueryResult r = Query("SELECT name FROM t WHERE grp = 2 ORDER BY id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsText(), "gamma");
  EXPECT_EQ(r.rows[1][0].AsText(), "delta");
}

TEST_F(ExecutorTest, SelectStarKeepsAllColumns) {
  QueryResult r = Query("SELECT * FROM t WHERE id = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].size(), 4u);
  EXPECT_EQ(r.schema.column(2).name, "name");
}

TEST_F(ExecutorTest, NullNeverMatchesComparison) {
  QueryResult eq = Query("SELECT id FROM t WHERE score = 4.0");
  EXPECT_EQ(eq.rows.size(), 1u);
  QueryResult lt = Query("SELECT id FROM t WHERE score < 100");
  EXPECT_EQ(lt.rows.size(), 4u);  // NULL score row excluded
  QueryResult isnull = Query("SELECT id FROM t WHERE score IS NULL");
  ASSERT_EQ(isnull.rows.size(), 1u);
  EXPECT_EQ(isnull.rows[0][0].AsInt(), 3);
}

TEST_F(ExecutorTest, OrderByDescWithNulls) {
  QueryResult r = Query("SELECT id FROM t ORDER BY score DESC, id");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
  // NULL sorts lowest, so DESC puts it last.
  EXPECT_EQ(r.rows[4][0].AsInt(), 3);
}

TEST_F(ExecutorTest, LimitOffset) {
  QueryResult r = Query("SELECT id FROM t ORDER BY id LIMIT 2 OFFSET 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
  EXPECT_EQ(Query("SELECT id FROM t LIMIT 0").rows.size(), 0u);
  EXPECT_EQ(Query("SELECT id FROM t LIMIT 100").rows.size(), 5u);
}

TEST_F(ExecutorTest, Distinct) {
  QueryResult r = Query("SELECT DISTINCT name FROM t ORDER BY name");
  ASSERT_EQ(r.rows.size(), 4u);  // alpha dedups
}

TEST_F(ExecutorTest, GroupByWithAggregates) {
  QueryResult r = Query(
      "SELECT grp, COUNT(*) AS n, SUM(score) AS total, MIN(name) AS lo "
      "FROM t GROUP BY grp ORDER BY grp");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);                 // grp 1 count
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 3.0);     // 1.0 + 2.0
  EXPECT_EQ(r.rows[1][1].AsInt(), 2);                 // grp 2 count
  EXPECT_DOUBLE_EQ(r.rows[1][2].AsDouble(), 4.0);     // NULL skipped
  EXPECT_EQ(r.rows[0][3].AsText(), "alpha");
}

TEST_F(ExecutorTest, CountColumnSkipsNulls) {
  QueryResult r = Query("SELECT COUNT(score), COUNT(*) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_EQ(r.rows[0][1].AsInt(), 5);
}

TEST_F(ExecutorTest, GrandAggregateOnEmptyInput) {
  QueryResult r =
      Query("SELECT COUNT(*), SUM(score), MIN(id) FROM t WHERE id > 100");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(ExecutorTest, Having) {
  QueryResult r = Query(
      "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp "
      "HAVING COUNT(*) > 1 ORDER BY grp");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt(), 2);
}

TEST_F(ExecutorTest, AvgIsDouble) {
  QueryResult r = Query("SELECT AVG(score) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 3.0);  // (1+2+4+5)/4
}

TEST_F(ExecutorTest, JoinCombinations) {
  Run("CREATE TABLE u (tid INT, tag TEXT)");
  Run("INSERT INTO u VALUES (1, 'x'), (1, 'y'), (3, 'z'), (99, 'w')");
  // Hash join (no index on either side).
  QueryResult r = Query(
      "SELECT t.id, u.tag FROM t, u WHERE t.id = u.tid ORDER BY t.id, u.tag");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsText(), "x");
  EXPECT_EQ(r.rows[2][1].AsText(), "z");
  // Same result with an index available (index-nested-loop path).
  Run("CREATE INDEX t_id ON t (id) USING HASH");
  QueryResult r2 = Query(
      "SELECT t.id, u.tag FROM u, t WHERE t.id = u.tid ORDER BY t.id, u.tag");
  ASSERT_EQ(r2.rows.size(), 3u);
  for (size_t i = 0; i < r.rows.size(); ++i) {
    EXPECT_EQ(r.rows[i][0].AsInt(), r2.rows[i][0].AsInt());
    EXPECT_EQ(r.rows[i][1].AsText(), r2.rows[i][1].AsText());
  }
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  Run("CREATE TABLE a (x INT)");
  Run("CREATE TABLE b (x INT)");
  Run("INSERT INTO a VALUES (1), (2)");
  Run("INSERT INTO b VALUES (2), (3)");
  QueryResult r = Query(
      "SELECT t.id FROM a, b, t WHERE a.x = b.x AND b.x = t.id");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(ExecutorTest, ExplicitJoinSyntax) {
  Run("CREATE TABLE u (tid INT, tag TEXT)");
  Run("INSERT INTO u VALUES (1, 'x')");
  QueryResult r =
      Query("SELECT u.tag FROM t JOIN u ON t.id = u.tid");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "x");
}

TEST_F(ExecutorTest, DeleteAndUpdateThroughEngine) {
  auto del = engine_->Execute("DELETE FROM t WHERE grp = 1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->affected, 2u);
  EXPECT_EQ(Query("SELECT id FROM t").rows.size(), 3u);
  auto upd = engine_->Execute("UPDATE t SET score = score + 1 WHERE id = 4");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->affected, 1u);
  QueryResult r = Query("SELECT score FROM t WHERE id = 4");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 5.0);
}

TEST_F(ExecutorTest, InsertWithColumnListFillsNulls) {
  Run("INSERT INTO t (id) VALUES (42)");
  QueryResult r = Query("SELECT name FROM t WHERE id = 42");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
}

// --- batch-boundary behavior -------------------------------------------
//
// The batched pipeline must be insensitive to where batch boundaries
// fall: a capacity-1 engine, an engine whose batch is exactly as large
// as the table, and the default all have to produce identical results.

class BatchBoundaryTest : public ExecutorTest {
 protected:
  QueryResult QueryCap(size_t capacity, const std::string& sql) {
    EngineOptions options;
    options.executor.batch_capacity = capacity;
    SqlEngine engine(db_.get(), options);
    auto r = engine.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  static void ExpectSameRows(const QueryResult& got, const QueryResult& want,
                             const std::string& label) {
    ASSERT_EQ(got.rows.size(), want.rows.size()) << label;
    for (size_t i = 0; i < want.rows.size(); ++i) {
      ASSERT_EQ(got.rows[i].size(), want.rows[i].size()) << label;
      for (size_t j = 0; j < want.rows[i].size(); ++j) {
        EXPECT_EQ(Value::Compare(got.rows[i][j], want.rows[i][j]), 0)
            << label << " row " << i << " col " << j;
      }
    }
  }
};

TEST_F(BatchBoundaryTest, EveryOperatorAgreesAcrossCapacities) {
  Run("CREATE TABLE u (tid INT, tag TEXT)");
  Run("INSERT INTO u VALUES (1, 'x'), (1, 'y'), (3, 'z'), (99, 'w')");
  Run("CREATE INDEX t_id ON t (id) USING HASH");
  const char* queries[] = {
      "SELECT * FROM t",
      "SELECT name FROM t WHERE grp = 2 ORDER BY id",
      "SELECT id FROM t ORDER BY score DESC, id",
      "SELECT DISTINCT name FROM t ORDER BY name",
      "SELECT grp, COUNT(*), SUM(score) FROM t GROUP BY grp ORDER BY grp",
      "SELECT grp FROM t GROUP BY grp HAVING COUNT(*) > 1 ORDER BY grp",
      // Hash join (u has no index) and index-NL join (t.id is indexed).
      "SELECT t.id, u.tag FROM t, u WHERE t.id = u.tid ORDER BY t.id, u.tag",
      "SELECT t.id, u.tag FROM u, t WHERE t.id = u.tid ORDER BY t.id, u.tag",
      // Cross-table non-equi conjunct: planned as a Filter over the join,
      // executed as a fused pair predicate (no concatenated row is built
      // for failing pairs).
      "SELECT t.id, u.tag FROM t, u WHERE t.id = u.tid AND t.name < u.tag "
      "ORDER BY t.id, u.tag",
      // Pure nested loop (inequality join).
      "SELECT t.id, u.tid FROM t, u WHERE t.id < u.tid ORDER BY t.id, u.tid",
  };
  for (const char* sql : queries) {
    QueryResult want = Query(sql);
    for (size_t cap : {size_t{1}, size_t{2}, size_t{5}}) {
      ExpectSameRows(QueryCap(cap, sql), want,
                     std::string(sql) + " @cap=" + std::to_string(cap));
    }
  }
}

TEST_F(BatchBoundaryTest, ExactlyFullBatch) {
  // t holds exactly 5 rows; a capacity-5 scan fills one batch to the brim
  // and must not emit a phantom empty or duplicate batch after it.
  QueryResult r = QueryCap(5, "SELECT id FROM t ORDER BY id");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[4][0].AsInt(), 5);
}

TEST_F(BatchBoundaryTest, LimitOffsetMidBatch) {
  // Capacity 2 makes LIMIT/OFFSET land inside a batch: OFFSET 1 drops
  // half of the first batch, LIMIT 3 truncates inside the second.
  QueryResult r =
      QueryCap(2, "SELECT id FROM t ORDER BY id LIMIT 3 OFFSET 1");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[2][0].AsInt(), 4);
  // Boundary-aligned: OFFSET consumes exactly the first batch.
  QueryResult r2 =
      QueryCap(2, "SELECT id FROM t ORDER BY id LIMIT 2 OFFSET 2");
  ASSERT_EQ(r2.rows.size(), 2u);
  EXPECT_EQ(r2.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r2.rows[1][0].AsInt(), 4);
  // LIMIT larger than the input and OFFSET past the end.
  EXPECT_EQ(QueryCap(2, "SELECT id FROM t LIMIT 100").rows.size(), 5u);
  EXPECT_EQ(QueryCap(2, "SELECT id FROM t LIMIT 5 OFFSET 7").rows.size(), 0u);
}

TEST_F(BatchBoundaryTest, EmptyInputPerOperator) {
  Run("CREATE TABLE e (id INT, v TEXT)");
  for (size_t cap : {size_t{1}, rel::RowBatch::kDefaultCapacity}) {
    const std::string label = "cap=" + std::to_string(cap);
    EXPECT_EQ(QueryCap(cap, "SELECT * FROM e").rows.size(), 0u) << label;
    EXPECT_EQ(QueryCap(cap, "SELECT id FROM e WHERE id > 0").rows.size(), 0u)
        << label;
    EXPECT_EQ(QueryCap(cap, "SELECT id FROM e ORDER BY v").rows.size(), 0u)
        << label;
    EXPECT_EQ(QueryCap(cap, "SELECT DISTINCT v FROM e").rows.size(), 0u)
        << label;
    EXPECT_EQ(QueryCap(cap, "SELECT id FROM e LIMIT 3").rows.size(), 0u)
        << label;
    EXPECT_EQ(QueryCap(cap, "SELECT v, COUNT(*) FROM e GROUP BY v").rows.size(),
              0u)
        << label;
    // A grand aggregate over empty input still yields its one row.
    QueryResult agg = QueryCap(cap, "SELECT COUNT(*), MIN(id) FROM e");
    ASSERT_EQ(agg.rows.size(), 1u) << label;
    EXPECT_EQ(agg.rows[0][0].AsInt(), 0) << label;
    EXPECT_TRUE(agg.rows[0][1].is_null()) << label;
    // Joins with an empty build side, probe side, and outer side.
    EXPECT_EQ(
        QueryCap(cap, "SELECT t.id FROM t, e WHERE t.id = e.id").rows.size(),
        0u)
        << label;
    EXPECT_EQ(
        QueryCap(cap, "SELECT t.id FROM e, t WHERE t.id = e.id").rows.size(),
        0u)
        << label;
    EXPECT_EQ(
        QueryCap(cap, "SELECT t.id FROM t, e WHERE t.id < e.id").rows.size(),
        0u)
        << label;
  }
}

TEST_F(BatchBoundaryTest, ParallelScanMatchesSerial) {
  // Force every seq scan to the parallel path with an explicit degree;
  // the RowId-order merge must reproduce the serial scan's row order.
  EngineOptions par;
  par.planner.parallel_scan_threshold = 1;
  par.planner.parallel_degree = 3;
  SqlEngine par_engine(db_.get(), par);

  auto explain = par_engine.Execute("EXPLAIN SELECT id FROM t WHERE grp = 2");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->explain_text.find("ParallelSeqScan"), std::string::npos)
      << explain->explain_text;

  const char* queries[] = {
      "SELECT * FROM t",
      "SELECT id FROM t WHERE grp = 2",
      "SELECT id, name FROM t WHERE score < 100",
      "SELECT id FROM t LIMIT 2",
  };
  for (const char* sql : queries) {
    QueryResult want = Query(sql);
    auto got = par_engine.Execute(sql);
    ASSERT_TRUE(got.ok()) << sql << ": " << got.status().ToString();
    ExpectSameRows(*got, want, sql);
  }
}

TEST_F(ExecutorTest, ToTableRendering) {
  QueryResult r = Query("SELECT id, name FROM t WHERE id = 1");
  std::string table = r.ToTable();
  EXPECT_NE(table.find("| id | name"), std::string::npos) << table;
  EXPECT_NE(table.find("| 1  | alpha"), std::string::npos) << table;
  EXPECT_NE(table.find("1 row(s)"), std::string::npos);
}

// --- EXPLAIN ANALYZE ----------------------------------------------------

// First "actual rows=N" on the line naming operator `op`; 0 with a test
// failure when the operator or its actuals are missing.
uint64_t ActualRows(const std::string& text, const std::string& op) {
  size_t line = text.find(op);
  if (line == std::string::npos) {
    ADD_FAILURE() << "operator " << op << " not in plan:\n" << text;
    return 0;
  }
  size_t eol = text.find('\n', line);
  size_t pos = text.find("actual rows=", line);
  if (pos == std::string::npos || pos > eol) {
    ADD_FAILURE() << "no actuals for " << op << " in plan:\n" << text;
    return 0;
  }
  return std::stoull(text.substr(pos + 12));
}

TEST_F(ExecutorTest, ExplainAnalyzeScanActualsMatchResults) {
  QueryResult want = Query("SELECT * FROM t");
  QueryResult r = Query("EXPLAIN ANALYZE SELECT * FROM t");
  // EXPLAIN ANALYZE returns the annotated tree, not the rows.
  EXPECT_TRUE(r.rows.empty());
  EXPECT_NE(r.explain_text.find("time="), std::string::npos)
      << r.explain_text;
  EXPECT_EQ(ActualRows(r.explain_text, "SeqScan"), want.rows.size());
  // Plain EXPLAIN renders the same tree without actuals.
  QueryResult plain = Query("EXPLAIN SELECT * FROM t");
  EXPECT_EQ(plain.explain_text.find("actual rows="), std::string::npos);
}

TEST_F(ExecutorTest, ExplainAnalyzeIndexLookup) {
  Run("CREATE INDEX t_id ON t (id) USING HASH");
  QueryResult want = Query("SELECT * FROM t WHERE id = 2");
  ASSERT_EQ(want.rows.size(), 1u);
  QueryResult r = Query("EXPLAIN ANALYZE SELECT * FROM t WHERE id = 2");
  EXPECT_EQ(ActualRows(r.explain_text, "IndexScan"), want.rows.size());
}

TEST_F(ExecutorTest, ExplainAnalyzeJoinActualsMatchResults) {
  Run("CREATE TABLE u (tid INT, tag TEXT)");
  Run("INSERT INTO u VALUES (1, 'x'), (1, 'y'), (3, 'z'), (99, 'w')");
  QueryResult want =
      Query("SELECT t.id, u.tag FROM t, u WHERE t.id = u.tid");
  ASSERT_EQ(want.rows.size(), 3u);
  QueryResult r = Query(
      "EXPLAIN ANALYZE SELECT t.id, u.tag FROM t, u WHERE t.id = u.tid");
  // The root Project emits exactly the result rows.
  EXPECT_EQ(ActualRows(r.explain_text, "Project"), want.rows.size());
}

TEST_F(ExecutorTest, ExplainAnalyzeFusedFilterIsLabeled) {
  QueryResult r = Query("EXPLAIN ANALYZE SELECT id FROM t WHERE grp = 2");
  // The filter's scan child ran inside the filter; its line says so
  // instead of showing misleading zero counters.
  EXPECT_NE(r.explain_text.find("(fused into parent"), std::string::npos)
      << r.explain_text;
  EXPECT_EQ(ActualRows(r.explain_text, "Filter"), 2u);
}

TEST_F(ExecutorTest, ExplainAnalyzeLimitFinalizesMidBatchStats) {
  // LIMIT cancels the pipeline mid-batch; every operator above and below
  // the cut must still report finalized actuals.
  QueryResult r = Query("EXPLAIN ANALYZE SELECT id FROM t LIMIT 2");
  EXPECT_EQ(ActualRows(r.explain_text, "Limit"), 2u);
  // The scan may emit fewer rows than the table (early termination) but
  // at least the limit's worth, and its counters must be present.
  uint64_t scanned = ActualRows(r.explain_text, "SeqScan");
  EXPECT_GE(scanned, 2u);
  EXPECT_LE(scanned, 5u);
}

TEST_F(ExecutorTest, ExplainAnalyzeKeywordsAreCaseInsensitive) {
  QueryResult r = Query("explain analyze select id from t");
  EXPECT_NE(r.explain_text.find("actual rows="), std::string::npos)
      << r.explain_text;
}

TEST_F(ExecutorTest, ExplainAnalyzeParallelScanReportsPartitions) {
  EngineOptions par;
  par.planner.parallel_scan_threshold = 1;
  par.planner.parallel_degree = 3;
  SqlEngine par_engine(db_.get(), par);
  auto r = par_engine.Execute(
      "EXPLAIN ANALYZE SELECT id FROM t WHERE grp = 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string& text = r->explain_text;
  ASSERT_NE(text.find("ParallelSeqScan"), std::string::npos) << text;
  size_t pos = text.find("partitions=[");
  ASSERT_NE(pos, std::string::npos) << text;
  // Per-partition counts sum to the scan's post-filter output (2 rows).
  uint64_t total = 0;
  size_t cursor = pos + 12;
  while (cursor < text.size() && text[cursor] != ']') {
    if (text[cursor] >= '0' && text[cursor] <= '9') {
      total += std::stoull(text.substr(cursor));
      while (cursor < text.size() && text[cursor] >= '0' &&
             text[cursor] <= '9') {
        ++cursor;
      }
    } else {
      ++cursor;
    }
  }
  EXPECT_EQ(total, 2u) << text;
}

TEST_F(ExecutorTest, StatsCommandDumpsAndResetsRegistry) {
  Query("SELECT * FROM t");
  QueryResult stats = Query("STATS");
  // Engine counters surface in Prometheus exposition form.
  EXPECT_NE(stats.explain_text.find("# TYPE sql_queries counter"),
            std::string::npos)
      << stats.explain_text;
  EXPECT_NE(stats.explain_text.find("rel_table_rows_scanned"),
            std::string::npos);
  Query("RESET STATS");
  QueryResult after = Query("reset stats");  // case-insensitive, idempotent
  EXPECT_TRUE(after.explain_text.empty());
}

TEST_F(ExecutorTest, WalStatusReportsLsnPositions) {
  QueryResult r = Query("WAL STATUS");
  ASSERT_EQ(r.rows.size(), 7u);
  bool saw_durable_lsn = false, saw_applied_lsn = false;
  bool saw_committed_lsn = false;
  for (const Tuple& row : r.rows) {
    const std::string field = row[0].AsText();
    if (field == "durable_lsn" || field == "applied_lsn" ||
        field == "committed_lsn") {
      saw_durable_lsn |= field == "durable_lsn";
      saw_applied_lsn |= field == "applied_lsn";
      saw_committed_lsn |= field == "committed_lsn";
      // 6 inserts + CREATE TABLE; at writer quiescence the in-memory
      // apply, the published commit point and durability all agree.
      EXPECT_EQ(row[1].AsText(), std::to_string(db_->durable_lsn()));
    }
    if (field == "durable") {
      EXPECT_EQ(row[1].AsText(), "false");
    }
  }
  EXPECT_TRUE(saw_durable_lsn);
  EXPECT_TRUE(saw_applied_lsn);
  EXPECT_TRUE(saw_committed_lsn);
  // Another statement advances the reported position.
  Run("INSERT INTO t VALUES (6, 3, 'omega', 6.0)");
  QueryResult after = Query("wal status");  // case-insensitive
  EXPECT_EQ(after.rows[1][1].AsText(), std::to_string(db_->durable_lsn()));
}

}  // namespace
}  // namespace xomatiq::sql
