#include "sql/expr_eval.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace xomatiq::sql {
namespace {

using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest()
      : schema_({{"i", ValueType::kInt, false},
                 {"d", ValueType::kDouble, false},
                 {"s", ValueType::kText, false},
                 {"n", ValueType::kInt, false}}) {}

  // Evaluates `text` against (i=10, d=2.5, s="hello world", n=NULL).
  Value Eval(const std::string& text) {
    auto expr = ParseExpression(text);
    EXPECT_TRUE(expr.ok()) << text << ": " << expr.status().ToString();
    EXPECT_TRUE(Bind(expr->get(), schema_).ok()) << text;
    Tuple tuple{Value::Int(10), Value::Double(2.5),
                Value::Text("hello world"), Value::Null()};
    auto result = sql::Eval(**expr, tuple);
    EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
    return result.ok() ? *result : Value::Null();
  }

  Schema schema_;
};

TEST_F(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("i + 5").AsInt(), 15);
  EXPECT_EQ(Eval("i * 2 - 3").AsInt(), 17);
  EXPECT_EQ(Eval("i / 3").AsInt(), 3);  // integer division
  EXPECT_EQ(Eval("i % 3").AsInt(), 1);
  EXPECT_DOUBLE_EQ(Eval("d * 2").AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(Eval("i / 4.0").AsDouble(), 2.5);
  EXPECT_EQ(Eval("-i").AsInt(), -10);
}

TEST_F(ExprEvalTest, DivisionByZeroIsError) {
  auto expr = ParseExpression("i / 0");
  ASSERT_TRUE(expr.ok());
  ASSERT_TRUE(Bind(expr->get(), schema_).ok());
  Tuple tuple{Value::Int(10), Value::Double(2.5), Value::Text("x"),
              Value::Null()};
  EXPECT_FALSE(sql::Eval(**expr, tuple).ok());
}

TEST_F(ExprEvalTest, Comparisons) {
  EXPECT_EQ(Eval("i = 10").AsInt(), 1);
  EXPECT_EQ(Eval("i != 10").AsInt(), 0);
  EXPECT_EQ(Eval("i < 11").AsInt(), 1);
  EXPECT_EQ(Eval("d >= 2.5").AsInt(), 1);
  EXPECT_EQ(Eval("s = 'hello world'").AsInt(), 1);
  EXPECT_EQ(Eval("i = d").AsInt(), 0);  // 10 vs 2.5
}

TEST_F(ExprEvalTest, NullPropagation) {
  EXPECT_TRUE(Eval("n = 1").is_null());
  EXPECT_TRUE(Eval("n + 1").is_null());
  EXPECT_TRUE(Eval("NOT (n = 1)").is_null());
  EXPECT_EQ(Eval("n IS NULL").AsInt(), 1);
  EXPECT_EQ(Eval("n IS NOT NULL").AsInt(), 0);
  EXPECT_EQ(Eval("i IS NULL").AsInt(), 0);
}

TEST_F(ExprEvalTest, ThreeValuedLogic) {
  // NULL AND false = false; NULL AND true = NULL.
  EXPECT_EQ(Eval("(n = 1) AND (i = 99)").AsInt(), 0);
  EXPECT_TRUE(Eval("(n = 1) AND (i = 10)").is_null());
  // NULL OR true = true; NULL OR false = NULL.
  EXPECT_EQ(Eval("(n = 1) OR (i = 10)").AsInt(), 1);
  EXPECT_TRUE(Eval("(n = 1) OR (i = 99)").is_null());
}

TEST_F(ExprEvalTest, Like) {
  EXPECT_EQ(Eval("s LIKE 'hello%'").AsInt(), 1);
  EXPECT_EQ(Eval("s LIKE '%world'").AsInt(), 1);
  EXPECT_EQ(Eval("s LIKE 'h_llo world'").AsInt(), 1);
  EXPECT_EQ(Eval("s LIKE 'world'").AsInt(), 0);
  EXPECT_EQ(Eval("s NOT LIKE 'x%'").AsInt(), 1);
}

TEST_F(ExprEvalTest, Contains) {
  EXPECT_EQ(Eval("CONTAINS(s, 'hello')").AsInt(), 1);
  EXPECT_EQ(Eval("CONTAINS(s, 'WORLD hello')").AsInt(), 1);  // AND, any case
  EXPECT_EQ(Eval("CONTAINS(s, 'hell')").AsInt(), 0);  // token, not substring
  EXPECT_EQ(Eval("CONTAINS(s, 'missing')").AsInt(), 0);
}

TEST_F(ExprEvalTest, BetweenAndIn) {
  EXPECT_EQ(Eval("i BETWEEN 5 AND 15").AsInt(), 1);
  EXPECT_EQ(Eval("i NOT BETWEEN 5 AND 15").AsInt(), 0);
  EXPECT_EQ(Eval("i BETWEEN 11 AND 15").AsInt(), 0);
  EXPECT_EQ(Eval("i IN (1, 10, 100)").AsInt(), 1);
  EXPECT_EQ(Eval("i NOT IN (1, 2)").AsInt(), 1);
  // IN with NULL member: unknown unless matched.
  EXPECT_TRUE(Eval("i IN (1, n)").is_null());
  EXPECT_EQ(Eval("i IN (10, n)").AsInt(), 1);
}

TEST_F(ExprEvalTest, ScalarFunctions) {
  EXPECT_EQ(Eval("LOWER('ABC')").AsText(), "abc");
  EXPECT_EQ(Eval("UPPER(s)").AsText(), "HELLO WORLD");
  EXPECT_EQ(Eval("LENGTH(s)").AsInt(), 11);
  EXPECT_TRUE(Eval("LOWER(n)").is_null());
}

TEST_F(ExprEvalTest, Concat) {
  EXPECT_EQ(Eval("s || '!'").AsText(), "hello world!");
  EXPECT_EQ(Eval("i || s").AsText(), "10hello world");
}

TEST_F(ExprEvalTest, BindRejectsUnknownColumns) {
  auto expr = ParseExpression("missing = 1");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(Bind(expr->get(), schema_).ok());
}

TEST_F(ExprEvalTest, BindRejectsAggregatesByDefault) {
  auto expr = ParseExpression("COUNT(*) > 1");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(Bind(expr->get(), schema_).ok());
  EXPECT_TRUE(Bind(expr->get(), schema_, /*allow_aggregates=*/true).ok());
}

TEST(MatchLikeTest, EdgeCases) {
  EXPECT_TRUE(MatchLike("", ""));
  EXPECT_TRUE(MatchLike("", "%"));
  EXPECT_FALSE(MatchLike("", "_"));
  EXPECT_TRUE(MatchLike("abc", "%%%"));
  EXPECT_TRUE(MatchLike("abcabc", "%abc"));
  EXPECT_TRUE(MatchLike("aXbXc", "a%b%c"));
  EXPECT_FALSE(MatchLike("ab", "a%bc"));
  EXPECT_TRUE(MatchLike("a%b", "a%b"));  // literal match via wildcard
}

TEST(InferTypeTest, Basics) {
  rel::Schema schema({{"i", ValueType::kInt, false},
                      {"s", ValueType::kText, false}});
  auto check = [&](const std::string& text, ValueType want) {
    auto e = ParseExpression(text);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(InferType(**e, schema), want) << text;
  };
  check("i + 1", ValueType::kInt);
  check("i + 1.5", ValueType::kDouble);
  check("i = 1", ValueType::kInt);
  check("s || 'x'", ValueType::kText);
  check("COUNT(*)", ValueType::kInt);
  check("AVG(i)", ValueType::kDouble);
  check("MIN(s)", ValueType::kText);
  check("LENGTH(s)", ValueType::kInt);
}

TEST(ContainsAggregateTest, DetectsNested) {
  auto with = ParseExpression("1 + COUNT(*)");
  auto without = ParseExpression("1 + i");
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(ContainsAggregate(**with));
  EXPECT_FALSE(ContainsAggregate(**without));
}

}  // namespace
}  // namespace xomatiq::sql
