#include "sql/engine.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace xomatiq::sql {
namespace {

using rel::Database;
using rel::Tuple;
using rel::Value;

TEST(SqlEngineTest, DdlLifecycle) {
  auto db = Database::OpenInMemory();
  SqlEngine engine(db.get());
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (id INT)").ok());
  ASSERT_TRUE(engine.Execute("CREATE INDEX i ON t (id)").ok());
  ASSERT_TRUE(engine.Execute("DROP INDEX i").ok());
  ASSERT_TRUE(engine.Execute("DROP TABLE t").ok());
  EXPECT_FALSE(engine.Execute("SELECT * FROM t").ok());
}

TEST(SqlEngineTest, ConstraintErrorsSurface) {
  auto db = Database::OpenInMemory();
  SqlEngine engine(db.get());
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (id INT NOT NULL)").ok());
  ASSERT_TRUE(engine.Execute("CREATE UNIQUE INDEX u ON t (id)").ok());
  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (1)").ok());
  auto dup = engine.Execute("INSERT INTO t VALUES (1)");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), common::StatusCode::kConstraintViolation);
  EXPECT_FALSE(engine.Execute("INSERT INTO t VALUES (NULL)").ok());
}

TEST(SqlEngineTest, ExplainDoesNotExecute) {
  auto db = Database::OpenInMemory();
  SqlEngine engine(db.get());
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (id INT)").ok());
  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (1)").ok());
  auto r = engine.Execute("EXPLAIN SELECT * FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  EXPECT_FALSE(r->explain_text.empty());
}

// Differential property suite: the same random query set must produce
// identical results on a database with the full index complement and on
// an index-free copy (SeqScan+Filter reference plans). This pins the
// planner's index paths against the straightforward semantics.
class IndexDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

std::string RowsToString(const std::vector<Tuple>& rows) {
  std::vector<std::string> lines;
  for (const Tuple& row : rows) {
    lines.push_back(rel::TupleToString(row));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) out += line + "\n";
  return out;
}

TEST_P(IndexDifferentialTest, IndexedAndUnindexedAgree) {
  common::Rng rng(GetParam());
  auto indexed = Database::OpenInMemory();
  auto plain = Database::OpenInMemory();
  SqlEngine eng_indexed(indexed.get());
  SqlEngine eng_plain(plain.get());

  const char* ddl =
      "CREATE TABLE r (a INT, b INT, c TEXT, d DOUBLE)";
  ASSERT_TRUE(eng_indexed.Execute(ddl).ok());
  ASSERT_TRUE(eng_plain.Execute(ddl).ok());
  ASSERT_TRUE(eng_indexed.Execute("CREATE INDEX r_a ON r (a)").ok());
  ASSERT_TRUE(
      eng_indexed.Execute("CREATE INDEX r_b ON r (b) USING HASH").ok());
  ASSERT_TRUE(
      eng_indexed.Execute("CREATE INDEX r_c ON r (c) USING INVERTED").ok());
  ASSERT_TRUE(eng_indexed.Execute("CREATE INDEX r_ab ON r (a, b)").ok());

  static const char* kWords[] = {"alpha", "beta", "gamma", "delta", "eps"};
  for (int i = 0; i < 300; ++i) {
    int64_t a = rng.UniformRange(0, 20);
    int64_t b = rng.UniformRange(0, 5);
    std::string c = std::string(kWords[rng.Uniform(5)]) + " " +
                    kWords[rng.Uniform(5)];
    std::string d = rng.Bernoulli(0.1)
                        ? "NULL"
                        : std::to_string(rng.NextDouble() * 10);
    std::string insert = "INSERT INTO r VALUES (" + std::to_string(a) +
                         ", " + std::to_string(b) + ", '" + c + "', " + d +
                         ")";
    ASSERT_TRUE(eng_indexed.Execute(insert).ok());
    ASSERT_TRUE(eng_plain.Execute(insert).ok());
  }

  std::vector<std::string> queries = {
      "SELECT a, b FROM r WHERE a = 7",
      "SELECT a FROM r WHERE a > 15",
      "SELECT a FROM r WHERE a BETWEEN 3 AND 6",
      "SELECT a, c FROM r WHERE b = 2 AND a = 4",
      "SELECT c FROM r WHERE CONTAINS(c, 'alpha')",
      "SELECT c FROM r WHERE CONTAINS(c, 'alpha beta')",
      "SELECT a FROM r WHERE a = 3 OR a = 4",
      "SELECT a, COUNT(*) FROM r GROUP BY a",
      "SELECT DISTINCT b FROM r",
      "SELECT x.a FROM r x, r y WHERE x.a = y.b AND y.a = 1",
      "SELECT a FROM r WHERE d IS NULL",
      "SELECT a FROM r WHERE c LIKE 'alpha%' AND a < 10",
      "SELECT MAX(d), MIN(a) FROM r WHERE b = 3",
  };
  for (const std::string& q : queries) {
    auto ri = eng_indexed.Execute(q);
    auto rp = eng_plain.Execute(q);
    ASSERT_TRUE(ri.ok()) << q << ": " << ri.status().ToString();
    ASSERT_TRUE(rp.ok()) << q << ": " << rp.status().ToString();
    EXPECT_EQ(RowsToString(ri->rows), RowsToString(rp->rows)) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace xomatiq::sql
