// Differential suite for morsel-driven parallel execution: every parallel
// operator (scan, hash join build/probe, aggregation, sort, distinct) must
// produce byte-identical rows — values AND order — to the serial executor,
// including under a pinned MVCC snapshot with concurrent DML, and an
// expired deadline must surface as a typed kTimeout from parallel plans.
//
// The corpus uses dyadic doubles (multiples of 0.25) so parallel partial
// SUM/AVG merges are exact, making double aggregates comparable bit-for-bit
// rather than "close".
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "exec/worker_pool.h"
#include "sql/engine.h"

namespace xomatiq::sql {
namespace {

using rel::Database;

std::vector<std::string> Render(const QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const auto& row : r.rows) {
    std::string s;
    for (const auto& v : row) {
      s += v.ToString();
      s += '|';
    }
    out.push_back(std::move(s));
  }
  return out;
}

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::OpenInMemory();
    serial_ = std::make_unique<SqlEngine>(db_.get());

    // Parallel engine: plans annotate every eligible operator (threshold
    // 1) at degree 4, and the executor fans out aggressively (tiny
    // morsels, low runtime row threshold) on an explicit 3-worker pool —
    // so the parallel machinery is exercised even on a 1-core host.
    pool_ = std::make_unique<exec::WorkerPool>(3);
    EngineOptions par;
    par.planner.parallel_scan_threshold = 1;
    par.planner.parallel_degree = 4;
    par.executor.pool = pool_.get();
    par.executor.morsel_rows = 64;
    par.executor.parallel_row_threshold = 16;
    parallel_ = std::make_unique<SqlEngine>(db_.get(), par);

    Run("CREATE TABLE big (id INT, grp INT, tag TEXT, val INT, dv DOUBLE)");
    Run("CREATE TABLE dim (id INT, grp INT, name TEXT, val INT)");
    FillBig(6000, /*seed=*/42);
    FillDim(4000, /*seed=*/7);
  }

  void FillBig(int n, unsigned seed) {
    std::mt19937 rng(seed);
    const char* tags[] = {"alpha", "beta", "gamma", "delta", "eps", "zeta"};
    for (int base = 0; base < n; base += 500) {
      std::string sql = "INSERT INTO big VALUES ";
      int hi = std::min(n, base + 500);
      for (int i = base; i < hi; ++i) {
        if (i != base) sql += ", ";
        sql += "(" + std::to_string(i) + ", " + std::to_string(rng() % 37) +
               ", '" + tags[rng() % 6] + "', " + std::to_string(rng() % 1000) +
               ", " + std::to_string(static_cast<double>(rng() % 400) / 4.0) +
               ")";
      }
      Run(sql);
    }
  }

  void FillDim(int n, unsigned seed) {
    std::mt19937 rng(seed);
    const char* names[] = {"red", "green", "blue", "cyan"};
    for (int base = 0; base < n; base += 500) {
      std::string sql = "INSERT INTO dim VALUES ";
      int hi = std::min(n, base + 500);
      for (int i = base; i < hi; ++i) {
        if (i != base) sql += ", ";
        sql += "(" + std::to_string(i) + ", " + std::to_string(rng() % 37) +
               ", '" + names[rng() % 4] + "', " +
               std::to_string(rng() % 1000) + ")";
      }
      Run(sql);
    }
  }

  void Run(const std::string& sql) {
    auto r = serial_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }

  // Runs `sql` on both engines and asserts identical row sequences.
  void ExpectSame(const std::string& sql) {
    auto s = serial_->Execute(sql);
    ASSERT_TRUE(s.ok()) << sql << ": " << s.status().ToString();
    auto p = parallel_->Execute(sql);
    ASSERT_TRUE(p.ok()) << sql << ": " << p.status().ToString();
    EXPECT_EQ(Render(*s), Render(*p)) << sql;
  }

  std::string Explain(const std::string& sql) {
    auto r = parallel_->Execute("EXPLAIN " + sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? r->explain_text : std::string();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<exec::WorkerPool> pool_;
  std::unique_ptr<SqlEngine> serial_;
  std::unique_ptr<SqlEngine> parallel_;
};

TEST_F(ParallelExecTest, ScanAndFilterMatchSerial) {
  ExpectSame("SELECT id, tag, val FROM big WHERE val > 500");
  ExpectSame("SELECT id FROM big WHERE tag = 'alpha' AND val < 100");
}

TEST_F(ParallelExecTest, HashJoinMatchesSerial) {
  const std::string q =
      "SELECT b.id, d.id, d.name FROM big b, dim d "
      "WHERE b.grp = d.grp AND b.val > 940 AND d.val > 900";
  EXPECT_NE(Explain(q).find("workers="), std::string::npos)
      << "parallel plan expected:\n"
      << Explain(q);
  ExpectSame(q);
}

TEST_F(ParallelExecTest, AggregationMatchesSerialIncludingGroupOrder) {
  // No ORDER BY: the group output order itself (serial first-seen order)
  // is part of the contract the parallel merge must reproduce.
  const std::string q =
      "SELECT grp, COUNT(*), SUM(val), SUM(dv), AVG(dv), MIN(tag), "
      "MAX(val) FROM big GROUP BY grp";
  EXPECT_NE(Explain(q).find("workers="), std::string::npos);
  ExpectSame(q);
  ExpectSame("SELECT COUNT(*), SUM(dv), MIN(val), MAX(tag) FROM big");
}

TEST_F(ParallelExecTest, SortMatchesSerialIncludingTieOrder) {
  // Duplicate keys everywhere: equal-key rows must come out in input
  // order, exactly as stable_sort emits them.
  const std::string q = "SELECT tag, grp, id FROM big ORDER BY tag, grp";
  EXPECT_NE(Explain(q).find("workers="), std::string::npos);
  ExpectSame(q);
  ExpectSame("SELECT val, id FROM big ORDER BY val DESC");
}

TEST_F(ParallelExecTest, DistinctMatchesSerialIncludingFirstSeenOrder) {
  const std::string q = "SELECT DISTINCT tag, grp FROM big";
  EXPECT_NE(Explain(q).find("workers="), std::string::npos);
  ExpectSame(q);
}

TEST_F(ParallelExecTest, JoinAggSortPipelineMatchesSerial) {
  ExpectSame(
      "SELECT b.grp, COUNT(*), SUM(d.val) FROM big b, dim d "
      "WHERE b.grp = d.grp AND b.val > 800 AND d.val > 800 "
      "GROUP BY b.grp ORDER BY b.grp DESC");
}

TEST_F(ParallelExecTest, PinnedSnapshotIgnoresConcurrentDml) {
  const std::string q =
      "SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp";
  rel::Snapshot snap = db_->BeginSnapshot();
  common::QueryRequest pinned = common::QueryRequest::Sql(q);
  pinned.read_epoch = snap.epoch();

  auto baseline = serial_->Execute(pinned);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  std::vector<std::string> want = Render(*baseline);

  // Writer mutates the table while pinned parallel reads repeat: every
  // read must keep seeing exactly the snapshot's rows.
  std::thread writer([&] {
    for (int i = 0; i < 40; ++i) {
      auto r = serial_->Execute(
          "INSERT INTO big VALUES (" + std::to_string(100000 + i) +
          ", 1, 'zzz', 999, 0.25)");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  });
  for (int i = 0; i < 10; ++i) {
    auto r = parallel_->Execute(pinned);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Render(*r), want) << "pinned read drifted on iteration " << i;
  }
  writer.join();

  // An unpinned read sees the writer's rows.
  auto fresh = parallel_->Execute("SELECT COUNT(*) FROM big WHERE id >= "
                                  "100000");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows[0][0].AsInt(), 40);
}

TEST_F(ParallelExecTest, DeadlineFiresFromParallelOperators) {
  // A join wide enough (~800k pairs) that a 1ms budget expires inside the
  // parallel build/probe loops, not just at operator entry.
  common::QueryOptions opts;
  opts.deadline_ms = 1;
  auto r = parallel_->Execute(common::QueryRequest::Sql(
      "SELECT b.id, d.id FROM big b, dim d WHERE b.grp = d.grp", opts));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kTimeout)
      << r.status().ToString();
}

TEST_F(ParallelExecTest, ExplainAnalyzeReportsWorkersAndMorsels) {
  auto r = parallel_->Execute(
      "EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM big GROUP BY grp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string& text = r->explain_text;
  EXPECT_NE(text.find("workers="), std::string::npos) << text;
  EXPECT_NE(text.find("morsels="), std::string::npos) << text;
  EXPECT_NE(text.find("partitions=["), std::string::npos) << text;
}

}  // namespace
}  // namespace xomatiq::sql
