#include "sql/planner.h"

#include <gtest/gtest.h>

#include "sql/engine.h"
#include "sql/parser.h"

namespace xomatiq::sql {
namespace {

using rel::Database;
using rel::IndexKind;

// Fixture with a small warehouse-shaped catalog and indexes.
class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::OpenInMemory();
    engine_ = std::make_unique<SqlEngine>(db_.get());
    Run("CREATE TABLE node (doc INT, id INT, path INT, ord INT)");
    Run("CREATE TABLE txt (node INT, value TEXT)");
    Run("CREATE INDEX node_id ON node (id) USING HASH");
    Run("CREATE INDEX node_path ON node (path)");
    Run("CREATE INDEX node_doc_ord ON node (doc, ord)");
    Run("CREATE INDEX txt_node ON txt (node) USING HASH");
    Run("CREATE INDEX txt_kw ON txt (value) USING INVERTED");
    for (int i = 0; i < 20; ++i) {
      Run("INSERT INTO node VALUES (" + std::to_string(i / 5) + ", " +
          std::to_string(i) + ", " + std::to_string(i % 3) + ", " +
          std::to_string(i % 5) + ")");
      Run("INSERT INTO txt VALUES (" + std::to_string(i) +
          ", 'value token" + std::to_string(i) + "')");
    }
  }

  void Run(const std::string& sql) {
    auto r = engine_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }

  std::string Explain(const std::string& sql) {
    auto r = engine_->Execute("EXPLAIN " + sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? r->explain_text : "";
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<SqlEngine> engine_;
};

TEST_F(PlannerTest, EqualityPicksHashIndex) {
  std::string plan = Explain("SELECT id FROM node WHERE id = 7");
  EXPECT_NE(plan.find("IndexScan node USING node_id"), std::string::npos)
      << plan;
}

TEST_F(PlannerTest, EqualityOnBtreeColumn) {
  std::string plan = Explain("SELECT id FROM node WHERE path = 1");
  EXPECT_NE(plan.find("IndexScan node USING node_path"), std::string::npos)
      << plan;
}

TEST_F(PlannerTest, RangePicksBtree) {
  std::string plan = Explain("SELECT id FROM node WHERE path > 1");
  EXPECT_NE(plan.find("IndexScan node USING node_path"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("> 1"), std::string::npos) << plan;
}

TEST_F(PlannerTest, CompositePrefixEquality) {
  std::string plan =
      Explain("SELECT id FROM node WHERE doc = 2 AND ord = 3");
  EXPECT_NE(plan.find("node_doc_ord"), std::string::npos) << plan;
  EXPECT_NE(plan.find("key=(2, 3)"), std::string::npos) << plan;
}

TEST_F(PlannerTest, ContainsPicksInvertedIndex) {
  std::string plan =
      Explain("SELECT value FROM txt WHERE CONTAINS(value, 'token3')");
  EXPECT_NE(plan.find("KeywordScan txt USING txt_kw"), std::string::npos)
      << plan;
}

TEST_F(PlannerTest, NoIndexFallsBackToSeqScanFilter) {
  std::string plan = Explain("SELECT id FROM node WHERE ord = 2");
  EXPECT_NE(plan.find("SeqScan node"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Filter"), std::string::npos) << plan;
}

TEST_F(PlannerTest, EquiJoinWithInnerIndexPicksIndexNestedLoop) {
  std::string plan = Explain(
      "SELECT t.value FROM txt t, node n WHERE t.node = n.id");
  // txt first, node joined via its hash index.
  EXPECT_NE(plan.find("IndexNLJoin inner=node USING node_id"),
            std::string::npos)
      << plan;
}

TEST_F(PlannerTest, EquiJoinWithoutIndexPicksHashJoin) {
  std::string plan = Explain(
      "SELECT n.id FROM node n, node m WHERE n.ord = m.ord");
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
}

TEST_F(PlannerTest, CrossJoinIsNestedLoop) {
  std::string plan = Explain("SELECT n.id FROM node n, txt t LIMIT 1");
  EXPECT_NE(plan.find("NestedLoopJoin"), std::string::npos) << plan;
}

TEST_F(PlannerTest, UnknownColumnIsError) {
  auto r = engine_->Execute("SELECT nothing FROM node");
  EXPECT_FALSE(r.ok());
  auto w = engine_->Execute("SELECT id FROM node WHERE ghost = 1");
  EXPECT_FALSE(w.ok());
}

TEST_F(PlannerTest, DuplicateAliasRejected) {
  auto r = engine_->Execute("SELECT x.id FROM node x, txt x");
  EXPECT_FALSE(r.ok());
}

TEST_F(PlannerTest, AggregateShapesPlan) {
  std::string plan = Explain(
      "SELECT doc, COUNT(*) FROM node GROUP BY doc HAVING COUNT(*) > 2");
  EXPECT_NE(plan.find("Aggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Filter"), std::string::npos) << plan;  // HAVING
}

TEST_F(PlannerTest, BareColumnOutsideGroupByRejected) {
  auto r = engine_->Execute("SELECT id, COUNT(*) FROM node GROUP BY doc");
  EXPECT_FALSE(r.ok());
}

TEST_F(PlannerTest, OrderBySortsBeforeOrAfterProjection) {
  // Key available pre-projection.
  std::string pre = Explain("SELECT id FROM node ORDER BY ord");
  EXPECT_NE(pre.find("Sort"), std::string::npos);
  // Key references the output alias -> sorts after projection.
  std::string post =
      Explain("SELECT id + 1 AS shifted FROM node ORDER BY shifted");
  EXPECT_NE(post.find("Sort"), std::string::npos);
}

TEST_F(PlannerTest, LikePrefixUsesBtreeRangeWithResidualFilter) {
  Run("CREATE TABLE s (name TEXT)");
  Run("CREATE INDEX s_name ON s (name)");
  Run("INSERT INTO s VALUES ('alpha'), ('alphabet'), ('beta'), ('alp')");
  std::string plan = Explain("SELECT name FROM s WHERE name LIKE 'alpha%'");
  EXPECT_NE(plan.find("IndexScan s USING s_name"), std::string::npos)
      << plan;
  // The range is a superset, so the LIKE stays as a filter.
  EXPECT_NE(plan.find("Filter"), std::string::npos) << plan;
  auto r = engine_->Execute("SELECT name FROM s WHERE name LIKE 'alpha%' "
                            "ORDER BY name");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].AsText(), "alpha");
  EXPECT_EQ(r->rows[1][0].AsText(), "alphabet");
  // Leading-wildcard patterns cannot use the index.
  std::string scan = Explain("SELECT name FROM s WHERE name LIKE '%pha'");
  EXPECT_NE(scan.find("SeqScan"), std::string::npos) << scan;
}

TEST_F(PlannerTest, GreedyOrderAvoidsEarlyCrossProduct) {
  // node and txt connect via t.node = n.id; the second node alias m only
  // connects through txt (t.node = m.ord). FROM order (n, m, t) would
  // cross n x m first; greedy ordering must chain n -> t -> m instead.
  std::string plan = Explain(
      "SELECT n.id FROM node n, node m, txt t "
      "WHERE t.node = n.id AND t.node = m.ord");
  EXPECT_EQ(plan.find("NestedLoopJoin"), std::string::npos) << plan;
}

TEST_F(PlannerTest, DisconnectedComponentsFilteredBeforeCross) {
  // Two independent single-table filters joined by nothing: each side
  // must carry its filter below the cross product.
  std::string plan = Explain(
      "SELECT n.id FROM node n, txt t "
      "WHERE n.id = 3 AND CONTAINS(t.value, 'token5')");
  size_t cross = plan.find("NestedLoopJoin");
  ASSERT_NE(cross, std::string::npos) << plan;
  // Both access paths appear below (after, in the printed tree) the join
  // node and are index-driven, not residual filters above it.
  EXPECT_GT(plan.find("IndexScan node USING node_id"), cross) << plan;
  EXPECT_GT(plan.find("KeywordScan txt USING txt_kw"), cross) << plan;
  EXPECT_EQ(plan.find("Filter"), std::string::npos) << plan;
}

TEST_F(PlannerTest, IndexConsumedPredicateNotReFiltered) {
  // Single equality fully served by the index: no residual Filter.
  std::string plan = Explain("SELECT id FROM node WHERE id = 3");
  EXPECT_EQ(plan.find("Filter"), std::string::npos) << plan;
}

}  // namespace
}  // namespace xomatiq::sql
