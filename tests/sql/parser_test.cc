#include "sql/parser.h"

#include <gtest/gtest.h>

namespace xomatiq::sql {
namespace {

TEST(SqlParserTest, CreateTable) {
  auto stmt = ParseStatement(
      "CREATE TABLE t (id INT NOT NULL, name TEXT, score DOUBLE, "
      "tag VARCHAR(32), pk INTEGER PRIMARY KEY)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, StatementKind::kCreateTable);
  const CreateTableStmt& ct = stmt->create_table;
  EXPECT_EQ(ct.table, "t");
  ASSERT_EQ(ct.columns.size(), 5u);
  EXPECT_TRUE(ct.columns[0].not_null);
  EXPECT_EQ(ct.columns[1].type, rel::ValueType::kText);
  EXPECT_EQ(ct.columns[2].type, rel::ValueType::kDouble);
  EXPECT_EQ(ct.columns[3].type, rel::ValueType::kText);
  EXPECT_TRUE(ct.columns[4].not_null);  // PRIMARY KEY implies NOT NULL
}

TEST(SqlParserTest, CreateIndexVariants) {
  auto stmt = ParseStatement(
      "CREATE UNIQUE INDEX idx ON t (a, b) USING HASH");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->create_index.unique);
  EXPECT_EQ(stmt->create_index.kind, rel::IndexKind::kHash);
  EXPECT_EQ(stmt->create_index.columns,
            (std::vector<std::string>{"a", "b"}));
  auto inv = ParseStatement("CREATE INDEX kw ON t (v) USING INVERTED");
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->create_index.kind, rel::IndexKind::kInverted);
  auto btree = ParseStatement("CREATE INDEX b ON t (v)");
  ASSERT_TRUE(btree.ok());
  EXPECT_EQ(btree->create_index.kind, rel::IndexKind::kBTree);
}

TEST(SqlParserTest, InsertMultipleRows) {
  auto stmt = ParseStatement(
      "INSERT INTO t (id, name) VALUES (1, 'a'), (2, NULL)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->insert.rows.size(), 2u);
  EXPECT_EQ(stmt->insert.columns, (std::vector<std::string>{"id", "name"}));
}

TEST(SqlParserTest, SelectFullClause) {
  auto stmt = ParseStatement(
      "SELECT DISTINCT a.id AS x, COUNT(*) AS n FROM t a, u "
      "JOIN v ON v.id = a.id "
      "WHERE a.id > 3 AND u.name LIKE 'x%' "
      "GROUP BY a.id HAVING COUNT(*) > 1 "
      "ORDER BY n DESC, x LIMIT 10 OFFSET 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& s = stmt->select;
  EXPECT_TRUE(s.distinct);
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].alias, "x");
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].alias, "a");
  EXPECT_EQ(s.from[1].alias, "u");
  ASSERT_EQ(s.joins.size(), 1u);
  ASSERT_NE(s.where, nullptr);
  ASSERT_EQ(s.group_by.size(), 1u);
  ASSERT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_TRUE(s.order_by[0].desc);
  EXPECT_FALSE(s.order_by[1].desc);
  EXPECT_EQ(s.limit, 10);
  EXPECT_EQ(s.offset, 5);
}

TEST(SqlParserTest, SelectStar) {
  auto stmt = ParseStatement("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->select.items.size(), 1u);
  EXPECT_TRUE(stmt->select.items[0].is_star);
}

TEST(SqlParserTest, ExpressionPrecedence) {
  auto e = ParseExpression("a = 1 OR b = 2 AND NOT c = 3");
  ASSERT_TRUE(e.ok());
  // OR binds loosest: (a=1) OR ((b=2) AND (NOT (c=3)))
  EXPECT_EQ((*e)->ToString(),
            "((a = 1) OR ((b = 2) AND NOT (c = 3)))");
}

TEST(SqlParserTest, ArithmeticPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 - 4 / 2");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "((1 + (2 * 3)) - (4 / 2))");
}

TEST(SqlParserTest, SpecialPredicates) {
  EXPECT_TRUE(ParseExpression("x IS NULL").ok());
  EXPECT_TRUE(ParseExpression("x IS NOT NULL").ok());
  EXPECT_TRUE(ParseExpression("x NOT LIKE 'a%'").ok());
  EXPECT_TRUE(ParseExpression("x IN (1, 2, 3)").ok());
  EXPECT_TRUE(ParseExpression("x NOT IN ('a')").ok());
  EXPECT_TRUE(ParseExpression("x BETWEEN 1 AND 10").ok());
  EXPECT_TRUE(ParseExpression("CONTAINS(v, 'cdc6')").ok());
  EXPECT_TRUE(ParseExpression("LOWER(x) = 'abc'").ok());
  EXPECT_TRUE(ParseExpression("LENGTH(x) > 3").ok());
}

TEST(SqlParserTest, QualifiedColumnNames) {
  auto e = ParseExpression("d_a.doc_id = n_a.doc_id");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->left->column_name, "d_a.doc_id");
}

TEST(SqlParserTest, DeleteAndUpdate) {
  auto del = ParseStatement("DELETE FROM t WHERE id = 3");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, StatementKind::kDelete);
  ASSERT_NE(del->del.where, nullptr);
  auto upd = ParseStatement("UPDATE t SET a = 1, b = b + 1 WHERE id = 2");
  ASSERT_TRUE(upd.ok());
  ASSERT_EQ(upd->update.sets.size(), 2u);
}

TEST(SqlParserTest, Explain) {
  auto stmt = ParseStatement("EXPLAIN SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, StatementKind::kExplain);
}

TEST(SqlParserTest, Drop) {
  auto t = ParseStatement("DROP TABLE t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->drop.is_table);
  auto i = ParseStatement("DROP INDEX idx");
  ASSERT_TRUE(i.ok());
  EXPECT_FALSE(i->drop.is_table);
}

TEST(SqlParserTest, ErrorsAreParseErrors) {
  const char* bad[] = {
      "SELECT",                      // missing items
      "SELECT a FROM",               // missing table
      "CREATE TABLE t ()",           // no columns
      "INSERT INTO t VALUES",        // no rows
      "SELECT a FROM t WHERE",       // dangling where
      "SELECT a FROM t LIMIT 'x'",   // non-integer limit
      "SELECT a FROM t 42",          // trailing input
      "UPDATE t",                    // missing SET
  };
  for (const char* sql : bad) {
    auto stmt = ParseStatement(sql);
    EXPECT_FALSE(stmt.ok()) << sql;
  }
}

TEST(SqlParserTest, ExprCloneIsDeep) {
  auto e = ParseExpression("a + 1 BETWEEN b AND c + 2");
  ASSERT_TRUE(e.ok());
  ExprPtr clone = (*e)->Clone();
  EXPECT_EQ(clone->ToString(), (*e)->ToString());
  EXPECT_NE(clone->left.get(), (*e)->left.get());
}

}  // namespace
}  // namespace xomatiq::sql
