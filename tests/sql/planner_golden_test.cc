// Golden-plan regression suite for the cost-based optimizer.
//
// Two invariants are pinned across a fixed set of ~20 statements:
//
//   1. Without statistics, the kAuto planner must produce byte-identical
//      EXPLAIN output to an explicitly rule-based engine — ANALYZE is
//      strictly opt-in, and merely shipping the optimizer must not change
//      a single plan for unanalyzed tables.
//   2. With statistics, every plan carries (est rows=... cost=...)
//      annotations, is deterministic, and matches per-statement structural
//      expectations (chosen access paths, join methods, reordering).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "sql/engine.h"

namespace xomatiq::sql {
namespace {

using rel::Database;

// The regression set. `costed_expect` lists substrings the post-ANALYZE
// plan must contain (empty = only the generic estimate checks apply).
struct GoldenCase {
  const char* sql;
  std::vector<const char*> costed_expect;
};

const std::vector<GoldenCase>& Cases() {
  static const std::vector<GoldenCase> cases = {
      {"SELECT id FROM node WHERE id = 7", {"IndexScan node USING node_id"}},
      {"SELECT id FROM node WHERE path = 1",
       {"IndexScan node USING node_path"}},
      {"SELECT id FROM node WHERE path > 1",
       {"IndexScan node USING node_path", "> 1"}},
      {"SELECT id FROM node WHERE path >= 1 AND path < 3",
       {"IndexScan node USING node_path"}},
      {"SELECT id FROM node WHERE ord = 2", {"SeqScan node", "Filter"}},
      {"SELECT value FROM txt WHERE CONTAINS(value, 'token3')",
       {"KeywordScan txt USING txt_kw"}},
      {"SELECT t.value FROM txt t, node n WHERE t.node = n.id", {}},
      {"SELECT n.id FROM node n, node m WHERE n.ord = m.ord", {"HashJoin"}},
      {"SELECT n.id FROM node n, txt t LIMIT 1",
       {"NestedLoopJoin", "Limit 1"}},
      {"SELECT doc, COUNT(*) FROM node GROUP BY doc HAVING COUNT(*) > 2",
       {"Aggregate", "Filter"}},
      {"SELECT id FROM node ORDER BY ord", {"Sort"}},
      {"SELECT DISTINCT doc FROM node", {"Distinct"}},
      {"SELECT id FROM node WHERE id = 3 AND ord = 1",
       {"IndexScan node USING node_id"}},
      {"SELECT id FROM node WHERE id IN (1, 2, 3)", {}},
      {"SELECT id FROM node WHERE id = 1 OR id = 2", {}},
      {"SELECT * FROM doc", {"SeqScan doc"}},
      {"SELECT d.coll, n.id FROM doc d, node n "
       "WHERE n.doc = d.id AND d.coll = 'c1'",
       {}},
      {"SELECT n.id FROM doc d, node n, txt t "
       "WHERE n.doc = d.id AND t.node = n.id",
       {}},
      {"SELECT COUNT(*) FROM node", {"Aggregate"}},
      {"SELECT id + 1 AS shifted FROM node ORDER BY shifted LIMIT 5",
       {"Sort", "Limit 5"}},
      {"SELECT n.id FROM node n, txt t "
       "WHERE t.node = n.id AND CONTAINS(t.value, 'token7')",
       {}},
      {"SELECT id FROM node WHERE 1 = 1", {}},
  };
  return cases;
}

class PlannerGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto_db_ = Database::OpenInMemory();
    rule_db_ = Database::OpenInMemory();
    auto_engine_ = std::make_unique<SqlEngine>(auto_db_.get());
    EngineOptions rule_opts;
    rule_opts.planner.mode = PlannerMode::kRuleBased;
    rule_engine_ = std::make_unique<SqlEngine>(rule_db_.get(), rule_opts);
    Seed(auto_engine_.get());
    Seed(rule_engine_.get());
  }

  // Warehouse-shaped catalog with three tables of very different sizes,
  // so join-order decisions have something to bite on.
  void Seed(SqlEngine* engine) {
    Run(engine, "CREATE TABLE doc (id INT, coll TEXT)");
    Run(engine, "CREATE TABLE node (doc INT, id INT, path INT, ord INT)");
    Run(engine, "CREATE TABLE txt (node INT, value TEXT)");
    Run(engine, "CREATE INDEX doc_id ON doc (id) USING HASH");
    Run(engine, "CREATE INDEX node_id ON node (id) USING HASH");
    Run(engine, "CREATE INDEX node_path ON node (path)");
    Run(engine, "CREATE INDEX node_doc ON node (doc)");
    Run(engine, "CREATE INDEX txt_node ON txt (node) USING HASH");
    Run(engine, "CREATE INDEX txt_kw ON txt (value) USING INVERTED");
    for (int i = 0; i < 8; ++i) {
      Run(engine, "INSERT INTO doc VALUES (" + std::to_string(i) + ", 'c" +
                      std::to_string(i % 3) + "')");
    }
    std::string nodes = "INSERT INTO node VALUES ";
    std::string txts = "INSERT INTO txt VALUES ";
    for (int i = 0; i < 120; ++i) {
      if (i > 0) {
        nodes += ", ";
        txts += ", ";
      }
      nodes += "(" + std::to_string(i % 8) + ", " + std::to_string(i) + ", " +
               std::to_string(i % 5) + ", " + std::to_string(i % 7) + ")";
      txts += "(" + std::to_string(i) + ", 'value token" +
              std::to_string(i % 30) + "')";
    }
    Run(engine, nodes);
    Run(engine, txts);
  }

  void Run(SqlEngine* engine, const std::string& sql) {
    auto r = engine->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }

  std::string Explain(SqlEngine* engine, const std::string& sql) {
    auto r = engine->Execute("EXPLAIN " + sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? r->explain_text : "";
  }

  void AnalyzeAll() { Run(auto_engine_.get(), "ANALYZE"); }

  std::unique_ptr<Database> auto_db_;
  std::unique_ptr<Database> rule_db_;
  std::unique_ptr<SqlEngine> auto_engine_;
  std::unique_ptr<SqlEngine> rule_engine_;
};

TEST_F(PlannerGoldenTest, UnanalyzedPlansAreByteIdenticalToRuleBased) {
  for (const GoldenCase& c : Cases()) {
    std::string auto_plan = Explain(auto_engine_.get(), c.sql);
    std::string rule_plan = Explain(rule_engine_.get(), c.sql);
    EXPECT_EQ(auto_plan, rule_plan) << c.sql;
    EXPECT_EQ(auto_plan.find("est rows="), std::string::npos)
        << c.sql << "\n"
        << auto_plan;
  }
}

TEST_F(PlannerGoldenTest, AnalyzedPlansCarryEstimatesAndAreDeterministic) {
  AnalyzeAll();
  for (const GoldenCase& c : Cases()) {
    std::string plan = Explain(auto_engine_.get(), c.sql);
    EXPECT_NE(plan.find("(est rows="), std::string::npos)
        << c.sql << "\n"
        << plan;
    EXPECT_NE(plan.find("cost="), std::string::npos) << c.sql << "\n" << plan;
    EXPECT_EQ(plan, Explain(auto_engine_.get(), c.sql)) << c.sql;
    for (const char* expect : c.costed_expect) {
      EXPECT_NE(plan.find(expect), std::string::npos)
          << c.sql << " expected '" << expect << "' in:\n"
          << plan;
    }
  }
}

TEST_F(PlannerGoldenTest, WorstFromOrderIsReordered) {
  AnalyzeAll();
  common::Counter* reorders =
      common::MetricsRegistry::Global().GetCounter("sql.opt.join_reorders");
  uint64_t before = reorders->Value();
  // FROM lists the two large tables first; the single selected doc row
  // should lead the join instead.
  std::string plan = Explain(
      auto_engine_.get(),
      "SELECT n.id FROM node n, txt t, doc d "
      "WHERE t.node = n.id AND n.doc = d.id AND d.id = 3");
  EXPECT_NE(plan.find("(est rows="), std::string::npos) << plan;
  EXPECT_GT(reorders->Value(), before) << plan;
}

TEST_F(PlannerGoldenTest, CostBasedModeRequiresFreshStats) {
  EngineOptions opts;
  opts.planner.mode = PlannerMode::kCostBased;
  SqlEngine strict(auto_db_.get(), opts);
  auto r = strict.Execute("SELECT id FROM node WHERE id = 7");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("requires fresh statistics"),
            std::string::npos)
      << r.status().ToString();
  Run(auto_engine_.get(), "ANALYZE");
  auto ok = strict.Execute("SELECT id FROM node WHERE id = 7");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(PlannerGoldenTest, StaleStatsFallBackToRuleBased) {
  AnalyzeAll();
  ASSERT_NE(Explain(auto_engine_.get(), "SELECT id FROM node WHERE id = 7")
                .find("est rows="),
            std::string::npos);
  // Exceed the staleness budget (max(64, 0.2 * 120) = 64 mutations).
  for (int i = 0; i < 65; ++i) {
    Run(auto_engine_.get(),
        "INSERT INTO node VALUES (0, " + std::to_string(1000 + i) + ", 0, 0)");
  }
  std::string stale = Explain(auto_engine_.get(),
                              "SELECT id FROM node WHERE id = 7");
  EXPECT_EQ(stale.find("est rows="), std::string::npos) << stale;
  // Re-ANALYZE restores cost-based planning.
  Run(auto_engine_.get(), "ANALYZE node");
  std::string fresh = Explain(auto_engine_.get(),
                              "SELECT id FROM node WHERE id = 7");
  EXPECT_NE(fresh.find("est rows="), std::string::npos) << fresh;
}

TEST_F(PlannerGoldenTest, FromOrderModeDisablesGreedyReordering) {
  // node and txt connect via t.node = n.id; m only connects through txt.
  // Greedy rule-based ordering chains n -> t -> m; kFromOrder must take
  // the literal (and here cross-product) FROM order.
  const std::string sql =
      "SELECT n.id FROM node n, node m, txt t "
      "WHERE t.node = n.id AND t.node = m.ord";
  std::string greedy = Explain(rule_engine_.get(), sql);
  EXPECT_EQ(greedy.find("NestedLoopJoin"), std::string::npos) << greedy;

  EngineOptions opts;
  opts.planner.mode = PlannerMode::kFromOrder;
  SqlEngine from_order(rule_db_.get(), opts);
  auto r = from_order.Execute("EXPLAIN " + sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->explain_text.find("NestedLoopJoin"), std::string::npos)
      << r->explain_text;
}

TEST_F(PlannerGoldenTest, AnalyzeStatementReportsPerTableCounts) {
  auto all = auto_engine_->Execute("ANALYZE");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->rows.size(), 3u);
  auto one = auto_engine_->Execute("ANALYZE node");
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_EQ(one->rows.size(), 1u);
  EXPECT_EQ(one->rows[0][0].AsText(), "node");
  EXPECT_EQ(one->rows[0][1].AsInt(), 120);
  auto missing = auto_engine_->Execute("ANALYZE ghost");
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace xomatiq::sql
