#include "flatfile/embl.h"

#include <gtest/gtest.h>

#include "datagen/corpus.h"

namespace xomatiq::flatfile {
namespace {

constexpr char kSample[] =
    "ID   AB000263 standard; mRNA; INV; 60 BP.\n"
    "XX\n"
    "AC   AB000263;X98765;\n"
    "DE   Homo sapiens mRNA for prepro cortistatin like peptide,\n"
    "DE   complete cds.\n"
    "KW   cortistatin; neuropeptide.\n"
    "OS   Homo sapiens (human)\n"
    "DR   SWISS-PROT; P10731; AMD_BOVIN.\n"
    "DR   ENZYME; 1.14.17.3.\n"
    "FT   source          1..60\n"
    "FT                   /organism=\"Homo sapiens\"\n"
    "FT   CDS             1..45\n"
    "FT                   /EC_number=\"1.14.17.3\"\n"
    "FT                   /db_xref=\"SWISS-PROT:P10731\"\n"
    "SQ   Sequence 60 BP;\n"
    "     acaagatgcc attgtccccc ggcctcctgc tgctgctgct ctccggggcc acggccaccg\n"
    "//\n";

TEST(EmblParserTest, ParsesSample) {
  auto entries = ParseEmblFile(kSample);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 1u);
  const EmblEntry& e = entries->front();
  EXPECT_EQ(e.id, "AB000263");
  EXPECT_EQ(e.molecule, "mRNA");
  EXPECT_EQ(e.division, "INV");
  EXPECT_EQ(e.accessions, (std::vector<std::string>{"AB000263", "X98765"}));
  EXPECT_NE(e.description.find("complete cds."), std::string::npos);
  EXPECT_EQ(e.keywords,
            (std::vector<std::string>{"cortistatin", "neuropeptide"}));
  EXPECT_EQ(e.organism, "Homo sapiens (human)");
  ASSERT_EQ(e.xrefs.size(), 2u);
  EXPECT_EQ(e.xrefs[0].database, "SWISS-PROT");
  EXPECT_EQ(e.xrefs[0].secondary, "AMD_BOVIN");
  EXPECT_EQ(e.xrefs[1].primary, "1.14.17.3");
  ASSERT_EQ(e.features.size(), 2u);
  EXPECT_EQ(e.features[0].key, "source");
  EXPECT_EQ(e.features[1].key, "CDS");
  EXPECT_EQ(e.features[1].location, "1..45");
  ASSERT_EQ(e.features[1].qualifiers.size(), 2u);
  EXPECT_EQ(e.features[1].qualifiers[0].name, "EC_number");
  EXPECT_EQ(e.features[1].qualifiers[0].value, "1.14.17.3");
  EXPECT_EQ(e.sequence.size(), 60u);
  EXPECT_EQ(e.sequence.substr(0, 10), "acaagatgcc");
}

TEST(EmblParserTest, FlagQualifierWithoutValue) {
  auto entries = ParseEmblFile(
      "ID   X1 standard; DNA; INV; 0 BP.\nAC   X1;\n"
      "FT   CDS             1..10\nFT                   /pseudo\n//\n");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->front().features[0].qualifiers.size(), 1u);
  EXPECT_EQ(entries->front().features[0].qualifiers[0].name, "pseudo");
  EXPECT_TRUE(entries->front().features[0].qualifiers[0].value.empty());
}

TEST(EmblParserTest, Errors) {
  EXPECT_FALSE(ParseEmblFile("AC   X;\n//\n").ok());  // no ID first
  EXPECT_FALSE(ParseEmblFile("ID   junk\nAC   X;\n//\n").ok());  // bad ID
  // Qualifier before any feature.
  EXPECT_FALSE(ParseEmblFile("ID   X standard; DNA; INV; 0 BP.\nAC   X;\n"
                             "FT                   /q=\"v\"\n//\n")
                   .ok());
  // Sequence data before SQ.
  EXPECT_FALSE(ParseEmblFile("ID   X standard; DNA; INV; 0 BP.\nAC   X;\n"
                             "     acgt\n//\n")
                   .ok());
  // Missing accession.
  EXPECT_FALSE(
      ParseEmblFile("ID   X standard; DNA; INV; 0 BP.\n//\n").ok());
}

TEST(EmblParserTest, FormatParsesBack) {
  auto entries = ParseEmblFile(kSample);
  ASSERT_TRUE(entries.ok());
  std::string emitted = FormatEmblEntry(entries->front());
  auto reparsed = ParseEmblFile(emitted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << emitted;
  EXPECT_EQ(reparsed->front(), entries->front());
}

class EmblRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EmblRoundTripTest, CorpusRoundTrip) {
  datagen::CorpusOptions options;
  options.seed = GetParam();
  options.num_enzymes = 10;
  options.num_proteins = 10;
  options.num_nucleotides = 40;
  datagen::Corpus corpus = datagen::GenerateCorpus(options);
  for (const EmblEntry& entry : corpus.nucleotides) {
    std::string text = FormatEmblEntry(entry);
    auto reparsed = ParseEmblFile(text);
    ASSERT_TRUE(reparsed.ok()) << text;
    ASSERT_EQ(reparsed->size(), 1u);
    EXPECT_EQ(reparsed->front(), entry) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmblRoundTripTest,
                         ::testing::Values(5, 15, 25, 35));

}  // namespace
}  // namespace xomatiq::flatfile
