#include "flatfile/enzyme.h"

#include <gtest/gtest.h>

#include "datagen/corpus.h"

namespace xomatiq::flatfile {
namespace {

// The paper's Fig 2 sample entry, verbatim in structure.
constexpr char kFigure2[] = R"(ID   1.14.17.3
DE   Peptidylglycine monooxygenase.
AN   Peptidyl alpha-amidating enzyme.
AN   Peptidylglycine 2-hydroxylase.
CA   Peptidylglycine + ascorbate + O(2) = peptidyl(2-hydroxyglycine) +
CA   dehydroascorbate + H(2)O
CF   Copper.
CC   -!- Peptidylglycines with a neutral amino acid residue in the
CC       penultimate position are the best substrates for the enzyme.
CC   -!- The enzyme also catalyzes the dismutatation of the product to
CC       glyoxylate and the corresponding desglycine peptide amide.
PR   PROSITE; PDOC00080;
DR   P10731, AMD_BOVIN ;  P19021, AMD_HUMAN ;  P14925, AMD_RAT ;
DR   P08478, AMD1_XENLA;  P12890, AMD2_XENLA;
//
)";

TEST(EnzymeParserTest, ParsesFigure2) {
  auto entries = ParseEnzymeFile(kFigure2);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 1u);
  const EnzymeEntry& e = entries->front();
  EXPECT_EQ(e.id, "1.14.17.3");
  ASSERT_EQ(e.descriptions.size(), 1u);
  EXPECT_EQ(e.descriptions[0], "Peptidylglycine monooxygenase");
  EXPECT_EQ(e.alternate_names,
            (std::vector<std::string>{"Peptidyl alpha-amidating enzyme",
                                      "Peptidylglycine 2-hydroxylase"}));
  ASSERT_EQ(e.catalytic_activities.size(), 2u);
  EXPECT_EQ(e.cofactors, std::vector<std::string>{"Copper"});
  ASSERT_EQ(e.comments.size(), 2u);
  EXPECT_NE(e.comments[0].find("penultimate position"), std::string::npos);
  EXPECT_EQ(e.prosite_refs, std::vector<std::string>{"PDOC00080"});
  ASSERT_EQ(e.swissprot_refs.size(), 5u);
  EXPECT_EQ(e.swissprot_refs[0].accession, "P10731");
  EXPECT_EQ(e.swissprot_refs[0].name, "AMD_BOVIN");
  EXPECT_EQ(e.swissprot_refs[4].name, "AMD2_XENLA");
  EXPECT_TRUE(e.diseases.empty());
}

TEST(EnzymeParserTest, MatchesFigure2Constant) {
  auto entries = ParseEnzymeFile(kFigure2);
  ASSERT_TRUE(entries.ok());
  EnzymeEntry expected = datagen::Figure2Entry();
  const EnzymeEntry& parsed = entries->front();
  EXPECT_EQ(parsed.id, expected.id);
  EXPECT_EQ(parsed.alternate_names, expected.alternate_names);
  EXPECT_EQ(parsed.swissprot_refs, expected.swissprot_refs);
  EXPECT_EQ(parsed.prosite_refs, expected.prosite_refs);
}

TEST(EnzymeParserTest, DiseaseLine) {
  auto entries = ParseEnzymeFile(
      "ID   3.1.3.1\nDE   Alkaline phosphatase.\n"
      "DI   Hypophosphatasia; MIM:241500.\n//\n");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->front().diseases.size(), 1u);
  EXPECT_EQ(entries->front().diseases[0].mim_id, "241500");
  EXPECT_EQ(entries->front().diseases[0].description, "Hypophosphatasia");
}

TEST(EnzymeParserTest, MultipleCofactorsSplit) {
  auto entries = ParseEnzymeFile(
      "ID   1.1.1.1\nDE   Alcohol dehydrogenase.\nCF   Zinc; Copper.\n//\n");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->front().cofactors,
            (std::vector<std::string>{"Zinc", "Copper"}));
}

TEST(EnzymeParserTest, Errors) {
  // Must begin with ID.
  EXPECT_FALSE(ParseEnzymeFile("DE   x.\n//\n").ok());
  // Needs at least one DE.
  EXPECT_FALSE(ParseEnzymeFile("ID   1.1.1.1\n//\n").ok());
  // Duplicate ID.
  EXPECT_FALSE(
      ParseEnzymeFile("ID   1.1.1.1\nID   2.2.2.2\nDE   d.\n//\n").ok());
  // Unknown code.
  EXPECT_FALSE(ParseEnzymeFile("ID   1.1.1.1\nDE   d.\nZZ   ?\n//\n").ok());
  // Malformed DR pair.
  EXPECT_FALSE(
      ParseEnzymeFile("ID   1.1.1.1\nDE   d.\nDR   onlyone ;\n//\n").ok());
  // CC continuation with no open block.
  EXPECT_FALSE(
      ParseEnzymeFile("ID   1.1.1.1\nDE   d.\nCC   no marker\n//\n").ok());
  // DI without MIM.
  EXPECT_FALSE(
      ParseEnzymeFile("ID   1.1.1.1\nDE   d.\nDI   Something.\n//\n").ok());
}

TEST(EnzymeParserTest, FormatParsesBack) {
  auto entries = ParseEnzymeFile(kFigure2);
  ASSERT_TRUE(entries.ok());
  std::string emitted = FormatEnzymeEntry(entries->front());
  auto reparsed = ParseEnzymeFile(emitted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << emitted;
  EXPECT_EQ(reparsed->front(), entries->front());
}

// Property: every synthetic corpus entry round-trips through format+parse.
class EnzymeRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnzymeRoundTripTest, CorpusRoundTrip) {
  datagen::CorpusOptions options;
  options.seed = GetParam();
  options.num_enzymes = 40;
  options.num_proteins = 10;
  options.num_nucleotides = 0;
  datagen::Corpus corpus = datagen::GenerateCorpus(options);
  for (const EnzymeEntry& entry : corpus.enzymes) {
    std::string text = FormatEnzymeEntry(entry);
    auto reparsed = ParseEnzymeFile(text);
    ASSERT_TRUE(reparsed.ok()) << text;
    ASSERT_EQ(reparsed->size(), 1u);
    EXPECT_EQ(reparsed->front(), entry) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnzymeRoundTripTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace xomatiq::flatfile
