#include "flatfile/line_record.h"

#include <gtest/gtest.h>

namespace xomatiq::flatfile {
namespace {

TEST(LineRecordTest, ParseLineLayout) {
  // Paper Fig 3: code in columns 1-2, blank 3-5, data from 6.
  auto r = ParseLine("ID   1.14.17.3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, "ID");
  EXPECT_EQ(r->data, "1.14.17.3");
}

TEST(LineRecordTest, Terminator) {
  auto r = ParseLine("//");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, "//");
  EXPECT_TRUE(r->data.empty());
}

TEST(LineRecordTest, TrailingWhitespaceStripped) {
  auto r = ParseLine("DE   Some name.   \r");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, "Some name.");
}

TEST(LineRecordTest, SequenceLinesHaveBlankCode) {
  auto r = ParseLine("     aacgtt ggccaa");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, "  ");
  EXPECT_EQ(r->data, "aacgtt ggccaa");
}

TEST(LineRecordTest, EmptyLineRejected) {
  EXPECT_FALSE(ParseLine("").ok());
  EXPECT_FALSE(ParseLine("   ").ok());  // stripped to empty... blank code?
}

TEST(LineRecordTest, FormatRoundTrip) {
  LineRecord r{"CC", "-!- A comment."};
  auto reparsed = ParseLine(FormatLine(r));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->code, r.code);
  EXPECT_EQ(reparsed->data, r.data);
  EXPECT_EQ(FormatLine("//", ""), "//");
}

TEST(EntryReaderTest, SplitsEntries) {
  const char* content =
      "ID   one\nDE   first\n//\nID   two\n//\n";
  EntryReader reader(content);
  auto e1 = reader.NextEntry();
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e1->has_value());
  EXPECT_EQ((**e1).size(), 2u);
  EXPECT_EQ((**e1)[0].data, "one");
  auto e2 = reader.NextEntry();
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((**e2).size(), 1u);
  auto e3 = reader.NextEntry();
  ASSERT_TRUE(e3.ok());
  EXPECT_FALSE(e3->has_value());
}

TEST(EntryReaderTest, BlankLinesBetweenEntriesSkipped) {
  EntryReader reader("ID   x\n//\n\n\nID   y\n//\n");
  ASSERT_TRUE(reader.NextEntry()->has_value());
  ASSERT_TRUE(reader.NextEntry()->has_value());
  EXPECT_FALSE(reader.NextEntry()->has_value());
}

TEST(EntryReaderTest, UnterminatedEntryIsError) {
  EntryReader reader("ID   x\nDE   y\n");
  auto e = reader.NextEntry();
  EXPECT_FALSE(e.ok());
}

TEST(EntryReaderTest, NoFinalNewlineOk) {
  EntryReader reader("ID   x\n//");
  auto e = reader.NextEntry();
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->has_value());
}

TEST(JoinLinesTest, ContinuationJoin) {
  std::vector<LineRecord> records{
      {"DE", "part one"}, {"XX", "noise"}, {"DE", "part two"}};
  EXPECT_EQ(JoinLines(records, "DE"), "part one part two");
  EXPECT_EQ(JoinLines(records, "ZZ"), "");
  EXPECT_EQ(LinesFor(records, "DE").size(), 2u);
}

}  // namespace
}  // namespace xomatiq::flatfile
