#include "flatfile/swissprot.h"

#include <gtest/gtest.h>

#include "datagen/corpus.h"

namespace xomatiq::flatfile {
namespace {

constexpr char kSample[] =
    "ID   AMD_BOVIN  STANDARD;  PRT;  60 AA.\n"
    "AC   P10731;Q95XX1;\n"
    "DE   Peptidylglycine monooxygenase (EC 1.14.17.3).\n"
    "GN   pam.\n"
    "OS   Bos taurus (Bovine)\n"
    "CC   -!- FUNCTION: catalyzes peptide amidation.\n"
    "CC       Continued on a second line.\n"
    "DR   EMBL; AB000263; AB000263.\n"
    "DR   ENZYME; 1.14.17.3.\n"
    "KW   Oxidoreductase; Copper; Amidation.\n"
    "SQ   SEQUENCE   60 AA;\n"
    "     MAGRARSGLL LLLLGLLALQ SSCLAFRSPL SVFKRFKETT RSFSNECLGT TRPVTPIDSS\n"
    "//\n";

TEST(SwissProtParserTest, ParsesSample) {
  auto entries = ParseSwissProtFile(kSample);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 1u);
  const SwissProtEntry& e = entries->front();
  EXPECT_EQ(e.id, "AMD_BOVIN");
  EXPECT_EQ(e.status, "STANDARD");
  EXPECT_EQ(e.length, 60u);
  EXPECT_EQ(e.accessions, (std::vector<std::string>{"P10731", "Q95XX1"}));
  EXPECT_NE(e.description.find("EC 1.14.17.3"), std::string::npos);
  EXPECT_EQ(e.gene_names, std::vector<std::string>{"pam"});
  EXPECT_EQ(e.organism, "Bos taurus (Bovine)");
  ASSERT_EQ(e.comments.size(), 1u);
  EXPECT_NE(e.comments[0].find("Continued on a second line."),
            std::string::npos);
  ASSERT_EQ(e.xrefs.size(), 2u);
  EXPECT_EQ(e.xrefs[1].database, "ENZYME");
  EXPECT_EQ(e.keywords.size(), 3u);
  EXPECT_EQ(e.sequence.size(), 60u);
  EXPECT_EQ(e.sequence.substr(0, 10), "MAGRARSGLL");
}

TEST(SwissProtParserTest, UnmodeledCodesSkipped) {
  // Citations (RN/RA/RL) and feature tables are skipped, not errors.
  auto entries = ParseSwissProtFile(
      "ID   X_HUMAN  STANDARD;  PRT;  2 AA.\nAC   P00001;\n"
      "RN   [1]\nRA   Someone A.;\nRL   J. Mol. Biol. 1:1(1999).\n"
      "FT   DOMAIN      1    2       Something.\n"
      "SQ   SEQUENCE   2 AA;\n     MA\n//\n");
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  EXPECT_EQ(entries->front().sequence, "MA");
}

TEST(SwissProtParserTest, LengthFallsBackToSequence) {
  auto entries = ParseSwissProtFile(
      "ID   Y_HUMAN  STANDARD\nAC   P00002;\nSQ   SEQUENCE\n     MAG\n//\n");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->front().length, 3u);
}

TEST(SwissProtParserTest, Errors) {
  EXPECT_FALSE(ParseSwissProtFile("AC   P1;\n//\n").ok());
  EXPECT_FALSE(ParseSwissProtFile("ID   X\n//\n").ok());  // one-token ID
  EXPECT_FALSE(
      ParseSwissProtFile("ID   X_HUMAN  STANDARD;\n//\n").ok());  // no AC
  EXPECT_FALSE(ParseSwissProtFile(
                   "ID   X_HUMAN  STANDARD;\nAC   P1;\nQQ   ?\n//\n")
                   .ok());
}

TEST(SwissProtParserTest, FormatParsesBack) {
  auto entries = ParseSwissProtFile(kSample);
  ASSERT_TRUE(entries.ok());
  std::string emitted = FormatSwissProtEntry(entries->front());
  auto reparsed = ParseSwissProtFile(emitted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << emitted;
  // The formatter merges multi-line comments into one CC block, which the
  // parser reads back identically.
  EXPECT_EQ(reparsed->front(), entries->front());
}

class SwissProtRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SwissProtRoundTripTest, CorpusRoundTrip) {
  datagen::CorpusOptions options;
  options.seed = GetParam();
  options.num_enzymes = 10;
  options.num_proteins = 40;
  options.num_nucleotides = 0;
  datagen::Corpus corpus = datagen::GenerateCorpus(options);
  for (const SwissProtEntry& entry : corpus.proteins) {
    std::string text = FormatSwissProtEntry(entry);
    auto reparsed = ParseSwissProtFile(text);
    ASSERT_TRUE(reparsed.ok()) << text;
    ASSERT_EQ(reparsed->size(), 1u);
    EXPECT_EQ(reparsed->front(), entry) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwissProtRoundTripTest,
                         ::testing::Values(3, 13, 23, 43));

}  // namespace
}  // namespace xomatiq::flatfile
