// Snapshot-isolation semantics at the relational layer: a pinned snapshot
// keeps seeing the pre-DML state byte-identically, write batches publish
// atomically on WriteGuard release, and epoch-based reclamation frees
// superseded versions only once no live snapshot can reach them.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/snapshot.h"
#include "relational/table.h"

namespace xomatiq::rel {
namespace {

Schema TwoCol() {
  return Schema({{"id", ValueType::kInt, true},
                 {"name", ValueType::kText, false}});
}

// Canonical dump of `table` at `epoch`: RowId + every value, heap order.
// Byte-equality of two dumps == the reads saw identical states.
std::string DumpAt(const Table* table, uint64_t epoch) {
  std::string out;
  table->Scan(epoch, [&](RowId row, const Tuple& t) {
    out += std::to_string(row);
    for (const Value& v : t) out += "|" + v.ToString();
    out += "\n";
    return true;
  });
  return out;
}

TEST(MvccVisibilityTest, SnapshotSeesPreDmlStateByteIdentically) {
  auto db = Database::OpenInMemory();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        db->Insert("t", {Value::Int(i), Value::Text("v" + std::to_string(i))})
            .ok());
  }
  const Table* table = *db->GetTable("t");

  Snapshot snap = db->BeginSnapshot();
  const std::string before = DumpAt(table, snap.epoch());

  // Every flavor of DML lands after the snapshot was pinned.
  ASSERT_TRUE(db->Update("t", 2, {Value::Int(200), Value::Text("x")}).ok());
  ASSERT_TRUE(db->Delete("t", 5).ok());
  ASSERT_TRUE(db->Insert("t", {Value::Int(99), Value::Text("new")}).ok());

  // The pinned reader's view is unchanged, byte for byte.
  EXPECT_EQ(DumpAt(table, snap.epoch()), before);
  // Point reads agree: row 5 is still live, row 2 unmodified at the old
  // epoch; both changed at latest.
  EXPECT_TRUE(table->IsLive(5, snap.epoch()));
  EXPECT_FALSE(table->IsLive(5));
  auto old2 = table->Get(2, snap.epoch());
  ASSERT_TRUE(old2.ok());
  EXPECT_EQ((**old2)[0].AsInt(), 2);

  // A fresh snapshot sees all three changes.
  Snapshot fresh = db->BeginSnapshot();
  EXPECT_GT(fresh.epoch(), snap.epoch());
  EXPECT_NE(DumpAt(table, fresh.epoch()), before);
  EXPECT_FALSE(table->IsLive(5, fresh.epoch()));
  auto new2 = table->Get(2, fresh.epoch());
  ASSERT_TRUE(new2.ok());
  EXPECT_EQ((**new2)[0].AsInt(), 200);
}

TEST(MvccVisibilityTest, WriteBatchPublishesAtomicallyOnGuardRelease) {
  auto db = Database::OpenInMemory();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  const Table* table = *db->GetTable("t");
  const uint64_t epoch_before = db->committed_epoch();
  {
    WriteGuard guard(db.get());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          db->Insert("t", {Value::Int(i), Value::Text("b")}).ok());
    }
    // Mid-batch: nothing published yet. A snapshot pinned now must see
    // zero of the five rows (the writer itself reads them at kEpochMax).
    EXPECT_EQ(db->committed_epoch(), epoch_before);
    Snapshot mid = db->BeginSnapshot();
    EXPECT_EQ(DumpAt(table, mid.epoch()), "");
    EXPECT_NE(DumpAt(table, kEpochMax), "");
  }
  // Guard released: exactly one epoch for the whole batch, all five rows
  // visible at once.
  EXPECT_EQ(db->committed_epoch(), epoch_before + 1);
  Snapshot after = db->BeginSnapshot();
  int rows = 0;
  table->Scan(after.epoch(), [&](RowId, const Tuple&) {
    ++rows;
    return true;
  });
  EXPECT_EQ(rows, 5);
}

TEST(MvccVisibilityTest, AutoCommitStampsOneEpochPerStatement) {
  auto db = Database::OpenInMemory();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  const uint64_t epoch_before = db->committed_epoch();
  // No guard active: each mutator call is its own published batch.
  ASSERT_TRUE(db->Insert("t", {Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(db->Insert("t", {Value::Int(2), Value::Null()}).ok());
  EXPECT_EQ(db->committed_epoch(), epoch_before + 2);
}

TEST(MvccVisibilityTest, ReclamationWaitsForLiveSnapshot) {
  auto db = Database::OpenInMemory();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE(db->Insert("t", {Value::Int(0), Value::Text("orig")}).ok());
  const Table* table = *db->GetTable("t");

  Snapshot pin = db->BeginSnapshot();
  const std::string before = DumpAt(table, pin.epoch());

  // Churn one slot well past the reclamation threshold (max(256,
  // slots/8)). The pinned snapshot holds the low-water mark down, so the
  // version it reads must survive every pass.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        db->Update("t", 0, {Value::Int(i + 1), Value::Text("churn")}).ok());
  }
  EXPECT_GT(db->garbage_versions(), 0u);
  EXPECT_EQ(DumpAt(table, pin.epoch()), before);
  auto pinned = table->Get(0, pin.epoch());
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ((**pinned)[1].AsText(), "orig");

  // Release the pin; the next published batches may reclaim everything
  // except the newest version.
  pin.Release();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        db->Update("t", 0, {Value::Int(1000 + i), Value::Text("after")}).ok());
  }
  // All superseded versions up to the last batch are unreachable now;
  // only the handful stamped after the final reclamation pass may linger.
  EXPECT_LT(db->garbage_versions(), 10u);
  EXPECT_LE(table->CountVersions(), 10u);
}

TEST(MvccVisibilityTest, EpochStampsSurviveWalReplay) {
  // Crash-matrix companion: recovery replays the WAL with every row
  // stamped at epoch 1 and opens at committed epoch 1, so a snapshot
  // taken right after Open sees exactly the recovered state — and
  // nothing is visible at epoch 0.
  std::string dir = testing::TempDir() + "/mvcc_replay_test";
  std::filesystem::remove_all(dir);
  std::string before;
  {
    auto opened = Database::Open(dir);
    ASSERT_TRUE(opened.ok());
    Database* db = opened->get();
    ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
    {
      WriteGuard guard(db);
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(
            db->Insert("t", {Value::Int(i), Value::Text("r")}).ok());
      }
    }
    ASSERT_TRUE(db->Update("t", 4, {Value::Int(40), Value::Null()}).ok());
    ASSERT_TRUE(db->Delete("t", 7).ok());
    EXPECT_GT(db->committed_epoch(), 1u);
    Snapshot snap = db->BeginSnapshot();
    before = DumpAt(*db->GetTable("t"), snap.epoch());
    // No checkpoint: reopening replays every record from the WAL.
  }
  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok());
  Database* db = reopened->get();
  EXPECT_EQ(db->committed_epoch(), 1u);
  const Table* table = *db->GetTable("t");
  Snapshot snap = db->BeginSnapshot();
  EXPECT_EQ(snap.epoch(), 1u);
  EXPECT_EQ(DumpAt(table, snap.epoch()), before);
  // Epoch 0 predates the replayed batch: the whole table is invisible.
  EXPECT_EQ(DumpAt(table, 0), "");
  // And the recovered database stamps fresh epochs past the replay.
  ASSERT_TRUE(db->Insert("t", {Value::Int(100), Value::Null()}).ok());
  EXPECT_EQ(db->committed_epoch(), 2u);
  EXPECT_EQ(DumpAt(table, snap.epoch()), before);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xomatiq::rel
