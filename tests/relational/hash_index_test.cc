#include "relational/hash_index.h"

#include <gtest/gtest.h>

namespace xomatiq::rel {
namespace {

CompositeKey K(std::string s) { return {Value::Text(std::move(s))}; }

TEST(HashIndexTest, InsertLookup) {
  HashIndex index;
  index.Insert(K("a"), 1);
  index.Insert(K("a"), 2);
  index.Insert(K("b"), 3);
  ASSERT_NE(index.Lookup(K("a")), nullptr);
  EXPECT_EQ(*index.Lookup(K("a")), (std::vector<RowId>{1, 2}));
  EXPECT_EQ(index.Lookup(K("missing")), nullptr);
  EXPECT_EQ(index.num_keys(), 2u);
  EXPECT_EQ(index.num_entries(), 3u);
}

TEST(HashIndexTest, EraseDropsEmptyKeys) {
  HashIndex index;
  index.Insert(K("a"), 1);
  index.Insert(K("a"), 2);
  EXPECT_TRUE(index.Erase(K("a"), 1));
  EXPECT_EQ(*index.Lookup(K("a")), std::vector<RowId>{2});
  EXPECT_TRUE(index.Erase(K("a"), 2));
  EXPECT_EQ(index.Lookup(K("a")), nullptr);
  EXPECT_EQ(index.num_keys(), 0u);
  EXPECT_FALSE(index.Erase(K("a"), 2));
  EXPECT_FALSE(index.Erase(K("zzz"), 1));
}

TEST(HashIndexTest, CompositeKeys) {
  HashIndex index;
  index.Insert({Value::Int(1), Value::Text("x")}, 10);
  index.Insert({Value::Int(1), Value::Text("y")}, 11);
  ASSERT_NE(index.Lookup({Value::Int(1), Value::Text("x")}), nullptr);
  EXPECT_EQ(index.Lookup({Value::Int(1), Value::Text("x")})->front(), 10u);
  EXPECT_EQ(index.Lookup({Value::Int(1)}), nullptr);  // exact arity only
}

TEST(HashIndexTest, NumericEqualityAcrossTypes) {
  HashIndex index;
  index.Insert({Value::Int(3)}, 1);
  // DOUBLE 3.0 equals INT 3 under Value::Compare, so the probe must hit.
  ASSERT_NE(index.Lookup({Value::Double(3.0)}), nullptr);
}

}  // namespace
}  // namespace xomatiq::rel
