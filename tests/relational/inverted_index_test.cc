#include "relational/inverted_index.h"

#include <gtest/gtest.h>

namespace xomatiq::rel {
namespace {

TEST(InvertedIndexTest, SingleTokenLookup) {
  InvertedIndex index;
  index.Add(1, "Peptidylglycine monooxygenase");
  index.Add(2, "alcohol dehydrogenase");
  index.Add(3, "peptidylglycine 2-hydroxylase");
  EXPECT_EQ(index.Lookup("peptidylglycine"), (std::vector<RowId>{1, 3}));
  EXPECT_EQ(index.Lookup("MONOOXYGENASE"), std::vector<RowId>{1});
  EXPECT_TRUE(index.Lookup("kinase").empty());
}

TEST(InvertedIndexTest, MultiTokenAndSemantics) {
  InvertedIndex index;
  index.Add(1, "cell division cycle protein cdc6");
  index.Add(2, "cell membrane protein");
  index.Add(3, "division of labour");
  EXPECT_EQ(index.LookupAll("cell division"), std::vector<RowId>{1});
  EXPECT_EQ(index.LookupAll("protein"), (std::vector<RowId>{1, 2}));
  EXPECT_TRUE(index.LookupAll("cell kinase").empty());
  EXPECT_TRUE(index.LookupAll("").empty());
}

TEST(InvertedIndexTest, RepeatedTokenInOneTextIndexedOnce) {
  InvertedIndex index;
  index.Add(5, "ketone ketone ketone");
  EXPECT_EQ(index.Lookup("ketone"), std::vector<RowId>{5});
  EXPECT_EQ(index.num_postings(), 1u);
}

TEST(InvertedIndexTest, RemoveReversesAdd) {
  InvertedIndex index;
  index.Add(1, "alpha beta");
  index.Add(2, "beta gamma");
  index.Remove(1, "alpha beta");
  EXPECT_TRUE(index.Lookup("alpha").empty());
  EXPECT_EQ(index.Lookup("beta"), std::vector<RowId>{2});
  EXPECT_EQ(index.num_tokens(), 2u);  // beta, gamma
}

TEST(InvertedIndexTest, PostingsStaySortedWithOutOfOrderRows) {
  InvertedIndex index;
  index.Add(9, "shared");
  index.Add(2, "shared");
  index.Add(5, "shared");
  EXPECT_EQ(index.Lookup("shared"), (std::vector<RowId>{2, 5, 9}));
}

TEST(InvertedIndexTest, EcNumberIsOneToken) {
  InvertedIndex index;
  index.Add(1, "catalyzed by EC 1.14.17.3 exclusively");
  EXPECT_EQ(index.Lookup("1.14.17.3"), std::vector<RowId>{1});
  // The sub-number "14" alone is not a token of this text.
  EXPECT_TRUE(index.Lookup("14").empty());
}

}  // namespace
}  // namespace xomatiq::rel
