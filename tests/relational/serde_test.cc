#include "relational/serde.h"

#include <gtest/gtest.h>

namespace xomatiq::rel {
namespace {

TEST(SerdeTest, PrimitiveRoundTrip) {
  BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  w.PutString("hello");
  w.PutString("");

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 0xAB);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncationIsCorruption) {
  BinaryWriter w;
  w.PutU64(1);
  BinaryReader r(std::string_view(w.buffer()).substr(0, 4));
  auto v = r.GetU64();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), common::StatusCode::kCorruption);
}

TEST(SerdeTest, TruncatedStringIsCorruption) {
  BinaryWriter w;
  w.PutString("abcdef");
  BinaryReader r(std::string_view(w.buffer()).substr(0, 6));
  EXPECT_FALSE(r.GetString().ok());
}

TEST(SerdeTest, ValueRoundTrip) {
  const Value values[] = {Value::Null(), Value::Int(-7),
                          Value::Double(2.718), Value::Text("EC 1.14.17.3"),
                          Value::Text("")};
  for (const Value& v : values) {
    BinaryWriter w;
    EncodeValue(v, &w);
    BinaryReader r(w.buffer());
    auto decoded = DecodeValue(&r);
    ASSERT_TRUE(decoded.ok()) << v.ToString();
    EXPECT_EQ(decoded->type(), v.type());
    EXPECT_EQ(Value::Compare(*decoded, v), 0);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(SerdeTest, BadValueTagIsCorruption) {
  BinaryWriter w;
  w.PutU8(99);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(DecodeValue(&r).ok());
}

TEST(SerdeTest, TupleRoundTrip) {
  Tuple t{Value::Int(1), Value::Null(), Value::Text("x")};
  BinaryWriter w;
  EncodeTuple(t, &w);
  BinaryReader r(w.buffer());
  auto decoded = DecodeTuple(&r);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].AsInt(), 1);
  EXPECT_TRUE((*decoded)[1].is_null());
  EXPECT_EQ((*decoded)[2].AsText(), "x");
}

TEST(SerdeTest, SchemaRoundTrip) {
  Schema s({{"id", ValueType::kInt, true},
            {"value", ValueType::kText, false},
            {"score", ValueType::kDouble, false}});
  BinaryWriter w;
  EncodeSchema(s, &w);
  BinaryReader r(w.buffer());
  auto decoded = DecodeSchema(&r);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ(decoded->column(0).name, "id");
  EXPECT_TRUE(decoded->column(0).not_null);
  EXPECT_EQ(decoded->column(2).type, ValueType::kDouble);
}

TEST(SerdeTest, Crc32KnownVector) {
  // Standard test vector for IEEE CRC32.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(SerdeTest, Crc32DetectsBitFlips) {
  std::string data = "warehouse payload";
  uint32_t base = Crc32(data);
  data[3] ^= 1;
  EXPECT_NE(Crc32(data), base);
}

}  // namespace
}  // namespace xomatiq::rel
