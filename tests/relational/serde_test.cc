#include "relational/serde.h"

#include <gtest/gtest.h>

namespace xomatiq::rel {
namespace {

TEST(SerdeTest, PrimitiveRoundTrip) {
  BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  w.PutString("hello");
  w.PutString("");

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 0xAB);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncationIsCorruption) {
  BinaryWriter w;
  w.PutU64(1);
  BinaryReader r(std::string_view(w.buffer()).substr(0, 4));
  auto v = r.GetU64();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), common::StatusCode::kCorruption);
}

TEST(SerdeTest, TruncatedStringIsCorruption) {
  BinaryWriter w;
  w.PutString("abcdef");
  BinaryReader r(std::string_view(w.buffer()).substr(0, 6));
  EXPECT_FALSE(r.GetString().ok());
}

TEST(SerdeTest, ValueRoundTrip) {
  const Value values[] = {Value::Null(), Value::Int(-7),
                          Value::Double(2.718), Value::Text("EC 1.14.17.3"),
                          Value::Text("")};
  for (const Value& v : values) {
    BinaryWriter w;
    EncodeValue(v, &w);
    BinaryReader r(w.buffer());
    auto decoded = DecodeValue(&r);
    ASSERT_TRUE(decoded.ok()) << v.ToString();
    EXPECT_EQ(decoded->type(), v.type());
    EXPECT_EQ(Value::Compare(*decoded, v), 0);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(SerdeTest, BadValueTagIsCorruption) {
  BinaryWriter w;
  w.PutU8(99);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(DecodeValue(&r).ok());
}

TEST(SerdeTest, TupleRoundTrip) {
  Tuple t{Value::Int(1), Value::Null(), Value::Text("x")};
  BinaryWriter w;
  EncodeTuple(t, &w);
  BinaryReader r(w.buffer());
  auto decoded = DecodeTuple(&r);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].AsInt(), 1);
  EXPECT_TRUE((*decoded)[1].is_null());
  EXPECT_EQ((*decoded)[2].AsText(), "x");
}

TEST(SerdeTest, SchemaRoundTrip) {
  Schema s({{"id", ValueType::kInt, true},
            {"value", ValueType::kText, false},
            {"score", ValueType::kDouble, false}});
  BinaryWriter w;
  EncodeSchema(s, &w);
  BinaryReader r(w.buffer());
  auto decoded = DecodeSchema(&r);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ(decoded->column(0).name, "id");
  EXPECT_TRUE(decoded->column(0).not_null);
  EXPECT_EQ(decoded->column(2).type, ValueType::kDouble);
}

TEST(SerdeTest, Crc32KnownVector) {
  // Standard test vector for CRC32-C (Castagnoli), the polynomial the
  // WAL uses so the x86-64 crc32 instruction applies.
  EXPECT_EQ(Crc32("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32(""), 0u);
  // 32 zero bytes: exercises the 8-byte slicing loop with no tail.
  EXPECT_EQ(Crc32(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(SerdeTest, Crc32AllLengthsConsistent) {
  // Sweep lengths 0..63 so every word-loop/tail-loop split is hit; the
  // hardware and software implementations must agree with the bytewise
  // reference regardless of which one Crc32() dispatches to.
  auto reference = [](std::string_view data) {
    uint32_t crc = 0xFFFFFFFFU;
    for (char ch : data) {
      crc ^= static_cast<uint8_t>(ch);
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? 0x82F63B78U ^ (crc >> 1) : crc >> 1;
      }
    }
    return crc ^ 0xFFFFFFFFU;
  };
  std::string data;
  for (int len = 0; len < 64; ++len) {
    EXPECT_EQ(Crc32(data), reference(data)) << "len=" << len;
    data.push_back(static_cast<char>('a' + len % 26));
  }
}

TEST(SerdeTest, Crc32DetectsBitFlips) {
  std::string data = "warehouse payload";
  uint32_t base = Crc32(data);
  data[3] ^= 1;
  EXPECT_NE(Crc32(data), base);
}

}  // namespace
}  // namespace xomatiq::rel
