// Crash-recovery matrix: truncate the WAL at every record boundary and at
// torn mid-record cuts, reopen, and verify the recovered database equals
// an in-memory oracle that applied exactly the surviving prefix of the
// workload — committed operations present, uncommitted absent, indexes
// consistent, and the database writable again. Set
// XOMATIQ_CRASH_MATRIX_DENSE=1 to cut at every single byte offset.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "relational/database.h"

namespace xomatiq::rel {
namespace {

using common::FaultConfig;
using common::FaultInjector;
using common::FaultPolicy;
using common::Status;
using common::StatusCode;

// One logged operation (exactly one WAL record; asserted at runtime).
using Op = std::function<Status(Database*)>;

Schema TwoCol() {
  return Schema({{"id", ValueType::kInt, true},
                 {"name", ValueType::kText, false}});
}

// A workload mixing DDL, inserts of varying record sizes, deletes and
// updates across two tables — every record boundary is a distinct
// recovery state.
std::vector<Op> Workload() {
  std::vector<Op> ops;
  ops.push_back([](Database* db) { return db->CreateTable("t", TwoCol()); });
  ops.push_back([](Database* db) {
    return db->CreateIndex({"t_id", "t", {"id"}, IndexKind::kBTree, false});
  });
  for (int i = 0; i < 10; ++i) {
    ops.push_back([i](Database* db) {
      return db
          ->Insert("t", {Value::Int(i),
                         Value::Text(std::string(
                             1 + (i * 7) % 23, static_cast<char>('a' + i)))})
          .status();
    });
  }
  ops.push_back([](Database* db) { return db->Delete("t", 3); });
  ops.push_back([](Database* db) {
    return db->Update("t", 5, {Value::Int(500), Value::Null()});
  });
  ops.push_back([](Database* db) {
    return db->CreateTable(
        "u", Schema({{"k", ValueType::kInt, false},
                     {"v", ValueType::kText, false}}));
  });
  for (int i = 0; i < 5; ++i) {
    ops.push_back([i](Database* db) {
      return db->Insert("u", {Value::Int(i * 11), Value::Text("v")}).status();
    });
  }
  ops.push_back([](Database* db) { return db->Delete("t", 7); });
  ops.push_back([](Database* db) {
    return db->Update("u", 2, {Value::Int(-1), Value::Text("updated")});
  });
  return ops;
}

// Canonical dump: every table, every live row, heap order. Two databases
// with equal dumps hold the same logical state.
std::string Dump(Database* db) {
  std::string out;
  for (const std::string& name : db->TableNames()) {
    out += "table " + name + "\n";
    auto table = db->GetTable(name);
    if (!table.ok()) return "GetTable failed: " + table.status().ToString();
    (*table)->Scan([&](RowId row, const Tuple& t) {
      out += std::to_string(row);
      for (const Value& v : t) out += "|" + v.ToString();
      out += "\n";
      return true;
    });
  }
  return out;
}

// State after applying the first `count` ops, via an in-memory oracle.
std::string OracleDump(const std::vector<Op>& ops, size_t count) {
  auto oracle = Database::OpenInMemory();
  for (size_t i = 0; i < count; ++i) {
    Status s = ops[i](oracle.get());
    if (!s.ok()) return "oracle op failed: " + s.ToString();
  }
  return Dump(oracle.get());
}

void CheckIndexConsistent(Database* db) {
  const IndexEntry* idx = db->FindIndexByName("t_id");
  if (idx == nullptr) return;  // cut before the CREATE INDEX record
  auto table = db->GetTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(idx->btree->num_entries(), (*table)->num_live_rows());
  ASSERT_TRUE(idx->btree->CheckInvariants());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFilePrefix(const std::string& path, const std::string& bytes,
                     size_t count) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(count));
}

// Walks the WAL framing [u32 len][u32 crc][payload] and returns the byte
// offset of each record's END (so boundaries[k] = end of record k).
std::vector<size_t> RecordBoundaries(const std::string& wal) {
  std::vector<size_t> ends;
  size_t pos = 0;
  while (pos + 8 <= wal.size()) {
    uint32_t len;
    std::memcpy(&len, wal.data() + pos, 4);
    if (pos + 8 + len > wal.size()) break;
    pos += 8 + len;
    ends.push_back(pos);
  }
  return ends;
}

class CrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    dir_ = testing::TempDir() + "/xq_crash_matrix_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::Global().Reset();
    std::filesystem::remove_all(dir_);
  }

  std::string WalPath() const { return dir_ + "/wal.log"; }

  // Runs the workload on a durable database (no checkpoint = everything
  // lives in the WAL), returns the full WAL image.
  std::string RunWorkload(const std::vector<Op>& ops) {
    auto db = Database::Open(dir_);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    if (!db.ok()) return "";
    for (size_t i = 0; i < ops.size(); ++i) {
      Status s = ops[i](db->get());
      EXPECT_TRUE(s.ok()) << "op " << i << ": " << s.ToString();
    }
    return ReadFile(WalPath());
  }

  // Truncate the WAL to `cut` bytes, reopen, and verify the invariants:
  //   - recovery succeeds,
  //   - exactly the fully-contained records replay,
  //   - the state equals the oracle prefix,
  //   - a partial tail is reported (and only then),
  //   - indexes agree with the heap and the database accepts new writes.
  void VerifyCut(const std::vector<Op>& ops, const std::string& wal,
                 const std::vector<size_t>& ends, size_t cut) {
    WriteFilePrefix(WalPath(), wal, cut);
    size_t expected = 0;
    while (expected < ends.size() && ends[expected] <= cut) ++expected;
    bool expect_torn = cut > (expected == 0 ? 0 : ends[expected - 1]);

    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << "cut=" << cut << ": " << db.status().ToString();
    EXPECT_EQ((*db)->records_recovered(), expected) << "cut=" << cut;
    EXPECT_EQ((*db)->recovered_torn_tail(), expect_torn) << "cut=" << cut;
    EXPECT_EQ(Dump(db->get()), OracleDump(ops, expected)) << "cut=" << cut;
    CheckIndexConsistent(db->get());
    if ((*db)->HasTable("t")) {
      EXPECT_TRUE(
          (*db)->Insert("t", {Value::Int(9999), Value::Null()}).ok())
          << "recovered database refused a write, cut=" << cut;
    }
  }

  std::string dir_;
};

TEST_F(CrashMatrixTest, EveryRecordBoundaryAndTornCutRecoversOraclePrefix) {
  std::vector<Op> ops = Workload();
  std::string wal = RunWorkload(ops);
  std::vector<size_t> ends = RecordBoundaries(wal);
  // The matrix depends on the op<->record bijection; pin it down.
  ASSERT_EQ(ends.size(), ops.size());
  ASSERT_EQ(ends.back(), wal.size());

  std::set<size_t> cuts;
  if (std::getenv("XOMATIQ_CRASH_MATRIX_DENSE") != nullptr) {
    for (size_t c = 0; c <= wal.size(); ++c) cuts.insert(c);
  } else {
    cuts.insert(0);
    size_t start = 0;
    for (size_t end : ends) {
      // Clean boundary plus torn cuts inside the frame: inside the
      // length field, at the CRC, just into the payload, mid-payload,
      // one byte short of complete.
      cuts.insert(end);
      for (size_t mid : {start + 1, start + 4, start + 8,
                         start + (end - start) / 2, end - 1}) {
        if (mid > start && mid < end) cuts.insert(mid);
      }
      start = end;
    }
  }
  for (size_t cut : cuts) {
    VerifyCut(ops, wal, ends, cut);
    if (HasFatalFailure()) return;
  }
}

TEST_F(CrashMatrixTest, TailCutsAfterCheckpointKeepSnapshotPlusPrefix) {
  // Pre-checkpoint state lands in the snapshot; only the tail is at risk.
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*db)->Insert("t", {Value::Int(i), Value::Null()}).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    for (int i = 6; i < 12; ++i) {
      ASSERT_TRUE((*db)->Insert("t", {Value::Int(i), Value::Null()}).ok());
    }
  }
  std::string wal = ReadFile(WalPath());
  std::vector<size_t> ends = RecordBoundaries(wal);
  ASSERT_EQ(ends.size(), 6u);
  for (size_t k = 0; k <= ends.size(); ++k) {
    size_t cut = k == 0 ? 0 : ends[k - 1];
    WriteFilePrefix(WalPath(), wal, cut);
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ((*db)->records_recovered(), k);
    auto table = (*db)->GetTable("t");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->num_live_rows(), 6u + k) << "cut=" << cut;
  }
}

TEST_F(CrashMatrixTest, BitFlipInAnyRecordDropsItAndItsSuffix) {
  std::vector<Op> ops = Workload();
  std::string wal = RunWorkload(ops);
  std::vector<size_t> ends = RecordBoundaries(wal);
  ASSERT_EQ(ends.size(), ops.size());
  // Flip one payload byte in a spread of records: the per-record CRC must
  // stop replay exactly there, keeping the intact prefix.
  for (size_t victim : {size_t{0}, ends.size() / 2, ends.size() - 1}) {
    size_t start = victim == 0 ? 0 : ends[victim - 1];
    std::string corrupted = wal;
    corrupted[start + 8] ^= 0x40;  // first payload byte
    WriteFilePrefix(WalPath(), corrupted, corrupted.size());
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ((*db)->records_recovered(), victim);
    EXPECT_TRUE((*db)->recovered_torn_tail());
    EXPECT_EQ(Dump(db->get()), OracleDump(ops, victim));
  }
}

TEST_F(CrashMatrixTest, LiveTornAppendIsDiscardedOnReopen) {
  // Instead of editing bytes post-hoc, let the WAL itself crash mid-write
  // via the wal.append.torn fault point: the 4th insert writes a partial
  // frame and fails.
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
    FaultConfig torn;
    torn.policy = FaultPolicy::kNth;
    torn.n = 4;  // counting restarts at Arm: the 4th insert below
    FaultInjector::Global().Arm("wal.append.torn", torn);
    for (int i = 0; i < 4; ++i) {
      auto r = (*db)->Insert("t", {Value::Int(i), Value::Null()});
      if (i < 3) {
        ASSERT_TRUE(r.ok());
      } else {
        ASSERT_FALSE(r.ok()) << "torn append must surface as an error";
        EXPECT_EQ(r.status().code(), StatusCode::kIoError);
      }
    }
    EXPECT_EQ(FaultInjector::Global().fires("wal.append.torn"), 1u);
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE((*db)->recovered_torn_tail());
  auto table = (*db)->GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_live_rows(), 3u) << "torn insert must not survive";
}

TEST_F(CrashMatrixTest, AppendBeforeFaultLeavesLogClean) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
    ASSERT_TRUE((*db)->Insert("t", {Value::Int(1), Value::Null()}).ok());
    FaultInjector::Global().Arm("wal.append.before", FaultConfig{});
    EXPECT_FALSE((*db)->Insert("t", {Value::Int(2), Value::Null()}).ok());
    FaultInjector::Global().Reset();
  }
  // Nothing was written for the failed append: no torn tail on reopen.
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->recovered_torn_tail());
  EXPECT_EQ((*(*db)->GetTable("t"))->num_live_rows(), 1u);
}

TEST_F(CrashMatrixTest, RecoveryRecordFaultSurfacesTyped) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
    ASSERT_TRUE((*db)->Insert("t", {Value::Int(1), Value::Null()}).ok());
  }
  FaultConfig fail;
  fail.code = StatusCode::kCorruption;
  FaultInjector::Global().Arm("db.recovery.record", fail);
  auto db = Database::Open(dir_);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
  FaultInjector::Global().Reset();
  // Recovery is read-only; once the fault clears, the same directory
  // opens fine.
  EXPECT_TRUE(Database::Open(dir_).ok());
}

TEST_F(CrashMatrixTest, SnapshotFaultsLeaveOldStateAuthoritative) {
  for (const char* point : {"db.snapshot.write", "db.snapshot.rename"}) {
    SCOPED_TRACE(point);
    std::filesystem::remove_all(dir_);
    {
      auto db = Database::Open(dir_);
      ASSERT_TRUE(db.ok());
      ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
      ASSERT_TRUE((*db)->Insert("t", {Value::Int(7), Value::Null()}).ok());
      FaultInjector::Global().Arm(point, FaultConfig{});
      EXPECT_FALSE((*db)->Checkpoint().ok());
      FaultInjector::Global().Reset();
    }
    // The failed checkpoint must not have truncated the WAL or installed
    // a partial snapshot: everything is still there.
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ((*(*db)->GetTable("t"))->num_live_rows(), 1u);
  }
}

TEST_F(CrashMatrixTest, WalResetFaultFailsCheckpointButKeepsServing) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE((*db)->Insert("t", {Value::Int(1), Value::Null()}).ok());
  FaultInjector::Global().Arm("wal.reset", FaultConfig{});
  EXPECT_FALSE((*db)->Checkpoint().ok());
  FaultInjector::Global().Reset();
  // The database keeps accepting traffic after the failed checkpoint.
  EXPECT_TRUE((*db)->Insert("t", {Value::Int(2), Value::Null()}).ok());
  EXPECT_TRUE((*db)->Checkpoint().ok());
}

}  // namespace
}  // namespace xomatiq::rel
