#include "relational/btree_index.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace xomatiq::rel {
namespace {

CompositeKey K(int64_t v) { return {Value::Int(v)}; }
CompositeKey K(int64_t a, int64_t b) { return {Value::Int(a), Value::Int(b)}; }

TEST(BTreeIndexTest, InsertAndLookup) {
  BTreeIndex index(8);
  index.Insert(K(5), 50);
  index.Insert(K(3), 30);
  index.Insert(K(7), 70);
  EXPECT_EQ(index.Lookup(K(5)), std::vector<RowId>{50});
  EXPECT_EQ(index.Lookup(K(3)), std::vector<RowId>{30});
  EXPECT_TRUE(index.Lookup(K(4)).empty());
  EXPECT_EQ(index.num_keys(), 3u);
  EXPECT_EQ(index.num_entries(), 3u);
}

TEST(BTreeIndexTest, DuplicateKeysSharePostingList) {
  BTreeIndex index(8);
  index.Insert(K(1), 10);
  index.Insert(K(1), 11);
  index.Insert(K(1), 12);
  EXPECT_EQ(index.Lookup(K(1)), (std::vector<RowId>{10, 11, 12}));
  EXPECT_EQ(index.num_keys(), 1u);
  EXPECT_EQ(index.num_entries(), 3u);
}

TEST(BTreeIndexTest, SplitsGrowHeight) {
  BTreeIndex index(4);
  for (int64_t i = 0; i < 100; ++i) {
    index.Insert(K(i), static_cast<RowId>(i));
  }
  EXPECT_GT(index.Height(), 1u);
  EXPECT_TRUE(index.CheckInvariants());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(index.Lookup(K(i)), std::vector<RowId>{static_cast<RowId>(i)});
  }
}

TEST(BTreeIndexTest, ScanFullRangeIsSorted) {
  BTreeIndex index(4);
  for (int64_t i = 99; i >= 0; --i) {
    index.Insert(K(i), static_cast<RowId>(i));
  }
  std::vector<int64_t> seen;
  index.Scan(std::nullopt, std::nullopt,
             [&](const CompositeKey& key, const std::vector<RowId>&) {
               seen.push_back(key[0].AsInt());
               return true;
             });
  ASSERT_EQ(seen.size(), 100u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<int64_t>(i));
  }
}

TEST(BTreeIndexTest, ScanRespectsRangeBounds) {
  BTreeIndex index(8);
  for (int64_t i = 0; i < 50; ++i) {
    index.Insert(K(i), static_cast<RowId>(i));
  }
  std::vector<int64_t> seen;
  index.Scan(BTreeIndex::Bound{K(10), true}, BTreeIndex::Bound{K(20), false},
             [&](const CompositeKey& key, const std::vector<RowId>&) {
               seen.push_back(key[0].AsInt());
               return true;
             });
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), 10);
  EXPECT_EQ(seen.back(), 19);
}

TEST(BTreeIndexTest, ScanExclusiveLowerBound) {
  BTreeIndex index(8);
  for (int64_t i = 0; i < 10; ++i) index.Insert(K(i), 0);
  std::vector<int64_t> seen;
  index.Scan(BTreeIndex::Bound{K(3), false}, BTreeIndex::Bound{K(5), true},
             [&](const CompositeKey& key, const std::vector<RowId>&) {
               seen.push_back(key[0].AsInt());
               return true;
             });
  EXPECT_EQ(seen, (std::vector<int64_t>{4, 5}));
}

TEST(BTreeIndexTest, ScanEarlyStop) {
  BTreeIndex index(8);
  for (int64_t i = 0; i < 50; ++i) index.Insert(K(i), 0);
  int count = 0;
  index.Scan(std::nullopt, std::nullopt,
             [&](const CompositeKey&, const std::vector<RowId>&) {
               return ++count < 5;
             });
  EXPECT_EQ(count, 5);
}

TEST(BTreeIndexTest, ScanPrefixCompositeKeys) {
  BTreeIndex index(4);
  for (int64_t doc = 1; doc <= 5; ++doc) {
    for (int64_t ord = 1; ord <= 10; ++ord) {
      index.Insert(K(doc, ord), static_cast<RowId>(doc * 100 + ord));
    }
  }
  std::vector<int64_t> ords;
  index.ScanPrefix(K(3),
                   [&](const CompositeKey& key, const std::vector<RowId>&) {
                     EXPECT_EQ(key[0].AsInt(), 3);
                     ords.push_back(key[1].AsInt());
                     return true;
                   });
  ASSERT_EQ(ords.size(), 10u);
  EXPECT_EQ(ords.front(), 1);
  EXPECT_EQ(ords.back(), 10);
}

TEST(BTreeIndexTest, EraseRemovesRowThenKey) {
  BTreeIndex index(4);
  index.Insert(K(1), 10);
  index.Insert(K(1), 11);
  EXPECT_TRUE(index.Erase(K(1), 10));
  EXPECT_EQ(index.Lookup(K(1)), std::vector<RowId>{11});
  EXPECT_TRUE(index.Erase(K(1), 11));
  EXPECT_TRUE(index.Lookup(K(1)).empty());
  EXPECT_EQ(index.num_keys(), 0u);
  EXPECT_FALSE(index.Erase(K(1), 11));
  EXPECT_FALSE(index.Erase(K(99), 0));
}

TEST(BTreeIndexTest, TextKeys) {
  BTreeIndex index(4);
  index.Insert({Value::Text("1.14.17.3")}, 1);
  index.Insert({Value::Text("1.1.1.1")}, 2);
  index.Insert({Value::Text("2.7.7.7")}, 3);
  EXPECT_EQ(index.Lookup({Value::Text("1.14.17.3")}), std::vector<RowId>{1});
  std::vector<std::string> order;
  index.Scan(std::nullopt, std::nullopt,
             [&](const CompositeKey& key, const std::vector<RowId>&) {
               order.push_back(key[0].AsText());
               return true;
             });
  EXPECT_EQ(order, (std::vector<std::string>{"1.1.1.1", "1.14.17.3",
                                             "2.7.7.7"}));
}

// Property test: the B+tree must agree with std::multimap under a random
// workload of inserts, erases, lookups and range scans, across fanouts.
class BTreeModelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BTreeModelTest, AgreesWithOrderedModel) {
  const size_t fanout = GetParam();
  BTreeIndex index(fanout);
  std::multimap<int64_t, RowId> model;
  common::Rng rng(fanout * 7919 + 1);

  for (int step = 0; step < 3000; ++step) {
    int64_t key = rng.UniformRange(0, 200);
    double action = rng.NextDouble();
    if (action < 0.6) {
      RowId row = rng.Uniform(1000);
      index.Insert(K(key), row);
      model.emplace(key, row);
    } else if (action < 0.85) {
      auto it = model.find(key);
      if (it != model.end()) {
        EXPECT_TRUE(index.Erase(K(key), it->second));
        model.erase(it);
      } else {
        // Erasing an arbitrary (key,row) pair that may not exist must not
        // corrupt the tree; result can be true only if present.
        index.Erase(K(key), rng.Uniform(1000));
        // Re-sync: the erase may have removed a pair we also track.
        // To keep the model exact, only erase pairs known to the model
        // above; here key was absent so nothing to sync.
      }
    } else {
      // Range scan equality with the model.
      int64_t lo = rng.UniformRange(0, 200);
      int64_t hi = lo + rng.UniformRange(0, 50);
      size_t expected = 0;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi; ++it) {
        ++expected;
      }
      size_t actual = 0;
      index.Scan(BTreeIndex::Bound{K(lo), true},
                 BTreeIndex::Bound{K(hi), true},
                 [&](const CompositeKey&, const std::vector<RowId>& rows) {
                   actual += rows.size();
                   return true;
                 });
      ASSERT_EQ(actual, expected) << "range [" << lo << "," << hi << "]";
    }
  }
  EXPECT_TRUE(index.CheckInvariants());
  EXPECT_EQ(index.num_entries(), model.size());
  // Full-content check.
  size_t total = 0;
  index.Scan(std::nullopt, std::nullopt,
             [&](const CompositeKey& key, const std::vector<RowId>& rows) {
               EXPECT_EQ(rows.size(), model.count(key[0].AsInt()));
               total += rows.size();
               return true;
             });
  EXPECT_EQ(total, model.size());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeModelTest,
                         ::testing::Values(4, 8, 16, 64, 128));

}  // namespace
}  // namespace xomatiq::rel
