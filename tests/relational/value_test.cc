#include "relational/value.h"

#include <gtest/gtest.h>

namespace xomatiq::rel {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).type(), ValueType::kInt);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::Text("x").AsText(), "x");
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Compare(Value::Int(1), Value::Int(2)), 0);
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Int(2)), 0);
  EXPECT_GT(Value::Compare(Value::Text("b"), Value::Text("a")), 0);
  EXPECT_LT(Value::Compare(Value::Double(1.1), Value::Double(1.2)), 0);
}

TEST(ValueTest, CompareNumericCrossType) {
  // INT and DOUBLE compare as numbers.
  EXPECT_EQ(Value::Compare(Value::Int(3), Value::Double(3.0)), 0);
  EXPECT_LT(Value::Compare(Value::Int(3), Value::Double(3.5)), 0);
  EXPECT_GT(Value::Compare(Value::Double(4.5), Value::Int(4)), 0);
}

TEST(ValueTest, CompareClassOrder) {
  // NULL < numeric < TEXT.
  EXPECT_LT(Value::Compare(Value::Null(), Value::Int(-100)), 0);
  EXPECT_LT(Value::Compare(Value::Int(1000), Value::Text("0")), 0);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::Text("abc").Hash(), Value::Text("abc").Hash());
  EXPECT_TRUE(Value::Int(3) == Value::Double(3.0));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::Text("hi").ToString(), "hi");
}

TEST(ValueTest, CastToInt) {
  EXPECT_EQ(Value::Text("42").CastTo(ValueType::kInt)->AsInt(), 42);
  EXPECT_EQ(Value::Double(3.9).CastTo(ValueType::kInt)->AsInt(), 3);
  EXPECT_FALSE(Value::Text("abc").CastTo(ValueType::kInt).ok());
  EXPECT_TRUE(Value::Null().CastTo(ValueType::kInt)->is_null());
}

TEST(ValueTest, CastToDouble) {
  EXPECT_DOUBLE_EQ(Value::Text("1.5").CastTo(ValueType::kDouble)->AsDouble(),
                   1.5);
  EXPECT_DOUBLE_EQ(Value::Int(2).CastTo(ValueType::kDouble)->AsDouble(), 2.0);
  EXPECT_FALSE(Value::Text("1.14.17.3").CastTo(ValueType::kDouble).ok());
}

TEST(ValueTest, CastToText) {
  EXPECT_EQ(Value::Int(7).CastTo(ValueType::kText)->AsText(), "7");
  EXPECT_EQ(Value::Text("x").CastTo(ValueType::kText)->AsText(), "x");
}

TEST(ValueTest, ToNumeric) {
  EXPECT_DOUBLE_EQ(*Value::Int(4).ToNumeric(), 4.0);
  EXPECT_DOUBLE_EQ(*Value::Double(4.5).ToNumeric(), 4.5);
  EXPECT_FALSE(Value::Text("4").ToNumeric().ok());
  EXPECT_FALSE(Value::Null().ToNumeric().ok());
}

TEST(CompositeKeyTest, LexicographicOrder) {
  CompositeKey a{Value::Int(1), Value::Text("b")};
  CompositeKey b{Value::Int(1), Value::Text("c")};
  CompositeKey c{Value::Int(2)};
  EXPECT_LT(CompareCompositeKeys(a, b), 0);
  EXPECT_LT(CompareCompositeKeys(a, c), 0);
  EXPECT_EQ(CompareCompositeKeys(a, a), 0);
}

TEST(CompositeKeyTest, PrefixIsSmaller) {
  CompositeKey prefix{Value::Int(1)};
  CompositeKey full{Value::Int(1), Value::Int(0)};
  EXPECT_LT(CompareCompositeKeys(prefix, full), 0);
  EXPECT_GT(CompareCompositeKeys(full, prefix), 0);
}

TEST(CompositeKeyTest, HasherAgreesWithEq) {
  CompositeKeyHasher hasher;
  CompositeKeyEq eq;
  CompositeKey a{Value::Int(3), Value::Text("x")};
  CompositeKey b{Value::Double(3.0), Value::Text("x")};
  EXPECT_TRUE(eq(a, b));
  EXPECT_EQ(hasher(a), hasher(b));
}

}  // namespace
}  // namespace xomatiq::rel
