#include "relational/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/fault_injector.h"

namespace xomatiq::rel {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/wal_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(WalTest, AppendAndReplay) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("one").ok());
    ASSERT_TRUE((*wal)->Append("two").ok());
    ASSERT_TRUE((*wal)->Append("").ok());
  }
  std::vector<std::string> seen;
  auto count = WriteAheadLog::Replay(path_, [&](std::string_view payload) {
    seen.emplace_back(payload);
    return common::Status::OK();
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
  EXPECT_EQ(seen, (std::vector<std::string>{"one", "two", ""}));
}

TEST_F(WalTest, MissingFileIsEmptyLog) {
  auto count = WriteAheadLog::Replay(path_, [](std::string_view) {
    return common::Status::OK();
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST_F(WalTest, TornTailIsIgnored) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE((*wal)->Append("intact").ok());
    ASSERT_TRUE((*wal)->Append("will be torn").ok());
  }
  // Truncate mid-record to simulate a crash during write.
  auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 5);
  bool truncated = false;
  std::vector<std::string> seen;
  auto count = WriteAheadLog::Replay(
      path_,
      [&](std::string_view payload) {
        seen.emplace_back(payload);
        return common::Status::OK();
      },
      &truncated);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(seen, std::vector<std::string>{"intact"});
}

TEST_F(WalTest, CorruptPayloadStopsReplay) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE((*wal)->Append("first").ok());
    ASSERT_TRUE((*wal)->Append("second").ok());
  }
  // Flip a byte inside the second record's payload.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    f.put('X');
  }
  bool truncated = false;
  size_t replayed = 0;
  auto count = WriteAheadLog::Replay(
      path_,
      [&](std::string_view) {
        ++replayed;
        return common::Status::OK();
      },
      &truncated);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(replayed, 1u);
  EXPECT_TRUE(truncated);
}

TEST_F(WalTest, ResetTruncates) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE((*wal)->Append("before checkpoint").ok());
  ASSERT_TRUE((*wal)->Reset().ok());
  ASSERT_TRUE((*wal)->Append("after").ok());
  std::vector<std::string> seen;
  auto count = WriteAheadLog::Replay(path_, [&](std::string_view payload) {
    seen.emplace_back(payload);
    return common::Status::OK();
  });
  EXPECT_EQ(seen, std::vector<std::string>{"after"});
}

TEST_F(WalTest, ReplayCallbackErrorPropagates) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE((*wal)->Append("x").ok());
  }
  auto count = WriteAheadLog::Replay(path_, [](std::string_view) {
    return common::Status::Corruption("boom");
  });
  EXPECT_FALSE(count.ok());
}

TEST_F(WalTest, GarbageLengthDoesNotDriveAllocation) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE((*wal)->Append("good").ok());
  }
  // Append a torn header whose length field decodes to ~3.7 GiB; replay
  // must treat it as a torn tail instead of attempting the allocation.
  {
    std::ofstream f(path_, std::ios::binary | std::ios::app);
    uint32_t huge = 0xdddddddd;
    f.write(reinterpret_cast<const char*>(&huge), 4);
    f.write("\0\0\0\0", 4);
  }
  bool truncated = false;
  size_t replayed = 0;
  auto count = WriteAheadLog::Replay(
      path_,
      [&](std::string_view) {
        ++replayed;
        return common::Status::OK();
      },
      &truncated);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(replayed, 1u);
  EXPECT_TRUE(truncated);
}

TEST_F(WalTest, ChecksumCatchesFlippedBitReplayKeepsPrefix) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE((*wal)->Append("aaaa").ok());
    ASSERT_TRUE((*wal)->Append("bbbb").ok());
    ASSERT_TRUE((*wal)->Append("cccc").ok());
  }
  // Flip one bit in the MIDDLE record's payload: the frame is intact
  // length-wise, only the CRC can catch this.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8 + 4 + 8 + 1);  // record0 frame, record1 header, payload[1]
    f.put('B');
  }
  bool truncated = false;
  std::vector<std::string> seen;
  auto count = WriteAheadLog::Replay(
      path_,
      [&](std::string_view p) {
        seen.emplace_back(p);
        return common::Status::OK();
      },
      &truncated);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(seen, std::vector<std::string>{"aaaa"});
  EXPECT_TRUE(truncated);
}

TEST_F(WalTest, FaultInjectedTornAppendLeavesRecoverableLog) {
  common::FaultInjector::Global().Reset();
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE((*wal)->Append("committed").ok());
    common::FaultInjector::Global().Arm("wal.append.torn",
                                        common::FaultConfig{});
    auto s = (*wal)->Append("torn away in the crash");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), common::StatusCode::kIoError);
    common::FaultInjector::Global().Reset();
  }
  // The torn frame is on disk; replay discards it.
  EXPECT_GT(std::filesystem::file_size(path_), size_t{8 + 9});
  bool truncated = false;
  std::vector<std::string> seen;
  auto count = WriteAheadLog::Replay(
      path_,
      [&](std::string_view p) {
        seen.emplace_back(p);
        return common::Status::OK();
      },
      &truncated);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(seen, std::vector<std::string>{"committed"});
  EXPECT_TRUE(truncated);
}

TEST_F(WalTest, FaultInjectedFlushFailureSurfaces) {
  common::FaultInjector::Global().Reset();
  auto wal = WriteAheadLog::Open(path_);
  common::FaultConfig config;
  config.policy = common::FaultPolicy::kNth;
  config.n = 2;
  common::FaultInjector::Global().Arm("wal.append.flush", config);
  EXPECT_TRUE((*wal)->Append("one").ok());
  EXPECT_FALSE((*wal)->Append("two").ok());
  // One-shot fault: the log keeps working afterwards.
  EXPECT_TRUE((*wal)->Append("three").ok());
  common::FaultInjector::Global().Reset();
}

TEST_F(WalTest, FsyncEachAppendOptionRoundTrips) {
  WalOptions options;
  options.fsync_each_append = true;
  {
    auto wal = WriteAheadLog::Open(path_, options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("durable").ok());
  }
  std::vector<std::string> seen;
  auto count = WriteAheadLog::Replay(path_, [&](std::string_view p) {
    seen.emplace_back(p);
    return common::Status::OK();
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(seen, std::vector<std::string>{"durable"});
}

TEST_F(WalTest, ChecksumDisabledWritesZeroCrc) {
  WalOptions options;
  options.checksum = false;
  {
    auto wal = WriteAheadLog::Open(path_, options);
    ASSERT_TRUE((*wal)->Append("bench only").ok());
  }
  // The CRC field is zero on disk (which is why such logs aren't
  // replayable — Replay sees a checksum mismatch).
  std::ifstream f(path_, std::ios::binary);
  char header[8];
  f.read(header, 8);
  uint32_t crc;
  std::memcpy(&crc, header + 4, 4);
  EXPECT_EQ(crc, 0u);
  bool truncated = false;
  size_t replayed = 0;
  auto count = WriteAheadLog::Replay(
      path_,
      [&](std::string_view) {
        ++replayed;
        return common::Status::OK();
      },
      &truncated);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(replayed, 0u);
  EXPECT_TRUE(truncated);
}

TEST_F(WalTest, BinaryPayloadSafe) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE((*wal)->Append(payload).ok());
  }
  std::string seen;
  auto count = WriteAheadLog::Replay(path_, [&](std::string_view p) {
    seen = std::string(p);
    return common::Status::OK();
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(seen, payload);
}

}  // namespace
}  // namespace xomatiq::rel
