#include "relational/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace xomatiq::rel {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/wal_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(WalTest, AppendAndReplay) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("one").ok());
    ASSERT_TRUE((*wal)->Append("two").ok());
    ASSERT_TRUE((*wal)->Append("").ok());
  }
  std::vector<std::string> seen;
  auto count = WriteAheadLog::Replay(path_, [&](std::string_view payload) {
    seen.emplace_back(payload);
    return common::Status::OK();
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
  EXPECT_EQ(seen, (std::vector<std::string>{"one", "two", ""}));
}

TEST_F(WalTest, MissingFileIsEmptyLog) {
  auto count = WriteAheadLog::Replay(path_, [](std::string_view) {
    return common::Status::OK();
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST_F(WalTest, TornTailIsIgnored) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE((*wal)->Append("intact").ok());
    ASSERT_TRUE((*wal)->Append("will be torn").ok());
  }
  // Truncate mid-record to simulate a crash during write.
  auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 5);
  bool truncated = false;
  std::vector<std::string> seen;
  auto count = WriteAheadLog::Replay(
      path_,
      [&](std::string_view payload) {
        seen.emplace_back(payload);
        return common::Status::OK();
      },
      &truncated);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(seen, std::vector<std::string>{"intact"});
}

TEST_F(WalTest, CorruptPayloadStopsReplay) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE((*wal)->Append("first").ok());
    ASSERT_TRUE((*wal)->Append("second").ok());
  }
  // Flip a byte inside the second record's payload.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    f.put('X');
  }
  bool truncated = false;
  size_t replayed = 0;
  auto count = WriteAheadLog::Replay(
      path_,
      [&](std::string_view) {
        ++replayed;
        return common::Status::OK();
      },
      &truncated);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(replayed, 1u);
  EXPECT_TRUE(truncated);
}

TEST_F(WalTest, ResetTruncates) {
  auto wal = WriteAheadLog::Open(path_);
  ASSERT_TRUE((*wal)->Append("before checkpoint").ok());
  ASSERT_TRUE((*wal)->Reset().ok());
  ASSERT_TRUE((*wal)->Append("after").ok());
  std::vector<std::string> seen;
  auto count = WriteAheadLog::Replay(path_, [&](std::string_view payload) {
    seen.emplace_back(payload);
    return common::Status::OK();
  });
  EXPECT_EQ(seen, std::vector<std::string>{"after"});
}

TEST_F(WalTest, ReplayCallbackErrorPropagates) {
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE((*wal)->Append("x").ok());
  }
  auto count = WriteAheadLog::Replay(path_, [](std::string_view) {
    return common::Status::Corruption("boom");
  });
  EXPECT_FALSE(count.ok());
}

TEST_F(WalTest, BinaryPayloadSafe) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  {
    auto wal = WriteAheadLog::Open(path_);
    ASSERT_TRUE((*wal)->Append(payload).ok());
  }
  std::string seen;
  auto count = WriteAheadLog::Replay(path_, [&](std::string_view p) {
    seen = std::string(p);
    return common::Status::OK();
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(seen, payload);
}

}  // namespace
}  // namespace xomatiq::rel
