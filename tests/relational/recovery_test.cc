#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "relational/database.h"

namespace xomatiq::rel {
namespace {

// Durability tests: the paper justifies the relational route partly by
// "the concurrency access and crash recovery features of an RDBMS"
// (§2.2); these tests pin down the recovery contract of our substitute.
class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/xq_recovery_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Schema TwoCol() {
    return Schema({{"id", ValueType::kInt, true},
                   {"name", ValueType::kText, false}});
  }

  std::string dir_;
};

TEST_F(RecoveryTest, ReopenReplaysWal) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
    ASSERT_TRUE((*db)
                    ->CreateIndex({"t_id", "t", {"id"},
                                   IndexKind::kBTree, false})
                    .ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          (*db)->Insert("t", {Value::Int(i), Value::Text("n" +
                                                         std::to_string(i))})
              .ok());
    }
    ASSERT_TRUE((*db)->Delete("t", 5).ok());
    ASSERT_TRUE((*db)->Update("t", 6, {Value::Int(600), Value::Null()}).ok());
  }  // simulated crash: no checkpoint
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  EXPECT_GT((*db)->records_recovered(), 0u);
  auto table = (*db)->GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_live_rows(), 19u);
  EXPECT_FALSE((*table)->IsLive(5));
  EXPECT_EQ((**(*table)->Get(6))[0].AsInt(), 600);
  // Indexes are rebuilt during replay.
  const IndexEntry* idx = (*db)->FindIndexByName("t_id");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->btree->Lookup({Value::Int(600)}), std::vector<RowId>{6});
  EXPECT_TRUE(idx->btree->Lookup({Value::Int(5)}).empty());
}

TEST_F(RecoveryTest, CheckpointThenWalTail) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*db)->Insert("t", {Value::Int(i), Value::Null()}).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ((*db)->wal_bytes(), 0u);
    // Post-checkpoint tail.
    for (int i = 10; i < 15; ++i) {
      ASSERT_TRUE((*db)->Insert("t", {Value::Int(i), Value::Null()}).ok());
    }
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->records_recovered(), 5u);  // only the tail replays
  EXPECT_EQ((*(*db)->GetTable("t"))->num_live_rows(), 15u);
}

TEST_F(RecoveryTest, RowIdsStableAcrossCheckpointWithTombstones) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*db)->Insert("t", {Value::Int(i), Value::Null()}).ok());
    }
    ASSERT_TRUE((*db)->Delete("t", 2).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    // Delete another row after the checkpoint: replay must address the
    // same slot numbers the snapshot preserved.
    ASSERT_TRUE((*db)->Delete("t", 4).ok());
  }
  auto db = Database::Open(dir_);
  auto table = (*db)->GetTable("t");
  EXPECT_EQ((*table)->num_slots(), 5u);
  EXPECT_FALSE((*table)->IsLive(2));
  EXPECT_FALSE((*table)->IsLive(4));
  EXPECT_EQ((*table)->num_live_rows(), 3u);
}

TEST_F(RecoveryTest, TornWalTailRecoversPrefix) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*db)->Insert("t", {Value::Int(i), Value::Null()}).ok());
    }
  }
  // Chop bytes off the log tail (torn write).
  std::string wal_path = dir_ + "/wal.log";
  auto size = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, size - 7);
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  // Everything but the torn record survives.
  EXPECT_EQ((*(*db)->GetTable("t"))->num_live_rows(), 9u);
}

TEST_F(RecoveryTest, CheckpointSurvivesWithoutWal) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
    ASSERT_TRUE((*db)->Insert("t", {Value::Int(1), Value::Null()}).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  std::filesystem::remove(dir_ + "/wal.log");
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*(*db)->GetTable("t"))->num_live_rows(), 1u);
}

TEST_F(RecoveryTest, CorruptSnapshotIsRejected) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE((*db)->CreateTable("t", TwoCol()).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  // Flip a byte in the snapshot body.
  std::string path = dir_ + "/snapshot.db";
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('Z');
  }
  auto db = Database::Open(dir_);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), common::StatusCode::kCorruption);
}

// Property: truncating the WAL at ANY byte offset yields a database that
// opens cleanly and contains a prefix of the committed operations (no
// partial rows, indexes consistent with the heap).
class WalTruncationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalTruncationFuzzTest, AnyTruncationRecoversCleanPrefix) {
  std::string dir = testing::TempDir() + "/xq_walfuzz_" +
                    std::to_string(GetParam());
  std::filesystem::remove_all(dir);
  {
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)
                    ->CreateTable("t", Schema({{"id", ValueType::kInt, true},
                                               {"name", ValueType::kText,
                                                false}}))
                    .ok());
    ASSERT_TRUE(
        (*db)->CreateIndex({"t_id", "t", {"id"}, IndexKind::kBTree, false})
            .ok());
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE((*db)
                      ->Insert("t", {Value::Int(i),
                                     Value::Text("name" + std::to_string(i))})
                      .ok());
    }
    ASSERT_TRUE((*db)->Delete("t", 3).ok());
  }
  std::string wal_path = dir + "/wal.log";
  auto full_size = std::filesystem::file_size(wal_path);
  common::Rng rng(GetParam());
  // Truncate at a random offset (re-copying the original each round).
  std::string original;
  {
    std::ifstream in(wal_path, std::ios::binary);
    original.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  for (int round = 0; round < 12; ++round) {
    auto cut = rng.Uniform(full_size + 1);
    {
      std::ofstream out(wal_path, std::ios::binary | std::ios::trunc);
      out.write(original.data(), static_cast<std::streamsize>(cut));
    }
    auto db = Database::Open(dir);
    ASSERT_TRUE(db.ok()) << "cut=" << cut << ": "
                         << db.status().ToString();
    if (!(*db)->HasTable("t")) continue;  // cut before CREATE TABLE
    auto table = (*db)->GetTable("t");
    ASSERT_TRUE(table.ok());
    // Rows form a prefix: ids 0..k-1 (3 possibly deleted at the end).
    std::vector<int64_t> ids;
    (*table)->Scan([&](rel::RowId, const Tuple& t) {
      ids.push_back(t[0].AsInt());
      return true;
    });
    for (size_t i = 1; i < ids.size(); ++i) {
      // With the one delete, ids stay sorted and unique.
      ASSERT_LT(ids[i - 1], ids[i]);
    }
    // Index agrees with the heap.
    const IndexEntry* idx = (*db)->FindIndexByName("t_id");
    if (idx != nullptr) {
      ASSERT_EQ(idx->btree->num_entries(), ids.size());
      ASSERT_TRUE(idx->btree->CheckInvariants());
    }
    // The recovered database accepts new writes.
    ASSERT_TRUE(
        (*db)->Insert("t", {Value::Int(1000), Value::Null()}).ok());
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalTruncationFuzzTest,
                         ::testing::Values(21, 42, 63, 84));

TEST_F(RecoveryTest, InMemoryDatabaseHasNoWal) {
  auto db = Database::OpenInMemory();
  EXPECT_FALSE(db->durable());
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  EXPECT_TRUE(db->Checkpoint().ok());  // no-op
  EXPECT_EQ(db->wal_bytes(), 0u);
}

}  // namespace
}  // namespace xomatiq::rel
