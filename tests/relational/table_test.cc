#include "relational/table.h"

#include <gtest/gtest.h>

namespace xomatiq::rel {
namespace {

constexpr uint64_t kW = 1;  // writer epoch for standalone-Table tests

Table MakeTable() {
  return Table("t", Schema({{"id", ValueType::kInt, true},
                            {"name", ValueType::kText, false}}));
}

TEST(TableTest, InsertGetScan) {
  Table t = MakeTable();
  auto r1 = t.Insert({Value::Int(1), Value::Text("a")}, kW);
  auto r2 = t.Insert({Value::Int(2), Value::Text("b")}, kW);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, 0u);
  EXPECT_EQ(*r2, 1u);
  EXPECT_EQ(t.num_live_rows(), 2u);
  auto row = t.Get(*r2);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((**row)[1].AsText(), "b");
}

TEST(TableTest, ArityMismatchRejected) {
  Table t = MakeTable();
  EXPECT_FALSE(t.Insert({Value::Int(1)}, kW).ok());
  EXPECT_FALSE(
      t.Insert({Value::Int(1), Value::Text("a"), Value::Int(3)}, kW).ok());
}

TEST(TableTest, NotNullEnforced) {
  Table t = MakeTable();
  EXPECT_FALSE(t.Insert({Value::Null(), Value::Text("a")}, kW).ok());
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::Null()}, kW).ok());
}

TEST(TableTest, TypeCoercionOnInsert) {
  Table t = MakeTable();
  // TEXT "7" coerces into the INT column; INT 5 coerces into TEXT.
  auto r = t.Insert({Value::Text("7"), Value::Int(5)}, kW);
  ASSERT_TRUE(r.ok());
  auto row = t.Get(*r);
  EXPECT_EQ((**row)[0].AsInt(), 7);
  EXPECT_EQ((**row)[1].AsText(), "5");
  EXPECT_FALSE(t.Insert({Value::Text("abc"), Value::Null()}, kW).ok());
}

TEST(TableTest, DeleteTombstonesKeepRowIdsStable) {
  Table t = MakeTable();
  RowId a = *t.Insert({Value::Int(1), Value::Null()}, kW);
  RowId b = *t.Insert({Value::Int(2), Value::Null()}, kW);
  ASSERT_TRUE(t.Delete(a, kW).ok());
  EXPECT_FALSE(t.IsLive(a));
  EXPECT_TRUE(t.IsLive(b));
  EXPECT_EQ(t.num_live_rows(), 1u);
  EXPECT_EQ(t.num_slots(), 2u);
  EXPECT_FALSE(t.Get(a).ok());
  EXPECT_FALSE(t.Delete(a, kW).ok());  // double delete
  // New inserts use fresh slots, not the tombstone.
  RowId c = *t.Insert({Value::Int(3), Value::Null()}, kW);
  EXPECT_EQ(c, 2u);
}

TEST(TableTest, UpdateValidates) {
  Table t = MakeTable();
  RowId a = *t.Insert({Value::Int(1), Value::Text("x")}, kW);
  ASSERT_TRUE(t.Update(a, {Value::Int(9), Value::Text("y")}, kW).ok());
  EXPECT_EQ((**t.Get(a))[0].AsInt(), 9);
  EXPECT_FALSE(t.Update(a, {Value::Null(), Value::Null()}, kW).ok());
  EXPECT_FALSE(t.Update(99, {Value::Int(1), Value::Null()}, kW).ok());
}

TEST(TableTest, ScanSkipsDeletedAndStopsEarly) {
  Table t = MakeTable();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i), Value::Null()}, kW).ok());
  }
  ASSERT_TRUE(t.Delete(3, kW).ok());
  ASSERT_TRUE(t.Delete(7, kW).ok());
  std::vector<int64_t> seen;
  t.Scan([&](RowId, const Tuple& tuple) {
    seen.push_back(tuple[0].AsInt());
    return seen.size() < 5;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1, 2, 4, 5}));
}

TEST(TableTest, ScanPartitionCoversTableExactlyOnce) {
  Table t = MakeTable();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i), Value::Null()}, kW).ok());
  }
  ASSERT_TRUE(t.Delete(0, kW).ok());
  ASSERT_TRUE(t.Delete(4, kW).ok());
  ASSERT_TRUE(t.Delete(9, kW).ok());
  // Contiguous partitions (including one that is all tombstones and one
  // that is empty) concatenate to exactly the serial scan.
  std::vector<int64_t> expect;
  t.Scan([&](RowId, const Tuple& tuple) {
    expect.push_back(tuple[0].AsInt());
    return true;
  });
  std::vector<int64_t> got;
  const RowId cuts[] = {0, 4, 5, 5, 10};
  for (size_t i = 0; i + 1 < std::size(cuts); ++i) {
    t.ScanPartition(cuts[i], cuts[i + 1], [&](RowId, const Tuple& tuple) {
      got.push_back(tuple[0].AsInt());
      return true;
    });
  }
  EXPECT_EQ(got, expect);
}

TEST(TableTest, ScanPartitionClampsBoundsAndStopsEarly) {
  Table t = MakeTable();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i), Value::Null()}, kW).ok());
  }
  // Bounds beyond the table clamp; an inverted/empty range visits nothing.
  std::vector<int64_t> seen;
  t.ScanPartition(3, 1000, [&](RowId, const Tuple& tuple) {
    seen.push_back(tuple[0].AsInt());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{3, 4}));
  seen.clear();
  t.ScanPartition(4, 2, [&](RowId, const Tuple&) {
    seen.push_back(-1);
    return true;
  });
  EXPECT_TRUE(seen.empty());
  // The visitor's false return stops within the partition.
  seen.clear();
  t.ScanPartition(0, 5, [&](RowId, const Tuple& tuple) {
    seen.push_back(tuple[0].AsInt());
    return seen.size() < 2;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1}));
}

TEST(TableTest, RestoreSlotPreservesTombstones) {
  Table t = MakeTable();
  t.RestoreSlot({Value::Int(1), Value::Null()}, true, kW);
  t.RestoreSlot({}, false, kW);
  t.RestoreSlot({Value::Int(3), Value::Null()}, true, kW);
  EXPECT_EQ(t.num_slots(), 3u);
  EXPECT_EQ(t.num_live_rows(), 2u);
  EXPECT_FALSE(t.IsLive(1));
  EXPECT_EQ((**t.Get(2))[0].AsInt(), 3);
}

}  // namespace
}  // namespace xomatiq::rel
