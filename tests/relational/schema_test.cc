#include "relational/schema.h"

#include <gtest/gtest.h>

namespace xomatiq::rel {
namespace {

Schema MakeSchema() {
  return Schema({{"id", ValueType::kInt, true},
                 {"name", ValueType::kText, false},
                 {"score", ValueType::kDouble, false}});
}

TEST(SchemaTest, FindColumnByBareName) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.FindColumn("id"), 0u);
  EXPECT_EQ(s.FindColumn("score"), 2u);
  EXPECT_FALSE(s.FindColumn("missing").has_value());
}

TEST(SchemaTest, QualifiedLookup) {
  Schema q = MakeSchema().Qualified("t");
  EXPECT_EQ(q.column(0).name, "t.id");
  EXPECT_EQ(q.FindColumn("t.id"), 0u);
  EXPECT_EQ(q.FindColumn("id"), 0u);  // bare name resolves
  EXPECT_FALSE(q.FindColumn("u.id").has_value());
}

TEST(SchemaTest, AmbiguousBareNameRejected) {
  Schema joined = Schema::Concat(MakeSchema().Qualified("a"),
                                 MakeSchema().Qualified("b"));
  EXPECT_FALSE(joined.FindColumn("id").has_value());   // ambiguous
  EXPECT_EQ(joined.FindColumn("a.id"), 0u);
  EXPECT_EQ(joined.FindColumn("b.id"), 3u);
  EXPECT_FALSE(joined.ResolveColumn("id").ok());
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema joined = Schema::Concat(MakeSchema(), MakeSchema().Qualified("r"));
  ASSERT_EQ(joined.size(), 6u);
  EXPECT_EQ(joined.column(3).name, "r.id");
}

TEST(SchemaTest, QualifyingTwiceKeepsExistingQualifier) {
  Schema q = MakeSchema().Qualified("a").Qualified("b");
  EXPECT_EQ(q.column(0).name, "a.id");
}

TEST(SchemaTest, ToStringListsColumns) {
  std::string s = MakeSchema().ToString();
  EXPECT_NE(s.find("id INT"), std::string::npos);
  EXPECT_NE(s.find("score DOUBLE"), std::string::npos);
}

TEST(TupleTest, ToString) {
  Tuple t{Value::Int(1), Value::Null(), Value::Text("x")};
  EXPECT_EQ(TupleToString(t), "1, NULL, x");
}

}  // namespace
}  // namespace xomatiq::rel
