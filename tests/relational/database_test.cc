#include "relational/database.h"

#include <gtest/gtest.h>

namespace xomatiq::rel {
namespace {

std::unique_ptr<Database> Db() { return Database::OpenInMemory(); }

Schema TwoCol() {
  return Schema({{"id", ValueType::kInt, true},
                 {"name", ValueType::kText, false}});
}

TEST(DatabaseTest, CreateAndDropTable) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  EXPECT_TRUE(db->HasTable("t"));
  EXPECT_FALSE(db->CreateTable("t", TwoCol()).ok());  // duplicate
  EXPECT_TRUE(db->DropTable("t").ok());
  EXPECT_FALSE(db->HasTable("t"));
  EXPECT_FALSE(db->DropTable("t").ok());
}

TEST(DatabaseTest, EmptySchemaRejected) {
  auto db = Db();
  EXPECT_FALSE(db->CreateTable("t", Schema()).ok());
}

TEST(DatabaseTest, InsertMaintainsIndexes) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE(db->CreateIndex({"t_id", "t", {"id"}, IndexKind::kBTree, false})
                  .ok());
  ASSERT_TRUE(
      db->CreateIndex({"t_name", "t", {"name"}, IndexKind::kHash, false})
          .ok());
  RowId row = *db->Insert("t", {Value::Int(1), Value::Text("x")});
  const IndexEntry* btree = db->FindIndexByName("t_id");
  ASSERT_NE(btree, nullptr);
  EXPECT_EQ(btree->btree->Lookup({Value::Int(1)}), std::vector<RowId>{row});
  const IndexEntry* hash = db->FindIndexByName("t_name");
  ASSERT_NE(hash->hash->Lookup({Value::Text("x")}), nullptr);
}

TEST(DatabaseTest, IndexBuiltOverExistingRows) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->Insert("t", {Value::Int(i), Value::Null()}).ok());
  }
  ASSERT_TRUE(db->CreateIndex({"t_id", "t", {"id"}, IndexKind::kBTree, false})
                  .ok());
  const IndexEntry* idx = db->FindIndexByName("t_id");
  EXPECT_EQ(idx->btree->num_keys(), 10u);
}

TEST(DatabaseTest, UniqueIndexRejectsDuplicates) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE(db->CreateIndex({"t_id", "t", {"id"}, IndexKind::kHash, true})
                  .ok());
  ASSERT_TRUE(db->Insert("t", {Value::Int(1), Value::Null()}).ok());
  auto dup = db->Insert("t", {Value::Int(1), Value::Null()});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), common::StatusCode::kConstraintViolation);
  // The failed insert must be rolled back from the heap.
  EXPECT_EQ((*db->GetTable("t"))->num_live_rows(), 1u);
  // And the key can be inserted after deleting the original.
  ASSERT_TRUE(db->Delete("t", 0).ok());
  EXPECT_TRUE(db->Insert("t", {Value::Int(1), Value::Null()}).ok());
}

TEST(DatabaseTest, UniqueIndexBuildOverDuplicatesFails) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE(db->Insert("t", {Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(db->Insert("t", {Value::Int(1), Value::Null()}).ok());
  EXPECT_FALSE(
      db->CreateIndex({"t_id", "t", {"id"}, IndexKind::kBTree, true}).ok());
}

TEST(DatabaseTest, NullKeysNotIndexedAndNotUniqueChecked) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", Schema({{"id", ValueType::kInt, false}}))
                  .ok());
  ASSERT_TRUE(
      db->CreateIndex({"t_id", "t", {"id"}, IndexKind::kBTree, true}).ok());
  ASSERT_TRUE(db->Insert("t", {Value::Null()}).ok());
  ASSERT_TRUE(db->Insert("t", {Value::Null()}).ok());  // two NULLs OK
  const IndexEntry* idx = db->FindIndexByName("t_id");
  EXPECT_EQ(idx->btree->num_entries(), 0u);
}

TEST(DatabaseTest, DeleteRemovesFromIndexes) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE(db->CreateIndex({"t_id", "t", {"id"}, IndexKind::kBTree, false})
                  .ok());
  RowId row = *db->Insert("t", {Value::Int(5), Value::Null()});
  ASSERT_TRUE(db->Delete("t", row).ok());
  const IndexEntry* idx = db->FindIndexByName("t_id");
  EXPECT_TRUE(idx->btree->Lookup({Value::Int(5)}).empty());
}

TEST(DatabaseTest, UpdateMovesIndexEntries) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE(db->CreateIndex({"t_id", "t", {"id"}, IndexKind::kBTree, false})
                  .ok());
  RowId row = *db->Insert("t", {Value::Int(5), Value::Null()});
  ASSERT_TRUE(db->Update("t", row, {Value::Int(6), Value::Null()}).ok());
  const IndexEntry* idx = db->FindIndexByName("t_id");
  EXPECT_TRUE(idx->btree->Lookup({Value::Int(5)}).empty());
  EXPECT_EQ(idx->btree->Lookup({Value::Int(6)}), std::vector<RowId>{row});
}

TEST(DatabaseTest, UpdateUniqueViolationRestoresOldRow) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE(
      db->CreateIndex({"t_id", "t", {"id"}, IndexKind::kHash, true}).ok());
  RowId a = *db->Insert("t", {Value::Int(1), Value::Null()});
  ASSERT_TRUE(db->Insert("t", {Value::Int(2), Value::Null()}).ok());
  EXPECT_FALSE(db->Update("t", a, {Value::Int(2), Value::Null()}).ok());
  // Old value must still be present and indexed.
  EXPECT_EQ((**(*db->GetTable("t"))->Get(a))[0].AsInt(), 1);
  const IndexEntry* idx = db->FindIndexByName("t_id");
  ASSERT_NE(idx->hash->Lookup({Value::Int(1)}), nullptr);
}

TEST(DatabaseTest, FindIndexMatching) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE(db->CreateIndex({"t_composite", "t", {"id", "name"},
                               IndexKind::kBTree, false})
                  .ok());
  // BTree prefix match on the leading column.
  EXPECT_NE(db->FindIndex("t", {"id"}, IndexKind::kBTree), nullptr);
  EXPECT_EQ(db->FindIndex("t", {"name"}, IndexKind::kBTree), nullptr);
  EXPECT_EQ(db->FindIndex("t", {"id"}, IndexKind::kHash), nullptr);
}

TEST(DatabaseTest, InvertedIndexRequiresSingleTextColumn) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  EXPECT_FALSE(db->CreateIndex({"bad1", "t", {"id"},
                                IndexKind::kInverted, false})
                   .ok());
  EXPECT_FALSE(db->CreateIndex({"bad2", "t", {"id", "name"},
                                IndexKind::kInverted, false})
                   .ok());
  EXPECT_TRUE(db->CreateIndex({"ok", "t", {"name"},
                               IndexKind::kInverted, false})
                  .ok());
}

TEST(DatabaseTest, DropIndex) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("t", TwoCol()).ok());
  ASSERT_TRUE(db->CreateIndex({"t_id", "t", {"id"}, IndexKind::kBTree, false})
                  .ok());
  ASSERT_TRUE(db->DropIndex("t_id").ok());
  EXPECT_EQ(db->FindIndexByName("t_id"), nullptr);
  EXPECT_FALSE(db->DropIndex("t_id").ok());
}

TEST(DatabaseTest, TableNamesSorted) {
  auto db = Db();
  ASSERT_TRUE(db->CreateTable("b", TwoCol()).ok());
  ASSERT_TRUE(db->CreateTable("a", TwoCol()).ok());
  EXPECT_EQ(db->TableNames(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace xomatiq::rel
