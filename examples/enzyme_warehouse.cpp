// Regenerates the paper's Data Hounds artifacts for the ENZYME database:
//   Fig 2 - the sample flat-file entry (EC 1.14.17.3),
//   Fig 5 - the ENZYME DTD,
//   Fig 6 - the per-entry XML document,
// then pushes the document through the full pipeline (validate -> shred ->
// reconstruct) and verifies the reconstruction is lossless.

#include <cstdio>
#include <cstdlib>

#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "xml/dtd.h"
#include "xml/writer.h"

namespace {

template <typename T>
T Unwrap(xomatiq::common::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace xomatiq;

  flatfile::EnzymeEntry entry = datagen::Figure2Entry();

  std::printf("=== Figure 2: ENZYME flat-file entry ===\n%s\n",
              flatfile::FormatEnzymeEntry(entry).c_str());

  hounds::EnzymeXmlTransformer transformer;
  std::printf("=== Figure 5: DTD of the ENZYME database ===\n%s\n",
              transformer.dtd_text().c_str());

  xml::XmlDocument doc = hounds::EnzymeXmlTransformer::EntryToXml(entry);
  std::printf("=== Figure 6: XML data of Figure 2 ===\n%s\n",
              xml::WriteXml(doc).c_str());

  // Validate the Fig 6 document against the Fig 5 DTD.
  auto dtd = Unwrap(xml::ParseDtd(transformer.dtd_text()), "parse DTD");
  std::vector<std::string> errors;
  if (!dtd.Validate(doc, &errors)) {
    std::fprintf(stderr, "DTD validation failed: %s\n", errors[0].c_str());
    return 1;
  }
  std::printf("Figure 6 document validates against the Figure 5 DTD.\n\n");

  // Shred into the warehouse and inspect the generic schema's row counts.
  auto db = rel::Database::OpenInMemory();
  auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open");
  auto stats = Unwrap(
      warehouse->LoadSource("hlx_enzyme.DEFAULT", transformer,
                            flatfile::FormatEnzymeEntry(entry)),
      "load");
  std::printf("=== XML2Relational shredding (generic schema) ===\n");
  std::printf("documents: %zu  element/attribute nodes: %zu\n",
              stats.documents, stats.nodes);
  std::printf("text values: %zu  numeric values: %zu  sequences: %zu\n",
              stats.text_values, stats.numeric_values,
              stats.sequence_values);
  for (const char* table :
       {"xml_document", "xml_name", "xml_path", "xml_node", "xml_text",
        "xml_number", "xml_sequence"}) {
    auto t = Unwrap(db->GetTable(table), table);
    std::printf("  %-13s %4zu rows\n", table, t->num_live_rows());
  }

  // Reconstruct from tuples (Relation2XML) and verify losslessness.
  auto doc_id = Unwrap(warehouse->FindDocument("enzyme:1.14.17.3"), "find");
  auto rebuilt = Unwrap(warehouse->ReconstructDocument(doc_id),
                        "reconstruct");
  auto back = Unwrap(
      hounds::EnzymeXmlTransformer::XmlToEntry(*rebuilt.root()), "convert");
  std::printf("\nreconstruction lossless: %s\n",
              back == entry ? "yes" : "NO - MISMATCH");
  return back == entry ? 0 : 1;
}
