// Cross-database correlation: reproduces the paper's Fig 8 keyword query
// (cdc6 across EMBL + Swiss-Prot) and the Fig 10/11 join query (EMBL
// feature qualifiers joined to ENZYME EC numbers), showing the translated
// SQL, relational EXPLAIN plans, and both result renderings (Fig 12).

#include <cstdio>
#include <cstdlib>

#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "xml/writer.h"
#include "xomatiq/xomatiq.h"

namespace {

template <typename T>
T Unwrap(xomatiq::common::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace xomatiq;

  // Synthetic corpus with cross-references (substitute for the paper's
  // EMBL / Swiss-Prot / ENZYME downloads; see DESIGN.md).
  datagen::CorpusOptions options;
  options.num_enzymes = 80;
  options.num_proteins = 120;
  options.num_nucleotides = 150;
  options.keyword_fraction = 0.05;
  options.ec_link_fraction = 0.3;
  datagen::Corpus corpus = datagen::GenerateCorpus(options);

  auto db = rel::Database::OpenInMemory();
  auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open");
  hounds::EnzymeXmlTransformer enzyme_tf;
  hounds::EmblXmlTransformer embl_tf;
  hounds::SwissProtXmlTransformer sprot_tf;
  Unwrap(warehouse->LoadSource("hlx_enzyme.DEFAULT", enzyme_tf,
                               datagen::ToEnzymeFlatFile(corpus)),
         "load enzyme");
  Unwrap(warehouse->LoadSource("hlx_embl.inv", embl_tf,
                               datagen::ToEmblFlatFile(corpus)),
         "load embl");
  Unwrap(warehouse->LoadSource("hlx_sprot.all", sprot_tf,
                               datagen::ToSwissProtFlatFile(corpus)),
         "load sprot");
  std::printf(
      "Warehoused: %zu enzymes, %zu EMBL entries, %zu Swiss-Prot entries\n\n",
      corpus.enzymes.size(), corpus.nucleotides.size(),
      corpus.proteins.size());

  xq::XomatiQ xomatiq(warehouse.get());

  // --- Figure 8: keyword-based search mode --------------------------------
  xq::KeywordQueryBuilder keyword_builder;
  keyword_builder
      .AddDatabase("hlx_embl.inv", "hlx_n_sequence",
                   "//embl_accession_number")
      .AddDatabase("hlx_sprot.all", "hlx_n_sequence",
                   "//sprot_accession_number")
      .SetKeyword("cdc6");
  std::string fig8 = keyword_builder.Build();
  std::printf("=== Figure 8 keyword query ===\n%s\n\n", fig8.c_str());
  auto r8 = Unwrap(xomatiq.Execute(fig8), "fig8");
  std::printf("%zu (EMBL, Swiss-Prot) accession pairs mention cdc6 "
              "(expected %zu x %zu)\n%s\n",
              r8.rows.size(), corpus.nucleotides_with_keyword,
              corpus.proteins_with_keyword, r8.ToTable().c_str());

  // --- Figures 10/11: join query mode --------------------------------------
  xq::JoinQueryBuilder join_builder(
      "hlx_embl.inv", "/hlx_n_sequence/db_entry", "hlx_enzyme.DEFAULT",
      "/hlx_enzyme/db_entry");
  join_builder.AddJoin("//qualifier[@qualifier_type = \"EC number\"]",
                       "/enzyme_id");
  join_builder.AddReturn('a', "//embl_accession_number", "Accession_Number");
  join_builder.AddReturn('a', "//description", "Accession_Description");
  std::string fig11 = join_builder.Build();
  std::printf("=== Figure 11 join query ===\n%s\n\n", fig11.c_str());

  auto translation = Unwrap(xomatiq.Translate(fig11), "translate");
  std::printf("=== XQ2SQL output ===\n%s\n\n", translation.sql[0].c_str());
  std::printf("=== Relational plan (EXPLAIN) ===\n%s\n",
              Unwrap(xomatiq.Explain(fig11), "explain").c_str());

  auto r11 = Unwrap(xomatiq.Execute(fig11), "fig11");
  std::printf("=== Figure 12: results, table view ===\n%s\n",
              r11.ToTable().c_str());
  xml::XmlDocument tagged = xomatiq.ResultsAsXml(r11);
  std::string xml_text = xml::WriteXml(tagged);
  // Print only the first few results in XML form to keep output short.
  std::printf("=== Figure 12: results, XML view (truncated) ===\n%.*s...\n",
              static_cast<int>(std::min<size_t>(xml_text.size(), 800)),
              xml_text.c_str());
  std::printf("\njoin rows: %zu (expected %zu)\n", r11.rows.size(),
              corpus.nucleotides_with_ec_link);
  return r11.rows.size() == corpus.nucleotides_with_ec_link ? 0 : 1;
}
