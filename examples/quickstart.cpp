// Quickstart: warehouse one ENZYME entry and query it the XomatiQ way.
//
// Mirrors the paper's Fig 7 interaction: the DTD tree (left panel), a
// sub-tree keyword query built the way the GUI's click-through mode would
// build it, the translated query text, and the results in table form with
// the matching document reconstructed from tuples (right panel).

#include <cstdio>
#include <cstdlib>

#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "xml/writer.h"
#include "xomatiq/xomatiq.h"

namespace {

// Exits with a message when a Status/Result is an error.
template <typename T>
T Unwrap(xomatiq::common::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const xomatiq::common::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace xomatiq;

  // 1. An embedded relational database plus the warehouse on top.
  auto db = rel::Database::OpenInMemory();
  auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open warehouse");

  // 2. Data Hounds: harvest a small ENZYME flat file (the paper's Fig 2
  //    entry plus a few synthetic ones), transform to XML, validate
  //    against the Fig 5 DTD, shred into the generic relational schema.
  datagen::CorpusOptions options;
  options.num_enzymes = 25;
  options.num_proteins = 10;
  options.num_nucleotides = 0;
  options.ketone_fraction = 0.2;
  datagen::Corpus corpus = datagen::GenerateCorpus(options);
  corpus.enzymes.push_back(datagen::Figure2Entry());

  hounds::EnzymeXmlTransformer transformer;
  auto stats =
      Unwrap(warehouse->LoadSource("hlx_enzyme.DEFAULT", transformer,
                                   datagen::ToEnzymeFlatFile(corpus)),
             "load ENZYME");
  std::printf("Warehoused %zu documents (%zu nodes, %zu text values, "
              "%zu numeric values)\n\n",
              stats.documents, stats.nodes, stats.text_values,
              stats.numeric_values);

  xq::XomatiQ xomatiq(warehouse.get());

  // 3. The GUI's left panel: the DTD structure tree users click on.
  std::printf("=== DTD structure (Fig 7a left panel) ===\n%s\n",
              Unwrap(xomatiq.FormatDtdTree("hlx_enzyme.DEFAULT"),
                     "format DTD")
                  .c_str());

  // 4. Sub-tree search mode (Fig 7a/9): keyword "ketone" within
  //    catalytic_activity, returning id and description.
  xq::SubtreeQueryBuilder builder("hlx_enzyme.DEFAULT", "hlx_enzyme");
  builder.AddCondition("catalytic_activity", "ketone")
      .AddReturn("enzyme_id")
      .AddReturn("enzyme_description");
  std::string query = builder.Build();
  std::printf("=== Query (\"Translate Query\" output) ===\n%s\n\n",
              query.c_str());

  auto translation = Unwrap(xomatiq.Translate(query), "translate");
  std::printf("=== Generated SQL (XQ2SQL) ===\n%s\n\n",
              translation.sql[0].c_str());

  auto result = Unwrap(xomatiq.Execute(query), "execute");
  std::printf("=== Results (Fig 7b table view) ===\n%s\n",
              result.ToTable().c_str());

  // 5. Click-through: reconstruct the full document of the first hit
  //    (Fig 7b right panel).
  if (!result.rows.empty()) {
    std::string uri = "enzyme:" + result.rows[0][0].AsText();
    auto doc_id = Unwrap(warehouse->FindDocument(uri), "find document");
    auto doc = Unwrap(xomatiq.ViewDocument(doc_id), "reconstruct");
    std::printf("=== Document view of %s ===\n%s\n", uri.c_str(),
                xml::WriteXml(doc).c_str());
  }

  Check(common::Status::OK(), "done");
  return 0;
}
