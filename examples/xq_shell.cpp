// Interactive XomatiQ shell: the text-mode counterpart of the paper's
// GUI. Load flat files into collections, inspect DTD trees, run XomatiQ
// queries (multi-line; finish with a blank line or ';'), and view
// documents reconstructed from tuples.
//
//   ./xq_shell [warehouse_dir]      (omit the dir for an in-memory store)
//
// Commands:
//   \demo                       load a synthetic three-database corpus
//   \load <collection> <source> <file>   source: enzyme | embl | sprot
//   \collections                list collections
//   \dtd <collection>           show the DTD structure tree (Fig 7a)
//   \doc <uri>                  reconstruct + print a document by uri
//   \sql on|off                 echo translated SQL before results
//   \explain <query...>         show relational plans for a query
//   \checkpoint                 snapshot + truncate the WAL (durable mode)
//   \help   \quit
// Anything else is executed as a XomatiQ query.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "xml/writer.h"
#include "xomatiq/xomatiq.h"

namespace {

using namespace xomatiq;

struct Shell {
  std::unique_ptr<rel::Database> db;
  std::unique_ptr<hounds::Warehouse> warehouse;
  std::unique_ptr<xq::XomatiQ> xomatiq;
  bool echo_sql = false;

  const hounds::XmlTransformer* TransformerFor(const std::string& source) {
    static hounds::EnzymeXmlTransformer enzyme;
    static hounds::EmblXmlTransformer embl;
    static hounds::SwissProtXmlTransformer sprot;
    if (source == "enzyme") return &enzyme;
    if (source == "embl") return &embl;
    if (source == "sprot") return &sprot;
    return nullptr;
  }

  void Demo() {
    datagen::CorpusOptions options;
    options.num_enzymes = 60;
    options.num_proteins = 90;
    options.num_nucleotides = 120;
    options.ketone_fraction = 0.15;
    datagen::Corpus corpus = datagen::GenerateCorpus(options);
    struct Source {
      const char* collection;
      const char* source;
      std::string raw;
    };
    const Source sources[] = {
        {"hlx_enzyme.DEFAULT", "enzyme", datagen::ToEnzymeFlatFile(corpus)},
        {"hlx_embl.inv", "embl", datagen::ToEmblFlatFile(corpus)},
        {"hlx_sprot.all", "sprot", datagen::ToSwissProtFlatFile(corpus)},
    };
    for (const Source& s : sources) {
      auto stats = warehouse->LoadSource(s.collection,
                                         *TransformerFor(s.source), s.raw);
      if (!stats.ok()) {
        std::printf("load %s failed: %s\n", s.collection,
                    stats.status().ToString().c_str());
        return;
      }
      std::printf("loaded %-20s %4zu documents, %6zu nodes\n", s.collection,
                  stats->documents, stats->nodes);
    }
    std::printf("\ntry:\n%s\n", R"(FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description
;)");
  }

  void Load(const std::string& collection, const std::string& source,
            const std::string& path) {
    const hounds::XmlTransformer* transformer = TransformerFor(source);
    if (transformer == nullptr) {
      std::printf("unknown source '%s' (enzyme | embl | sprot)\n",
                  source.c_str());
      return;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::printf("cannot read %s\n", path.c_str());
      return;
    }
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    auto stats = warehouse->LoadSource(collection, *transformer, raw);
    if (!stats.ok()) {
      std::printf("load failed: %s\n", stats.status().ToString().c_str());
      return;
    }
    std::printf("loaded %zu documents (%zu nodes, %zu values)\n",
                stats->documents, stats->nodes,
                stats->text_values + stats->sequence_values);
  }

  void RunQuery(const std::string& text) {
    if (echo_sql) {
      auto translation = xomatiq->Translate(text);
      if (!translation.ok()) {
        std::printf("error: %s\n", translation.status().ToString().c_str());
        return;
      }
      for (const std::string& sql : translation->sql) {
        std::printf("-- %s\n", sql.c_str());
      }
    }
    auto result = xomatiq->Execute(text);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%s", result->ToTable().c_str());
  }

  void Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command == "\\demo") {
      Demo();
    } else if (command == "\\load") {
      std::string collection, source, path;
      in >> collection >> source >> path;
      if (path.empty()) {
        std::printf("usage: \\load <collection> <enzyme|embl|sprot> <file>\n");
        return;
      }
      Load(collection, source, path);
    } else if (command == "\\collections") {
      for (const std::string& name : warehouse->CollectionNames()) {
        auto ids = warehouse->DocumentsIn(name);
        std::printf("%-24s %zu documents\n", name.c_str(),
                    ids.ok() ? ids->size() : 0);
      }
    } else if (command == "\\dtd") {
      std::string collection;
      in >> collection;
      auto tree = xomatiq->FormatDtdTree(collection);
      std::printf("%s", tree.ok() ? tree->c_str()
                                  : (tree.status().ToString() + "\n").c_str());
    } else if (command == "\\doc") {
      std::string uri;
      in >> uri;
      auto doc_id = warehouse->FindDocument(uri);
      if (!doc_id.ok()) {
        std::printf("%s\n", doc_id.status().ToString().c_str());
        return;
      }
      auto doc = warehouse->ReconstructDocument(*doc_id);
      if (!doc.ok()) {
        std::printf("%s\n", doc.status().ToString().c_str());
        return;
      }
      std::printf("%s", xml::WriteXml(*doc).c_str());
    } else if (command == "\\sql") {
      std::string mode;
      in >> mode;
      echo_sql = mode == "on";
      std::printf("sql echo %s\n", echo_sql ? "on" : "off");
    } else if (command == "\\explain") {
      std::string rest;
      std::getline(in, rest);
      auto plans = xomatiq->Explain(rest);
      std::printf("%s", plans.ok()
                            ? plans->c_str()
                            : (plans.status().ToString() + "\n").c_str());
    } else if (command == "\\checkpoint") {
      auto status = db->Checkpoint();
      std::printf("%s\n", status.ok() ? "checkpoint taken"
                                      : status.ToString().c_str());
    } else if (command == "\\help") {
      std::printf(
          "\\demo | \\load <col> <src> <file> | \\collections | \\dtd <col> "
          "| \\doc <uri> | \\sql on|off | \\explain <query> | \\checkpoint "
          "| \\quit\nqueries: FOR ... RETURN ... terminated by ';' or a "
          "blank line\n");
    } else {
      std::printf("unknown command %s (try \\help)\n", command.c_str());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1) {
    auto db = rel::Database::Open(argv[1]);
    if (!db.ok()) {
      std::fprintf(stderr, "open %s: %s\n", argv[1],
                   db.status().ToString().c_str());
      return 1;
    }
    shell.db = std::move(*db);
    std::printf("warehouse at %s (recovered %zu WAL records)\n", argv[1],
                shell.db->records_recovered());
  } else {
    shell.db = rel::Database::OpenInMemory();
    std::printf("in-memory warehouse (pass a directory for durability)\n");
  }
  auto warehouse = xomatiq::hounds::Warehouse::Open(shell.db.get());
  if (!warehouse.ok()) {
    std::fprintf(stderr, "%s\n", warehouse.status().ToString().c_str());
    return 1;
  }
  shell.warehouse = std::move(*warehouse);
  shell.xomatiq =
      std::make_unique<xomatiq::xq::XomatiQ>(shell.warehouse.get());
  std::printf("XomatiQ shell - \\help for commands, \\demo for data\n");

  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "xq> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = xomatiq::common::StripWhitespace(line);
    if (buffer.empty()) {
      if (trimmed.empty()) continue;
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      if (trimmed[0] == '\\') {
        shell.Dispatch(std::string(trimmed));
        continue;
      }
    }
    // Accumulate a query; execute on ';' or a blank line.
    if (trimmed.empty() ||
        (!trimmed.empty() && trimmed.back() == ';')) {
      buffer += line;
      if (!buffer.empty() && !trimmed.empty()) {
        // Strip the trailing ';'.
        size_t semi = buffer.rfind(';');
        if (semi != std::string::npos) buffer.erase(semi);
      }
      if (!xomatiq::common::StripWhitespace(buffer).empty()) {
        shell.RunQuery(buffer);
      }
      buffer.clear();
      continue;
    }
    buffer += line;
    buffer += "\n";
  }
  return 0;
}
