// Incremental warehouse maintenance (paper §2 requirement 2: "download
// and integrate the latest updates ... without any information being left
// out or added twice"): a durable warehouse is synced against a mutated
// remote copy; subscribed applications receive change triggers; the
// warehouse then survives a process restart via WAL recovery.

#include <cstdio>
#include <cstdlib>

#include <filesystem>

#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "xomatiq/xomatiq.h"

namespace {

template <typename T>
T Unwrap(xomatiq::common::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

const char* KindName(xomatiq::hounds::ChangeEvent::Kind kind) {
  using Kind = xomatiq::hounds::ChangeEvent::Kind;
  switch (kind) {
    case Kind::kAdded:
      return "ADDED";
    case Kind::kUpdated:
      return "UPDATED";
    case Kind::kRemoved:
      return "REMOVED";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace xomatiq;

  std::string dir = "/tmp/xomatiq_incremental_demo";
  std::filesystem::remove_all(dir);

  datagen::CorpusOptions options;
  options.num_enzymes = 30;
  options.num_proteins = 10;
  options.num_nucleotides = 0;
  datagen::Corpus corpus = datagen::GenerateCorpus(options);
  hounds::EnzymeXmlTransformer transformer;

  {
    auto db = Unwrap(rel::Database::Open(dir), "open db");
    auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open wh");
    auto stats = Unwrap(
        warehouse->LoadSource("hlx_enzyme.DEFAULT", transformer,
                              datagen::ToEnzymeFlatFile(corpus)),
        "initial load");
    std::printf("Initial harvest: %zu documents\n", stats.documents);

    // A downstream application subscribes to warehouse triggers.
    warehouse->Subscribe([](const hounds::ChangeEvent& event) {
      std::printf("  trigger -> %-7s %s (doc %lld)\n", KindName(event.kind),
                  event.uri.c_str(), static_cast<long long>(event.doc_id));
    });

    // The "remote database" changes: one entry revised, one withdrawn,
    // one brand new.
    datagen::Corpus remote = corpus;
    remote.enzymes[0].comments.push_back(
        "Revised annotation from the curators.");
    remote.enzymes.erase(remote.enzymes.begin() + 5);
    remote.enzymes.push_back(datagen::Figure2Entry());

    std::printf("\nSyncing against the updated remote copy:\n");
    auto sync = Unwrap(
        warehouse->SyncSource("hlx_enzyme.DEFAULT", transformer,
                              datagen::ToEnzymeFlatFile(remote)),
        "sync");
    std::printf(
        "sync stats: %zu added, %zu updated, %zu removed, %zu unchanged\n",
        sync.added, sync.updated, sync.removed, sync.unchanged);

    // Re-running the same sync is a no-op: nothing added twice.
    auto again = Unwrap(
        warehouse->SyncSource("hlx_enzyme.DEFAULT", transformer,
                              datagen::ToEnzymeFlatFile(remote)),
        "idempotent sync");
    std::printf("repeat sync: %zu added, %zu updated, %zu removed "
                "(idempotent)\n",
                again.added, again.updated, again.removed);
    std::printf("\nWAL bytes before restart: %llu\n",
                static_cast<unsigned long long>(db->wal_bytes()));
  }  // process "crashes" here - no checkpoint was taken

  std::printf("\n--- restart: recovering from the write-ahead log ---\n");
  {
    auto db = Unwrap(rel::Database::Open(dir), "reopen db");
    std::printf("recovered %zu WAL records\n", db->records_recovered());
    auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "reopen wh");
    auto ids = Unwrap(warehouse->DocumentsIn("hlx_enzyme.DEFAULT"), "list");
    std::printf("documents after recovery: %zu\n", ids.size());

    // The new entry from the sync is queryable after recovery.
    xq::XomatiQ xomatiq(warehouse.get());
    auto result = Unwrap(xomatiq.Execute(R"(
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a/enzyme_id = "1.14.17.3"
RETURN $a/enzyme_id, $a//enzyme_description)"),
                         "query");
    std::printf("%s", result.ToTable().c_str());

    // Checkpoint compacts the log for the next start.
    auto status = db->Checkpoint();
    if (!status.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint taken; WAL truncated to %llu bytes\n",
                static_cast<unsigned long long>(db->wal_bytes()));
  }
  std::filesystem::remove_all(dir);
  return 0;
}
