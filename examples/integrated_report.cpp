// Integrated annotation report (paper §3.3, last paragraph): "construct
// contextual reports with several levels of information that can give an
// integrated view of the annotations to a genome stored in distinct
// databases". For every enzyme that matches a keyword, this program
// gathers its ENZYME record, the EMBL nucleotide entries whose features
// point at its EC number, and the Swiss-Prot proteins it cross-references,
// and emits one consolidated XML report — all through XomatiQ queries.

#include <cstdio>
#include <cstdlib>
#include <map>

#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "xml/writer.h"
#include "xomatiq/xomatiq.h"

namespace {

template <typename T>
T Unwrap(xomatiq::common::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xomatiq;
  const std::string keyword = argc > 1 ? argv[1] : "dehydrogenase";

  datagen::CorpusOptions options;
  options.num_enzymes = 60;
  options.num_proteins = 90;
  options.num_nucleotides = 120;
  options.ec_link_fraction = 0.5;
  datagen::Corpus corpus = datagen::GenerateCorpus(options);

  auto db = rel::Database::OpenInMemory();
  auto warehouse = Unwrap(hounds::Warehouse::Open(db.get()), "open");
  hounds::EnzymeXmlTransformer enzyme_tf;
  hounds::EmblXmlTransformer embl_tf;
  hounds::SwissProtXmlTransformer sprot_tf;
  Unwrap(warehouse->LoadSource("hlx_enzyme.DEFAULT", enzyme_tf,
                               datagen::ToEnzymeFlatFile(corpus)),
         "load enzyme");
  Unwrap(warehouse->LoadSource("hlx_embl.inv", embl_tf,
                               datagen::ToEmblFlatFile(corpus)),
         "load embl");
  Unwrap(warehouse->LoadSource("hlx_sprot.all", sprot_tf,
                               datagen::ToSwissProtFlatFile(corpus)),
         "load sprot");

  xq::XomatiQ xomatiq(warehouse.get());

  // Level 1: enzymes matching the keyword.
  auto enzymes = Unwrap(xomatiq.Execute(
                            "FOR $a IN document(\"hlx_enzyme.DEFAULT\")"
                            "/hlx_enzyme/db_entry "
                            "WHERE contains($a//enzyme_description, \"" +
                            keyword + "\") "
                            "RETURN $a/enzyme_id, $a//enzyme_description"),
                        "enzyme query");
  std::printf("%zu enzymes match \"%s\"\n\n", enzymes.rows.size(),
              keyword.c_str());

  // Level 2+3: for each enzyme, correlated EMBL entries (via the EC
  // qualifier join of Fig 11) and Swiss-Prot references (via the DR
  // attributes of Fig 5/6).
  xml::XmlDocument report;
  xml::XmlNode* root = report.CreateRoot("integrated_report");
  root->AddAttribute("keyword", keyword);

  size_t total_nucleotides = 0;
  size_t total_proteins = 0;
  for (const rel::Tuple& row : enzymes.rows) {
    const std::string& ec = row[0].AsText();
    xml::XmlNode* entry = root->AddElement("enzyme");
    entry->AddAttribute("ec", ec);
    entry->AddTextElement("description", row[1].AsText());

    auto nucleotides = Unwrap(
        xomatiq.Execute(
            "FOR $a IN document(\"hlx_embl.inv\")/hlx_n_sequence/db_entry "
            "WHERE $a//qualifier[@qualifier_type = \"EC number\"] = \"" +
            ec + "\" RETURN $a//embl_accession_number, $a//description"),
        "embl query");
    xml::XmlNode* genes = entry->AddElement("nucleotide_entries");
    for (const rel::Tuple& n : nucleotides.rows) {
      xml::XmlNode* gene = genes->AddElement("embl_entry");
      gene->AddAttribute("accession", n[0].AsText());
      gene->AddText(n[1].AsText());
      ++total_nucleotides;
    }

    // The variable-relative binding keeps the two attributes of each
    // <reference> aligned (one row per reference, not a cross product).
    auto proteins = Unwrap(
        xomatiq.Execute(
            "FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme/db_entry, "
            "    $r IN $a//reference "
            "WHERE $a/enzyme_id = \"" + ec + "\" " +
            "RETURN $r/@swissprot_accession_number, $r/@name"),
        "sprot refs");
    xml::XmlNode* prots = entry->AddElement("protein_references");
    for (const rel::Tuple& p : proteins.rows) {
      xml::XmlNode* prot = prots->AddElement("swissprot_entry");
      prot->AddAttribute("accession", p[0].AsText());
      prot->AddAttribute("name", p[1].AsText());
      ++total_proteins;
    }
  }

  std::string text = xml::WriteXml(report);
  std::printf("%.*s%s\n",
              static_cast<int>(std::min<size_t>(text.size(), 2500)),
              text.c_str(), text.size() > 2500 ? "..." : "");
  std::printf(
      "\nreport: %zu enzymes, %zu correlated EMBL entries, %zu Swiss-Prot "
      "references\n",
      enzymes.rows.size(), total_nucleotides, total_proteins);
  return 0;
}
