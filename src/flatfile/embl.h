#ifndef XOMATIQ_FLATFILE_EMBL_H_
#define XOMATIQ_FLATFILE_EMBL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "flatfile/line_record.h"

namespace xomatiq::flatfile {

// A qualifier on an EMBL feature-table line, e.g. /EC_number="1.14.17.3".
struct EmblQualifier {
  std::string name;   // without the leading '/'
  std::string value;  // unquoted
  bool operator==(const EmblQualifier&) const = default;
};

// One feature-table feature (FT lines).
struct EmblFeature {
  std::string key;       // "CDS", "gene", ...
  std::string location;  // "1..368", "complement(12..90)", ...
  std::vector<EmblQualifier> qualifiers;
  bool operator==(const EmblFeature&) const = default;
};

// A database cross-reference (DR line).
struct EmblDbXref {
  std::string database;   // "SWISS-PROT", "ENZYME", ...
  std::string primary;    // primary identifier
  std::string secondary;  // optional secondary identifier
  bool operator==(const EmblDbXref&) const = default;
};

// One EMBL nucleotide entry (subset of the published format sufficient for
// the paper's workloads: identification, description, keywords, organism,
// cross-references, feature table with qualifiers, and the sequence).
struct EmblEntry {
  std::string id;        // entry name, e.g. "AB000263"
  std::string division;  // three-letter division, e.g. "INV"
  std::string molecule;  // "DNA" / "RNA" / "mRNA"
  std::vector<std::string> accessions;  // AC
  std::string description;              // DE (joined)
  std::vector<std::string> keywords;    // KW
  std::string organism;                 // OS
  std::vector<EmblDbXref> xrefs;        // DR
  std::vector<EmblFeature> features;    // FT
  std::string sequence;                 // SQ block, lowercase acgt...

  bool operator==(const EmblEntry&) const = default;
};

common::Result<EmblEntry> ParseEmblEntry(
    const std::vector<LineRecord>& records);
common::Result<std::vector<EmblEntry>> ParseEmblFile(
    std::string_view content);

// Emits the entry in EMBL flat-file format; round-trips via ParseEmblEntry.
std::string FormatEmblEntry(const EmblEntry& entry);

}  // namespace xomatiq::flatfile

#endif  // XOMATIQ_FLATFILE_EMBL_H_
