#include "flatfile/enzyme.h"

#include "common/string_util.h"

namespace xomatiq::flatfile {

using common::Result;
using common::Status;

namespace {

std::string StripDot(std::string_view s) {
  s = common::StripWhitespace(s);
  if (!s.empty() && s.back() == '.') s.remove_suffix(1);
  return std::string(s);
}

}  // namespace

Result<EnzymeEntry> ParseEnzymeEntry(const std::vector<LineRecord>& records) {
  if (records.empty() || records.front().code != "ID") {
    return Status::ParseError("ENZYME entry must begin with an ID line");
  }
  EnzymeEntry entry;
  for (const LineRecord& record : records) {
    const std::string& data = record.data;
    if (record.code == "ID") {
      if (!entry.id.empty()) {
        return Status::ParseError("duplicate ID line in ENZYME entry");
      }
      entry.id = std::string(common::StripWhitespace(data));
      if (entry.id.empty()) {
        return Status::ParseError("empty EC number in ID line");
      }
    } else if (record.code == "DE") {
      entry.descriptions.push_back(StripDot(data));
    } else if (record.code == "AN") {
      entry.alternate_names.push_back(StripDot(data));
    } else if (record.code == "CA") {
      entry.catalytic_activities.push_back(
          std::string(common::StripWhitespace(data)));
    } else if (record.code == "CF") {
      for (const std::string& piece : common::Split(data, ';')) {
        std::string cofactor = StripDot(piece);
        if (!cofactor.empty()) entry.cofactors.push_back(std::move(cofactor));
      }
    } else if (record.code == "CC") {
      std::string_view text = common::StripWhitespace(data);
      if (common::StartsWith(text, "-!-")) {
        entry.comments.push_back(
            std::string(common::StripWhitespace(text.substr(3))));
      } else if (!entry.comments.empty()) {
        // Continuation of the current "-!-" block.
        entry.comments.back() += " ";
        entry.comments.back() += std::string(text);
      } else {
        return Status::ParseError("CC continuation before any '-!-' block");
      }
    } else if (record.code == "PR") {
      // "PROSITE; PDOC00080;"
      std::vector<std::string> parts = common::Split(data, ';');
      if (parts.size() < 2 ||
          common::StripWhitespace(parts[0]) != "PROSITE") {
        return Status::ParseError("malformed PR line: " + data);
      }
      std::string accession(common::StripWhitespace(parts[1]));
      if (accession.empty()) {
        return Status::ParseError("empty PROSITE accession: " + data);
      }
      entry.prosite_refs.push_back(std::move(accession));
    } else if (record.code == "DR") {
      // "P10731, AMD_BOVIN ;  P19021, AMD_HUMAN ;"
      for (const std::string& pair : common::Split(data, ';')) {
        std::string_view trimmed = common::StripWhitespace(pair);
        if (trimmed.empty()) continue;
        std::vector<std::string> fields = common::Split(trimmed, ',');
        if (fields.size() != 2) {
          return Status::ParseError("malformed DR pair: " + pair);
        }
        EnzymeEntry::SwissProtRef ref;
        ref.accession = std::string(common::StripWhitespace(fields[0]));
        ref.name = std::string(common::StripWhitespace(fields[1]));
        if (ref.accession.empty() || ref.name.empty()) {
          return Status::ParseError("incomplete DR pair: " + pair);
        }
        entry.swissprot_refs.push_back(std::move(ref));
      }
    } else if (record.code == "DI") {
      // "Hypophosphatasia; MIM:241500."
      std::string text = StripDot(data);
      size_t mim = text.rfind("MIM:");
      if (mim == std::string::npos) {
        return Status::ParseError("DI line without MIM reference: " + data);
      }
      EnzymeEntry::DiseaseRef ref;
      ref.mim_id = std::string(common::StripWhitespace(text.substr(mim + 4)));
      std::string desc(common::StripWhitespace(text.substr(0, mim)));
      if (!desc.empty() && desc.back() == ';') desc.pop_back();
      ref.description = std::string(common::StripWhitespace(desc));
      if (ref.mim_id.empty()) {
        return Status::ParseError("empty MIM id: " + data);
      }
      entry.diseases.push_back(std::move(ref));
    } else {
      return Status::ParseError("unknown ENZYME line code '" + record.code +
                                "'");
    }
  }
  if (entry.descriptions.empty()) {
    return Status::ParseError("ENZYME entry " + entry.id +
                              " has no DE line (>=1 required)");
  }
  return entry;
}

Result<std::vector<EnzymeEntry>> ParseEnzymeFile(std::string_view content) {
  std::vector<EnzymeEntry> entries;
  EntryReader reader(content);
  while (true) {
    XQ_ASSIGN_OR_RETURN(auto records, reader.NextEntry());
    if (!records.has_value()) break;
    XQ_ASSIGN_OR_RETURN(EnzymeEntry entry, ParseEnzymeEntry(*records));
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string FormatEnzymeEntry(const EnzymeEntry& entry) {
  std::string out;
  auto line = [&out](std::string_view code, std::string_view data) {
    out += FormatLine(code, data);
    out += "\n";
  };
  line("ID", entry.id);
  for (const std::string& de : entry.descriptions) line("DE", de + ".");
  for (const std::string& an : entry.alternate_names) line("AN", an + ".");
  for (const std::string& ca : entry.catalytic_activities) line("CA", ca);
  if (!entry.cofactors.empty()) {
    line("CF", common::Join(entry.cofactors, "; ") + ".");
  }
  for (const std::string& cc : entry.comments) line("CC", "-!- " + cc);
  for (const EnzymeEntry::DiseaseRef& di : entry.diseases) {
    line("DI", di.description + "; MIM:" + di.mim_id + ".");
  }
  for (const std::string& pr : entry.prosite_refs) {
    line("PR", "PROSITE; " + pr + ";");
  }
  if (!entry.swissprot_refs.empty()) {
    std::string dr;
    for (const EnzymeEntry::SwissProtRef& ref : entry.swissprot_refs) {
      dr += ref.accession + ", " + ref.name + " ;  ";
    }
    // Trim the trailing spacing.
    while (!dr.empty() && dr.back() == ' ') dr.pop_back();
    line("DR", dr);
  }
  out += "//\n";
  return out;
}

}  // namespace xomatiq::flatfile
