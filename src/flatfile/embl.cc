#include "flatfile/embl.h"

#include <cctype>

#include "common/string_util.h"

namespace xomatiq::flatfile {

using common::Result;
using common::Status;

namespace {

// "ID   AB000263 standard; RNA; INV; 368 BP."
Status ParseIdLine(const std::string& data, EmblEntry* entry) {
  std::vector<std::string> semis = common::Split(data, ';');
  if (semis.size() < 3) {
    return Status::ParseError("malformed EMBL ID line: " + data);
  }
  std::vector<std::string> head = common::SplitWhitespace(semis[0]);
  if (head.empty()) {
    return Status::ParseError("missing entry name in ID line: " + data);
  }
  entry->id = head[0];
  entry->molecule = std::string(common::StripWhitespace(semis[1]));
  std::string division(common::StripWhitespace(semis[2]));
  if (!division.empty() && division.back() == '.') division.pop_back();
  entry->division = division;
  return Status::OK();
}

// FT feature lines:
//   "CDS             1..368"                  (new feature: key + location)
//   "                /EC_number=\"1.1.1.1\""  (qualifier continuation)
Status ParseFtLine(const std::string& data, EmblEntry* entry) {
  std::string_view text = data;
  std::string_view stripped = common::StripWhitespace(text);
  if (stripped.empty()) return Status::OK();
  if (stripped[0] == '/') {
    if (entry->features.empty()) {
      return Status::ParseError("FT qualifier before any feature: " + data);
    }
    std::string_view body = stripped.substr(1);
    size_t eq = body.find('=');
    EmblQualifier q;
    if (eq == std::string_view::npos) {
      q.name = std::string(body);  // flag-style qualifier, e.g. /pseudo
    } else {
      q.name = std::string(body.substr(0, eq));
      std::string_view value = body.substr(eq + 1);
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      q.value = std::string(value);
    }
    entry->features.back().qualifiers.push_back(std::move(q));
    return Status::OK();
  }
  // New feature: the key starts in the first data column (no leading
  // whitespace before it in the raw line's data payload).
  if (text[0] == ' ') {
    // Location continuation for the current feature.
    if (entry->features.empty()) {
      return Status::ParseError("FT continuation before any feature: " + data);
    }
    entry->features.back().location += std::string(stripped);
    return Status::OK();
  }
  std::vector<std::string> parts = common::SplitWhitespace(stripped);
  EmblFeature feature;
  feature.key = parts[0];
  if (parts.size() > 1) {
    feature.location = parts[1];
    for (size_t i = 2; i < parts.size(); ++i) {
      feature.location += parts[i];
    }
  }
  entry->features.push_back(std::move(feature));
  return Status::OK();
}

// "DR   SWISS-PROT; P10731; AMD_BOVIN."
Status ParseDrLine(const std::string& data, EmblEntry* entry) {
  std::string text = data;
  if (!text.empty() && text.back() == '.') text.pop_back();
  std::vector<std::string> parts = common::Split(text, ';');
  if (parts.size() < 2) {
    return Status::ParseError("malformed EMBL DR line: " + data);
  }
  EmblDbXref xref;
  xref.database = std::string(common::StripWhitespace(parts[0]));
  xref.primary = std::string(common::StripWhitespace(parts[1]));
  if (parts.size() > 2) {
    xref.secondary = std::string(common::StripWhitespace(parts[2]));
  }
  entry->xrefs.push_back(std::move(xref));
  return Status::OK();
}

}  // namespace

Result<EmblEntry> ParseEmblEntry(const std::vector<LineRecord>& records) {
  if (records.empty() || records.front().code != "ID") {
    return Status::ParseError("EMBL entry must begin with an ID line");
  }
  EmblEntry entry;
  bool in_sequence = false;
  for (const LineRecord& record : records) {
    const std::string& data = record.data;
    if (record.code == "ID") {
      XQ_RETURN_IF_ERROR(ParseIdLine(data, &entry));
    } else if (record.code == "AC") {
      for (const std::string& acc : common::Split(data, ';')) {
        std::string trimmed(common::StripWhitespace(acc));
        if (!trimmed.empty()) entry.accessions.push_back(std::move(trimmed));
      }
    } else if (record.code == "DE") {
      if (!entry.description.empty()) entry.description += " ";
      entry.description += std::string(common::StripWhitespace(data));
    } else if (record.code == "KW") {
      std::string text = data;
      if (!text.empty() && text.back() == '.') text.pop_back();
      for (const std::string& kw : common::Split(text, ';')) {
        std::string trimmed(common::StripWhitespace(kw));
        if (!trimmed.empty()) entry.keywords.push_back(std::move(trimmed));
      }
    } else if (record.code == "OS") {
      if (!entry.organism.empty()) entry.organism += " ";
      entry.organism += std::string(common::StripWhitespace(data));
    } else if (record.code == "DR") {
      XQ_RETURN_IF_ERROR(ParseDrLine(data, &entry));
    } else if (record.code == "FT") {
      XQ_RETURN_IF_ERROR(ParseFtLine(data, &entry));
    } else if (record.code == "SQ") {
      in_sequence = true;  // header line; residues follow with blank codes
    } else if (record.code == "  ") {
      if (!in_sequence) {
        return Status::ParseError("sequence data before SQ header");
      }
      for (char c : data) {
        if (std::isalpha(static_cast<unsigned char>(c))) {
          entry.sequence.push_back(
              static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
        }
      }
    } else if (record.code == "XX") {
      // Separator line; ignore.
    } else {
      return Status::ParseError("unknown EMBL line code '" + record.code +
                                "'");
    }
  }
  if (entry.accessions.empty()) {
    return Status::ParseError("EMBL entry " + entry.id +
                              " has no accession (AC) line");
  }
  return entry;
}

Result<std::vector<EmblEntry>> ParseEmblFile(std::string_view content) {
  std::vector<EmblEntry> entries;
  EntryReader reader(content);
  while (true) {
    XQ_ASSIGN_OR_RETURN(auto records, reader.NextEntry());
    if (!records.has_value()) break;
    XQ_ASSIGN_OR_RETURN(EmblEntry entry, ParseEmblEntry(*records));
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string FormatEmblEntry(const EmblEntry& entry) {
  std::string out;
  auto line = [&out](std::string_view code, std::string_view data) {
    out += FormatLine(code, data);
    out += "\n";
  };
  line("ID", entry.id + " standard; " + entry.molecule + "; " +
                 entry.division + "; " +
                 std::to_string(entry.sequence.size()) + " BP.");
  line("XX", "");
  std::string ac;
  for (const std::string& a : entry.accessions) ac += a + ";";
  line("AC", ac);
  if (!entry.description.empty()) line("DE", entry.description);
  if (!entry.keywords.empty()) {
    line("KW", common::Join(entry.keywords, "; ") + ".");
  }
  if (!entry.organism.empty()) line("OS", entry.organism);
  for (const EmblDbXref& xref : entry.xrefs) {
    std::string dr = xref.database + "; " + xref.primary;
    if (!xref.secondary.empty()) dr += "; " + xref.secondary;
    line("DR", dr + ".");
  }
  for (const EmblFeature& feature : entry.features) {
    std::string head = feature.key;
    if (head.size() < 16) head += std::string(16 - head.size(), ' ');
    line("FT", head + feature.location);
    for (const EmblQualifier& q : feature.qualifiers) {
      std::string qline(16, ' ');
      qline += "/" + q.name;
      if (!q.value.empty()) qline += "=\"" + q.value + "\"";
      line("FT", qline);
    }
  }
  line("SQ", "Sequence " + std::to_string(entry.sequence.size()) + " BP;");
  for (size_t i = 0; i < entry.sequence.size(); i += 60) {
    std::string chunk = entry.sequence.substr(i, 60);
    std::string grouped;
    for (size_t j = 0; j < chunk.size(); j += 10) {
      if (j > 0) grouped += " ";
      grouped += chunk.substr(j, 10);
    }
    out += "     " + grouped + "\n";
  }
  out += "//\n";
  return out;
}

}  // namespace xomatiq::flatfile
