#include "flatfile/line_record.h"

#include "common/string_util.h"

namespace xomatiq::flatfile {

using common::Result;
using common::Status;

Result<LineRecord> ParseLine(std::string_view line) {
  line = common::StripTrailingWhitespace(line);
  if (line.empty()) {
    return Status::ParseError("empty line in flat file");
  }
  if (line == "//") {
    return LineRecord{"//", ""};
  }
  if (line.size() < 2) {
    return Status::ParseError("line too short for a line code: '" +
                              std::string(line) + "'");
  }
  LineRecord record;
  record.code = std::string(line.substr(0, 2));
  if (record.code == "  ") {
    // Sequence data lines in SQ blocks carry a blank code.
    record.data = std::string(common::StripWhitespace(line));
    record.code = "  ";
    return record;
  }
  if (line.size() > 5) {
    record.data = std::string(line.substr(5));
  } else if (line.size() > 2) {
    record.data = std::string(common::StripWhitespace(line.substr(2)));
  }
  return record;
}

std::string FormatLine(std::string_view code, std::string_view data) {
  std::string out(code);
  if (!data.empty()) {
    out += "   ";
    out += data;
  }
  return out;
}

std::string FormatLine(const LineRecord& record) {
  if (record.code == "//") return "//";
  return FormatLine(record.code, record.data);
}

Result<std::optional<std::vector<LineRecord>>> EntryReader::NextEntry() {
  std::vector<LineRecord> records;
  bool saw_any = false;
  while (pos_ < content_.size()) {
    size_t eol = content_.find('\n', pos_);
    std::string_view line = eol == std::string_view::npos
                                ? content_.substr(pos_)
                                : content_.substr(pos_, eol - pos_);
    pos_ = eol == std::string_view::npos ? content_.size() : eol + 1;
    if (common::StripWhitespace(line).empty()) continue;
    XQ_ASSIGN_OR_RETURN(LineRecord record, ParseLine(line));
    if (record.code == "//") {
      return std::optional<std::vector<LineRecord>>(std::move(records));
    }
    saw_any = true;
    records.push_back(std::move(record));
  }
  if (saw_any) {
    return Status::ParseError(
        "flat file ends inside an entry (missing '//' terminator)");
  }
  return std::optional<std::vector<LineRecord>>(std::nullopt);
}

std::string JoinLines(const std::vector<LineRecord>& records,
                      std::string_view code) {
  std::string out;
  for (const LineRecord& r : records) {
    if (r.code != code) continue;
    if (!out.empty()) out += " ";
    out += r.data;
  }
  return out;
}

std::vector<std::string> LinesFor(const std::vector<LineRecord>& records,
                                  std::string_view code) {
  std::vector<std::string> out;
  for (const LineRecord& r : records) {
    if (r.code == code) out.push_back(r.data);
  }
  return out;
}

}  // namespace xomatiq::flatfile
