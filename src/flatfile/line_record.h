#ifndef XOMATIQ_FLATFILE_LINE_RECORD_H_
#define XOMATIQ_FLATFILE_LINE_RECORD_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace xomatiq::flatfile {

// One line of an EMBL-style flat file (paper Fig 3): a two-character line
// code in columns 1-2, blank columns 3-5, data from column 6 onward.
struct LineRecord {
  std::string code;  // "ID", "DE", ..., "//"
  std::string data;  // trailing-whitespace-stripped payload
};

// Parses one raw line into code + data. The terminator line "//" yields
// code "//" with empty data. Empty lines are rejected.
common::Result<LineRecord> ParseLine(std::string_view line);

// Formats a record back into the fixed layout ("CC   data").
std::string FormatLine(const LineRecord& record);
std::string FormatLine(std::string_view code, std::string_view data);

// Splits flat-file content into entries. Each entry is the sequence of
// lines up to (excluding) its "//" terminator. A final unterminated entry
// is a parse error (paper §2.1: every entry must end with "//").
class EntryReader {
 public:
  explicit EntryReader(std::string_view content) : content_(content) {}

  // Next entry's records, or nullopt at end of input.
  common::Result<std::optional<std::vector<LineRecord>>> NextEntry();

  // Byte offset of the reader (for error reporting / progress).
  size_t position() const { return pos_; }

 private:
  std::string_view content_;
  size_t pos_ = 0;
};

// Joins data from consecutive records sharing `code` with single spaces
// (standard flat-file continuation-line semantics).
std::string JoinLines(const std::vector<LineRecord>& records,
                      std::string_view code);

// All data payloads for `code`, one per line.
std::vector<std::string> LinesFor(const std::vector<LineRecord>& records,
                                  std::string_view code);

}  // namespace xomatiq::flatfile

#endif  // XOMATIQ_FLATFILE_LINE_RECORD_H_
