#ifndef XOMATIQ_FLATFILE_SWISSPROT_H_
#define XOMATIQ_FLATFILE_SWISSPROT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "flatfile/line_record.h"

namespace xomatiq::flatfile {

// A database cross-reference (DR line) of a Swiss-Prot entry.
struct SwissProtDbXref {
  std::string database;   // "EMBL", "ENZYME", "PROSITE", ...
  std::string primary;
  std::string secondary;
  bool operator==(const SwissProtDbXref&) const = default;
};

// One Swiss-Prot protein entry (subset of the published format).
struct SwissProtEntry {
  std::string id;        // entry name, e.g. "AMD_BOVIN"
  std::string status;    // "STANDARD" / "PRELIMINARY"
  size_t length = 0;     // amino-acid count (from the ID line)
  std::vector<std::string> accessions;  // AC, e.g. "P10731"
  std::string description;              // DE (joined)
  std::vector<std::string> gene_names;  // GN
  std::string organism;                 // OS
  std::vector<std::string> comments;    // CC "-!-" blocks
  std::vector<SwissProtDbXref> xrefs;   // DR
  std::vector<std::string> keywords;    // KW
  std::string sequence;                 // SQ block, uppercase residues

  bool operator==(const SwissProtEntry&) const = default;
};

common::Result<SwissProtEntry> ParseSwissProtEntry(
    const std::vector<LineRecord>& records);
common::Result<std::vector<SwissProtEntry>> ParseSwissProtFile(
    std::string_view content);

// Emits the entry in Swiss-Prot flat-file format; round-trips via
// ParseSwissProtEntry.
std::string FormatSwissProtEntry(const SwissProtEntry& entry);

}  // namespace xomatiq::flatfile

#endif  // XOMATIQ_FLATFILE_SWISSPROT_H_
