#ifndef XOMATIQ_FLATFILE_ENZYME_H_
#define XOMATIQ_FLATFILE_ENZYME_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "flatfile/line_record.h"

namespace xomatiq::flatfile {

// One ENZYME database entry (paper Fig 2 / Fig 4 line codes).
struct EnzymeEntry {
  std::string id;  // EC number, e.g. "1.14.17.3"

  std::vector<std::string> descriptions;          // DE (>= 1)
  std::vector<std::string> alternate_names;       // AN
  std::vector<std::string> catalytic_activities;  // CA (one per line)
  std::vector<std::string> cofactors;             // CF (';'-separated)
  std::vector<std::string> comments;              // CC ("-!-" blocks)
  std::vector<std::string> prosite_refs;          // PR accession numbers

  struct SwissProtRef {
    std::string accession;  // "P10731"
    std::string name;       // "AMD_BOVIN"
    bool operator==(const SwissProtRef&) const = default;
  };
  std::vector<SwissProtRef> swissprot_refs;  // DR

  struct DiseaseRef {
    std::string mim_id;       // OMIM catalogue number
    std::string description;  // disease name
    bool operator==(const DiseaseRef&) const = default;
  };
  std::vector<DiseaseRef> diseases;  // DI

  bool operator==(const EnzymeEntry&) const = default;
};

// Parses one entry from its line records (ID ... before the terminator).
common::Result<EnzymeEntry> ParseEnzymeEntry(
    const std::vector<LineRecord>& records);

// Parses a whole ENZYME flat file.
common::Result<std::vector<EnzymeEntry>> ParseEnzymeFile(
    std::string_view content);

// Emits the entry in ENZYME flat-file format (terminated with "//").
// Round-trips through ParseEnzymeEntry.
std::string FormatEnzymeEntry(const EnzymeEntry& entry);

}  // namespace xomatiq::flatfile

#endif  // XOMATIQ_FLATFILE_ENZYME_H_
