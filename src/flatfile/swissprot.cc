#include "flatfile/swissprot.h"

#include <cctype>

#include "common/string_util.h"

namespace xomatiq::flatfile {

using common::Result;
using common::Status;

Result<SwissProtEntry> ParseSwissProtEntry(
    const std::vector<LineRecord>& records) {
  if (records.empty() || records.front().code != "ID") {
    return Status::ParseError("Swiss-Prot entry must begin with an ID line");
  }
  SwissProtEntry entry;
  bool in_sequence = false;
  for (const LineRecord& record : records) {
    const std::string& data = record.data;
    if (record.code == "ID") {
      // "AMD_BOVIN  STANDARD;  PRT;  972 AA."
      std::vector<std::string> parts = common::SplitWhitespace(data);
      if (parts.size() < 2) {
        return Status::ParseError("malformed Swiss-Prot ID line: " + data);
      }
      entry.id = parts[0];
      entry.status = parts[1];
      while (!entry.status.empty() &&
             (entry.status.back() == ';' || entry.status.back() == '.')) {
        entry.status.pop_back();
      }
      for (size_t i = 2; i + 1 < parts.size(); ++i) {
        if (common::StartsWith(parts[i + 1], "AA")) {
          if (auto n = common::ParseInt64(parts[i])) {
            entry.length = static_cast<size_t>(*n);
          }
        }
      }
    } else if (record.code == "AC") {
      for (const std::string& acc : common::Split(data, ';')) {
        std::string trimmed(common::StripWhitespace(acc));
        if (!trimmed.empty()) entry.accessions.push_back(std::move(trimmed));
      }
    } else if (record.code == "DE") {
      if (!entry.description.empty()) entry.description += " ";
      entry.description += std::string(common::StripWhitespace(data));
    } else if (record.code == "GN") {
      std::string text = data;
      if (!text.empty() && text.back() == '.') text.pop_back();
      for (const std::string& gene : common::Split(text, ';')) {
        std::string trimmed(common::StripWhitespace(gene));
        if (!trimmed.empty()) entry.gene_names.push_back(std::move(trimmed));
      }
    } else if (record.code == "OS") {
      if (!entry.organism.empty()) entry.organism += " ";
      entry.organism += std::string(common::StripWhitespace(data));
    } else if (record.code == "CC") {
      std::string_view text = common::StripWhitespace(data);
      if (common::StartsWith(text, "-!-")) {
        entry.comments.push_back(
            std::string(common::StripWhitespace(text.substr(3))));
      } else if (!entry.comments.empty()) {
        entry.comments.back() += " ";
        entry.comments.back() += std::string(text);
      }
      // Header CC banner lines before any "-!-" are ignored.
    } else if (record.code == "DR") {
      std::string text = data;
      if (!text.empty() && text.back() == '.') text.pop_back();
      std::vector<std::string> parts = common::Split(text, ';');
      if (parts.size() < 2) {
        return Status::ParseError("malformed Swiss-Prot DR line: " + data);
      }
      SwissProtDbXref xref;
      xref.database = std::string(common::StripWhitespace(parts[0]));
      xref.primary = std::string(common::StripWhitespace(parts[1]));
      if (parts.size() > 2) {
        xref.secondary = std::string(common::StripWhitespace(parts[2]));
      }
      entry.xrefs.push_back(std::move(xref));
    } else if (record.code == "KW") {
      std::string text = data;
      if (!text.empty() && text.back() == '.') text.pop_back();
      for (const std::string& kw : common::Split(text, ';')) {
        std::string trimmed(common::StripWhitespace(kw));
        if (!trimmed.empty()) entry.keywords.push_back(std::move(trimmed));
      }
    } else if (record.code == "SQ") {
      in_sequence = true;
    } else if (record.code == "  ") {
      if (!in_sequence) {
        return Status::ParseError("sequence data before SQ header");
      }
      for (char c : data) {
        if (std::isalpha(static_cast<unsigned char>(c))) {
          entry.sequence.push_back(
              static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
        }
      }
    } else if (record.code == "XX" || record.code == "OC" ||
               record.code == "OX" || record.code == "RN" ||
               record.code == "RP" || record.code == "RA" ||
               record.code == "RT" || record.code == "RL" ||
               record.code == "FT") {
      // Recognized but not modeled; skipped without error so real files
      // from ExPASy parse.
    } else {
      return Status::ParseError("unknown Swiss-Prot line code '" +
                                record.code + "'");
    }
  }
  if (entry.accessions.empty()) {
    return Status::ParseError("Swiss-Prot entry " + entry.id +
                              " has no accession (AC) line");
  }
  if (entry.length == 0) entry.length = entry.sequence.size();
  return entry;
}

Result<std::vector<SwissProtEntry>> ParseSwissProtFile(
    std::string_view content) {
  std::vector<SwissProtEntry> entries;
  EntryReader reader(content);
  while (true) {
    XQ_ASSIGN_OR_RETURN(auto records, reader.NextEntry());
    if (!records.has_value()) break;
    XQ_ASSIGN_OR_RETURN(SwissProtEntry entry, ParseSwissProtEntry(*records));
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string FormatSwissProtEntry(const SwissProtEntry& entry) {
  std::string out;
  auto line = [&out](std::string_view code, std::string_view data) {
    out += FormatLine(code, data);
    out += "\n";
  };
  line("ID", entry.id + "  " + entry.status + ";  PRT;  " +
                 std::to_string(entry.length) + " AA.");
  std::string ac;
  for (const std::string& a : entry.accessions) ac += a + ";";
  line("AC", ac);
  if (!entry.description.empty()) line("DE", entry.description);
  if (!entry.gene_names.empty()) {
    line("GN", common::Join(entry.gene_names, "; ") + ".");
  }
  if (!entry.organism.empty()) line("OS", entry.organism);
  for (const std::string& cc : entry.comments) line("CC", "-!- " + cc);
  for (const SwissProtDbXref& xref : entry.xrefs) {
    std::string dr = xref.database + "; " + xref.primary;
    if (!xref.secondary.empty()) dr += "; " + xref.secondary;
    line("DR", dr + ".");
  }
  if (!entry.keywords.empty()) {
    line("KW", common::Join(entry.keywords, "; ") + ".");
  }
  line("SQ", "SEQUENCE   " + std::to_string(entry.sequence.size()) + " AA;");
  for (size_t i = 0; i < entry.sequence.size(); i += 60) {
    std::string chunk = entry.sequence.substr(i, 60);
    std::string grouped;
    for (size_t j = 0; j < chunk.size(); j += 10) {
      if (j > 0) grouped += " ";
      grouped += chunk.substr(j, 10);
    }
    out += "     " + grouped + "\n";
  }
  out += "//\n";
  return out;
}

}  // namespace xomatiq::flatfile
