#ifndef XOMATIQ_EXEC_WORKER_POOL_H_
#define XOMATIQ_EXEC_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace xomatiq::exec {

// Atomic dispenser of contiguous [begin, end) morsels covering [0, total).
// Workers pull the next unclaimed morsel instead of owning a fixed slice,
// so a worker stalled on a slow morsel never leaves the rest of the range
// idle — the stealing is implicit in the shared cursor. Morsel indexes are
// sequential (morsel i covers [i*span, min((i+1)*span, total))), which is
// what lets operators reassemble per-morsel outputs in input order.
class MorselQueue {
 public:
  // `span` is clamped to >= 1; zero `total` yields an empty queue.
  MorselQueue(size_t total, size_t span)
      : total_(total), span_(span == 0 ? 1 : span) {}

  // Claims the next morsel. Returns false when the range is exhausted.
  bool Next(size_t* index, size_t* begin, size_t* end) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    size_t b = i * span_;
    if (b >= total_) return false;
    *index = i;
    *begin = b;
    *end = b + span_ < total_ ? b + span_ : total_;
    return true;
  }

  size_t num_morsels() const { return (total_ + span_ - 1) / span_; }
  size_t span() const { return span_; }

 private:
  std::atomic<size_t> next_{0};
  size_t total_;
  size_t span_;
};

// Process-wide pool of execution workers shared by every concurrent query.
//
// Design (morsel-driven parallelism):
//   - The pool owns a FIXED number of threads for the whole process; a
//     query never spawns threads of its own. N sessions x M-way plans
//     cannot oversubscribe the host: total execution threads = pool size,
//     plus each query's own driver thread.
//   - One ParallelFor call is one per-query task group: `slots` logical
//     workers run `fn(slot)`, where fn typically loops over a shared
//     MorselQueue. Slots are claimed dynamically from a shared counter.
//   - Caller-runs admission: the driver thread participates in its own
//     group, claiming slots alongside pool workers. If every pool worker
//     is busy with other queries, the group still completes — degraded to
//     serial on the driver — so ParallelFor can never deadlock and needs
//     no queue-capacity tuning. A pool of size 0 is valid and makes every
//     group run serially on its caller.
//   - Cancellation is cooperative and operator-owned: fn bodies probe
//     their query's deadline between (and inside) morsels and bail out;
//     the pool itself never blocks inside fn.
//
// Lock order: pool internals (queue mutex, group mutex) are leaf locks —
// no fn may be invoked while they are held, so callers may hold database
// latches across ParallelFor (db latch -> pool queues, never the
// reverse). In practice query execution holds no latch here: reads run
// latch-free under an MVCC snapshot epoch.
class WorkerPool {
 public:
  // Exactly `workers` threads; 0 is a valid, always-serial pool.
  explicit WorkerPool(size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // The shared process pool. Sized on first use: ConfigureGlobal() if it
  // was called, else hardware_concurrency - 1 (driver threads supply the
  // remaining core), so a single-core host gets an empty pool and every
  // query stays serial.
  static WorkerPool* Global();

  // Sets the size Global() will use. Must be called before the first
  // Global() call (server startup); later calls are ignored.
  static void ConfigureGlobal(size_t workers);

  size_t size() const { return threads_.size(); }

  // Runs fn(slot) for every slot in [0, slots), returning when all have
  // finished. The calling thread claims slots too (see caller-runs above),
  // so this completes even when no pool worker is free. fn must not call
  // ParallelFor on the same pool (one level of parallelism per group).
  void ParallelFor(size_t slots, const std::function<void(size_t)>& fn);

  // Worker-slot budget for one query requesting `requested`-way
  // parallelism (0 = as wide as the pool allows). The pool's threads are
  // split evenly across currently-active task groups, and the caller's
  // own thread is always available — so the result is >= 1, and capped at
  // size() + 1. This is the per-query admission decision: concurrent
  // sessions each get a fair share instead of all fanning out to the full
  // pool width.
  size_t AdmitDegree(size_t requested) const;

  // Introspection (tests, /metrics via the exec.pool.* counters).
  size_t active_groups() const {
    return active_groups_.load(std::memory_order_relaxed);
  }

 private:
  struct Group;  // one ParallelFor's shared state

  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Group>> queue_;
  bool stopping_ = false;
  std::atomic<size_t> active_groups_{0};
};

}  // namespace xomatiq::exec

#endif  // XOMATIQ_EXEC_WORKER_POOL_H_
