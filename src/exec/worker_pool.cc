#include "exec/worker_pool.h"

#include <algorithm>

#include "common/metrics.h"

namespace xomatiq::exec {

namespace {

common::Counter* PoolTasksCounter() {
  static common::Counter* c =
      common::MetricsRegistry::Global().GetCounter("exec.pool.tasks");
  return c;
}

common::Counter* InlineSlotsCounter() {
  static common::Counter* c =
      common::MetricsRegistry::Global().GetCounter("exec.pool.inline_slots");
  return c;
}

common::Counter* GroupsCounter() {
  static common::Counter* c =
      common::MetricsRegistry::Global().GetCounter("exec.pool.groups");
  return c;
}

// Size Global() uses when ConfigureGlobal was never called: SIZE_MAX
// sentinel = "derive from hardware_concurrency".
std::atomic<size_t> g_global_workers{static_cast<size_t>(-1)};

}  // namespace

// One ParallelFor invocation. Slots are claimed from `claimed` (values
// >= slots are overflow no-ops: more claimants than work); `finished`
// counts completed fn runs and is the caller's wait condition. The group
// outlives the call only through worker-held shared_ptrs whose remaining
// actions touch nothing but `claimed` and the pool queue.
struct WorkerPool::Group {
  const std::function<void(size_t)>* fn = nullptr;
  size_t slots = 0;
  std::atomic<size_t> claimed{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t finished = 0;  // guarded by mu
};

WorkerPool::WorkerPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::ConfigureGlobal(size_t workers) {
  size_t expected = static_cast<size_t>(-1);
  g_global_workers.compare_exchange_strong(expected, workers);
}

WorkerPool* WorkerPool::Global() {
  // Intentionally leaked: the pool must outlive every static whose
  // destructor might still execute a query, and worker threads must not
  // race process teardown.
  static WorkerPool* pool = [] {
    size_t n = g_global_workers.load();
    if (n == static_cast<size_t>(-1)) {
      unsigned hw = std::thread::hardware_concurrency();
      n = hw >= 2 ? static_cast<size_t>(hw) - 1 : 0;
    }
    return new WorkerPool(n);
  }();
  return pool;
}

size_t WorkerPool::AdmitDegree(size_t requested) const {
  // Fair share of pool threads across concurrent groups (this query's
  // group is not registered yet, hence +1), plus the caller itself.
  size_t others = active_groups_.load(std::memory_order_relaxed);
  size_t share = threads_.empty() ? 0 : threads_.size() / (others + 1);
  size_t degree = share + 1;
  if (requested > 0) degree = std::min(degree, requested);
  return std::max<size_t>(degree, 1);
}

void WorkerPool::ParallelFor(size_t slots,
                             const std::function<void(size_t)>& fn) {
  if (slots == 0) return;
  if (slots == 1 || threads_.empty()) {
    // Serial: nothing to hand to the pool (or no pool to hand it to).
    for (size_t s = 0; s < slots; ++s) fn(s);
    return;
  }
  GroupsCounter()->Inc();
  auto group = std::make_shared<Group>();
  group->fn = &fn;
  group->slots = slots;
  active_groups_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(group);
  }
  work_cv_.notify_all();

  // Caller-runs: claim slots alongside the workers until none remain.
  for (;;) {
    size_t s = group->claimed.fetch_add(1, std::memory_order_relaxed);
    if (s >= slots) break;
    fn(s);
    InlineSlotsCounter()->Inc();
    {
      std::lock_guard<std::mutex> lock(group->mu);
      ++group->finished;
    }
    group->done_cv.notify_all();
  }
  // All slots are claimed; retire the group from the pool queue so idle
  // workers stop inspecting it.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(queue_.begin(), queue_.end(), group);
    if (it != queue_.end()) queue_.erase(it);
  }
  // Wait for slots claimed by pool workers to finish executing.
  {
    std::unique_lock<std::mutex> lock(group->mu);
    group->done_cv.wait(lock, [&] { return group->finished == slots; });
  }
  active_groups_.fetch_sub(1, std::memory_order_relaxed);
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Group> group;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      group = queue_.front();
    }
    size_t s = group->claimed.fetch_add(1, std::memory_order_relaxed);
    if (s >= group->slots) {
      // Overflow claim: the group is fully claimed; drop it from the
      // queue (if the caller has not already) and look for other work.
      std::lock_guard<std::mutex> lock(mu_);
      if (!queue_.empty() && queue_.front() == group) queue_.pop_front();
      continue;
    }
    if (s + 1 == group->slots) {
      // Took the last slot: further claims are pointless, dequeue now so
      // sibling workers move on to the next group immediately.
      std::lock_guard<std::mutex> lock(mu_);
      if (!queue_.empty() && queue_.front() == group) queue_.pop_front();
    }
    (*group->fn)(s);
    PoolTasksCounter()->Inc();
    {
      std::lock_guard<std::mutex> lock(group->mu);
      ++group->finished;
    }
    group->done_cv.notify_all();
  }
}

}  // namespace xomatiq::exec
