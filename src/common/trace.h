#ifndef XOMATIQ_COMMON_TRACE_H_
#define XOMATIQ_COMMON_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"

namespace xomatiq::common {

// Per-query tree of named, timed spans.
//
// A Trace is installed for the current thread with TraceScope; while one is
// installed, every TraceSpan constructed on that thread records a span
// whose parent is the innermost open span. With no trace installed,
// TraceSpan is a single thread-local pointer test — cheap enough to leave
// in release hot paths. Worker threads spawned inside a span do not
// inherit the trace (their work is accounted through operator stats /
// metrics instead), so recorded thread ids always name threads that
// explicitly entered the trace.
class Trace {
 public:
  struct Span {
    uint32_t id = 0;
    uint32_t parent = 0;  // 0 = root (span ids start at 1)
    std::string name;
    uint64_t start_ns = 0;  // relative to the trace origin
    uint64_t duration_ns = 0;
    uint64_t thread_id = 0;  // hashed std::thread::id
  };

  Trace();

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  // Opens a span; returns its id. Thread-safe.
  uint32_t BeginSpan(std::string_view name);
  // Closes the span `id` (records its duration). Thread-safe.
  void EndSpan(uint32_t id);

  // Snapshot of all spans recorded so far (open spans have duration 0).
  std::vector<Span> spans() const;

  // Span names in begin order — the golden-test view of a pipeline.
  std::vector<std::string> SpanNames() const;

  // Cross-process correlation id (0 = unset). The server tags a request
  // trace with the id the client put on the wire, so the two Chrome dumps
  // can be stitched into one timeline (see MergeChromeTraceJson).
  void set_trace_id(uint64_t id) { trace_id_.store(id, std::memory_order_relaxed); }
  uint64_t trace_id() const { return trace_id_.load(std::memory_order_relaxed); }

  // Chrome trace_event JSON ({"traceId":"...","traceEvents":[...]}),
  // loadable in chrome://tracing or Perfetto. Timestamps/durations in
  // microseconds. `pid` names the emitting process track (convention:
  // 1 = server, 2 = client), so merged dumps keep distinct rows.
  std::string ToChromeJson(int pid = 1) const;

  // Trace installed for the current thread (nullptr when none).
  static Trace* Current();

 private:
  friend class TraceScope;
  static void SetCurrent(Trace* trace);

  mutable std::mutex mu_;
  std::vector<Span> spans_;
  uint64_t origin_ns_ = 0;
  std::atomic<uint64_t> trace_id_{0};
};

// Splices two ToChromeJson dumps (e.g. client- and server-side views of
// one request) into a single {"traceId","traceEvents"} document. Inputs
// must be in the exact shape ToChromeJson emits; an input with no events
// contributes nothing. The result's traceId is the first nonzero one.
std::string MergeChromeTraceJson(const std::string& a, const std::string& b);

// RAII install of `trace` as the current thread's trace; restores the
// previous one (traces nest) on destruction.
class TraceScope {
 public:
  explicit TraceScope(Trace* trace) : prev_(Trace::Current()) {
    Trace::SetCurrent(trace);
  }
  ~TraceScope() { Trace::SetCurrent(prev_); }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Trace* prev_;
};

// RAII span on the current thread's trace; no-op when none is installed.
// Optionally mirrors the measured latency into a histogram so stage
// timings show up in the metrics snapshot even for untraced queries.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, Histogram* latency = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Trace* trace_;
  Histogram* latency_;
  uint32_t id_ = 0;
  uint64_t start_ns_ = 0;
};

}  // namespace xomatiq::common

#endif  // XOMATIQ_COMMON_TRACE_H_
