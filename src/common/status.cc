#include "common/status.h"

namespace xomatiq::common {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kReadOnly:
      return "ReadOnly";
    case StatusCode::kLagging:
      return "Lagging";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xomatiq::common
