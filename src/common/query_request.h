#ifndef XOMATIQ_COMMON_QUERY_REQUEST_H_
#define XOMATIQ_COMMON_QUERY_REQUEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/query_options.h"

namespace xomatiq::common {

// What kind of query QueryRequest::text holds and how its result is
// rendered. Mirrors the wire-level srv::RequestMode value-for-value so
// the server can cast across, without pulling protocol headers into the
// engine layers.
enum class QueryMode : uint8_t {
  kSql = 0,      // one SQL statement (SELECT/DML/DDL/EXPLAIN/STATS text)
  kXq = 1,       // XomatiQ FLWR query, rows result
  kXqXml = 2,    // XomatiQ FLWR query, re-tagged XML result
  kExplain = 3,  // XomatiQ query -> relational plans, text result
  kStats = 4,    // metrics snapshot, text result
  kPing = 5,     // liveness probe
};

inline std::string_view QueryModeName(QueryMode mode) {
  switch (mode) {
    case QueryMode::kSql:
      return "sql";
    case QueryMode::kXq:
      return "xq";
    case QueryMode::kXqXml:
      return "xq-xml";
    case QueryMode::kExplain:
      return "explain";
    case QueryMode::kStats:
      return "stats";
    case QueryMode::kPing:
      return "ping";
  }
  return "?";
}

// One query, fully described. The unified request struct every execution
// surface takes — cli::Client::Execute, srv::Session::Execute,
// sql::SqlEngine::Execute, xq::XomatiQ::Execute — replacing the
// (mode, text, options) parameter triples that used to grow a new
// overload per knob. New per-query fields land here once, and every
// layer picks up the plumbing for free.
struct QueryRequest {
  QueryMode mode = QueryMode::kSql;
  std::string text;
  QueryOptions options;
  // Snapshot read token (engine layers only; never carried on the wire —
  // the server's Session scopes snapshots per connection request). When
  // set, reads are evaluated at this committed epoch instead of the
  // engine acquiring its own snapshot. The CALLER must own a live
  // rel::Snapshot pinning the epoch for the whole call; the engine only
  // consumes the number. This is how one logical operation (a
  // multi-disjunct XomatiQ query, a session's statement sequence) reads
  // one consistent cut across several engine calls.
  std::optional<uint64_t> read_epoch;

  static QueryRequest Sql(std::string text, QueryOptions opts = {}) {
    return {QueryMode::kSql, std::move(text), opts, std::nullopt};
  }
  static QueryRequest Xq(std::string text, QueryOptions opts = {}) {
    return {QueryMode::kXq, std::move(text), opts, std::nullopt};
  }
};

}  // namespace xomatiq::common

#endif  // XOMATIQ_COMMON_QUERY_REQUEST_H_
