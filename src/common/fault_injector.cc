#include "common/fault_injector.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/string_util.h"

namespace xomatiq::common {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* fi = new FaultInjector();
    if (const char* env = std::getenv("XOMATIQ_FAULTS")) {
      Status s = fi->Configure(env);
      if (!s.ok()) {
        std::fprintf(stderr, "XOMATIQ_FAULTS ignored: %s\n",
                     s.ToString().c_str());
      }
    }
    return fi;
  }();
  return *injector;
}

void FaultInjector::Arm(const std::string& point, FaultConfig config) {
  std::lock_guard lock(mu_);
  Point& p = points_[point];
  if (!p.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  p.armed = true;
  p.calls = 0;
  p.fires = 0;
  p.rng = Rng(config.seed);
  p.config = std::move(config);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end() && it->second.armed) {
    it->second.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, p] : points_) {
    if (p.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  points_.clear();
}

Status FaultInjector::Check(std::string_view point) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return Status::OK();
  std::lock_guard lock(mu_);
  auto it = points_.find(std::string(point));
  if (it == points_.end() || !it->second.armed) return Status::OK();
  Point& p = it->second;
  ++p.calls;
  bool fire = false;
  switch (p.config.policy) {
    case FaultPolicy::kAlways:
      fire = true;
      break;
    case FaultPolicy::kNth:
      fire = p.calls == p.config.n;
      if (fire) {
        // One-shot: later calls succeed without re-arming.
        p.armed = false;
        armed_count_.fetch_sub(1, std::memory_order_relaxed);
      }
      break;
    case FaultPolicy::kEveryNth:
      fire = p.config.n > 0 && p.calls % p.config.n == 0;
      break;
    case FaultPolicy::kProbability:
      fire = p.rng.Bernoulli(p.config.probability);
      break;
  }
  if (!fire) return Status::OK();
  ++p.fires;
  std::string message = p.config.message.empty()
                            ? "fault injected at " + std::string(point)
                            : p.config.message;
  return Status(p.config.code, std::move(message));
}

uint64_t FaultInjector::calls(const std::string& point) const {
  std::lock_guard lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.calls;
}

uint64_t FaultInjector::fires(const std::string& point) const {
  std::lock_guard lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

namespace {

Result<StatusCode> ParseCode(std::string_view name) {
  if (name == "io") return StatusCode::kIoError;
  if (name == "corruption") return StatusCode::kCorruption;
  if (name == "timeout") return StatusCode::kTimeout;
  if (name == "overloaded") return StatusCode::kOverloaded;
  if (name == "internal") return StatusCode::kInternal;
  return Status::InvalidArgument("unknown fault code '" + std::string(name) +
                                 "'");
}

}  // namespace

Status FaultInjector::Configure(std::string_view spec) {
  for (const std::string& raw : Split(spec, ';')) {
    std::string_view entry = StripWhitespace(raw);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault entry missing '=': " +
                                     std::string(entry));
    }
    std::string point(StripWhitespace(entry.substr(0, eq)));
    if (point.empty()) {
      return Status::InvalidArgument("fault entry with empty point name: " +
                                     std::string(entry));
    }
    std::string_view body = StripWhitespace(entry.substr(eq + 1));
    FaultConfig config;
    size_t at = body.rfind('@');
    if (at != std::string_view::npos) {
      XQ_ASSIGN_OR_RETURN(config.code, ParseCode(body.substr(at + 1)));
      body = body.substr(0, at);
    }
    std::vector<std::string> parts = Split(body, ':');
    if (parts.empty()) {
      return Status::InvalidArgument("empty fault spec for " + point);
    }
    const std::string& kind = parts[0];
    auto num = [](const std::string& s, uint64_t* out) {
      std::optional<int64_t> v = ParseInt64(s);
      if (!v.has_value() || *v < 0) return false;
      *out = static_cast<uint64_t>(*v);
      return true;
    };
    if (kind == "always" && parts.size() == 1) {
      config.policy = FaultPolicy::kAlways;
    } else if (kind == "nth" && parts.size() == 2) {
      config.policy = FaultPolicy::kNth;
      if (!num(parts[1], &config.n) || config.n == 0) {
        return Status::InvalidArgument("bad nth count for " + point);
      }
    } else if (kind == "every" && parts.size() == 2) {
      config.policy = FaultPolicy::kEveryNth;
      if (!num(parts[1], &config.n) || config.n == 0) {
        return Status::InvalidArgument("bad every count for " + point);
      }
    } else if (kind == "prob" && (parts.size() == 2 || parts.size() == 3)) {
      config.policy = FaultPolicy::kProbability;
      std::optional<double> p = ParseDouble(parts[1]);
      if (!p.has_value() || *p < 0.0 || *p > 1.0) {
        return Status::InvalidArgument("bad probability for " + point);
      }
      config.probability = *p;
      if (parts.size() == 3 && !num(parts[2], &config.seed)) {
        return Status::InvalidArgument("bad seed for " + point);
      }
    } else {
      return Status::InvalidArgument("bad fault spec '" + std::string(body) +
                                     "' for " + point);
    }
    Arm(point, std::move(config));
  }
  return Status::OK();
}

}  // namespace xomatiq::common
