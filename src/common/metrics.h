#ifndef XOMATIQ_COMMON_METRICS_H_
#define XOMATIQ_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xomatiq::common {

// Process-wide observability primitives (zero external dependencies).
//
// Handles returned by MetricsRegistry are stable for the process lifetime,
// so hot paths resolve a metric once (static local) and then touch a single
// relaxed atomic. Counters and gauges are padded to a cache line so the
// parallel-scan workers incrementing neighbouring metrics never share a
// line. Naming scheme: dot-separated `<layer>.<component>.<what>`, e.g.
// `rel.wal.bytes_appended`, `sql.queries`, `xq.stage.translate` (see
// DESIGN.md "Observability").

inline constexpr size_t kCacheLineSize = 64;

// Monotonically increasing event count.
struct alignas(kCacheLineSize) Counter {
  std::atomic<uint64_t> value{0};

  void Inc(uint64_t n = 1) { value.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value.load(std::memory_order_relaxed); }
  void Reset() { value.store(0, std::memory_order_relaxed); }
};

// Point-in-time signed level (table count, live rows, ...).
struct alignas(kCacheLineSize) Gauge {
  std::atomic<int64_t> value{0};

  void Set(int64_t v) { value.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value.load(std::memory_order_relaxed); }
  void Reset() { value.store(0, std::memory_order_relaxed); }
};

// Fixed-bucket latency histogram over nanosecond samples. Buckets are
// powers of two starting at 1us (<1us pools in bucket 0), so recording is
// a bit-scan plus one relaxed increment — no allocation, no locking.
class Histogram {
 public:
  // Bucket i holds samples with ns < kFirstBucketNs << i (last = +inf).
  static constexpr size_t kNumBuckets = 24;
  static constexpr uint64_t kFirstBucketNs = 1024;  // ~1us

  void Record(uint64_t ns) {
    buckets_[BucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t SumNs() const { return sum_ns_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Inclusive upper bound of bucket `i` in ns (UINT64_MAX for the last).
  static uint64_t BucketUpperNs(size_t i);

  // Estimated q-quantile (q in [0,1]) in ns: finds the bucket holding the
  // q-th ranked sample and interpolates linearly inside it, which over the
  // power-of-two bucket bounds is log-linear interpolation. Error is
  // bounded by one bucket width (a factor of 2). 0 when empty.
  double Quantile(double q) const;

  // The same estimator over an already-copied bucket array (what
  // MetricsSnapshot holds, so quantiles can be computed off a snapshot
  // without re-reading live atomics).
  static double QuantileFromBuckets(const std::vector<uint64_t>& buckets,
                                    double q);

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
  }

  static size_t BucketFor(uint64_t ns);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

// Value-copy of the registry at one instant, renderable as Prometheus
// exposition text or JSON (the benches embed the JSON form).
struct MetricsSnapshot {
  struct HistogramSample {
    std::string name;
    uint64_t count = 0;
    uint64_t sum_ns = 0;
    std::vector<uint64_t> buckets;  // cumulative-free per-bucket counts

    // Estimated quantile in ns (see Histogram::Quantile).
    double Quantile(double q) const {
      return Histogram::QuantileFromBuckets(buckets, q);
    }
  };

  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSample> histograms;

  // Prometheus text exposition: names sanitized to the metric-name charset
  // (dots and other illegal characters mapped to underscores, a leading
  // digit prefixed), every family preceded by `# HELP` (the original
  // dotted name, escaped) and `# TYPE`. Histograms are emitted as
  // cumulative `_bucket` lines with `le` labels in microseconds plus
  // `_sum`/`_count`, and additionally as a `<name>_quantiles` summary
  // carrying the estimated p50/p95/p99 (ns). Label values are escaped per
  // the exposition format (backslash, quote, newline).
  std::string ToPrometheusText() const;

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  // Histogram entries include estimated "p50_ns"/"p95_ns"/"p99_ns".
  std::string ToJson() const;
};

// Exact percentile over raw samples: sorts a copy and indexes at
// p * (n - 1) (the benches' historical definition, now shared here so
// bench_server / bench_util and the ops plane agree on the math).
// p in [0,1]; 0 for an empty sample set.
double PercentileOfSamples(const std::vector<double>& samples, double p);

// Global name -> metric table. Registration takes a mutex; returned
// pointers never move or expire, so steady-state access is lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric (names stay registered). Backs the
  // engine's RESET STATS command.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*, std::less<>> counter_names_;
  std::map<std::string, Gauge*, std::less<>> gauge_names_;
  std::map<std::string, Histogram*, std::less<>> histogram_names_;
};

// RAII latency sample: records elapsed wall time into `hist` on scope
// exit. Tolerates a null histogram (no-op) so call sites can gate on a
// config without branching at every exit path.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* hist)
      : hist_(hist),
        start_(hist == nullptr ? std::chrono::steady_clock::time_point{}
                               : std::chrono::steady_clock::now()) {}
  ~ScopedLatency() { Stop(); }

  // Records the sample now and disarms the destructor; lets a call site
  // end the measured region before the enclosing scope does.
  void Stop() {
    if (hist_ == nullptr) return;
    hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
    hist_ = nullptr;
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xomatiq::common

#endif  // XOMATIQ_COMMON_METRICS_H_
