#ifndef XOMATIQ_COMMON_STRING_UTIL_H_
#define XOMATIQ_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xomatiq::common {

// Returns `s` with ASCII whitespace removed from both ends.
std::string_view StripWhitespace(std::string_view s);

// Returns `s` with ASCII whitespace removed from the right end only.
std::string_view StripTrailingWhitespace(std::string_view s);

// Splits `s` on `delim`; empty pieces are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

// Splits `s` on runs of ASCII whitespace; empty pieces are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

// ASCII lowercase copy of `s`.
std::string AsciiToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Case-insensitive ASCII substring search.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

// Parses an integer / double; rejects trailing garbage.
std::optional<int64_t> ParseInt64(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

// True when the entire string parses as a number (int or real). Used by the
// shredder to route leaf values to the numeric table (paper §2.2: "string
// and numeric data").
bool LooksNumeric(std::string_view s);

// Tokenizes text into lowercase alphanumeric words for keyword indexing.
// Characters outside [A-Za-z0-9] are treated as separators, except that
// '.' and '-' are kept inside tokens when flanked by alphanumerics so that
// EC numbers ("1.14.17.3") and accessions ("AMD-BOVIN") index as units.
std::vector<std::string> TokenizeKeywords(std::string_view text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Appends `s` to `*out` as a quoted JSON string literal, escaping quotes,
// backslashes and control characters. One escaper shared by every
// hand-rolled JSON emitter (traces, query log, admin endpoints).
void AppendJsonString(std::string* out, std::string_view s);

}  // namespace xomatiq::common

#endif  // XOMATIQ_COMMON_STRING_UTIL_H_
