#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <thread>

namespace xomatiq::common {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t ThisThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

thread_local Trace* g_current_trace = nullptr;
// Innermost open span per thread. Only meaningful while the owning trace
// is current; TraceScope swaps traces only between complete span trees in
// practice (one query = one scope), so a plain stack suffices.
thread_local std::vector<uint32_t> g_span_stack;

// Minimal JSON string escaping for span names.
void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

Trace::Trace() : origin_ns_(NowNs()) {}

Trace* Trace::Current() { return g_current_trace; }

void Trace::SetCurrent(Trace* trace) { g_current_trace = trace; }

uint32_t Trace::BeginSpan(std::string_view name) {
  uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = static_cast<uint32_t>(spans_.size() + 1);
  span.parent = g_span_stack.empty() ? 0 : g_span_stack.back();
  span.name = std::string(name);
  span.start_ns = now - origin_ns_;
  span.thread_id = ThisThreadId();
  spans_.push_back(std::move(span));
  g_span_stack.push_back(spans_.back().id);
  return spans_.back().id;
}

void Trace::EndSpan(uint32_t id) {
  uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  span.duration_ns = (now - origin_ns_) - span.start_ns;
  // Pop through any abandoned children (e.g. early returns that skipped
  // an explicit end) so the stack never wedges.
  while (!g_span_stack.empty()) {
    uint32_t top = g_span_stack.back();
    g_span_stack.pop_back();
    if (top == id) break;
  }
}

std::vector<Trace::Span> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<std::string> Trace::SpanNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(spans_.size());
  for (const Span& s : spans_) names.push_back(s.name);
  return names;
}

std::string Trace::ToChromeJson() const {
  std::vector<Span> snapshot = spans();
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const Span& s = snapshot[i];
    if (i > 0) out += ",";
    out += "{\"name\":";
    AppendJsonString(&out, s.name);
    char buf[160];
    // Complete ("X") events; ts/dur are microseconds per the spec.
    std::snprintf(buf, sizeof buf,
                  ",\"ph\":\"X\",\"pid\":1,\"tid\":%llu,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"args\":{\"id\":%u,\"parent\":%u}}",
                  static_cast<unsigned long long>(s.thread_id % 1000000),
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.duration_ns) / 1e3, s.id, s.parent);
    out += buf;
  }
  out += "]}";
  return out;
}

TraceSpan::TraceSpan(std::string_view name, Histogram* latency)
    : trace_(Trace::Current()), latency_(latency) {
  if (trace_ == nullptr && latency_ == nullptr) return;
  if (latency_ != nullptr) start_ns_ = NowNs();
  if (trace_ != nullptr) id_ = trace_->BeginSpan(name);
}

TraceSpan::~TraceSpan() {
  if (trace_ != nullptr) trace_->EndSpan(id_);
  if (latency_ != nullptr) latency_->Record(NowNs() - start_ns_);
}

}  // namespace xomatiq::common
