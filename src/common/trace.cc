#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/string_util.h"

namespace xomatiq::common {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t ThisThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

thread_local Trace* g_current_trace = nullptr;
// Innermost open span per thread. Only meaningful while the owning trace
// is current; TraceScope swaps traces only between complete span trees in
// practice (one query = one scope), so a plain stack suffices.
thread_local std::vector<uint32_t> g_span_stack;

// The bracketed contents of a ToChromeJson dump's traceEvents array
// (empty view when absent or empty).
std::string_view EventsOf(const std::string& json) {
  static constexpr char kKey[] = "\"traceEvents\":[";
  size_t start = json.find(kKey);
  if (start == std::string::npos) return {};
  start += sizeof(kKey) - 1;
  size_t end = json.rfind(']');
  if (end == std::string::npos || end < start) return {};
  return std::string_view(json).substr(start, end - start);
}

// The traceId field of a ToChromeJson dump ("" when absent/zero).
std::string TraceIdOf(const std::string& json) {
  static constexpr char kKey[] = "\"traceId\":\"";
  size_t start = json.find(kKey);
  if (start == std::string::npos) return "";
  start += sizeof(kKey) - 1;
  size_t end = json.find('"', start);
  if (end == std::string::npos) return "";
  std::string id = json.substr(start, end - start);
  return id == std::string(16, '0') ? "" : id;
}

}  // namespace

Trace::Trace() : origin_ns_(NowNs()) {}

Trace* Trace::Current() { return g_current_trace; }

void Trace::SetCurrent(Trace* trace) { g_current_trace = trace; }

uint32_t Trace::BeginSpan(std::string_view name) {
  uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = static_cast<uint32_t>(spans_.size() + 1);
  span.parent = g_span_stack.empty() ? 0 : g_span_stack.back();
  span.name = std::string(name);
  span.start_ns = now - origin_ns_;
  span.thread_id = ThisThreadId();
  spans_.push_back(std::move(span));
  g_span_stack.push_back(spans_.back().id);
  return spans_.back().id;
}

void Trace::EndSpan(uint32_t id) {
  uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  span.duration_ns = (now - origin_ns_) - span.start_ns;
  // Pop through any abandoned children (e.g. early returns that skipped
  // an explicit end) so the stack never wedges.
  while (!g_span_stack.empty()) {
    uint32_t top = g_span_stack.back();
    g_span_stack.pop_back();
    if (top == id) break;
  }
}

std::vector<Trace::Span> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<std::string> Trace::SpanNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(spans_.size());
  for (const Span& s : spans_) names.push_back(s.name);
  return names;
}

std::string Trace::ToChromeJson(int pid) const {
  std::vector<Span> snapshot = spans();
  char idbuf[24];
  std::snprintf(idbuf, sizeof idbuf, "%016llx",
                static_cast<unsigned long long>(trace_id()));
  std::string out = "{\"traceId\":\"";
  out += idbuf;
  out += "\",\"traceEvents\":[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const Span& s = snapshot[i];
    if (i > 0) out += ",";
    out += "{\"name\":";
    AppendJsonString(&out, s.name);
    char buf[160];
    // Complete ("X") events; ts/dur are microseconds per the spec.
    std::snprintf(buf, sizeof buf,
                  ",\"ph\":\"X\",\"pid\":%d,\"tid\":%llu,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"args\":{\"id\":%u,\"parent\":%u}}",
                  pid, static_cast<unsigned long long>(s.thread_id % 1000000),
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.duration_ns) / 1e3, s.id, s.parent);
    out += buf;
  }
  out += "]}";
  return out;
}

std::string MergeChromeTraceJson(const std::string& a, const std::string& b) {
  std::string_view ea = EventsOf(a);
  std::string_view eb = EventsOf(b);
  std::string id = TraceIdOf(a);
  if (id.empty()) id = TraceIdOf(b);
  if (id.empty()) id = std::string(16, '0');
  std::string out = "{\"traceId\":\"" + id + "\",\"traceEvents\":[";
  out += ea;
  if (!ea.empty() && !eb.empty()) out += ",";
  out += eb;
  out += "]}";
  return out;
}

TraceSpan::TraceSpan(std::string_view name, Histogram* latency)
    : trace_(Trace::Current()), latency_(latency) {
  if (trace_ == nullptr && latency_ == nullptr) return;
  if (latency_ != nullptr) start_ns_ = NowNs();
  if (trace_ != nullptr) id_ = trace_->BeginSpan(name);
}

TraceSpan::~TraceSpan() {
  if (trace_ != nullptr) trace_->EndSpan(id_);
  if (latency_ != nullptr) latency_->Record(NowNs() - start_ns_);
}

}  // namespace xomatiq::common
