#ifndef XOMATIQ_COMMON_RNG_H_
#define XOMATIQ_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace xomatiq::common {

// Deterministic pseudo-random generator (SplitMix64 core). All synthetic
// corpora are generated from explicit seeds so experiments are replayable.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Random element of `items` (must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Uniform(items.size())];
  }

  // Zipf-like skewed index in [0, n): rank r drawn with weight 1/(r+1).
  // Cheap approximation adequate for workload skew knobs.
  uint64_t Zipf(uint64_t n) {
    double u = NextDouble();
    // Inverse CDF of a 1/x density over [1, n+1).
    double v = std::exp(u * std::log(static_cast<double>(n) + 1.0));
    uint64_t r = static_cast<uint64_t>(v) - 1;
    return r >= n ? n - 1 : r;
  }

 private:
  uint64_t state_;
};

}  // namespace xomatiq::common

#endif  // XOMATIQ_COMMON_RNG_H_
