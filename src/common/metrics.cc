#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace xomatiq::common {

namespace {

// Dots and other non-identifier characters are invalid in Prometheus
// metric names; map them to underscores. A metric name must not start
// with a digit, so such names get a leading underscore.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  if (out.empty()) out = "_";
  return out;
}

// Label-value / HELP-text escaping per the exposition format: backslash,
// double quote and newline must be escaped (HELP additionally has no
// quoting, but the same escapes are valid there).
std::string PrometheusEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  *out += buf;
}

}  // namespace

size_t Histogram::BucketFor(uint64_t ns) {
  if (ns < kFirstBucketNs) return 0;
  // Index of the highest set bit above the first-bucket threshold.
  size_t bucket = 0;
  uint64_t bound = kFirstBucketNs;
  while (bucket + 1 < kNumBuckets && ns >= bound) {
    ++bucket;
    bound <<= 1;
  }
  return bucket;
}

uint64_t Histogram::BucketUpperNs(size_t i) {
  if (i + 1 >= kNumBuckets) return UINT64_MAX;
  return kFirstBucketNs << i;
}

double Histogram::QuantileFromBuckets(const std::vector<uint64_t>& buckets,
                                      double q) {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t count = 0;
  for (uint64_t b : buckets) count += b;
  if (count == 0) return 0;
  // Rank of the wanted sample, 1-based; q = 0 asks for the first sample.
  double rank = std::max(1.0, q * static_cast<double>(count));
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(cum + buckets[i]) >= rank) {
      double lower =
          i == 0 ? 0.0 : static_cast<double>(BucketUpperNs(i - 1));
      // The overflow bucket has no real upper bound; assume one more
      // doubling so its interpolation stays finite.
      double upper = i + 1 >= kNumBuckets
                         ? 2.0 * static_cast<double>(BucketUpperNs(i - 1))
                         : static_cast<double>(BucketUpperNs(i));
      double frac = (rank - static_cast<double>(cum)) /
                    static_cast<double>(buckets[i]);
      return lower + frac * (upper - lower);
    }
    cum += buckets[i];
  }
  return 0;
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> buckets(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] = BucketCount(i);
  return QuantileFromBuckets(buckets, q);
}

double PercentileOfSamples(const std::vector<double>& samples, double p) {
  if (samples.empty()) return 0;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

MetricsRegistry& MetricsRegistry::Global() {
  static auto* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_names_.find(name);
  if (it != counter_names_.end()) return it->second;
  Counter* c = &counters_.emplace_back();
  counter_names_.emplace(std::string(name), c);
  return c;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_names_.find(name);
  if (it != gauge_names_.end()) return it->second;
  Gauge* g = &gauges_.emplace_back();
  gauge_names_.emplace(std::string(name), g);
  return g;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_names_.find(name);
  if (it != histogram_names_.end()) return it->second;
  Histogram* h = &histograms_.emplace_back();
  histogram_names_.emplace(std::string(name), h);
  return h;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (const auto& [name, c] : counter_names_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauge_names_.size());
  for (const auto& [name, g] : gauge_names_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histogram_names_.size());
  for (const auto& [name, h] : histogram_names_) {
    MetricsSnapshot::HistogramSample s;
    s.name = name;
    s.count = h->Count();
    s.sum_ns = h->SumNs();
    s.buckets.resize(Histogram::kNumBuckets);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      s.buckets[i] = h->BucketCount(i);
    }
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counters_) c.Reset();
  for (auto& g : gauges_) g.Reset();
  for (auto& h : histograms_) h.Reset();
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  auto help = [&](const std::string& pname, const std::string& dotted,
                  const char* type) {
    out += "# HELP " + pname + " " + PrometheusEscape(dotted) + "\n";
    out += "# TYPE " + pname + " ";
    out += type;
    out += "\n";
  };
  for (const auto& [name, value] : counters) {
    std::string pname = PrometheusName(name);
    help(pname, name, "counter");
    out += pname + " ";
    AppendU64(&out, value);
    out += "\n";
  }
  for (const auto& [name, value] : gauges) {
    std::string pname = PrometheusName(name);
    help(pname, name, "gauge");
    out += pname + " ";
    AppendI64(&out, value);
    out += "\n";
  }
  for (const HistogramSample& h : histograms) {
    std::string pname = PrometheusName(h.name);
    help(pname, h.name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      out += pname + "_bucket{le=\"";
      uint64_t upper = Histogram::BucketUpperNs(i);
      if (upper == UINT64_MAX) {
        out += "+Inf";
      } else {
        // Label in microseconds to keep the text humane.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f",
                      static_cast<double>(upper) / 1e3);
        out += PrometheusEscape(buf);
      }
      out += "\"} ";
      AppendU64(&out, cumulative);
      out += "\n";
    }
    out += pname + "_sum ";
    AppendU64(&out, h.sum_ns);
    out += "\n" + pname + "_count ";
    AppendU64(&out, h.count);
    out += "\n";
    // Estimated quantiles as a sibling summary family (a histogram family
    // must not carry quantile samples, so these get their own name).
    std::string qname = pname + "_quantiles";
    help(qname, h.name + " estimated quantiles (ns)", "summary");
    for (double q : {0.5, 0.95, 0.99}) {
      char label[16];
      std::snprintf(label, sizeof label, "%g", q);
      char value[40];
      std::snprintf(value, sizeof value, "%.1f", h.Quantile(q));
      out += qname + "{quantile=\"" + PrometheusEscape(label) + "\"} ";
      out += value;
      out += "\n";
    }
    out += qname + "_sum ";
    AppendU64(&out, h.sum_ns);
    out += "\n" + qname + "_count ";
    AppendU64(&out, h.count);
    out += "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + counters[i].first + "\":";
    AppendU64(&out, counters[i].second);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + gauges[i].first + "\":";
    AppendI64(&out, gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) out += ",";
    const HistogramSample& h = histograms[i];
    out += "\"" + h.name + "\":{\"count\":";
    AppendU64(&out, h.count);
    out += ",\"sum_ns\":";
    AppendU64(&out, h.sum_ns);
    char quants[96];
    std::snprintf(quants, sizeof quants,
                  ",\"p50_ns\":%.1f,\"p95_ns\":%.1f,\"p99_ns\":%.1f",
                  h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99));
    out += quants;
    out += ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ",";
      AppendU64(&out, h.buckets[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace xomatiq::common
