#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace xomatiq::common {

namespace {

// Dots and other non-identifier characters are invalid in Prometheus
// metric names; map them to underscores.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  *out += buf;
}

}  // namespace

size_t Histogram::BucketFor(uint64_t ns) {
  if (ns < kFirstBucketNs) return 0;
  // Index of the highest set bit above the first-bucket threshold.
  size_t bucket = 0;
  uint64_t bound = kFirstBucketNs;
  while (bucket + 1 < kNumBuckets && ns >= bound) {
    ++bucket;
    bound <<= 1;
  }
  return bucket;
}

uint64_t Histogram::BucketUpperNs(size_t i) {
  if (i + 1 >= kNumBuckets) return UINT64_MAX;
  return kFirstBucketNs << i;
}

MetricsRegistry& MetricsRegistry::Global() {
  static auto* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_names_.find(name);
  if (it != counter_names_.end()) return it->second;
  Counter* c = &counters_.emplace_back();
  counter_names_.emplace(std::string(name), c);
  return c;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_names_.find(name);
  if (it != gauge_names_.end()) return it->second;
  Gauge* g = &gauges_.emplace_back();
  gauge_names_.emplace(std::string(name), g);
  return g;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_names_.find(name);
  if (it != histogram_names_.end()) return it->second;
  Histogram* h = &histograms_.emplace_back();
  histogram_names_.emplace(std::string(name), h);
  return h;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (const auto& [name, c] : counter_names_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauge_names_.size());
  for (const auto& [name, g] : gauge_names_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histogram_names_.size());
  for (const auto& [name, h] : histogram_names_) {
    MetricsSnapshot::HistogramSample s;
    s.name = name;
    s.count = h->Count();
    s.sum_ns = h->SumNs();
    s.buckets.resize(Histogram::kNumBuckets);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      s.buckets[i] = h->BucketCount(i);
    }
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counters_) c.Reset();
  for (auto& g : gauges_) g.Reset();
  for (auto& h : histograms_) h.Reset();
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n" + pname + " ";
    AppendU64(&out, value);
    out += "\n";
  }
  for (const auto& [name, value] : gauges) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n" + pname + " ";
    AppendI64(&out, value);
    out += "\n";
  }
  for (const HistogramSample& h : histograms) {
    std::string pname = PrometheusName(h.name);
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      out += pname + "_bucket{le=\"";
      uint64_t upper = Histogram::BucketUpperNs(i);
      if (upper == UINT64_MAX) {
        out += "+Inf";
      } else {
        // Label in microseconds to keep the text humane.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f",
                      static_cast<double>(upper) / 1e3);
        out += buf;
      }
      out += "\"} ";
      AppendU64(&out, cumulative);
      out += "\n";
    }
    out += pname + "_sum ";
    AppendU64(&out, h.sum_ns);
    out += "\n" + pname + "_count ";
    AppendU64(&out, h.count);
    out += "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + counters[i].first + "\":";
    AppendU64(&out, counters[i].second);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + gauges[i].first + "\":";
    AppendI64(&out, gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) out += ",";
    const HistogramSample& h = histograms[i];
    out += "\"" + h.name + "\":{\"count\":";
    AppendU64(&out, h.count);
    out += ",\"sum_ns\":";
    AppendU64(&out, h.sum_ns);
    out += ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ",";
      AppendU64(&out, h.buckets[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace xomatiq::common
