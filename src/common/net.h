#ifndef XOMATIQ_COMMON_NET_H_
#define XOMATIQ_COMMON_NET_H_

#include <string_view>

#include "common/result.h"

namespace xomatiq::net {

// Writes all of `data` to `fd`, looping over short writes and retrying
// EINTR. Sockets are written with send(MSG_NOSIGNAL) so a dead peer
// surfaces as an IoError carrying EPIPE instead of killing the process
// with SIGPIPE; non-socket fds (pipes in tests) transparently fall back
// to write(2). Every long-lived stream in the repo — query-service
// response frames, HTTP admin replies, the replication ship path — goes
// through here so the EPIPE/short-write handling exists exactly once.
common::Status WriteAll(int fd, std::string_view data);

}  // namespace xomatiq::net

#endif  // XOMATIQ_COMMON_NET_H_
