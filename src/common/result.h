#ifndef XOMATIQ_COMMON_RESULT_H_
#define XOMATIQ_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace xomatiq::common {

// Result<T> carries either a value of type T or a non-OK Status.
// Moved-from and error Results hold no value; callers must check ok()
// (or use XQ_ASSIGN_OR_RETURN) before dereferencing.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {   // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when this Result is an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace xomatiq::common

#endif  // XOMATIQ_COMMON_RESULT_H_
