#ifndef XOMATIQ_COMMON_BACKOFF_H_
#define XOMATIQ_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/rng.h"

namespace xomatiq::common {

// Resilience knobs shared by the client's ConnectWithRetry /
// ExecuteWithRetry and the replica applier's reconnect loop. Backoff is
// exponential (initial_backoff_ms doubling up to max_backoff_ms) with
// seeded jitter in [0.5, 1.0) of the nominal delay, all capped by an
// overall deadline — a dead server costs at most deadline_ms, not
// max_attempts full timeouts.
struct RetryPolicy {
  int max_attempts = 4;
  uint32_t initial_backoff_ms = 10;
  uint32_t max_backoff_ms = 1000;
  // Overall budget across every attempt and backoff sleep (0 = no cap).
  uint32_t deadline_ms = 5000;
  // Jitter rng seed; a fixed seed gives a replayable retry schedule.
  uint64_t seed = 42;
};

// Backoff schedule over a RetryPolicy. Returns false from
// SleepBeforeRetry when the policy's deadline would be exceeded by
// waiting. Callers that must stay interruptible (the replica applier
// waits on a condition variable instead of sleeping) use NextDelay and
// wait however they like.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy)
      : policy_(policy),
        rng_(policy.seed),
        deadline_(policy.deadline_ms == 0
                      ? std::chrono::steady_clock::time_point::max()
                      : std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(policy.deadline_ms)) {}

  bool Expired() const { return std::chrono::steady_clock::now() >= deadline_; }

  // The next jittered exponential delay for retry number `attempt`
  // (0-based). Jitter in [0.5, 1.0) de-synchronizes clients retrying
  // after one shared failure (the thundering-herd guard).
  std::chrono::milliseconds NextDelay(int attempt) {
    uint64_t nominal = policy_.initial_backoff_ms;
    for (int i = 0; i < attempt && nominal < policy_.max_backoff_ms; ++i) {
      nominal *= 2;
    }
    nominal = std::min<uint64_t>(nominal, policy_.max_backoff_ms);
    return std::chrono::milliseconds(static_cast<uint64_t>(
        static_cast<double>(nominal) * (0.5 + 0.5 * rng_.NextDouble())));
  }

  // Sleeps for the next jittered exponential delay; false when the
  // deadline cuts the wait (nothing further should be attempted).
  bool SleepBeforeRetry(int attempt) {
    auto delay = NextDelay(attempt);
    auto now = std::chrono::steady_clock::now();
    if (now + delay >= deadline_) return false;
    std::this_thread::sleep_for(delay);
    return true;
  }

 private:
  const RetryPolicy policy_;
  Rng rng_;
  const std::chrono::steady_clock::time_point deadline_;
};

}  // namespace xomatiq::common

#endif  // XOMATIQ_COMMON_BACKOFF_H_
