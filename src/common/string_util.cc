#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace xomatiq::common {

namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsAsciiSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string_view StripTrailingWhitespace(std::string_view s) {
  size_t end = s.size();
  while (end > 0 && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(0, end);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsAsciiSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsAsciiSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) {
      return true;
    }
  }
  return false;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  // strtod accepts "nan"/"inf"; neither has a place in a total value
  // order (NaN would compare equal to everything and corrupt indexes).
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

bool LooksNumeric(std::string_view s) {
  return ParseDouble(s).has_value();
}

std::vector<std::string> TokenizeKeywords(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    bool keep = IsWordChar(c);
    if (!keep && (c == '.' || c == '-')) {
      // Keep '.'/'-' only when flanked by word characters, so "1.14.17.3"
      // stays one token but a sentence-ending period does not.
      keep = !current.empty() && i + 1 < text.size() && IsWordChar(text[i + 1]);
    }
    if (keep) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace xomatiq::common
