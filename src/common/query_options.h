#ifndef XOMATIQ_COMMON_QUERY_OPTIONS_H_
#define XOMATIQ_COMMON_QUERY_OPTIONS_H_

#include <chrono>
#include <cstdint>

namespace xomatiq::common {

// Absolute per-query deadline on the steady clock. Default-constructed
// (or After(0)) means "no deadline". Facade entry points (SqlEngine,
// XomatiQ) convert a relative QueryOptions::deadline_ms into one Deadline
// once, so a multi-statement query shares a single budget instead of
// restarting the clock per statement.
class Deadline {
 public:
  Deadline() = default;

  static Deadline After(uint32_t ms) {
    Deadline d;
    if (ms > 0) {
      d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
      d.set_ = true;
    }
    return d;
  }

  bool set() const { return set_; }
  bool expired() const {
    return set_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  std::chrono::steady_clock::time_point at_{};
  bool set_ = false;
};

// Per-query execution options, plumbed from the wire protocol down to the
// engine. Collapses what used to be growing positional/bool parameters on
// XomatiQ::Execute / SqlEngine entry points into one struct; new knobs
// land here without another signature change.
struct QueryOptions {
  // Cancel the query with a kTimeout status once this many milliseconds
  // have elapsed (0 = no deadline). Checked cooperatively at batch
  // boundaries, so cancellation latency is one batch, not one row.
  uint32_t deadline_ms = 0;
  // Record a per-query span tree (server: retrievable as Chrome JSON via
  // QueryService::LastTraceJson for the diagnosing operator).
  bool trace = false;
  // Skip the server result cache for this query: neither probe nor
  // install. Reads that must observe the latest warehouse state use this.
  bool bypass_cache = false;
  // Client-generated cross-process correlation id (0 = none). Carried on
  // the wire behind kFeatureTraceContext; the server tags its request
  // trace and query-log record with it so client- and server-side views
  // of one request can be stitched together.
  uint64_t trace_id = 0;
  // Read-your-writes consistency token (0 = none). Carried on the wire
  // behind kFeatureLsn; a read replica whose applied LSN is below this
  // waits briefly for replication to catch up and answers kLagging if it
  // does not — the client then retries against the primary. Meaningless
  // on a primary, which is by definition current.
  uint64_t min_lsn = 0;

  bool operator==(const QueryOptions&) const = default;
};

}  // namespace xomatiq::common

#endif  // XOMATIQ_COMMON_QUERY_OPTIONS_H_
