#ifndef XOMATIQ_COMMON_FAULT_INJECTOR_H_
#define XOMATIQ_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"

namespace xomatiq::common {

// How an armed injection point decides whether a given call fires.
enum class FaultPolicy : uint8_t {
  kAlways = 0,       // every call fires
  kNth = 1,          // exactly the Nth call fires (1-based), then disarms
  kEveryNth = 2,     // calls N, 2N, 3N, ... fire
  kProbability = 3,  // each call fires with probability p (seeded, so a
                     // fixed seed gives a replayable fault schedule)
};

struct FaultConfig {
  FaultPolicy policy = FaultPolicy::kAlways;
  uint64_t n = 1;            // kNth / kEveryNth parameter
  double probability = 0.0;  // kProbability parameter
  uint64_t seed = 42;        // kProbability rng seed
  // Status returned by Check() when the point fires.
  StatusCode code = StatusCode::kIoError;
  std::string message;  // empty = "fault injected at <point>"
};

// Deterministic, seeded fault-injection registry. Failure-prone layers
// declare named points (XQ_FAULT_POINT) on their error paths; tests (or
// the XOMATIQ_FAULTS environment variable) arm points with a trigger
// policy, and the layer's normal error handling is exercised exactly as if
// the environment had failed.
//
// The registry is process-global and thread-safe. The hot path — a point
// that is not armed while nothing at all is armed — is a single relaxed
// atomic load, so injection points are left compiled into release builds.
//
// Environment syntax (parsed once, at the first Global() call):
//   XOMATIQ_FAULTS="<point>=<spec>[;<point>=<spec>...]"
//   <spec> := always | nth:<N> | every:<N> | prob:<P>[:<seed>]
//             each optionally suffixed with @<code>, code one of
//             io|corruption|timeout|overloaded|internal
// Example: XOMATIQ_FAULTS="wal.append.flush=nth:3;server.session.write=prob:0.01:7@io"
class FaultInjector {
 public:
  static FaultInjector& Global();

  // Arms `point`; replaces any existing config and zeroes its counters.
  void Arm(const std::string& point, FaultConfig config);
  // Disarms one point (counters are kept until Reset).
  void Disarm(const std::string& point);
  // Disarms everything and drops all counters.
  void Reset();

  // Parses the XOMATIQ_FAULTS syntax and arms the listed points.
  Status Configure(std::string_view spec);

  // The injection-point probe. Returns OK unless `point` is armed and its
  // policy fires for this call, in which case the configured Status is
  // returned. Thread-safe; counts calls and fires per point.
  Status Check(std::string_view point);

  // True when Check(point) would have failed (for sites that need to
  // simulate a partial effect rather than return a status directly).
  bool ShouldFail(std::string_view point) { return !Check(point).ok(); }

  // Observability for tests: calls/fires seen while the point was armed.
  uint64_t calls(const std::string& point) const;
  uint64_t fires(const std::string& point) const;

  bool any_armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct Point {
    FaultConfig config;
    bool armed = false;
    uint64_t calls = 0;
    uint64_t fires = 0;
    Rng rng{0};
  };

  FaultInjector() = default;

  std::atomic<int> armed_count_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, Point> points_;
};

}  // namespace xomatiq::common

// Injection-point probe that propagates the injected Status out of the
// enclosing function, exactly like a real failure at this site.
#define XQ_FAULT_POINT(point)                    \
  XQ_RETURN_IF_ERROR(                            \
      ::xomatiq::common::FaultInjector::Global().Check(point))

#endif  // XOMATIQ_COMMON_FAULT_INJECTOR_H_
