#ifndef XOMATIQ_COMMON_STATUS_H_
#define XOMATIQ_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace xomatiq::common {

// Error category for a failed operation. Mirrors the coarse error surface
// of an embedded database engine: callers typically branch on whether the
// failure is a user error (parse/plan/constraint) or an environment error
// (I/O, corruption).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kConstraintViolation,
  kIoError,
  kCorruption,
  kUnsupported,
  kInternal,
  // Service-layer codes (src/server): admission control and socket I/O.
  kOverloaded,  // bounded admission queue full; retry later
  kTimeout,     // peer too slow (mid-frame read deadline expired)
  // Replication codes (src/replication): read-replica request routing.
  kReadOnly,    // replica rejects DML/DDL; retry against the primary
  kLagging,     // replica behind the requested min_lsn; read elsewhere
};

// Largest valid StatusCode value; used to bounds-check codes read off the
// wire before casting.
inline constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(StatusCode::kLagging);

// Returns a stable human-readable name for `code` (e.g. "ParseError").
std::string_view StatusCodeName(StatusCode code);

// Value type carrying success or an error code plus message. Library code
// never throws; every fallible function returns Status or Result<T>.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ReadOnly(std::string msg) {
    return Status(StatusCode::kReadOnly, std::move(msg));
  }
  static Status Lagging(std::string msg) {
    return Status(StatusCode::kLagging, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace xomatiq::common

// Propagates a non-OK Status from the evaluated expression.
#define XQ_RETURN_IF_ERROR(expr)                         \
  do {                                                   \
    ::xomatiq::common::Status _xq_status = (expr);       \
    if (!_xq_status.ok()) return _xq_status;             \
  } while (false)

// Evaluates an expression yielding Result<T>; on success binds the value to
// `lhs`, otherwise returns the error Status. `lhs` may include a
// declaration, e.g. XQ_ASSIGN_OR_RETURN(auto v, Foo()).
#define XQ_ASSIGN_OR_RETURN(lhs, expr)                      \
  XQ_ASSIGN_OR_RETURN_IMPL_(                                \
      XQ_STATUS_CONCAT_(_xq_result, __LINE__), lhs, expr)

#define XQ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define XQ_STATUS_CONCAT_(a, b) XQ_STATUS_CONCAT_IMPL_(a, b)
#define XQ_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // XOMATIQ_COMMON_STATUS_H_
