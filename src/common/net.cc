#include "common/net.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace xomatiq::net {

using common::Status;

Status WriteAll(int fd, std::string_view data) {
  size_t done = 0;
  bool is_socket = true;
  while (done < data.size()) {
    ssize_t n;
    if (is_socket) {
      n = ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        // Pipe or regular file (tests drive the framing over pipes):
        // write(2) from here on. EPIPE on a pipe raises SIGPIPE, which
        // every long-running binary in this repo leaves at SIG_IGN or
        // handles; sockets — the production path — never signal.
        is_socket = false;
        continue;
      }
    } else {
      n = ::write(fd, data.data() + done, data.size() - done);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string(is_socket ? "send: " : "write: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace xomatiq::net
