#include "common/query_log.h"

#include <chrono>
#include <cstdio>

#include "common/string_util.h"

namespace xomatiq::common {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int64_t WallNowMs() {
  return static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

thread_local QueryLogScope* g_scope = nullptr;
thread_local QueryLogRecord* g_record = nullptr;

// Copies the newest-first contents of ring `ring` (next write at `head`,
// logical size = min(total seen, capacity)) into a vector.
std::vector<QueryLogRecord> SnapshotRing(const std::vector<QueryLogRecord>& ring,
                                         size_t head, size_t max) {
  std::vector<QueryLogRecord> out;
  out.reserve(ring.size());
  // Slots are only present once written; unwritten slots have id 0.
  for (size_t i = 0; i < ring.size(); ++i) {
    size_t idx = (head + ring.size() - 1 - i) % ring.size();
    if (ring[idx].id == 0) break;
    out.push_back(ring[idx]);
    if (max != 0 && out.size() >= max) break;
  }
  return out;
}

}  // namespace

QueryLog& QueryLog::Global() {
  static auto* log = new QueryLog();
  return *log;
}

QueryLog::QueryLog() {
  recent_.resize(kRecentCapacity);
  slow_.resize(kSlowCapacity);
}

void QueryLog::Append(QueryLogRecord rec) {
  if (!enabled()) return;
  rec.slow = rec.latency_ns >= slow_threshold_ns();
  // Fast entries never need the heavyweight captures.
  if (!rec.slow) {
    rec.explain.clear();
    rec.trace_json.clear();
  }
  std::lock_guard<std::mutex> lock(mu_);
  rec.id = total_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (rec.slow) {
    slow_[slow_head_] = rec;
    slow_head_ = (slow_head_ + 1) % slow_.size();
  }
  recent_[recent_head_] = std::move(rec);
  recent_head_ = (recent_head_ + 1) % recent_.size();
}

std::vector<QueryLogRecord> QueryLog::Recent(size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotRing(recent_, recent_head_, max);
}

std::vector<QueryLogRecord> QueryLog::Slow(size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotRing(slow_, slow_head_, max);
}

bool QueryLog::ShouldSampleTrace() {
  if (!enabled()) return false;
  return sample_tick_.fetch_add(1, std::memory_order_relaxed) %
             kTraceSampleEvery ==
         0;
}

void QueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& r : recent_) r = QueryLogRecord{};
  for (auto& r : slow_) r = QueryLogRecord{};
  recent_head_ = slow_head_ = 0;
  total_.store(0, std::memory_order_relaxed);
  sample_tick_.store(0, std::memory_order_relaxed);
}

void AppendQueryLogRecordJson(std::string* out, const QueryLogRecord& rec) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"id\":%llu,\"wall_ms\":%lld,\"latency_us\":%.3f",
                static_cast<unsigned long long>(rec.id),
                static_cast<long long>(rec.wall_ms),
                static_cast<double>(rec.latency_ns) / 1e3);
  *out += buf;
  *out += ",\"mode\":";
  AppendJsonString(out, rec.mode);
  *out += ",\"text\":";
  AppendJsonString(out, rec.text);
  *out += ",\"planner\":";
  AppendJsonString(out, rec.planner);
  std::snprintf(buf, sizeof buf,
                ",\"plan_fp\":\"%08x\",\"est_rows\":%lld,"
                "\"actual_rows\":%lld,\"ok\":%s,\"cache_hit\":%s,"
                "\"slow\":%s",
                rec.plan_fp, static_cast<long long>(rec.est_rows),
                static_cast<long long>(rec.actual_rows),
                rec.ok ? "true" : "false", rec.cache_hit ? "true" : "false",
                rec.slow ? "true" : "false");
  *out += buf;
  if (rec.trace_id != 0) {
    std::snprintf(buf, sizeof buf, ",\"trace_id\":\"%016llx\"",
                  static_cast<unsigned long long>(rec.trace_id));
    *out += buf;
  }
  if (!rec.ok) {
    *out += ",\"error\":";
    AppendJsonString(out, rec.error);
  }
  if (!rec.explain.empty()) {
    *out += ",\"explain\":";
    AppendJsonString(out, rec.explain);
  }
  if (!rec.trace_json.empty()) {
    // Already JSON — splice verbatim rather than double-encoding.
    *out += ",\"trace\":";
    *out += rec.trace_json;
  }
  *out += "}";
}

QueryLogScope::QueryLogScope(std::string_view text, std::string_view mode) {
  if (g_scope != nullptr) return;        // inner scope: observe only
  if (!QueryLog::Global().enabled()) return;
  owner_ = true;
  g_scope = this;
  g_record = &rec_;
  rec_.text = std::string(text.substr(0, QueryLog::kMaxTextBytes));
  rec_.mode = std::string(mode);
  rec_.start_ns = SteadyNowNs();
  rec_.wall_ms = WallNowMs();
}

QueryLogScope::~QueryLogScope() {
  if (!owner_) return;
  rec_.latency_ns = SteadyNowNs() - rec_.start_ns;
  g_scope = nullptr;
  g_record = nullptr;
  QueryLog::Global().Append(std::move(rec_));
}

QueryLogRecord* QueryLogScope::Current() { return g_record; }

uint64_t QueryLogScope::ElapsedNs() const {
  if (!owner_) return 0;
  return SteadyNowNs() - rec_.start_ns;
}

}  // namespace xomatiq::common
