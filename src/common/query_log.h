#ifndef XOMATIQ_COMMON_QUERY_LOG_H_
#define XOMATIQ_COMMON_QUERY_LOG_H_

#include <cstdint>
#include <atomic>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xomatiq::common {

// One completed query, as remembered by the in-process query log.
// Execution layers fill what they know: the service layer owns text /
// latency / cache-hit, the SQL engine annotates plan fingerprint, planner
// mode and est-vs-actual rows via QueryLogScope::Current().
struct QueryLogRecord {
  uint64_t id = 0;         // monotonic sequence number, assigned on append
  int64_t wall_ms = 0;     // unix epoch ms at query start
  uint64_t trace_id = 0;   // wire-propagated correlation id (0 = none)
  std::string text;        // query text (truncated to kMaxTextBytes)
  std::string mode;        // "sql" | "xquery" | ...
  std::string planner;     // "rule" | "cost" | "" when no plan was built
  uint32_t plan_fp = 0;    // CRC32 of the plan rendering (0 = none)
  int64_t est_rows = -1;   // planner estimate for the root (-1 = unknown)
  int64_t actual_rows = -1;  // rows actually produced (-1 = unknown)
  uint64_t start_ns = 0;   // steady-clock ns at scope open (latency base)
  uint64_t latency_ns = 0;
  bool ok = true;
  bool cache_hit = false;
  bool slow = false;       // latency >= slow threshold at append time
  std::string error;       // error message when !ok
  std::string explain;     // EXPLAIN ANALYZE rendering (slow queries only)
  std::string trace_json;  // sampled Chrome trace (slow + sampled only)
};

// Process-wide ring of recently completed queries plus a separate ring of
// slow ones (so slow entries survive floods of fast queries). Appends take
// one short mutex hold and copy no strings (records are moved in); reads
// snapshot under the same mutex. Cheap enough to stay enabled in
// production; set_enabled(false) turns Append and scope arming into no-ops
// for overhead A/B measurements.
class QueryLog {
 public:
  static constexpr size_t kRecentCapacity = 256;
  static constexpr size_t kSlowCapacity = 64;
  static constexpr size_t kMaxTextBytes = 4096;
  static constexpr uint64_t kDefaultSlowThresholdNs = 50'000'000;  // 50 ms
  static constexpr uint64_t kTraceSampleEvery = 64;

  static QueryLog& Global();

  QueryLog();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void set_slow_threshold_ns(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  // Moves `rec` into the ring(s); assigns rec.id and the slow flag. No-op
  // when disabled.
  void Append(QueryLogRecord rec);

  // Newest-first snapshots. max = 0 means "all retained".
  std::vector<QueryLogRecord> Recent(size_t max = 0) const;
  std::vector<QueryLogRecord> Slow(size_t max = 0) const;

  // Total records ever appended (wrap-around-proof).
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

  // True every kTraceSampleEvery-th call — drives opportunistic tracing so
  // some slow queries carry a trace without tracing every request.
  bool ShouldSampleTrace();

  void Clear();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> slow_threshold_ns_{kDefaultSlowThresholdNs};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> sample_tick_{0};

  mutable std::mutex mu_;
  std::vector<QueryLogRecord> recent_;  // ring, recent_head_ = next slot
  std::vector<QueryLogRecord> slow_;
  size_t recent_head_ = 0;
  size_t slow_head_ = 0;
};

// Appends `rec` to `*out` as one JSON object (shared by /queryz and the
// SLOW QUERIES statement).
void AppendQueryLogRecordJson(std::string* out, const QueryLogRecord& rec);

// RAII owner of one QueryLogRecord for the query executing on this thread.
//
// The outermost scope owns the record and appends it to QueryLog::Global()
// on destruction; scopes nested inside it (e.g. SqlEngine::Execute under
// QueryService::Handle) are no-op observers, so the same record is shared
// down the stack via Current(). When the log is disabled, no scope arms
// and Current() stays null — annotation sites must tolerate that.
class QueryLogScope {
 public:
  QueryLogScope(std::string_view text, std::string_view mode);
  ~QueryLogScope();

  QueryLogScope(const QueryLogScope&) = delete;
  QueryLogScope& operator=(const QueryLogScope&) = delete;

  // The record of the innermost armed scope on this thread (null when
  // none). Mutation is single-threaded: only the query's own thread
  // annotates between open and close.
  static QueryLogRecord* Current();

  // True when this scope owns the record (i.e. it is outermost and the
  // log was enabled at open).
  bool armed() const { return owner_; }

  // Elapsed ns since the scope opened (0 when not armed).
  uint64_t ElapsedNs() const;

 private:
  bool owner_ = false;
  QueryLogRecord rec_;
};

}  // namespace xomatiq::common

#endif  // XOMATIQ_COMMON_QUERY_LOG_H_
