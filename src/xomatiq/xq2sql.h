#ifndef XOMATIQ_XOMATIQ_XQ2SQL_H_
#define XOMATIQ_XOMATIQ_XQ2SQL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "datahounds/warehouse.h"
#include "sql/ast.h"
#include "xomatiq/xq_ast.h"

namespace xomatiq::xq {

// Output of translating one XomatiQ query.
struct Translation {
  // One SQL statement per disjunct of the WHERE clause's disjunctive
  // normal form; results are unioned (set semantics) by the caller.
  std::vector<std::string> sql;
  // Structured form of each statement in `sql`, same order. The engine
  // executes these directly (SqlEngine::ExecuteSelectStmtBatched), so the
  // hot XQ path never re-lexes or re-parses the generated text; the
  // strings above are kept for display, logging and caching keys.
  // shared_ptr because Translation is copied (result cache, XqResult)
  // while SelectStmt is move-only.
  std::vector<std::shared_ptr<const sql::SelectStmt>> stmts;
  // Output column names, in RETURN order.
  std::vector<std::string> column_names;
  // Element name of the RETURN constructor ("" = plain item list); the
  // tagger uses it as the per-row element name.
  std::string constructor_name;
  // Collections named by the query's FOR bindings (deduplicated, in
  // binding order). The server's result cache keys invalidation on these.
  std::vector<std::string> collections;
};

// XQ2SQL-Transformer (paper §3.2): rewrites a parsed XomatiQ query into
// SQL over the generic shredding schema.
//
// Strategy (follows the relational-XML translations the paper cites —
// Shanmugasundaram et al., Agora, Zhang et al. containment joins):
//   - each FOR variable becomes an xml_document + xml_node alias pair,
//     constrained by collection and by the path_ids that match the
//     binding path (resolved against the xml_path dictionary at
//     translation time);
//   - each relative path becomes another xml_node alias constrained by
//     matching path_ids plus an (ordinal, end_ordinal) interval
//     containment join to its variable's node;
//   - value accesses join xml_text (equality/string ops, keyword
//     contains) or xml_number (ordered comparisons with numeric
//     literals);
//   - contains(x, kw) on a path tests that node's value; contains($v,
//     kw, any) searches every text value in the subtree;
//   - BEFORE/AFTER compare ordinals within a document;
//   - OR is handled by DNF expansion into one SQL statement per
//     disjunct; NOT is pushed onto comparisons (negated contains is not
//     expressible without set difference and is rejected).
//
// The generated statements SELECT DISTINCT and ORDER BY the first
// variable's doc_id, so results are set-semantic and deterministic.
class Xq2SqlTranslator {
 public:
  explicit Xq2SqlTranslator(hounds::Warehouse* warehouse)
      : warehouse_(warehouse) {}

  // `read_epoch` pins the path-dictionary scan to the caller's snapshot
  // (the same epoch the translated statements will execute at), so a
  // translation never sees paths from a warehouse load that its reads
  // won't. The default (latest) is for writer/single-threaded contexts.
  common::Result<Translation> Translate(const XQueryAst& ast,
                                        uint64_t read_epoch = rel::kEpochMax);

 private:
  hounds::Warehouse* warehouse_;
};

}  // namespace xomatiq::xq

#endif  // XOMATIQ_XOMATIQ_XQ2SQL_H_
