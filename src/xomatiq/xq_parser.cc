#include "xomatiq/xq_parser.h"

#include <cctype>
#include <functional>
#include <map>
#include <set>

#include "common/string_util.h"

namespace xomatiq::xq {

using common::Result;
using common::Status;

namespace {

enum class TokKind { kEof, kVar, kName, kString, kNumber, kSymbol };

struct Tok {
  TokKind kind = TokKind::kEof;
  std::string text;
  double number = 0;
  bool is_int = false;
  int64_t int_value = 0;
  size_t offset = 0;
};

Result<std::vector<Tok>> Lex(std::string_view in) {
  std::vector<Tok> toks;
  size_t i = 0;
  auto is_name_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  };
  while (i < in.size()) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Tok tok;
    tok.offset = i;
    if (c == '$') {
      ++i;
      size_t start = i;
      while (i < in.size() && is_name_char(in[i])) ++i;
      if (i == start) {
        return Status::ParseError("expected a variable name after '$'");
      }
      tok.kind = TokKind::kVar;
      tok.text = std::string(in.substr(start, i - start));
      toks.push_back(std::move(tok));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string value;
      while (i < in.size() && in[i] != quote) value.push_back(in[i++]);
      if (i >= in.size()) {
        return Status::ParseError("unterminated string literal");
      }
      ++i;
      tok.kind = TokKind::kString;
      tok.text = std::move(value);
      toks.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < in.size() &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_real = false;
      while (i < in.size() &&
             (std::isdigit(static_cast<unsigned char>(in[i])) ||
              in[i] == '.')) {
        if (in[i] == '.') {
          // A number followed by a path '/'-like dot cannot occur here;
          // EC-number-like tokens are quoted strings in queries.
          is_real = true;
        }
        ++i;
      }
      std::string num(in.substr(start, i - start));
      tok.kind = TokKind::kNumber;
      if (!is_real) {
        auto v = common::ParseInt64(num);
        if (!v) return Status::ParseError("bad number: " + num);
        tok.is_int = true;
        tok.int_value = *v;
        tok.number = static_cast<double>(*v);
      } else {
        auto v = common::ParseDouble(num);
        if (!v) return Status::ParseError("bad number: " + num);
        tok.number = *v;
      }
      tok.text = std::move(num);
      toks.push_back(std::move(tok));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < in.size() && is_name_char(in[i])) ++i;
      tok.kind = TokKind::kName;
      tok.text = std::string(in.substr(start, i - start));
      toks.push_back(std::move(tok));
      continue;
    }
    // Symbols (two-char first).
    std::string_view two = in.substr(i, 2);
    if (two == "//" || two == "!=" || two == "<=" || two == ">=" ||
        two == ":=") {
      tok.kind = TokKind::kSymbol;
      tok.text = std::string(two);
      toks.push_back(std::move(tok));
      i += 2;
      continue;
    }
    static constexpr std::string_view kSingles = "/@[](),=<>{}";
    if (kSingles.find(c) != std::string_view::npos) {
      tok.kind = TokKind::kSymbol;
      tok.text = std::string(1, c);
      toks.push_back(std::move(tok));
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  toks.push_back(Tok{});
  return toks;
}

class XqParser {
 public:
  explicit XqParser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<XQueryAst> Parse();

 private:
  const Tok& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Tok& Advance() {
    return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_];
  }
  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    return Peek(ahead).kind == TokKind::kName &&
           common::EqualsIgnoreCase(Peek(ahead).text, kw);
  }
  bool MatchKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchSymbol(std::string_view sym) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!MatchSymbol(sym)) {
      return Status::ParseError("expected '" + std::string(sym) +
                                "' near '" + Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError("expected " + std::string(kw) + " near '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectName() {
    if (Peek().kind != TokKind::kName) {
      return Status::ParseError("expected a name near '" + Peek().text +
                                "'");
    }
    return Advance().text;
  }
  Result<std::string> ExpectVar() {
    if (Peek().kind != TokKind::kVar) {
      return Status::ParseError("expected a $variable near '" + Peek().text +
                                "'");
    }
    return Advance().text;
  }

  Result<std::vector<XqStep>> ParseSteps(bool allow_predicates);
  Result<XqBinding> ParseBinding();
  Result<XqPath> ParseVarPath(bool allow_predicates);
  Result<XqCondPtr> ParseOr();
  Result<XqCondPtr> ParseAnd();
  Result<XqCondPtr> ParseUnary();
  Result<XqCondPtr> ParsePrimary();
  Result<rel::Value> ParseLiteral();

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

Result<rel::Value> XqParser::ParseLiteral() {
  const Tok& tok = Peek();
  if (tok.kind == TokKind::kString) {
    std::string text = tok.text;
    Advance();
    return rel::Value::Text(std::move(text));
  }
  if (tok.kind == TokKind::kNumber) {
    Tok t = tok;
    Advance();
    return t.is_int ? rel::Value::Int(t.int_value)
                    : rel::Value::Double(t.number);
  }
  return Status::ParseError("expected a literal near '" + tok.text + "'");
}

Result<std::vector<XqStep>> XqParser::ParseSteps(bool allow_predicates) {
  std::vector<XqStep> steps;
  while (Peek().kind == TokKind::kSymbol &&
         (Peek().text == "/" || Peek().text == "//")) {
    XqStep step;
    step.descendant = Peek().text == "//";
    Advance();
    step.is_attribute = MatchSymbol("@");
    XQ_ASSIGN_OR_RETURN(step.name, ExpectName());
    while (Peek().kind == TokKind::kSymbol && Peek().text == "[") {
      if (!allow_predicates) {
        return Status::ParseError("predicates not allowed here");
      }
      Advance();
      XqPredicate pred;
      // Positional predicate: [N].
      if (Peek().kind == TokKind::kNumber && Peek().is_int) {
        pred.is_position = true;
        pred.position = Advance().int_value;
        if (pred.position < 1) {
          return Status::ParseError("positional predicates are 1-based");
        }
        XQ_RETURN_IF_ERROR(ExpectSymbol("]"));
        step.predicates.push_back(std::move(pred));
        continue;
      }
      // Relative path: optional '@'name, or name, then further steps.
      XqStep first;
      first.is_attribute = MatchSymbol("@");
      XQ_ASSIGN_OR_RETURN(first.name, ExpectName());
      pred.path.push_back(std::move(first));
      XQ_ASSIGN_OR_RETURN(auto rest, ParseSteps(/*allow_predicates=*/false));
      for (XqStep& s : rest) pred.path.push_back(std::move(s));
      // Operator.
      static constexpr std::string_view kOps[] = {"=",  "!=", "<=",
                                                  ">=", "<",  ">"};
      bool matched = false;
      for (std::string_view op : kOps) {
        if (Peek().kind == TokKind::kSymbol && Peek().text == op) {
          pred.op = std::string(op);
          Advance();
          matched = true;
          break;
        }
      }
      if (!matched) {
        return Status::ParseError("expected a comparison in predicate");
      }
      XQ_ASSIGN_OR_RETURN(pred.literal, ParseLiteral());
      XQ_RETURN_IF_ERROR(ExpectSymbol("]"));
      step.predicates.push_back(std::move(pred));
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

Result<XqBinding> XqParser::ParseBinding() {
  XqBinding binding;
  XQ_ASSIGN_OR_RETURN(binding.var, ExpectVar());
  XQ_RETURN_IF_ERROR(ExpectKeyword("IN"));
  if (Peek().kind == TokKind::kVar) {
    // Variable-relative binding: $r IN $a//reference.
    binding.base_var = Advance().text;
    XQ_ASSIGN_OR_RETURN(binding.steps, ParseSteps(/*allow_predicates=*/true));
    if (binding.steps.empty()) {
      return Status::ParseError("variable-relative FOR binding needs a path");
    }
    return binding;
  }
  if (!MatchKeyword("document")) {
    return Status::ParseError(
        "expected document(\"...\") or $variable in FOR binding");
  }
  XQ_RETURN_IF_ERROR(ExpectSymbol("("));
  if (Peek().kind != TokKind::kString) {
    return Status::ParseError("expected a collection name string");
  }
  binding.collection = Advance().text;
  XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
  XQ_ASSIGN_OR_RETURN(binding.steps, ParseSteps(/*allow_predicates=*/true));
  return binding;
}

Result<XqPath> XqParser::ParseVarPath(bool allow_predicates) {
  XqPath path;
  XQ_ASSIGN_OR_RETURN(path.var, ExpectVar());
  XQ_ASSIGN_OR_RETURN(path.steps, ParseSteps(allow_predicates));
  return path;
}

Result<XqCondPtr> XqParser::ParseOr() {
  XQ_ASSIGN_OR_RETURN(XqCondPtr left, ParseAnd());
  if (!PeekKeyword("OR")) return left;
  auto node = std::make_unique<XqCond>();
  node->kind = XqCondKind::kOr;
  node->children.push_back(std::move(left));
  while (MatchKeyword("OR")) {
    XQ_ASSIGN_OR_RETURN(XqCondPtr right, ParseAnd());
    node->children.push_back(std::move(right));
  }
  return XqCondPtr(std::move(node));
}

Result<XqCondPtr> XqParser::ParseAnd() {
  XQ_ASSIGN_OR_RETURN(XqCondPtr left, ParseUnary());
  if (!PeekKeyword("AND")) return left;
  auto node = std::make_unique<XqCond>();
  node->kind = XqCondKind::kAnd;
  node->children.push_back(std::move(left));
  while (MatchKeyword("AND")) {
    XQ_ASSIGN_OR_RETURN(XqCondPtr right, ParseUnary());
    node->children.push_back(std::move(right));
  }
  return XqCondPtr(std::move(node));
}

Result<XqCondPtr> XqParser::ParseUnary() {
  if (MatchKeyword("NOT")) {
    XQ_ASSIGN_OR_RETURN(XqCondPtr child, ParseUnary());
    auto node = std::make_unique<XqCond>();
    node->kind = XqCondKind::kNot;
    node->children.push_back(std::move(child));
    return XqCondPtr(std::move(node));
  }
  return ParsePrimary();
}

Result<XqCondPtr> XqParser::ParsePrimary() {
  if (MatchSymbol("(")) {
    XQ_ASSIGN_OR_RETURN(XqCondPtr inner, ParseOr());
    XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
    return inner;
  }
  if (PeekKeyword("contains")) {
    Advance();
    XQ_RETURN_IF_ERROR(ExpectSymbol("("));
    auto node = std::make_unique<XqCond>();
    node->kind = XqCondKind::kContains;
    XQ_ASSIGN_OR_RETURN(node->scope, ParseVarPath(/*allow_predicates=*/true));
    XQ_RETURN_IF_ERROR(ExpectSymbol(","));
    if (Peek().kind != TokKind::kString) {
      return Status::ParseError("expected a keyword string in contains()");
    }
    node->keyword = Advance().text;
    if (MatchSymbol(",")) {
      XQ_RETURN_IF_ERROR(ExpectKeyword("any"));
      node->any = true;
    }
    XQ_RETURN_IF_ERROR(ExpectSymbol(")"));
    return XqCondPtr(std::move(node));
  }
  // Comparison / order condition rooted at a variable path.
  auto node = std::make_unique<XqCond>();
  XQ_ASSIGN_OR_RETURN(node->left, ParseVarPath(/*allow_predicates=*/true));
  if (MatchKeyword("BEFORE") || PeekKeyword("AFTER")) {
    bool after = false;
    if (PeekKeyword("AFTER")) {
      Advance();
      after = true;
    }
    node->kind = XqCondKind::kOrder;
    node->op = after ? "AFTER" : "BEFORE";
    node->right_is_path = true;
    XQ_ASSIGN_OR_RETURN(node->right_path,
                        ParseVarPath(/*allow_predicates=*/true));
    return XqCondPtr(std::move(node));
  }
  static constexpr std::string_view kOps[] = {"=", "!=", "<=", ">=", "<",
                                              ">"};
  bool matched = false;
  for (std::string_view op : kOps) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == op) {
      node->op = std::string(op);
      Advance();
      matched = true;
      break;
    }
  }
  if (!matched) {
    return Status::ParseError("expected a comparison operator near '" +
                              Peek().text + "'");
  }
  node->kind = XqCondKind::kCompare;
  if (Peek().kind == TokKind::kVar) {
    node->right_is_path = true;
    XQ_ASSIGN_OR_RETURN(node->right_path,
                        ParseVarPath(/*allow_predicates=*/true));
  } else {
    XQ_ASSIGN_OR_RETURN(node->right_literal, ParseLiteral());
  }
  return XqCondPtr(std::move(node));
}

// Expands LET aliases by substitution throughout paths.
Status ExpandLets(XQueryAst* ast) {
  if (ast->lets.empty()) return Status::OK();
  std::map<std::string, const XqLet*> lets;
  for (const XqLet& let : ast->lets) {
    lets[let.var] = &let;
  }
  // LETs may reference earlier LETs; resolve to fixpoint with a depth cap.
  std::function<Status(XqPath*, int)> expand = [&](XqPath* path,
                                                   int depth) -> Status {
    if (depth > 16) {
      return Status::InvalidArgument("cyclic LET definitions");
    }
    auto it = lets.find(path->var);
    if (it == lets.end()) return Status::OK();
    const XqLet& let = *it->second;
    std::vector<XqStep> steps = let.path.steps;
    steps.insert(steps.end(), path->steps.begin(), path->steps.end());
    path->var = let.path.var;
    path->steps = std::move(steps);
    return expand(path, depth + 1);
  };
  std::function<Status(XqCond*)> walk = [&](XqCond* cond) -> Status {
    for (XqCondPtr& child : cond->children) {
      XQ_RETURN_IF_ERROR(walk(child.get()));
    }
    XQ_RETURN_IF_ERROR(expand(&cond->left, 0));
    if (cond->right_is_path) XQ_RETURN_IF_ERROR(expand(&cond->right_path, 0));
    XQ_RETURN_IF_ERROR(expand(&cond->scope, 0));
    return Status::OK();
  };
  if (ast->where) XQ_RETURN_IF_ERROR(walk(ast->where.get()));
  for (XqReturnItem& item : ast->returns) {
    XQ_RETURN_IF_ERROR(expand(&item.path, 0));
  }
  ast->lets.clear();
  return Status::OK();
}

Result<XQueryAst> XqParser::Parse() {
  XQueryAst ast;
  XQ_RETURN_IF_ERROR(ExpectKeyword("FOR"));
  do {
    XQ_ASSIGN_OR_RETURN(XqBinding binding, ParseBinding());
    ast.bindings.push_back(std::move(binding));
  } while (MatchSymbol(","));
  while (MatchKeyword("LET")) {
    do {
      XqLet let;
      XQ_ASSIGN_OR_RETURN(let.var, ExpectVar());
      XQ_RETURN_IF_ERROR(ExpectSymbol(":="));
      XQ_ASSIGN_OR_RETURN(let.path, ParseVarPath(/*allow_predicates=*/true));
      ast.lets.push_back(std::move(let));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("WHERE")) {
    XQ_ASSIGN_OR_RETURN(ast.where, ParseOr());
  }
  XQ_RETURN_IF_ERROR(ExpectKeyword("RETURN"));
  // Optional element constructor: RETURN <name>{ items }</name>.
  bool constructed = false;
  if (MatchSymbol("<")) {
    constructed = true;
    XQ_ASSIGN_OR_RETURN(ast.constructor_name, ExpectName());
    XQ_RETURN_IF_ERROR(ExpectSymbol(">"));
    XQ_RETURN_IF_ERROR(ExpectSymbol("{"));
  }
  do {
    if (Peek().kind == TokKind::kEof) break;
    XqReturnItem item;
    // "$Alias = $var/path" vs "$var/path": '=' after the first variable
    // marks an alias (comparisons cannot appear in RETURN).
    if (Peek().kind == TokKind::kVar && Peek(1).kind == TokKind::kSymbol &&
        Peek(1).text == "=") {
      item.alias = Advance().text;
      Advance();  // '='
    }
    XQ_ASSIGN_OR_RETURN(item.path, ParseVarPath(/*allow_predicates=*/true));
    ast.returns.push_back(std::move(item));
  } while (MatchSymbol(","));
  if (constructed) {
    XQ_RETURN_IF_ERROR(ExpectSymbol("}"));
    XQ_RETURN_IF_ERROR(ExpectSymbol("<"));
    XQ_RETURN_IF_ERROR(ExpectSymbol("/"));
    XQ_ASSIGN_OR_RETURN(std::string close, ExpectName());
    if (close != ast.constructor_name) {
      return Status::ParseError("mismatched constructor tag </" + close +
                                "> for <" + ast.constructor_name + ">");
    }
    XQ_RETURN_IF_ERROR(ExpectSymbol(">"));
  }
  if (Peek().kind != TokKind::kEof) {
    return Status::ParseError("trailing input near '" + Peek().text + "'");
  }
  if (ast.returns.empty()) {
    return Status::ParseError("RETURN clause requires at least one item");
  }
  XQ_RETURN_IF_ERROR(ExpandLets(&ast));
  // Every used variable must be bound by FOR, bindings must be unique,
  // and a relative binding's base must be bound earlier.
  std::set<std::string> bound;
  for (const XqBinding& b : ast.bindings) {
    if (!b.base_var.empty() && bound.count(b.base_var) == 0) {
      return Status::InvalidArgument(
          "FOR binding $" + b.var + " references $" + b.base_var +
          " before it is bound");
    }
    if (!bound.insert(b.var).second) {
      return Status::InvalidArgument("duplicate FOR variable $" + b.var);
    }
  }
  std::function<Status(const XqCond&)> check = [&](const XqCond& c) -> Status {
    for (const XqCondPtr& child : c.children) {
      XQ_RETURN_IF_ERROR(check(*child));
    }
    if ((c.kind == XqCondKind::kCompare || c.kind == XqCondKind::kOrder) &&
        bound.count(c.left.var) == 0) {
      return Status::InvalidArgument("unbound variable $" + c.left.var);
    }
    if (c.right_is_path && bound.count(c.right_path.var) == 0) {
      return Status::InvalidArgument("unbound variable $" + c.right_path.var);
    }
    if (c.kind == XqCondKind::kContains && bound.count(c.scope.var) == 0) {
      return Status::InvalidArgument("unbound variable $" + c.scope.var);
    }
    return Status::OK();
  };
  if (ast.where) XQ_RETURN_IF_ERROR(check(*ast.where));
  for (const XqReturnItem& item : ast.returns) {
    if (bound.count(item.path.var) == 0) {
      return Status::InvalidArgument("unbound variable $" + item.path.var);
    }
  }
  return ast;
}

}  // namespace

Result<XQueryAst> ParseXQuery(std::string_view text) {
  XQ_ASSIGN_OR_RETURN(std::vector<Tok> toks, Lex(text));
  XqParser parser(std::move(toks));
  return parser.Parse();
}

}  // namespace xomatiq::xq
