#ifndef XOMATIQ_XOMATIQ_XQ_PARSER_H_
#define XOMATIQ_XOMATIQ_XQ_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xomatiq/xq_ast.h"

namespace xomatiq::xq {

// Parses the XomatiQ FLWR query language (paper §3.1): FOR bindings over
// document("collection") paths, optional LET aliases, a WHERE clause with
// AND/OR/NOT, comparisons, the contains(path, "kw" [, any]) keyword
// extension and BEFORE/AFTER order operators, and a RETURN list with
// optional $Alias = item names. Keywords are case-insensitive. LET
// variables are expanded by substitution before the AST is returned.
common::Result<XQueryAst> ParseXQuery(std::string_view text);

}  // namespace xomatiq::xq

#endif  // XOMATIQ_XOMATIQ_XQ_PARSER_H_
