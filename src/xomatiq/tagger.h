#ifndef XOMATIQ_XOMATIQ_TAGGER_H_
#define XOMATIQ_XOMATIQ_TAGGER_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "xml/dom.h"

namespace xomatiq::xq {

// Relation2XML tagger module (paper §3.3): structures result tuples into
// an XML document. Each row becomes one <result> element whose children
// are named after the output columns (sanitized into XML names).
xml::XmlDocument TagResults(const std::vector<std::string>& columns,
                            const std::vector<rel::Tuple>& rows,
                            const std::string& root_name = "results",
                            const std::string& row_name = "result");

// Makes `name` a valid XML element name (non-name characters become '_';
// a leading digit gets a '_' prefix; empty becomes "column").
std::string SanitizeElementName(const std::string& name);

}  // namespace xomatiq::xq

#endif  // XOMATIQ_XOMATIQ_TAGGER_H_
