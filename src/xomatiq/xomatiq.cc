#include "xomatiq/xomatiq.h"

#include <set>

#include "common/metrics.h"
#include "common/query_log.h"
#include "common/trace.h"
#include "xomatiq/tagger.h"
#include "xomatiq/xq_parser.h"

namespace xomatiq::xq {

using common::Result;
using common::Status;
using rel::Tuple;
using rel::Value;

namespace {

// Stage latency histograms: each named pipeline stage (parse -> translate
// -> execute -> tag) also lands in the metrics snapshot, so the XomatiQ
// query-latency breakdown is visible without an active trace.
common::Histogram* StageHist(const char* name) {
  return common::MetricsRegistry::Global().GetHistogram(name);
}

}  // namespace

std::string XqResult::ToTable() const {
  sql::QueryResult qr;
  rel::Schema schema;
  for (const std::string& col : columns) {
    schema.AddColumn({col, rel::ValueType::kText, false});
  }
  qr.schema = std::move(schema);
  qr.rows = rows;
  return qr.ToTable();
}

Result<Translation> XomatiQ::Translate(std::string_view query_text) {
  // Standalone translation (inspection surface): pin its own snapshot so
  // the path-dictionary scan reads a committed cut.
  rel::Snapshot snap = warehouse_->db()->BeginSnapshot();
  return TranslateAt(query_text, snap.epoch());
}

Result<Translation> XomatiQ::TranslateAt(std::string_view query_text,
                                         uint64_t read_epoch) {
  static common::Histogram* parse_hist = StageHist("xq.stage.parse");
  static common::Histogram* translate_hist = StageHist("xq.stage.translate");
  XQueryAst ast;
  {
    common::TraceSpan span("xq.parse", parse_hist);
    XQ_ASSIGN_OR_RETURN(ast, ParseXQuery(query_text));
  }
  common::TraceSpan span("xq.translate", translate_hist);
  return translator_.Translate(ast, read_epoch);
}

Result<XqResult> XomatiQ::Execute(const common::QueryRequest& req) {
  if (req.mode != common::QueryMode::kXq &&
      req.mode != common::QueryMode::kXqXml) {
    return Status::InvalidArgument(
        std::string("XomatiQ::Execute requires mode=xq or xq-xml, got ") +
        std::string(common::QueryModeName(req.mode)));
  }
  static common::Counter* queries =
      common::MetricsRegistry::Global().GetCounter("xq.queries");
  static common::Histogram* exec_hist = StageHist("xq.stage.execute");
  queries->Inc();
  // Outermost query-log scope for embedded XQuery use; under QueryService
  // the service's scope owns the record instead. Engine layers below
  // annotate plan fingerprint / est-vs-actual rows on whichever is armed.
  common::QueryLogScope qlog(req.text, "xquery");
  // One absolute deadline for the whole query: parsing, translation and
  // every generated SQL disjunct share the same budget.
  common::Deadline deadline = common::Deadline::After(req.options.deadline_ms);
  // ONE snapshot for the whole query: the path-dictionary translation and
  // every disjunct statement read the same committed cut, so a
  // multi-disjunct union can never mix pre- and post-sync states.
  rel::Snapshot snap;
  uint64_t epoch;
  if (req.read_epoch.has_value()) {
    epoch = *req.read_epoch;
  } else {
    snap = warehouse_->db()->BeginSnapshot();
    epoch = snap.epoch();
  }
  XQ_ASSIGN_OR_RETURN(Translation translation, TranslateAt(req.text, epoch));
  common::TraceSpan span("xq.execute", exec_hist);
  XqResult result;
  result.columns = translation.column_names;
  result.executed_sql = translation.sql;
  result.constructor_name = translation.constructor_name;
  result.collections = translation.collections;
  // Union the disjunct statements with set semantics, preserving the
  // first-seen order. Each statement streams its batches straight into
  // the result; no per-statement materialization. Statements run from
  // their structured ASTs when the translator produced them (the normal
  // case) — the generated SQL text is never re-lexed or re-parsed here.
  std::set<rel::CompositeKey, rel::CompositeKeyLess> seen;
  const sql::Executor::BatchSink sink = [&](rel::RowBatch& batch) {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (seen.insert(batch.row(i)).second) {
        result.rows.push_back(batch.row(i));
      }
    }
    return true;
  };
  for (size_t s = 0; s < translation.sql.size(); ++s) {
    if (s < translation.stmts.size() && translation.stmts[s] != nullptr) {
      XQ_RETURN_IF_ERROR(engine_
                             .ExecuteSelectStmtBatched(*translation.stmts[s],
                                                       sink, deadline, epoch)
                             .status());
    } else {
      // Text fallback (translator produced SQL without an AST): parse via
      // the engine, still at this query's epoch.
      common::QueryRequest sub = common::QueryRequest::Sql(translation.sql[s]);
      sub.options = req.options;
      sub.read_epoch = epoch;
      XQ_RETURN_IF_ERROR(engine_.ExecuteSelectBatched(sub, sink).status());
    }
  }
  return result;
}

Result<std::string> XomatiQ::Explain(std::string_view query_text) {
  XQ_ASSIGN_OR_RETURN(Translation translation, Translate(query_text));
  std::string out;
  for (size_t s = 0; s < translation.sql.size(); ++s) {
    std::string plan_text;
    if (s < translation.stmts.size() && translation.stmts[s] != nullptr) {
      XQ_ASSIGN_OR_RETURN(plan_text,
                          engine_.ExplainSelectStmt(*translation.stmts[s]));
    } else {
      XQ_ASSIGN_OR_RETURN(sql::QueryResult qr,
                          engine_.Execute("EXPLAIN " + translation.sql[s]));
      plan_text = qr.explain_text;
    }
    out += translation.sql[s] + "\n" + plan_text + "\n";
  }
  return out;
}

xml::XmlDocument XomatiQ::ResultsAsXml(const XqResult& result) const {
  static common::Histogram* tag_hist = StageHist("xq.stage.tag");
  common::TraceSpan span("xq.tag", tag_hist);
  return TagResults(result.columns, result.rows, "results",
                    result.constructor_name.empty() ? "result"
                                                    : result.constructor_name);
}

Result<std::string> XomatiQ::FormatDtdTree(
    const std::string& collection) const {
  const hounds::Warehouse::Collection* c =
      warehouse_->FindCollection(collection);
  if (c == nullptr) {
    return Status::NotFound("unknown collection: " + collection);
  }
  return c->dtd.FormatTree(c->root_element);
}

// --- builders -------------------------------------------------------------

namespace {

// Variable names for builder-generated queries: $a, $b, $c, ...
std::string VarName(size_t i) {
  return std::string(1, static_cast<char>('a' + (i % 26)));
}

// Ensures a path fragment starts with '/' or '//'.
std::string NormalizePath(const std::string& path) {
  if (path.empty() || path[0] == '/') return path;
  return "//" + path;
}

}  // namespace

KeywordQueryBuilder& KeywordQueryBuilder::AddDatabase(
    std::string collection, std::string root_element,
    std::string return_path) {
  dbs_.push_back({std::move(collection), std::move(root_element),
                  NormalizePath(return_path)});
  return *this;
}

KeywordQueryBuilder& KeywordQueryBuilder::SetKeyword(std::string keyword) {
  keyword_ = std::move(keyword);
  return *this;
}

std::string KeywordQueryBuilder::Build() const {
  std::string out = "FOR ";
  for (size_t i = 0; i < dbs_.size(); ++i) {
    if (i > 0) out += ",\n    ";
    out += "$" + VarName(i) + " IN document(\"" + dbs_[i].collection +
           "\")/" + dbs_[i].root;
  }
  out += "\nWHERE ";
  for (size_t i = 0; i < dbs_.size(); ++i) {
    if (i > 0) out += "\nAND   ";
    out += "contains($" + VarName(i) + ", \"" + keyword_ + "\", any)";
  }
  out += "\nRETURN ";
  for (size_t i = 0; i < dbs_.size(); ++i) {
    if (i > 0) out += ",\n       ";
    out += "$" + VarName(i) + dbs_[i].return_path;
  }
  return out;
}

SubtreeQueryBuilder::SubtreeQueryBuilder(std::string collection,
                                         std::string root_element)
    : collection_(std::move(collection)), root_(std::move(root_element)) {}

SubtreeQueryBuilder& SubtreeQueryBuilder::AddCondition(
    std::string subtree_path, std::string keyword) {
  conditions_.push_back("contains($a" + NormalizePath(subtree_path) +
                        ", \"" + keyword + "\")");
  return *this;
}

SubtreeQueryBuilder& SubtreeQueryBuilder::AddComparison(
    std::string path, std::string op, std::string literal) {
  conditions_.push_back("$a" + NormalizePath(path) + " " + op + " \"" +
                        literal + "\"");
  return *this;
}

SubtreeQueryBuilder& SubtreeQueryBuilder::SetDisjunctive(bool disjunctive) {
  disjunctive_ = disjunctive;
  return *this;
}

SubtreeQueryBuilder& SubtreeQueryBuilder::AddReturn(std::string path) {
  returns_.push_back("$a" + NormalizePath(path));
  return *this;
}

std::string SubtreeQueryBuilder::Build() const {
  std::string out =
      "FOR $a IN document(\"" + collection_ + "\")/" + root_;
  if (!conditions_.empty()) {
    out += "\nWHERE ";
    for (size_t i = 0; i < conditions_.size(); ++i) {
      if (i > 0) out += disjunctive_ ? "\nOR    " : "\nAND   ";
      out += conditions_[i];
    }
  }
  out += "\nRETURN ";
  for (size_t i = 0; i < returns_.size(); ++i) {
    if (i > 0) out += ",\n       ";
    out += returns_[i];
  }
  return out;
}

JoinQueryBuilder::JoinQueryBuilder(std::string left_collection,
                                   std::string left_path,
                                   std::string right_collection,
                                   std::string right_path)
    : left_collection_(std::move(left_collection)),
      left_path_(std::move(left_path)),
      right_collection_(std::move(right_collection)),
      right_path_(std::move(right_path)) {}

JoinQueryBuilder& JoinQueryBuilder::AddJoin(std::string left_join_path,
                                            std::string right_join_path) {
  joins_.emplace_back(NormalizePath(left_join_path),
                      NormalizePath(right_join_path));
  return *this;
}

JoinQueryBuilder& JoinQueryBuilder::AddLeftCondition(
    std::string raw_condition) {
  conditions_.push_back(std::move(raw_condition));
  return *this;
}

JoinQueryBuilder& JoinQueryBuilder::AddReturn(char side, std::string path,
                                              std::string alias) {
  returns_.push_back({side, NormalizePath(path), std::move(alias)});
  return *this;
}

std::string JoinQueryBuilder::Build() const {
  std::string out = "FOR $a IN document(\"" + left_collection_ + "\")" +
                    left_path_ + ",\n    $b IN document(\"" +
                    right_collection_ + "\")" + right_path_;
  std::string where;
  for (const auto& [left, right] : joins_) {
    if (!where.empty()) where += "\nAND   ";
    where += "$a" + left + " = $b" + right;
  }
  for (const std::string& cond : conditions_) {
    if (!where.empty()) where += "\nAND   ";
    where += cond;
  }
  if (!where.empty()) out += "\nWHERE " + where;
  out += "\nRETURN ";
  for (size_t i = 0; i < returns_.size(); ++i) {
    if (i > 0) out += ",\n       ";
    const Ret& r = returns_[i];
    if (!r.alias.empty()) out += "$" + r.alias + " = ";
    out += std::string("$") + r.side + r.path;
  }
  return out;
}

}  // namespace xomatiq::xq
