#ifndef XOMATIQ_XOMATIQ_XQ_AST_H_
#define XOMATIQ_XOMATIQ_XQ_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/value.h"

namespace xomatiq::xq {

// One step of a path expression. Steps with `descendant` correspond to
// '//' (descendant), others to '/' (child). Attribute steps name an
// attribute ('@name'). A step may carry predicates of the restricted form
// [relative-path op literal]; predicates are allowed on the final step of
// a path only (which covers the paper's query workload, e.g. Fig 11's
// qualifier[@qualifier_type = "EC number"]).
struct XqPredicate;

struct XqStep {
  bool descendant = false;
  bool is_attribute = false;
  std::string name;
  std::vector<XqPredicate> predicates;
};

struct XqPredicate {
  // Positional predicate [N]: selects the N-th same-name sibling
  // (1-based), evaluated via the shredded name_pos column — one of the
  // "order-based functionalities" document order as data enables (§2.2).
  bool is_position = false;
  int64_t position = 0;

  // Value predicate [relative-path op literal].
  std::vector<XqStep> path;  // relative to the step's node
  std::string op = "=";      // = != < <= > >=
  rel::Value literal;
};

// A path rooted at a FOR variable: $var / steps...
struct XqPath {
  std::string var;           // without the '$'
  std::vector<XqStep> steps; // may be empty ($a alone)
};

// FOR $var IN document("collection")/steps...   (collection-rooted), or
// FOR $var IN $base/steps...                     (variable-relative: $var
// iterates over the node set selected from an earlier FOR variable, so
// multiple values of one element — e.g. two attributes of the same
// <reference> — stay aligned).
struct XqBinding {
  std::string var;
  std::string collection;  // empty for variable-relative bindings
  std::string base_var;    // empty for collection-rooted bindings
  std::vector<XqStep> steps;
};

// LET $var := $base/steps (expanded by substitution after parsing).
struct XqLet {
  std::string var;
  XqPath path;
};

// Condition tree of the WHERE clause.
enum class XqCondKind {
  kAnd,
  kOr,
  kNot,
  kCompare,   // path op (path | literal)
  kContains,  // contains(path, "keywords" [, any])
  kOrder,     // path BEFORE/AFTER path (document order, §2.2)
};

struct XqCond;
using XqCondPtr = std::unique_ptr<XqCond>;

struct XqCond {
  XqCondKind kind = XqCondKind::kCompare;

  // kAnd / kOr / kNot children.
  std::vector<XqCondPtr> children;

  // kCompare / kOrder.
  XqPath left;
  std::string op;            // = != < <= > >= | BEFORE | AFTER
  bool right_is_path = false;
  XqPath right_path;
  rel::Value right_literal;

  // kContains.
  XqPath scope;      // node set searched
  std::string keyword;
  bool any = false;  // contains(..., any): whole-subtree keyword search

  XqCondPtr Clone() const;
  std::string ToString() const;
};

// RETURN item: optional $Alias = path.
struct XqReturnItem {
  std::string alias;  // "" = derived from the final step name
  XqPath path;
};

struct XQueryAst {
  std::vector<XqBinding> bindings;
  std::vector<XqLet> lets;
  XqCondPtr where;  // may be null
  std::vector<XqReturnItem> returns;
  // RETURN <name>{ ... }</name> element constructor (§3: "the return
  // clause can construct new XML element as output"); empty = plain list.
  std::string constructor_name;

  std::string ToString() const;  // re-renders query text
};

std::string PathToString(const XqPath& path);
std::string StepsToString(const std::vector<XqStep>& steps);

}  // namespace xomatiq::xq

#endif  // XOMATIQ_XOMATIQ_XQ_AST_H_
