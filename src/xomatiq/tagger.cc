#include "xomatiq/tagger.h"

#include <cctype>

namespace xomatiq::xq {

std::string SanitizeElementName(const std::string& name) {
  if (name.empty()) return "column";
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '-' || c == '.';
    out.push_back(ok ? c : '_');
  }
  if (std::isdigit(static_cast<unsigned char>(out[0])) || out[0] == '-' ||
      out[0] == '.') {
    out.insert(out.begin(), '_');
  }
  return out;
}

xml::XmlDocument TagResults(const std::vector<std::string>& columns,
                            const std::vector<rel::Tuple>& rows,
                            const std::string& root_name,
                            const std::string& row_name) {
  xml::XmlDocument doc;
  xml::XmlNode* root = doc.CreateRoot(SanitizeElementName(root_name));
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (const std::string& col : columns) {
    names.push_back(SanitizeElementName(col));
  }
  for (const rel::Tuple& row : rows) {
    xml::XmlNode* result = root->AddElement(SanitizeElementName(row_name));
    for (size_t c = 0; c < row.size() && c < names.size(); ++c) {
      if (row[c].is_null()) {
        result->AddElement(names[c]);  // empty element for NULL
      } else {
        result->AddTextElement(names[c], row[c].ToString());
      }
    }
  }
  return doc;
}

}  // namespace xomatiq::xq
