#ifndef XOMATIQ_XOMATIQ_XOMATIQ_H_
#define XOMATIQ_XOMATIQ_XOMATIQ_H_

#include <string>
#include <vector>

#include "common/query_options.h"
#include "common/query_request.h"
#include "common/result.h"
#include "datahounds/warehouse.h"
#include "sql/engine.h"
#include "xomatiq/xq2sql.h"
#include "xomatiq/xq_ast.h"

namespace xomatiq::xq {

// Result of one XomatiQ query: set-semantic rows plus the SQL that was
// executed (what the paper's GUI shows after "Translate Query").
struct XqResult {
  std::vector<std::string> columns;
  std::vector<rel::Tuple> rows;
  std::vector<std::string> executed_sql;
  // Collections the query read (from the translation); the server's
  // result cache uses them as invalidation tags.
  std::vector<std::string> collections;
  // RETURN constructor element name ("" = none); names each row element
  // in the XML rendering.
  std::string constructor_name;

  // The "simple table format" view (Fig 7b / Fig 12 left panel).
  std::string ToTable() const;
};

// The XomatiQ query service (paper §3): parses the XQuery-subset text,
// rewrites it to SQL over the generic schema (XQ2SQL), evaluates on the
// relational engine, and renders results as a table or as re-tagged XML —
// "an illusion of a fully XML-based data management system" with the
// relational engine hidden underneath.
class XomatiQ {
 public:
  explicit XomatiQ(hounds::Warehouse* warehouse)
      : warehouse_(warehouse),
        engine_(warehouse->db()),
        translator_(warehouse) {}

  // Parses, translates and runs a query (req.mode must be kXq or kXqXml;
  // XML re-tagging itself is ResultsAsXml, applied by the caller). The
  // deadline in `req.options` is made absolute once at entry, so every
  // generated SQL statement of a multi-disjunct query draws down one
  // shared budget; expiry surfaces as kTimeout. The whole query —
  // path-dictionary translation and every disjunct — runs against ONE
  // snapshot epoch: `req.read_epoch` when the caller owns a snapshot,
  // else one acquired here. Trace/cache options are consumed by the
  // server layer.
  common::Result<XqResult> Execute(const common::QueryRequest& req);

  // Shorthand for embedded/test use: Execute with default options.
  common::Result<XqResult> Execute(std::string_view query_text) {
    return Execute(common::QueryRequest::Xq(std::string(query_text)));
  }
  [[deprecated("pass a common::QueryRequest instead")]]  //
  common::Result<XqResult>
  Execute(std::string_view query_text, const common::QueryOptions& opts) {
    return Execute(common::QueryRequest::Xq(std::string(query_text), opts));
  }

  // Translation only (inspect the generated SQL).
  common::Result<Translation> Translate(std::string_view query_text);

  // Relational EXPLAIN of every translated statement.
  common::Result<std::string> Explain(std::string_view query_text);

  // Results re-tagged as XML (§3.3 Relation2XML path).
  xml::XmlDocument ResultsAsXml(const XqResult& result) const;

  // The GUI's left panel: DTD structure tree of a collection (Fig 7a).
  common::Result<std::string> FormatDtdTree(
      const std::string& collection) const;

  // The GUI's right result panel: full document view (Fig 7b), rebuilt
  // from tuples.
  common::Result<xml::XmlDocument> ViewDocument(int64_t doc_id) {
    return warehouse_->ReconstructDocument(doc_id);
  }

  hounds::Warehouse* warehouse() { return warehouse_; }
  sql::SqlEngine* engine() { return &engine_; }

 private:
  // Translate with the path-dictionary scan pinned at `read_epoch` (the
  // epoch the translated statements will run at).
  common::Result<Translation> TranslateAt(std::string_view query_text,
                                          uint64_t read_epoch);

  hounds::Warehouse* warehouse_;
  sql::SqlEngine engine_;
  Xq2SqlTranslator translator_;
};

// ---------------------------------------------------------------------
// Visual query mode builders (paper §3.1). Each builder emits the query
// text the GUI's "Translate Query" button would produce; programmatic
// stand-ins for the three click-through modes.
// ---------------------------------------------------------------------

// Keyword-based search mode (Fig 8): one keyword across one or more
// databases; returns the chosen identifier element of each database.
class KeywordQueryBuilder {
 public:
  KeywordQueryBuilder& AddDatabase(std::string collection,
                                   std::string root_element,
                                   std::string return_path);
  KeywordQueryBuilder& SetKeyword(std::string keyword);
  std::string Build() const;

 private:
  struct Db {
    std::string collection;
    std::string root;
    std::string return_path;  // e.g. "//sprot_accession_number"
  };
  std::vector<Db> dbs_;
  std::string keyword_;
};

// Sub-tree search mode (Fig 7a / Fig 9): keyword limited to selected
// sub-trees, with conjunctive/disjunctive conditions.
class SubtreeQueryBuilder {
 public:
  SubtreeQueryBuilder(std::string collection, std::string root_element);
  // Adds contains(<subtree_path>, "<keyword>").
  SubtreeQueryBuilder& AddCondition(std::string subtree_path,
                                    std::string keyword);
  // Adds <path> <op> <literal>.
  SubtreeQueryBuilder& AddComparison(std::string path, std::string op,
                                     std::string literal);
  SubtreeQueryBuilder& SetDisjunctive(bool disjunctive);
  SubtreeQueryBuilder& AddReturn(std::string path);
  std::string Build() const;

 private:
  std::string collection_;
  std::string root_;
  std::vector<std::string> conditions_;
  bool disjunctive_ = false;
  std::vector<std::string> returns_;
};

// Join query mode (Figs 10/11): correlates two databases on joining
// elements.
class JoinQueryBuilder {
 public:
  JoinQueryBuilder(std::string left_collection, std::string left_path,
                   std::string right_collection, std::string right_path);
  // Join condition: $a<left_path> = $b<right_path>.
  JoinQueryBuilder& AddJoin(std::string left_join_path,
                            std::string right_join_path);
  // Extra filter on either side, e.g. contains($a//x, "kw").
  JoinQueryBuilder& AddLeftCondition(std::string raw_condition);
  // RETURN $<alias> = $a<path> (side: 'a' left, 'b' right).
  JoinQueryBuilder& AddReturn(char side, std::string path,
                              std::string alias = "");
  std::string Build() const;

 private:
  std::string left_collection_, left_path_;
  std::string right_collection_, right_path_;
  std::vector<std::pair<std::string, std::string>> joins_;
  std::vector<std::string> conditions_;
  struct Ret {
    char side;
    std::string path;
    std::string alias;
  };
  std::vector<Ret> returns_;
};

}  // namespace xomatiq::xq

#endif  // XOMATIQ_XOMATIQ_XOMATIQ_H_
