#include "xomatiq/xq_ast.h"

namespace xomatiq::xq {

namespace {

std::string LiteralToString(const rel::Value& v) {
  if (v.type() == rel::ValueType::kText) {
    return "\"" + v.AsText() + "\"";
  }
  return v.ToString();
}

}  // namespace

std::string StepsToString(const std::vector<XqStep>& steps) {
  std::string out;
  for (const XqStep& step : steps) {
    out += step.descendant ? "//" : "/";
    if (step.is_attribute) out += "@";
    out += step.name;
    for (const XqPredicate& pred : step.predicates) {
      out += "[";
      if (pred.is_position) {
        out += std::to_string(pred.position);
      } else {
        std::string rel = StepsToString(pred.path);
        // Relative predicate paths drop the leading '/'.
        if (!rel.empty() && rel[0] == '/') rel = rel.substr(1);
        out += rel + " " + pred.op + " " + LiteralToString(pred.literal);
      }
      out += "]";
    }
  }
  return out;
}

std::string PathToString(const XqPath& path) {
  return "$" + path.var + StepsToString(path.steps);
}

XqCondPtr XqCond::Clone() const {
  auto copy = std::make_unique<XqCond>();
  copy->kind = kind;
  for (const XqCondPtr& child : children) {
    copy->children.push_back(child->Clone());
  }
  copy->left = left;
  copy->op = op;
  copy->right_is_path = right_is_path;
  copy->right_path = right_path;
  copy->right_literal = right_literal;
  copy->scope = scope;
  copy->keyword = keyword;
  copy->any = any;
  return copy;
}

std::string XqCond::ToString() const {
  switch (kind) {
    case XqCondKind::kAnd: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " AND ";
        out += children[i]->ToString();
      }
      return out;
    }
    case XqCondKind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " OR ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case XqCondKind::kNot:
      return "NOT (" + children[0]->ToString() + ")";
    case XqCondKind::kCompare:
    case XqCondKind::kOrder: {
      std::string rhs = right_is_path ? PathToString(right_path)
                                      : LiteralToString(right_literal);
      return PathToString(left) + " " + op + " " + rhs;
    }
    case XqCondKind::kContains: {
      std::string out =
          "contains(" + PathToString(scope) + ", \"" + keyword + "\"";
      if (any) out += ", any";
      return out + ")";
    }
  }
  return "?";
}

std::string XQueryAst::ToString() const {
  std::string out = "FOR ";
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (i > 0) out += ",\n    ";
    out += "$" + bindings[i].var + " IN ";
    if (bindings[i].base_var.empty()) {
      out += "document(\"" + bindings[i].collection + "\")";
    } else {
      out += "$" + bindings[i].base_var;
    }
    out += StepsToString(bindings[i].steps);
  }
  for (const XqLet& let : lets) {
    out += "\nLET $" + let.var + " := " + PathToString(let.path);
  }
  if (where != nullptr) {
    out += "\nWHERE " + where->ToString();
  }
  out += "\nRETURN ";
  if (!constructor_name.empty()) out += "<" + constructor_name + ">{ ";
  for (size_t i = 0; i < returns.size(); ++i) {
    if (i > 0) out += ",\n       ";
    if (!returns[i].alias.empty()) out += "$" + returns[i].alias + " = ";
    out += PathToString(returns[i].path);
  }
  if (!constructor_name.empty()) {
    out += " }</" + constructor_name + ">";
  }
  return out;
}

}  // namespace xomatiq::xq
