#include "xomatiq/xq2sql.h"

#include <algorithm>
#include <map>
#include <shared_mutex>

#include "common/string_util.h"
#include "datahounds/generic_schema.h"

namespace xomatiq::xq {

using common::Result;
using common::Status;
using rel::Value;
using rel::ValueType;

namespace {

// --- path dictionary ------------------------------------------------------

struct PathEntry {
  int64_t id;
  std::vector<std::string> segments;  // "/a/b/@c" -> {"a", "b", "@c"}
};

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> segments;
  for (const std::string& piece : common::Split(path, '/')) {
    if (!piece.empty()) segments.push_back(piece);
  }
  return segments;
}

// Matches stored path segments against a step pattern; '//' steps may
// skip any number of segments.
bool MatchSegments(const std::vector<std::string>& segs, size_t si,
                   const std::vector<XqStep>& steps, size_t pi) {
  if (pi == steps.size()) return si == segs.size();
  const XqStep& step = steps[pi];
  std::string target =
      step.is_attribute ? "@" + step.name : step.name;
  if (!step.descendant) {
    return si < segs.size() && segs[si] == target &&
           MatchSegments(segs, si + 1, steps, pi + 1);
  }
  for (size_t k = si; k < segs.size(); ++k) {
    if (segs[k] == target && MatchSegments(segs, k + 1, steps, pi + 1)) {
      return true;
    }
  }
  return false;
}

std::vector<int64_t> ResolvePattern(const std::vector<PathEntry>& dict,
                                    const std::vector<XqStep>& steps) {
  std::vector<int64_t> ids;
  for (const PathEntry& entry : dict) {
    if (MatchSegments(entry.segments, 0, steps, 0)) ids.push_back(entry.id);
  }
  return ids;
}

std::string SqlQuote(const std::string& text) {
  std::string out = "'";
  for (char c : text) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

std::string LiteralSql(const Value& v) {
  if (v.type() == ValueType::kText) return SqlQuote(v.AsText());
  return v.ToString();
}

// --- structured-statement helpers -----------------------------------------
//
// Every WHERE conjunct the translator emits as text is also built as a
// sql::Expr, so the final statement can be handed to the engine as an AST
// (no re-parse of the generated SQL on the execute path).

sql::ExprPtr Col(const std::string& alias, const char* column) {
  return sql::MakeColumnRef(alias + "." + column);
}

sql::ExprPtr IntLit(int64_t v) { return sql::MakeLiteral(Value::Int(v)); }

sql::BinaryOp CmpOp(const std::string& op) {
  if (op == "=") return sql::BinaryOp::kEq;
  if (op == "!=") return sql::BinaryOp::kNe;
  if (op == "<") return sql::BinaryOp::kLt;
  if (op == "<=") return sql::BinaryOp::kLe;
  if (op == ">") return sql::BinaryOp::kGt;
  if (op == ">=") return sql::BinaryOp::kGe;
  // The XQ parser only admits the six operators above; anything else
  // would already have been rejected upstream.
  return sql::BinaryOp::kEq;
}

// --- DNF normalization ------------------------------------------------------

struct Leaf {
  const XqCond* cond;
  bool negated;
};

Status ToDnf(const XqCond& cond, bool negated,
             std::vector<std::vector<Leaf>>* out) {
  switch (cond.kind) {
    case XqCondKind::kNot:
      return ToDnf(*cond.children[0], !negated, out);
    case XqCondKind::kAnd:
    case XqCondKind::kOr: {
      bool is_or = (cond.kind == XqCondKind::kOr) != negated;
      if (is_or) {
        // Union of children's disjuncts.
        for (const XqCondPtr& child : cond.children) {
          XQ_RETURN_IF_ERROR(ToDnf(*child, negated, out));
        }
        return Status::OK();
      }
      // AND: cross product of children's disjunct sets.
      std::vector<std::vector<Leaf>> acc{{}};
      for (const XqCondPtr& child : cond.children) {
        std::vector<std::vector<Leaf>> child_dnf;
        XQ_RETURN_IF_ERROR(ToDnf(*child, negated, &child_dnf));
        std::vector<std::vector<Leaf>> next;
        for (const auto& a : acc) {
          for (const auto& c : child_dnf) {
            std::vector<Leaf> merged = a;
            merged.insert(merged.end(), c.begin(), c.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
        if (acc.size() > 64) {
          return Status::Unsupported(
              "WHERE clause expands to more than 64 disjuncts");
        }
      }
      out->insert(out->end(), std::make_move_iterator(acc.begin()),
                  std::make_move_iterator(acc.end()));
      return Status::OK();
    }
    default:
      out->push_back({Leaf{&cond, negated}});
      return Status::OK();
  }
}

std::string InvertOp(const std::string& op) {
  if (op == "=") return "!=";
  if (op == "!=") return "=";
  if (op == "<") return ">=";
  if (op == "<=") return ">";
  if (op == ">") return "<=";
  if (op == ">=") return "<";
  return op;
}

// --- per-statement builder ---------------------------------------------------

struct VarInfo {
  std::string doc_alias;
  std::string node_alias;
  std::vector<XqStep> binding_steps;
};

class StatementBuilder {
 public:
  StatementBuilder(const std::vector<PathEntry>& dict) : dict_(dict) {}

  void AddFrom(const std::string& table, const std::string& alias) {
    from_.push_back(table + " " + alias);
    from_refs_.push_back({table, alias});
  }
  // Records one WHERE conjunct in both renderings: `cond` is the SQL text
  // (display), `expr` the equivalent AST fragment (execution).
  void AddWhere(std::string cond, sql::ExprPtr expr) {
    where_.push_back(std::move(cond));
    where_exprs_.push_back(std::move(expr));
  }

  std::string NewAlias(const char* prefix) {
    return std::string(prefix) + std::to_string(counter_++);
  }

  // Declares a FOR variable: document + node alias with collection and
  // binding-path constraints.
  Status AddBinding(const XqBinding& binding);

  // Emits the node alias for a path (the variable's own node when the
  // path has no steps). Also translates final-step predicates.
  Result<std::string> EmitPathNode(const XqPath& path);

  // Emits a value-table alias joined to `node_alias`.
  std::string EmitValueAlias(const std::string& node_alias, bool numeric);

  const VarInfo* FindVar(const std::string& var) const {
    auto it = vars_.find(var);
    return it == vars_.end() ? nullptr : &it->second;
  }

  std::string Build(const std::vector<std::string>& select_items,
                    const std::string& order_by) const;

  // Structured counterpart of Build(): moves the accumulated FROM/WHERE
  // state into a SelectStmt. Call once, after Build().
  sql::SelectStmt BuildStmt(std::vector<sql::SelectItem> items,
                            const std::string& order_by);

 private:
  // Constrains `alias` to nodes matching `pattern`.
  void AddPathConstraint(const std::string& alias,
                         const std::vector<XqStep>& pattern);
  // Constrains `alias` to descendants of `anchor` (attributes included).
  void AddContainment(const std::string& alias, const std::string& anchor,
                      bool include_self);
  Status EmitPredicates(const std::string& node_alias,
                        const std::vector<XqStep>& node_pattern,
                        const std::vector<XqPredicate>& predicates);

  const std::vector<PathEntry>& dict_;
  std::vector<std::string> from_;
  std::vector<std::string> where_;
  std::vector<sql::TableRef> from_refs_;
  std::vector<sql::ExprPtr> where_exprs_;
  std::map<std::string, VarInfo> vars_;
  int counter_ = 0;
};

void StatementBuilder::AddPathConstraint(const std::string& alias,
                                         const std::vector<XqStep>& pattern) {
  std::vector<int64_t> ids = ResolvePattern(dict_, pattern);
  if (ids.empty()) {
    // No stored path matches: the statement returns no rows. Emit an
    // always-false constraint so the SQL stays valid.
    AddWhere(alias + ".path_id = -1",
             sql::MakeBinary(sql::BinaryOp::kEq, Col(alias, "path_id"),
                             IntLit(-1)));
    return;
  }
  if (ids.size() == 1) {
    AddWhere(alias + ".path_id = " + std::to_string(ids[0]),
             sql::MakeBinary(sql::BinaryOp::kEq, Col(alias, "path_id"),
                             IntLit(ids[0])));
    return;
  }
  std::string in = alias + ".path_id IN (";
  auto in_expr = std::make_unique<sql::Expr>();
  in_expr->kind = sql::ExprKind::kInList;
  in_expr->left = Col(alias, "path_id");
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) in += ", ";
    in += std::to_string(ids[i]);
    in_expr->list.push_back(IntLit(ids[i]));
  }
  AddWhere(in + ")", std::move(in_expr));
}

void StatementBuilder::AddContainment(const std::string& alias,
                                      const std::string& anchor,
                                      bool include_self) {
  AddWhere(alias + ".doc_id = " + anchor + ".doc_id",
           sql::MakeBinary(sql::BinaryOp::kEq, Col(alias, "doc_id"),
                           Col(anchor, "doc_id")));
  AddWhere(alias + ".ordinal >" + (include_self ? "=" : "") + " " + anchor +
               ".ordinal",
           sql::MakeBinary(
               include_self ? sql::BinaryOp::kGe : sql::BinaryOp::kGt,
               Col(alias, "ordinal"), Col(anchor, "ordinal")));
  AddWhere(alias + ".ordinal <= " + anchor + ".end_ordinal",
           sql::MakeBinary(sql::BinaryOp::kLe, Col(alias, "ordinal"),
                           Col(anchor, "end_ordinal")));
}

Status StatementBuilder::AddBinding(const XqBinding& binding) {
  if (vars_.count(binding.var) > 0) {
    return Status::InvalidArgument("duplicate FOR variable $" + binding.var);
  }
  for (size_t i = 0; i + 1 < binding.steps.size(); ++i) {
    if (!binding.steps[i].predicates.empty()) {
      return Status::Unsupported(
          "predicates on non-final FOR binding steps are not supported");
    }
  }
  VarInfo info;
  info.node_alias = "n_" + binding.var;
  if (!binding.base_var.empty()) {
    // Variable-relative binding: iterate the node set selected from the
    // base variable (same document, containment-joined).
    const VarInfo* base = FindVar(binding.base_var);
    if (base == nullptr) {
      return Status::InvalidArgument("unbound base variable $" +
                                     binding.base_var);
    }
    info.doc_alias = base->doc_alias;
    info.binding_steps = base->binding_steps;
    for (const XqStep& s : binding.steps) info.binding_steps.push_back(s);
    AddFrom(hounds::kNodeTable, info.node_alias);
    AddContainment(info.node_alias, base->node_alias,
                   /*include_self=*/false);
    AddPathConstraint(info.node_alias, info.binding_steps);
    XQ_RETURN_IF_ERROR(EmitPredicates(info.node_alias, info.binding_steps,
                                      binding.steps.back().predicates));
    vars_.emplace(binding.var, std::move(info));
    return Status::OK();
  }
  info.doc_alias = "d_" + binding.var;
  info.binding_steps = binding.steps;
  AddFrom(hounds::kDocumentTable, info.doc_alias);
  AddFrom(hounds::kNodeTable, info.node_alias);
  AddWhere(info.doc_alias + ".collection = " + SqlQuote(binding.collection),
           sql::MakeBinary(sql::BinaryOp::kEq, Col(info.doc_alias, "collection"),
                           sql::MakeLiteral(Value::Text(binding.collection))));
  AddWhere(info.node_alias + ".doc_id = " + info.doc_alias + ".doc_id",
           sql::MakeBinary(sql::BinaryOp::kEq, Col(info.node_alias, "doc_id"),
                           Col(info.doc_alias, "doc_id")));
  AddWhere(info.node_alias + ".kind = " +
               std::to_string(hounds::kKindElement),
           sql::MakeBinary(sql::BinaryOp::kEq, Col(info.node_alias, "kind"),
                           IntLit(hounds::kKindElement)));
  AddPathConstraint(info.node_alias, binding.steps);
  XQ_RETURN_IF_ERROR(EmitPredicates(
      info.node_alias, binding.steps,
      binding.steps.empty() ? std::vector<XqPredicate>{}
                            : binding.steps.back().predicates));
  vars_.emplace(binding.var, std::move(info));
  return Status::OK();
}

Status StatementBuilder::EmitPredicates(
    const std::string& node_alias, const std::vector<XqStep>& node_pattern,
    const std::vector<XqPredicate>& predicates) {
  for (const XqPredicate& pred : predicates) {
    if (pred.is_position) {
      AddWhere(node_alias + ".name_pos = " + std::to_string(pred.position),
               sql::MakeBinary(sql::BinaryOp::kEq, Col(node_alias, "name_pos"),
                               IntLit(pred.position)));
      continue;
    }
    std::vector<XqStep> pattern = node_pattern;
    for (const XqStep& s : pred.path) pattern.push_back(s);
    std::string pred_alias = NewAlias("np");
    AddFrom(hounds::kNodeTable, pred_alias);
    AddContainment(pred_alias, node_alias, /*include_self=*/false);
    AddPathConstraint(pred_alias, pattern);
    bool numeric = pred.literal.type() != ValueType::kText &&
                   pred.op != "=" && pred.op != "!=";
    if (pred.literal.type() != ValueType::kText &&
        (pred.op == "=" || pred.op == "!=")) {
      numeric = true;  // numeric equality compares typed values
    }
    std::string value_alias = EmitValueAlias(pred_alias, numeric);
    AddWhere(value_alias + ".value " + pred.op + " " +
                 LiteralSql(pred.literal),
             sql::MakeBinary(CmpOp(pred.op), Col(value_alias, "value"),
                             sql::MakeLiteral(pred.literal)));
  }
  return Status::OK();
}

Result<std::string> StatementBuilder::EmitPathNode(const XqPath& path) {
  const VarInfo* var = FindVar(path.var);
  if (var == nullptr) {
    return Status::InvalidArgument("unbound variable $" + path.var);
  }
  if (path.steps.empty()) return var->node_alias;
  // Materialize a node alias at every predicated step (and at the final
  // step); between materialization points only the path pattern grows.
  std::string anchor = var->node_alias;
  std::vector<XqStep> pattern = var->binding_steps;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    pattern.push_back(path.steps[i]);
    bool need_node =
        !path.steps[i].predicates.empty() || i + 1 == path.steps.size();
    if (!need_node) continue;
    std::string alias = NewAlias("n");
    AddFrom(hounds::kNodeTable, alias);
    AddContainment(alias, anchor, /*include_self=*/false);
    AddPathConstraint(alias, pattern);
    XQ_RETURN_IF_ERROR(
        EmitPredicates(alias, pattern, path.steps[i].predicates));
    anchor = alias;
  }
  return anchor;
}

std::string StatementBuilder::EmitValueAlias(const std::string& node_alias,
                                             bool numeric) {
  std::string alias = NewAlias(numeric ? "num" : "txt");
  AddFrom(numeric ? hounds::kNumberTable : hounds::kTextTable, alias);
  AddWhere(alias + ".node_id = " + node_alias + ".node_id",
           sql::MakeBinary(sql::BinaryOp::kEq, Col(alias, "node_id"),
                           Col(node_alias, "node_id")));
  return alias;
}

std::string StatementBuilder::Build(
    const std::vector<std::string>& select_items,
    const std::string& order_by) const {
  std::string sql = "SELECT DISTINCT ";
  for (size_t i = 0; i < select_items.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += select_items[i];
  }
  sql += " FROM ";
  for (size_t i = 0; i < from_.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += from_[i];
  }
  if (!where_.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < where_.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += where_[i];
    }
  }
  if (!order_by.empty()) sql += " ORDER BY " + order_by;
  return sql;
}

sql::SelectStmt StatementBuilder::BuildStmt(
    std::vector<sql::SelectItem> items, const std::string& order_by) {
  sql::SelectStmt stmt;
  stmt.distinct = true;
  stmt.items = std::move(items);
  stmt.from = from_refs_;
  // Left-associative AND fold, matching how the SQL parser would bracket
  // the rendered conjunction.
  for (sql::ExprPtr& e : where_exprs_) {
    stmt.where = stmt.where == nullptr
                     ? std::move(e)
                     : sql::MakeBinary(sql::BinaryOp::kAnd,
                                       std::move(stmt.where), std::move(e));
  }
  where_exprs_.clear();
  if (!order_by.empty()) {
    sql::OrderItem item;
    item.expr = sql::MakeColumnRef(order_by);
    stmt.order_by.push_back(std::move(item));
  }
  return stmt;
}

}  // namespace

Result<Translation> Xq2SqlTranslator::Translate(const XQueryAst& ast,
                                                uint64_t read_epoch) {
  if (ast.bindings.empty()) {
    return Status::InvalidArgument("query has no FOR bindings");
  }
  for (const XqBinding& binding : ast.bindings) {
    if (binding.base_var.empty() &&
        warehouse_->FindCollection(binding.collection) == nullptr) {
      return Status::NotFound("unknown collection: " + binding.collection);
    }
  }

  // Load the path dictionary once per translation, at the caller's
  // snapshot epoch: a concurrent warehouse load appending new paths is
  // invisible here exactly as it is to the translated statements' reads.
  std::vector<PathEntry> dict;
  XQ_ASSIGN_OR_RETURN(const rel::Table* path_table,
                      warehouse_->db()->GetTable(hounds::kPathTable));
  path_table->Scan(read_epoch, [&](rel::RowId, const rel::Tuple& t) {
    dict.push_back({t[0].AsInt(), SplitPath(t[1].AsText())});
    return true;
  });

  // DNF of the WHERE clause (single empty disjunct when absent).
  std::vector<std::vector<Leaf>> dnf;
  if (ast.where != nullptr) {
    XQ_RETURN_IF_ERROR(ToDnf(*ast.where, /*negated=*/false, &dnf));
  } else {
    dnf.push_back({});
  }

  Translation out;
  out.constructor_name = ast.constructor_name;
  for (const XqBinding& binding : ast.bindings) {
    if (binding.collection.empty()) continue;
    if (std::find(out.collections.begin(), out.collections.end(),
                  binding.collection) == out.collections.end()) {
      out.collections.push_back(binding.collection);
    }
  }
  for (const XqReturnItem& item : ast.returns) {
    if (!item.alias.empty()) {
      out.column_names.push_back(item.alias);
    } else if (item.path.steps.empty()) {
      out.column_names.push_back(item.path.var + "_doc");
    } else {
      out.column_names.push_back(item.path.steps.back().name);
    }
  }

  for (const std::vector<Leaf>& disjunct : dnf) {
    StatementBuilder builder(dict);
    for (const XqBinding& binding : ast.bindings) {
      XQ_RETURN_IF_ERROR(builder.AddBinding(binding));
    }
    for (const Leaf& leaf : disjunct) {
      const XqCond& cond = *leaf.cond;
      switch (cond.kind) {
        case XqCondKind::kCompare: {
          std::string op = leaf.negated ? InvertOp(cond.op) : cond.op;
          XQ_ASSIGN_OR_RETURN(std::string left_node,
                              builder.EmitPathNode(cond.left));
          if (cond.right_is_path) {
            XQ_ASSIGN_OR_RETURN(std::string right_node,
                                builder.EmitPathNode(cond.right_path));
            bool numeric = op != "=" && op != "!=";
            std::string lv = builder.EmitValueAlias(left_node, numeric);
            std::string rv = builder.EmitValueAlias(right_node, numeric);
            builder.AddWhere(lv + ".value " + op + " " + rv + ".value",
                             sql::MakeBinary(CmpOp(op), Col(lv, "value"),
                                             Col(rv, "value")));
          } else {
            bool numeric = cond.right_literal.type() != ValueType::kText;
            std::string lv = builder.EmitValueAlias(left_node, numeric);
            builder.AddWhere(
                lv + ".value " + op + " " + LiteralSql(cond.right_literal),
                sql::MakeBinary(CmpOp(op), Col(lv, "value"),
                                sql::MakeLiteral(cond.right_literal)));
          }
          break;
        }
        case XqCondKind::kContains: {
          if (leaf.negated) {
            return Status::Unsupported(
                "NOT contains(...) requires set difference and is not "
                "supported");
          }
          XQ_ASSIGN_OR_RETURN(std::string scope_node,
                              builder.EmitPathNode(cond.scope));
          std::string text_alias;
          if (cond.any || cond.scope.steps.empty()) {
            // Subtree keyword search: any text value under the scope node.
            std::string any_node = builder.NewAlias("na");
            builder.AddFrom(hounds::kNodeTable, any_node);
            builder.AddWhere(
                any_node + ".doc_id = " + scope_node + ".doc_id",
                sql::MakeBinary(sql::BinaryOp::kEq, Col(any_node, "doc_id"),
                                Col(scope_node, "doc_id")));
            builder.AddWhere(
                any_node + ".ordinal >= " + scope_node + ".ordinal",
                sql::MakeBinary(sql::BinaryOp::kGe, Col(any_node, "ordinal"),
                                Col(scope_node, "ordinal")));
            builder.AddWhere(
                any_node + ".ordinal <= " + scope_node + ".end_ordinal",
                sql::MakeBinary(sql::BinaryOp::kLe, Col(any_node, "ordinal"),
                                Col(scope_node, "end_ordinal")));
            text_alias = builder.EmitValueAlias(any_node, /*numeric=*/false);
          } else {
            text_alias =
                builder.EmitValueAlias(scope_node, /*numeric=*/false);
          }
          auto contains = std::make_unique<sql::Expr>();
          contains->kind = sql::ExprKind::kContains;
          contains->left = Col(text_alias, "value");
          contains->right = sql::MakeLiteral(Value::Text(cond.keyword));
          builder.AddWhere("CONTAINS(" + text_alias + ".value, " +
                               SqlQuote(cond.keyword) + ")",
                           std::move(contains));
          break;
        }
        case XqCondKind::kOrder: {
          XQ_ASSIGN_OR_RETURN(std::string left_node,
                              builder.EmitPathNode(cond.left));
          XQ_ASSIGN_OR_RETURN(std::string right_node,
                              builder.EmitPathNode(cond.right_path));
          bool before = cond.op == "BEFORE";
          if (leaf.negated) before = !before;
          builder.AddWhere(
              left_node + ".doc_id = " + right_node + ".doc_id",
              sql::MakeBinary(sql::BinaryOp::kEq, Col(left_node, "doc_id"),
                              Col(right_node, "doc_id")));
          builder.AddWhere(
              left_node + ".ordinal " + (before ? "<" : ">") + " " +
                  right_node + ".ordinal",
              sql::MakeBinary(before ? sql::BinaryOp::kLt : sql::BinaryOp::kGt,
                              Col(left_node, "ordinal"),
                              Col(right_node, "ordinal")));
          break;
        }
        default:
          return Status::Internal("non-leaf condition in DNF");
      }
    }

    // RETURN items.
    std::vector<std::string> select_items;
    std::vector<sql::SelectItem> stmt_items;
    for (size_t i = 0; i < ast.returns.size(); ++i) {
      const XqReturnItem& item = ast.returns[i];
      sql::SelectItem si;
      si.alias = out.column_names[i];
      if (item.path.steps.empty()) {
        const VarInfo* var = builder.FindVar(item.path.var);
        if (var == nullptr) {
          return Status::InvalidArgument("unbound variable $" +
                                         item.path.var);
        }
        select_items.push_back(var->doc_alias + ".doc_id AS " +
                               out.column_names[i]);
        si.expr = Col(var->doc_alias, "doc_id");
        stmt_items.push_back(std::move(si));
        continue;
      }
      XQ_ASSIGN_OR_RETURN(std::string node, builder.EmitPathNode(item.path));
      std::string value = builder.EmitValueAlias(node, /*numeric=*/false);
      select_items.push_back(value + ".value AS " + out.column_names[i]);
      si.expr = Col(value, "value");
      stmt_items.push_back(std::move(si));
    }

    std::string order_by = "d_" + ast.bindings.front().var + ".doc_id";
    out.sql.push_back(builder.Build(select_items, order_by));
    out.stmts.push_back(std::make_shared<sql::SelectStmt>(
        builder.BuildStmt(std::move(stmt_items), order_by)));
  }
  return out;
}

}  // namespace xomatiq::xq
