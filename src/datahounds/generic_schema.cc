#include "datahounds/generic_schema.h"

namespace xomatiq::hounds {

using common::Status;
using rel::Column;
using rel::Database;
using rel::IndexDef;
using rel::IndexKind;
using rel::Schema;
using rel::ValueType;

namespace {

Status EnsureTable(Database* db, const std::string& name,
                   std::vector<Column> columns) {
  if (db->HasTable(name)) return Status::OK();
  return db->CreateTable(name, Schema(std::move(columns)));
}

Status EnsureIndex(Database* db, IndexDef def) {
  if (db->FindIndexByName(def.name) != nullptr) return Status::OK();
  return db->CreateIndex(def);
}

struct IndexSpec {
  const char* name;
  const char* table;
  std::vector<std::string> columns;
  IndexKind kind;
  bool unique;
};

const std::vector<IndexSpec>& IndexSpecs() {
  static const auto* kSpecs = new std::vector<IndexSpec>{
      {"idx_doc_id", kDocumentTable, {"doc_id"}, IndexKind::kHash, true},
      {"idx_doc_collection", kDocumentTable, {"collection"},
       IndexKind::kBTree, false},
      {"idx_doc_uri", kDocumentTable, {"uri"}, IndexKind::kHash, true},
      {"idx_name_text", kNameTable, {"name"}, IndexKind::kHash, true},
      {"idx_name_id", kNameTable, {"name_id"}, IndexKind::kHash, true},
      {"idx_path_text", kPathTable, {"path"}, IndexKind::kHash, true},
      {"idx_path_id", kPathTable, {"path_id"}, IndexKind::kHash, true},
      {"idx_node_id", kNodeTable, {"node_id"}, IndexKind::kHash, true},
      {"idx_node_path", kNodeTable, {"path_id"}, IndexKind::kBTree, false},
      {"idx_node_parent", kNodeTable, {"parent_id"}, IndexKind::kBTree,
       false},
      {"idx_node_doc_ord", kNodeTable, {"doc_id", "ordinal"},
       IndexKind::kBTree, false},
      {"idx_text_node", kTextTable, {"node_id"}, IndexKind::kHash, false},
      {"idx_text_value", kTextTable, {"value"}, IndexKind::kBTree, false},
      {"idx_text_keyword", kTextTable, {"value"}, IndexKind::kInverted,
       false},
      {"idx_number_node", kNumberTable, {"node_id"}, IndexKind::kHash,
       false},
      {"idx_number_value", kNumberTable, {"value"}, IndexKind::kBTree,
       false},
      {"idx_sequence_node", kSequenceTable, {"node_id"}, IndexKind::kHash,
       false},
      {"idx_collection_name", kCollectionTable, {"collection"},
       IndexKind::kHash, true},
  };
  return *kSpecs;
}

}  // namespace

Status EnsureGenericTables(Database* db) {
  XQ_RETURN_IF_ERROR(EnsureTable(
      db, kDocumentTable,
      {{"doc_id", ValueType::kInt, true},
       {"collection", ValueType::kText, true},
       {"uri", ValueType::kText, true},
       {"root_node", ValueType::kInt, false},
       {"content_hash", ValueType::kInt, false}}));
  XQ_RETURN_IF_ERROR(EnsureTable(db, kNameTable,
                                 {{"name_id", ValueType::kInt, true},
                                  {"name", ValueType::kText, true}}));
  XQ_RETURN_IF_ERROR(EnsureTable(db, kPathTable,
                                 {{"path_id", ValueType::kInt, true},
                                  {"path", ValueType::kText, true}}));
  XQ_RETURN_IF_ERROR(EnsureTable(
      db, kNodeTable,
      {{"doc_id", ValueType::kInt, true},
       {"node_id", ValueType::kInt, true},
       {"parent_id", ValueType::kInt, true},
       {"kind", ValueType::kInt, true},
       {"name_id", ValueType::kInt, true},
       {"path_id", ValueType::kInt, true},
       {"ordinal", ValueType::kInt, true},
       {"end_ordinal", ValueType::kInt, true},
       {"sibling_pos", ValueType::kInt, true},
       {"depth", ValueType::kInt, true},
       // 1-based rank among same-name siblings; backs positional
       // predicates like reference[2] (order as data, §2.2).
       {"name_pos", ValueType::kInt, true}}));
  XQ_RETURN_IF_ERROR(EnsureTable(db, kTextTable,
                                 {{"node_id", ValueType::kInt, true},
                                  {"doc_id", ValueType::kInt, true},
                                  {"value", ValueType::kText, true}}));
  XQ_RETURN_IF_ERROR(EnsureTable(db, kNumberTable,
                                 {{"node_id", ValueType::kInt, true},
                                  {"doc_id", ValueType::kInt, true},
                                  {"value", ValueType::kDouble, true}}));
  XQ_RETURN_IF_ERROR(EnsureTable(db, kSequenceTable,
                                 {{"node_id", ValueType::kInt, true},
                                  {"doc_id", ValueType::kInt, true},
                                  {"residues", ValueType::kText, true},
                                  {"length", ValueType::kInt, true}}));
  XQ_RETURN_IF_ERROR(EnsureTable(db, kCollectionTable,
                                 {{"collection", ValueType::kText, true},
                                  {"root_element", ValueType::kText, true},
                                  {"dtd", ValueType::kText, false},
                                  {"source", ValueType::kText, false}}));
  return Status::OK();
}

Status EnsureGenericIndexes(Database* db) {
  for (const IndexSpec& spec : IndexSpecs()) {
    IndexDef def;
    def.name = spec.name;
    def.table = spec.table;
    def.columns = spec.columns;
    def.kind = spec.kind;
    def.unique = spec.unique;
    XQ_RETURN_IF_ERROR(EnsureIndex(db, def));
  }
  return Status::OK();
}

std::vector<std::string> GenericIndexNames() {
  std::vector<std::string> names;
  for (const IndexSpec& spec : IndexSpecs()) names.push_back(spec.name);
  return names;
}

Status DropGenericIndexes(Database* db) {
  for (const IndexSpec& spec : IndexSpecs()) {
    if (db->FindIndexByName(spec.name) != nullptr) {
      XQ_RETURN_IF_ERROR(db->DropIndex(spec.name));
    }
  }
  return Status::OK();
}

}  // namespace xomatiq::hounds
