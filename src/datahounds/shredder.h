#ifndef XOMATIQ_DATAHOUNDS_SHREDDER_H_
#define XOMATIQ_DATAHOUNDS_SHREDDER_H_

#include <set>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "relational/database.h"
#include "xml/dom.h"

namespace xomatiq::hounds {

// XML2Relational-Transformer (paper §2.2): loads XML documents into the
// generic relational schema and reconstructs them back.
//
// Design decisions mirrored from the paper:
//   - document order as data: pre-order `ordinal` plus subtree
//     `end_ordinal` per node (interval containment);
//   - string vs numeric data: every leaf value lands in xml_text (lossless
//     reconstruction); values that parse as numbers are additionally
//     projected into xml_number for typed comparisons;
//   - sequence vs non-sequence data: elements named in
//     `sequence_elements` are stored in xml_sequence and excluded from the
//     keyword index (no tokenizing DNA);
//   - keyword search: xml_text carries an inverted index.
//
// Restriction: mixed content (text interleaved with child elements) is
// rejected — the Data Hounds transformers only emit data-centric XML.
class Shredder {
 public:
  explicit Shredder(rel::Database* db) : db_(db) {}

  // Loads dictionaries and id counters from existing tables. Must be
  // called once after the generic tables exist (re-callable after reopen).
  common::Status Init();

  struct ShredStats {
    int64_t doc_id = 0;
    size_t nodes = 0;
    size_t attributes = 0;
    size_t text_values = 0;
    size_t numeric_values = 0;
    size_t sequence_values = 0;
  };

  // Shreds one document into the store under `collection`/`uri`.
  common::Result<ShredStats> ShredDocument(
      const xml::XmlDocument& doc, const std::string& collection,
      const std::string& uri, const std::set<std::string>& sequence_elements,
      int64_t content_hash);

  // Removes every row belonging to `doc_id`.
  common::Status DeleteDocument(int64_t doc_id);

  // Rebuilds the full document from tuples, order preserved
  // (Relation2XML's "expensive reconstruction" path, §3.3). `epoch` is
  // the snapshot epoch reads evaluate against (kEpochMax = latest, for
  // writer/single-threaded contexts); the caller owns the snapshot.
  common::Result<xml::XmlDocument> ReconstructDocument(
      int64_t doc_id, uint64_t epoch = rel::kEpochMax);

  int64_t next_doc_id() const { return next_doc_id_; }

 private:
  common::Result<int64_t> InternName(const std::string& name);
  common::Result<int64_t> InternPath(const std::string& path);
  common::Status ShredElement(const xml::XmlNode& element,
                              const std::string& parent_path,
                              int64_t doc_id, int64_t parent_id,
                              int64_t sibling_pos, int64_t name_pos,
                              int64_t depth,
                              const std::set<std::string>& sequence_elements,
                              int64_t* ordinal, ShredStats* stats);

  rel::Database* db_;
  int64_t next_doc_id_ = 1;
  int64_t next_node_id_ = 1;
  std::unordered_map<std::string, int64_t> name_ids_;
  std::unordered_map<std::string, int64_t> path_ids_;
};

}  // namespace xomatiq::hounds

#endif  // XOMATIQ_DATAHOUNDS_SHREDDER_H_
