#ifndef XOMATIQ_DATAHOUNDS_WAREHOUSE_H_
#define XOMATIQ_DATAHOUNDS_WAREHOUSE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "datahounds/shredder.h"
#include "datahounds/xml_transformer.h"
#include "relational/database.h"
#include "xml/dtd.h"

namespace xomatiq::hounds {

// A change applied to the warehouse by an incremental sync. Data Hounds
// "sends out triggers to related applications, indicating changes to the
// warehouse" (paper §2.2 end).
struct ChangeEvent {
  enum class Kind { kAdded, kUpdated, kRemoved };
  Kind kind = Kind::kAdded;
  std::string collection;
  std::string uri;
  int64_t doc_id = 0;
};

struct UpdateStats {
  size_t added = 0;
  size_t updated = 0;
  size_t removed = 0;
  size_t unchanged = 0;
};

// The local warehouse (paper Fig 1 bottom): owns the generic schema inside
// an embedded relational database, loads sources through their
// XML-Transformers, validates against the per-source DTD, shreds, and
// keeps collections fresh via content-hash diffing with change triggers.
//
// Thread-safety / locking rules (MVCC-lite; DESIGN.md "Concurrency &
// snapshots"):
//   - Mutating entry points (LoadSource, SyncSource, LoadDocument,
//     RemoveDocument) run under one rel::WriteGuard each: the whole load
//     or sync commits as ONE write batch, whose epoch publishes on guard
//     release. Concurrent snapshot readers are never blocked and never
//     observe a half-applied load — they read at their own epoch.
//   - Read entry points (DocumentsIn, FindDocument, ReconstructDocument)
//     pin a rel::Snapshot and read latch-free at its epoch, fully
//     concurrent with an in-flight sync.
//   - The collection map and trigger-subscriber list are guarded by their
//     own shared_mutex (`mu_`), always acquired AFTER the write latch,
//     never while waiting on it — the two form a fixed order.
//   - Collections are never erased, so a Collection* from FindCollection
//     stays valid (and immutable) for the warehouse's lifetime.
//   - ChangeEvent callbacks run on the syncing thread AFTER the batch's
//     epoch is published and the write latch released (WriteGuard::Defer):
//     a subscriber may query back into the database — and is guaranteed
//     to see the change it is being told about.
class Warehouse {
 public:
  // `db` must outlive the warehouse. Creates the generic schema and
  // production indexes when absent and loads collection metadata.
  static common::Result<std::unique_ptr<Warehouse>> Open(rel::Database* db);

  struct Collection {
    std::string name;          // e.g. "hlx_enzyme.DEFAULT"
    std::string root_element;  // e.g. "hlx_enzyme"
    std::string source;        // transformer source_name()
    std::string dtd_text;
    xml::Dtd dtd;
    std::set<std::string> sequence_elements;
  };

  // Declares a collection fed by `transformer` (idempotent).
  common::Status RegisterCollection(const std::string& collection,
                                    const XmlTransformer& transformer);

  struct LoadStats {
    size_t documents = 0;
    size_t nodes = 0;
    size_t text_values = 0;
    size_t numeric_values = 0;
    size_t sequence_values = 0;
    size_t validation_errors = 0;
  };

  // Full load: transforms `raw` flat-file content, validates each document
  // against the collection DTD (hard error on violation), shreds. Intended
  // for the initial harvest; use SyncSource for refreshes.
  common::Result<LoadStats> LoadSource(const std::string& collection,
                                       const XmlTransformer& transformer,
                                       std::string_view raw);

  // Incremental update: diffs transformed entries against warehoused
  // documents by uri + content hash; applies adds/updates/removes and
  // fires triggers.
  common::Result<UpdateStats> SyncSource(const std::string& collection,
                                         const XmlTransformer& transformer,
                                         std::string_view raw);

  // Subscribes a trigger callback for warehouse changes. Callbacks are
  // never unsubscribed: they must outlive the warehouse or capture
  // weak/shared state they can safely outlive (see the class comment).
  void Subscribe(std::function<void(const ChangeEvent&)> callback);

  // Loads one already-built XML document (validated) into `collection`.
  common::Result<int64_t> LoadDocument(const std::string& collection,
                                       const xml::XmlDocument& doc,
                                       const std::string& uri);

  common::Status RemoveDocument(int64_t doc_id);

  common::Result<xml::XmlDocument> ReconstructDocument(int64_t doc_id);

  // doc_ids of every document in `collection`, ascending.
  common::Result<std::vector<int64_t>> DocumentsIn(
      const std::string& collection) const;
  // doc_id for `uri`, or NotFound.
  common::Result<int64_t> FindDocument(const std::string& uri) const;

  const Collection* FindCollection(const std::string& name) const;
  std::vector<std::string> CollectionNames() const;

  rel::Database* db() { return db_; }
  Shredder* shredder() { return shredder_.get(); }

 private:
  explicit Warehouse(rel::Database* db) : db_(db) {}

  void Fire(const ChangeEvent& event);
  common::Status LoadCollectionsFromCatalog();
  // RegisterCollection body; caller must hold a rel::WriteGuard.
  common::Status RegisterCollectionLocked(const std::string& collection,
                                          const XmlTransformer& transformer);

  rel::Database* db_;
  std::unique_ptr<Shredder> shredder_;
  // Guards collections_ and subscribers_; acquired after the write latch when
  // both are needed (see class comment).
  mutable std::shared_mutex mu_;
  std::map<std::string, Collection> collections_;
  std::vector<std::function<void(const ChangeEvent&)>> subscribers_;
};

// Content hash used for update detection (CRC32 of the compact
// serialization, sign-extended into an INT column).
int64_t ContentHash(const xml::XmlDocument& doc);

}  // namespace xomatiq::hounds

#endif  // XOMATIQ_DATAHOUNDS_WAREHOUSE_H_
