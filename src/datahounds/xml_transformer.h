#ifndef XOMATIQ_DATAHOUNDS_XML_TRANSFORMER_H_
#define XOMATIQ_DATAHOUNDS_XML_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "flatfile/embl.h"
#include "flatfile/enzyme.h"
#include "flatfile/swissprot.h"
#include "xml/dom.h"
#include "xml/dtd.h"

namespace xomatiq::hounds {

// One transformed document plus its stable entry key (used by incremental
// updates to correlate warehouse documents with remote entries).
struct TransformedDocument {
  std::string uri;  // e.g. "enzyme:1.14.17.3"
  xml::XmlDocument document;
};

// XML-Transformer module (paper §2.1): converts one biological source's
// flat-file data into per-entry XML documents governed by a DTD. One
// subclass per source, mirroring the paper's "each database requires a
// special transformer".
class XmlTransformer {
 public:
  virtual ~XmlTransformer() = default;

  // Source tag, e.g. "enzyme".
  virtual std::string source_name() const = 0;
  // DTD text for the produced documents (the paper's Fig 5 artifact for
  // ENZYME).
  virtual std::string dtd_text() const = 0;
  // Name of the root element of every produced document.
  virtual std::string root_element() const = 0;
  // Element names whose character content is biological sequence data
  // (routed to the dedicated sequence table by the shredder, per §2.2).
  virtual std::vector<std::string> sequence_elements() const { return {}; }

  // Transforms raw flat-file content into one XML document per entry.
  virtual common::Result<std::vector<TransformedDocument>> Transform(
      std::string_view raw) const = 0;
};

// --- ENZYME ------------------------------------------------------------

class EnzymeXmlTransformer : public XmlTransformer {
 public:
  std::string source_name() const override { return "enzyme"; }
  std::string dtd_text() const override;
  std::string root_element() const override { return "hlx_enzyme"; }
  common::Result<std::vector<TransformedDocument>> Transform(
      std::string_view raw) const override;

  // Converts one parsed entry (regenerates the paper's Fig 6 document).
  static xml::XmlDocument EntryToXml(const flatfile::EnzymeEntry& entry);
  // Inverse mapping, used by round-trip property tests.
  static common::Result<flatfile::EnzymeEntry> XmlToEntry(
      const xml::XmlNode& root);
};

// --- EMBL ----------------------------------------------------------------

class EmblXmlTransformer : public XmlTransformer {
 public:
  std::string source_name() const override { return "embl"; }
  std::string dtd_text() const override;
  std::string root_element() const override { return "hlx_n_sequence"; }
  std::vector<std::string> sequence_elements() const override {
    return {"sequence"};
  }
  common::Result<std::vector<TransformedDocument>> Transform(
      std::string_view raw) const override;

  static xml::XmlDocument EntryToXml(const flatfile::EmblEntry& entry);
  static common::Result<flatfile::EmblEntry> XmlToEntry(
      const xml::XmlNode& root);
};

// --- Swiss-Prot -----------------------------------------------------------

class SwissProtXmlTransformer : public XmlTransformer {
 public:
  std::string source_name() const override { return "sprot"; }
  std::string dtd_text() const override;
  std::string root_element() const override { return "hlx_n_sequence"; }
  std::vector<std::string> sequence_elements() const override {
    return {"sequence"};
  }
  common::Result<std::vector<TransformedDocument>> Transform(
      std::string_view raw) const override;

  static xml::XmlDocument EntryToXml(const flatfile::SwissProtEntry& entry);
  static common::Result<flatfile::SwissProtEntry> XmlToEntry(
      const xml::XmlNode& root);
};

}  // namespace xomatiq::hounds

#endif  // XOMATIQ_DATAHOUNDS_XML_TRANSFORMER_H_
