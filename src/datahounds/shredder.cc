#include "datahounds/shredder.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "common/string_util.h"
#include "datahounds/generic_schema.h"

namespace xomatiq::hounds {

using common::Result;
using common::Status;
using rel::RowId;
using rel::Tuple;
using rel::Value;
using xml::NodeKind;
using xml::XmlDocument;
using xml::XmlNode;

// Column positions follow the table definitions in generic_schema.cc.
namespace {
constexpr size_t kNodeDocId = 0;
constexpr size_t kNodeNodeId = 1;
constexpr size_t kNodeParentId = 2;
constexpr size_t kNodeKind = 3;
constexpr size_t kNodeNameId = 4;
constexpr size_t kNodeOrdinal = 6;
constexpr size_t kValueNodeId = 0;
constexpr size_t kValueValue = 2;
constexpr size_t kSeqResidues = 2;
}  // namespace

Status Shredder::Init() {
  name_ids_.clear();
  path_ids_.clear();
  next_doc_id_ = 1;
  next_node_id_ = 1;
  XQ_ASSIGN_OR_RETURN(const rel::Table* names, db_->GetTable(kNameTable));
  names->Scan([&](RowId, const Tuple& t) {
    name_ids_[t[1].AsText()] = t[0].AsInt();
    return true;
  });
  XQ_ASSIGN_OR_RETURN(const rel::Table* paths, db_->GetTable(kPathTable));
  paths->Scan([&](RowId, const Tuple& t) {
    path_ids_[t[1].AsText()] = t[0].AsInt();
    return true;
  });
  XQ_ASSIGN_OR_RETURN(const rel::Table* docs, db_->GetTable(kDocumentTable));
  docs->Scan([&](RowId, const Tuple& t) {
    next_doc_id_ = std::max(next_doc_id_, t[0].AsInt() + 1);
    return true;
  });
  XQ_ASSIGN_OR_RETURN(const rel::Table* nodes, db_->GetTable(kNodeTable));
  nodes->Scan([&](RowId, const Tuple& t) {
    next_node_id_ = std::max(next_node_id_, t[kNodeNodeId].AsInt() + 1);
    return true;
  });
  return Status::OK();
}

Result<int64_t> Shredder::InternName(const std::string& name) {
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  int64_t id = static_cast<int64_t>(name_ids_.size()) + 1;
  XQ_RETURN_IF_ERROR(
      db_->Insert(kNameTable, {Value::Int(id), Value::Text(name)}).status());
  name_ids_[name] = id;
  return id;
}

Result<int64_t> Shredder::InternPath(const std::string& path) {
  auto it = path_ids_.find(path);
  if (it != path_ids_.end()) return it->second;
  int64_t id = static_cast<int64_t>(path_ids_.size()) + 1;
  XQ_RETURN_IF_ERROR(
      db_->Insert(kPathTable, {Value::Int(id), Value::Text(path)}).status());
  path_ids_[path] = id;
  return id;
}

Status Shredder::ShredElement(const XmlNode& element,
                              const std::string& parent_path, int64_t doc_id,
                              int64_t parent_id, int64_t sibling_pos,
                              int64_t name_pos, int64_t depth,
                              const std::set<std::string>& sequence_elements,
                              int64_t* ordinal, ShredStats* stats) {
  const std::string path = parent_path + "/" + element.name();
  XQ_ASSIGN_OR_RETURN(int64_t name_id, InternName(element.name()));
  XQ_ASSIGN_OR_RETURN(int64_t path_id, InternPath(path));
  const int64_t my_ordinal = (*ordinal)++;
  const int64_t node_id = next_node_id_++;
  ++stats->nodes;

  // Store a leaf value. Every value keeps its exact text (lossless
  // reconstruction); numeric-looking values get a typed projection.
  auto store_value = [&](int64_t value_node, const std::string& text,
                         bool as_sequence) -> Status {
    if (as_sequence) {
      XQ_RETURN_IF_ERROR(db_->Insert(kSequenceTable,
                                     {Value::Int(value_node),
                                      Value::Int(doc_id), Value::Text(text),
                                      Value::Int(static_cast<int64_t>(
                                          text.size()))})
                             .status());
      ++stats->sequence_values;
      return Status::OK();
    }
    XQ_RETURN_IF_ERROR(db_->Insert(kTextTable,
                                   {Value::Int(value_node), Value::Int(doc_id),
                                    Value::Text(text)})
                           .status());
    ++stats->text_values;
    if (auto number = common::ParseDouble(text)) {
      XQ_RETURN_IF_ERROR(db_->Insert(kNumberTable,
                                     {Value::Int(value_node),
                                      Value::Int(doc_id),
                                      Value::Double(*number)})
                             .status());
      ++stats->numeric_values;
    }
    return Status::OK();
  };

  // Attributes come right after their element in document order.
  int64_t attr_pos = 0;
  for (const xml::XmlAttribute& attr : element.attributes()) {
    XQ_ASSIGN_OR_RETURN(int64_t attr_name_id, InternName(attr.name));
    XQ_ASSIGN_OR_RETURN(int64_t attr_path_id,
                        InternPath(path + "/@" + attr.name));
    int64_t attr_ordinal = (*ordinal)++;
    int64_t attr_node_id = next_node_id_++;
    XQ_RETURN_IF_ERROR(
        db_->Insert(kNodeTable,
                    {Value::Int(doc_id), Value::Int(attr_node_id),
                     Value::Int(node_id), Value::Int(kKindAttribute),
                     Value::Int(attr_name_id), Value::Int(attr_path_id),
                     Value::Int(attr_ordinal), Value::Int(attr_ordinal),
                     Value::Int(attr_pos), Value::Int(depth + 1),
                     Value::Int(attr_pos + 1)})
            .status());
    ++attr_pos;
    ++stats->attributes;
    XQ_RETURN_IF_ERROR(store_value(attr_node_id, attr.value, false));
  }

  // Classify content.
  std::string text;
  bool has_element_children = false;
  for (const auto& child : element.children()) {
    if (child->kind() == NodeKind::kElement) {
      has_element_children = true;
    } else if (child->kind() == NodeKind::kText) {
      text += child->value();
    }
  }
  if (has_element_children &&
      !common::StripWhitespace(text).empty()) {
    return Status::Unsupported(
        "mixed content in <" + element.name() +
        "> is not supported by the shredder (data-centric XML only)");
  }

  if (has_element_children) {
    int64_t child_pos = 0;
    std::unordered_map<std::string, int64_t> name_counts;
    for (const auto& child : element.children()) {
      if (child->kind() != NodeKind::kElement) continue;
      int64_t child_name_pos = ++name_counts[child->name()];
      XQ_RETURN_IF_ERROR(ShredElement(*child, path, doc_id, node_id,
                                      child_pos++, child_name_pos, depth + 1,
                                      sequence_elements, ordinal, stats));
    }
  } else if (!text.empty()) {
    XQ_RETURN_IF_ERROR(store_value(
        node_id, text, sequence_elements.count(element.name()) > 0));
  }

  const int64_t end_ordinal = *ordinal - 1;
  return db_
      ->Insert(kNodeTable,
               {Value::Int(doc_id), Value::Int(node_id),
                Value::Int(parent_id), Value::Int(kKindElement),
                Value::Int(name_id), Value::Int(path_id),
                Value::Int(my_ordinal), Value::Int(end_ordinal),
                Value::Int(sibling_pos), Value::Int(depth),
                Value::Int(name_pos)})
      .status();
}

Result<Shredder::ShredStats> Shredder::ShredDocument(
    const XmlDocument& doc, const std::string& collection,
    const std::string& uri, const std::set<std::string>& sequence_elements,
    int64_t content_hash) {
  const XmlNode* root = doc.root();
  if (root == nullptr) {
    return Status::InvalidArgument("document has no root element");
  }
  ShredStats stats;
  stats.doc_id = next_doc_id_++;
  int64_t ordinal = 1;
  int64_t root_node_id = next_node_id_;  // root is created first
  // The document row goes in first: a duplicate uri then fails on the
  // unique index before any node/value rows exist (no orphans).
  XQ_RETURN_IF_ERROR(
      db_->Insert(kDocumentTable,
                  {Value::Int(stats.doc_id), Value::Text(collection),
                   Value::Text(uri), Value::Int(root_node_id),
                   Value::Int(content_hash)})
          .status());
  XQ_RETURN_IF_ERROR(ShredElement(*root, "", stats.doc_id, kNoParent,
                                  /*sibling_pos=*/0, /*name_pos=*/1,
                                  /*depth=*/0, sequence_elements, &ordinal,
                                  &stats));
  return stats;
}

namespace {

// Rows of `table` whose `node_id` column equals `node_id`; uses the hash
// index when present, else scans (keeps working mid index ablation).
// `epoch` is the snapshot epoch for reader context (kEpochMax in writer
// context). Indexes are single-version: probes copy RowIds under the
// entry's shared latch, then fetch visible tuples and re-verify the key.
Result<std::vector<Tuple>> RowsForNode(rel::Database* db,
                                       const std::string& table,
                                       const std::string& index_name,
                                       int64_t node_id, uint64_t epoch) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* t, db->GetTable(table));
  std::vector<Tuple> rows;
  const rel::IndexEntry* idx = db->FindIndexByName(index_name);
  if (idx != nullptr) {
    std::vector<RowId> row_ids;
    {
      std::shared_lock lk(idx->latch);
      const std::vector<RowId>* found =
          idx->hash->Lookup({Value::Int(node_id)});
      if (found != nullptr) row_ids = *found;
    }
    for (RowId row : row_ids) {
      auto tuple = t->Get(row, epoch);
      if (!tuple.ok()) {
        // Not visible at this snapshot (inserted later / reclaimed): the
        // index is single-version, so skip rather than fail.
        if (tuple.status().code() == common::StatusCode::kNotFound) continue;
        return tuple.status();
      }
      if ((**tuple)[kValueNodeId].AsInt() != node_id) continue;
      rows.push_back(**tuple);
    }
    return rows;
  }
  t->Scan(epoch, [&](RowId, const Tuple& tuple) {
    if (tuple[kValueNodeId].AsInt() == node_id) rows.push_back(tuple);
    return true;
  });
  return rows;
}

// RowIds of `table` rows whose `node_id` matches (for deletes).
Result<std::vector<RowId>> RowIdsForNode(rel::Database* db,
                                         const std::string& table,
                                         const std::string& index_name,
                                         int64_t node_id) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* t, db->GetTable(table));
  std::vector<RowId> rows;
  const rel::IndexEntry* idx = db->FindIndexByName(index_name);
  if (idx != nullptr) {
    const std::vector<RowId>* found =
        idx->hash->Lookup({Value::Int(node_id)});
    if (found != nullptr) rows = *found;
    return rows;
  }
  t->Scan([&](RowId row, const Tuple& tuple) {
    if (tuple[kValueNodeId].AsInt() == node_id) rows.push_back(row);
    return true;
  });
  return rows;
}

// (RowId, tuple) of all xml_node rows of `doc_id`, ordered by ordinal.
// `epoch` as in RowsForNode.
Result<std::vector<std::pair<RowId, Tuple>>> DocNodes(rel::Database* db,
                                                      int64_t doc_id,
                                                      uint64_t epoch) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* nodes, db->GetTable(kNodeTable));
  std::vector<std::pair<RowId, Tuple>> out;
  const rel::IndexEntry* idx = db->FindIndexByName("idx_node_doc_ord");
  if (idx != nullptr) {
    // Collect RowIds (already in ordinal order) under the shared entry
    // latch, then fetch: the latch is never held across heap reads.
    std::vector<RowId> row_ids;
    {
      std::shared_lock lk(idx->latch);
      idx->btree->ScanPrefix(
          {Value::Int(doc_id)},
          [&](const rel::CompositeKey&, const std::vector<RowId>& rows) {
            row_ids.insert(row_ids.end(), rows.begin(), rows.end());
            return true;
          });
    }
    for (RowId row : row_ids) {
      auto tuple = nodes->Get(row, epoch);
      if (!tuple.ok()) {
        if (tuple.status().code() == common::StatusCode::kNotFound) continue;
        return tuple.status();
      }
      if ((**tuple)[kNodeDocId].AsInt() != doc_id) continue;
      out.emplace_back(row, **tuple);
    }
    return out;
  }
  nodes->Scan(epoch, [&](RowId row, const Tuple& tuple) {
    if (tuple[kNodeDocId].AsInt() == doc_id) out.emplace_back(row, tuple);
    return true;
  });
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second[kNodeOrdinal].AsInt() < b.second[kNodeOrdinal].AsInt();
  });
  return out;
}

}  // namespace

Status Shredder::DeleteDocument(int64_t doc_id) {
  XQ_ASSIGN_OR_RETURN(auto nodes, DocNodes(db_, doc_id, rel::kEpochMax));
  for (const auto& [row, tuple] : nodes) {
    int64_t node_id = tuple[kNodeNodeId].AsInt();
    for (const auto& [table, index] :
         std::initializer_list<std::pair<const char*, const char*>>{
             {kTextTable, "idx_text_node"},
             {kNumberTable, "idx_number_node"},
             {kSequenceTable, "idx_sequence_node"}}) {
      XQ_ASSIGN_OR_RETURN(std::vector<RowId> value_rows,
                          RowIdsForNode(db_, table, index, node_id));
      for (RowId value_row : value_rows) {
        XQ_RETURN_IF_ERROR(db_->Delete(table, value_row));
      }
    }
    XQ_RETURN_IF_ERROR(db_->Delete(kNodeTable, row));
  }
  // Document row.
  XQ_ASSIGN_OR_RETURN(const rel::Table* docs, db_->GetTable(kDocumentTable));
  std::vector<RowId> doc_rows;
  docs->Scan([&](RowId row, const Tuple& tuple) {
    if (tuple[0].AsInt() == doc_id) doc_rows.push_back(row);
    return true;
  });
  if (doc_rows.empty()) {
    return Status::NotFound("no document with id " + std::to_string(doc_id));
  }
  for (RowId row : doc_rows) {
    XQ_RETURN_IF_ERROR(db_->Delete(kDocumentTable, row));
  }
  return Status::OK();
}

Result<XmlDocument> Shredder::ReconstructDocument(int64_t doc_id,
                                                  uint64_t epoch) {
  // Reverse name dictionary.
  std::unordered_map<int64_t, std::string> names;
  XQ_ASSIGN_OR_RETURN(const rel::Table* name_table, db_->GetTable(kNameTable));
  name_table->Scan(epoch, [&](RowId, const Tuple& t) {
    names[t[0].AsInt()] = t[1].AsText();
    return true;
  });

  XQ_ASSIGN_OR_RETURN(auto rows, DocNodes(db_, doc_id, epoch));
  if (rows.empty()) {
    return Status::NotFound("no document with id " + std::to_string(doc_id));
  }

  XmlDocument doc;
  std::unordered_map<int64_t, XmlNode*> by_id;
  for (const auto& [row, tuple] : rows) {
    int64_t node_id = tuple[kNodeNodeId].AsInt();
    int64_t parent_id = tuple[kNodeParentId].AsInt();
    int64_t kind = tuple[kNodeKind].AsInt();
    auto name_it = names.find(tuple[kNodeNameId].AsInt());
    if (name_it == names.end()) {
      return Status::Corruption("dangling name_id in xml_node");
    }
    const std::string& name = name_it->second;

    if (kind == kKindAttribute) {
      auto parent_it = by_id.find(parent_id);
      if (parent_it == by_id.end()) {
        return Status::Corruption("attribute before its element");
      }
      XQ_ASSIGN_OR_RETURN(
          std::vector<Tuple> values,
          RowsForNode(db_, kTextTable, "idx_text_node", node_id, epoch));
      std::string value;
      if (!values.empty()) value = values.front()[kValueValue].AsText();
      parent_it->second->AddAttribute(name, std::move(value));
      continue;
    }
    XmlNode* element;
    if (parent_id == kNoParent) {
      element = doc.CreateRoot(name);
      doc.set_doctype_name(name);
    } else {
      auto parent_it = by_id.find(parent_id);
      if (parent_it == by_id.end()) {
        return Status::Corruption("child before its parent in ordinal order");
      }
      element = parent_it->second->AddElement(name);
    }
    by_id[node_id] = element;
    // Leaf value, if any: exact text from xml_text, or sequence residues.
    XQ_ASSIGN_OR_RETURN(
        std::vector<Tuple> text_rows,
        RowsForNode(db_, kTextTable, "idx_text_node", node_id, epoch));
    if (!text_rows.empty()) {
      element->AddText(text_rows.front()[kValueValue].AsText());
      continue;
    }
    XQ_ASSIGN_OR_RETURN(
        std::vector<Tuple> seq_rows,
        RowsForNode(db_, kSequenceTable, "idx_sequence_node", node_id, epoch));
    if (!seq_rows.empty()) {
      element->AddText(seq_rows.front()[kSeqResidues].AsText());
    }
  }
  return doc;
}

}  // namespace xomatiq::hounds
