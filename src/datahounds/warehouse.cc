#include "datahounds/warehouse.h"

#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "datahounds/generic_schema.h"
#include "relational/serde.h"
#include "xml/writer.h"

namespace xomatiq::hounds {

using common::Result;
using common::Status;
using rel::RowId;
using rel::Tuple;
using rel::Value;

int64_t ContentHash(const xml::XmlDocument& doc) {
  xml::WriteOptions options;
  options.pretty = false;
  options.declaration = false;
  return static_cast<int64_t>(rel::Crc32(xml::WriteXml(doc, options)));
}

Result<std::unique_ptr<Warehouse>> Warehouse::Open(rel::Database* db) {
  std::unique_ptr<Warehouse> warehouse(new Warehouse(db));
  XQ_RETURN_IF_ERROR(EnsureGenericTables(db));
  XQ_RETURN_IF_ERROR(EnsureGenericIndexes(db));
  warehouse->shredder_ = std::make_unique<Shredder>(db);
  XQ_RETURN_IF_ERROR(warehouse->shredder_->Init());
  XQ_RETURN_IF_ERROR(warehouse->LoadCollectionsFromCatalog());
  return warehouse;
}

void Warehouse::Subscribe(std::function<void(const ChangeEvent&)> callback) {
  std::unique_lock lock(mu_);
  subscribers_.push_back(std::move(callback));
}

void Warehouse::Fire(const ChangeEvent& event) {
  // Copy the list so callbacks run without mu_ held. Load/sync defer the
  // Fire calls through their WriteGuard, so by the time a callback runs
  // the batch's epoch is published and the write latch released — the
  // callback may query the warehouse (and will see the change) or load
  // more data without deadlocking.
  std::vector<std::function<void(const ChangeEvent&)>> subscribers;
  {
    std::shared_lock lock(mu_);
    subscribers = subscribers_;
  }
  for (const auto& callback : subscribers) callback(event);
}

common::Result<xml::XmlDocument> Warehouse::ReconstructDocument(
    int64_t doc_id) {
  rel::Snapshot snap = db_->BeginSnapshot();
  return shredder_->ReconstructDocument(doc_id, snap.epoch());
}

Status Warehouse::LoadCollectionsFromCatalog() {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table,
                      db_->GetTable(kCollectionTable));
  std::unique_lock lock(mu_);
  Status status;
  table->Scan([&](RowId, const Tuple& t) {
    Collection c;
    c.name = t[0].AsText();
    c.root_element = t[1].AsText();
    c.dtd_text = t[2].is_null() ? "" : t[2].AsText();
    c.source = t[3].is_null() ? "" : t[3].AsText();
    if (!c.dtd_text.empty()) {
      auto dtd = xml::ParseDtd(c.dtd_text);
      if (!dtd.ok()) {
        status = dtd.status();
        return false;
      }
      c.dtd = std::move(*dtd);
    }
    // Sequence-element sets are derived from the registered transformer at
    // registration time; persist the convention (element named
    // "sequence") for catalog-loaded collections.
    c.sequence_elements = {"sequence"};
    collections_[c.name] = std::move(c);
    return true;
  });
  return status;
}

Status Warehouse::RegisterCollection(const std::string& collection,
                                     const XmlTransformer& transformer) {
  rel::WriteGuard guard(db_);
  return RegisterCollectionLocked(collection, transformer);
}

Status Warehouse::RegisterCollectionLocked(const std::string& collection,
                                           const XmlTransformer& transformer) {
  if (FindCollection(collection) != nullptr) return Status::OK();
  Collection c;
  c.name = collection;
  c.root_element = transformer.root_element();
  c.source = transformer.source_name();
  c.dtd_text = transformer.dtd_text();
  XQ_ASSIGN_OR_RETURN(c.dtd, xml::ParseDtd(c.dtd_text));
  for (const std::string& name : transformer.sequence_elements()) {
    c.sequence_elements.insert(name);
  }
  XQ_RETURN_IF_ERROR(
      db_->Insert(kCollectionTable,
                  {Value::Text(collection), Value::Text(c.root_element),
                   Value::Text(c.dtd_text), Value::Text(c.source)})
          .status());
  std::unique_lock lock(mu_);
  collections_[collection] = std::move(c);
  return Status::OK();
}

const Warehouse::Collection* Warehouse::FindCollection(
    const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = collections_.find(name);
  // Collections are never erased, so the pointer outlives the lock.
  return it == collections_.end() ? nullptr : &it->second;
}

std::vector<std::string> Warehouse::CollectionNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, c] : collections_) names.push_back(name);
  return names;
}

Result<int64_t> Warehouse::LoadDocument(const std::string& collection,
                                        const xml::XmlDocument& doc,
                                        const std::string& uri) {
  rel::WriteGuard guard(db_);
  const Collection* c = FindCollection(collection);
  if (c == nullptr) {
    return Status::NotFound("collection not registered: " + collection);
  }
  XQ_RETURN_IF_ERROR(c->dtd.CheckValid(doc));
  XQ_ASSIGN_OR_RETURN(
      Shredder::ShredStats stats,
      shredder_->ShredDocument(doc, collection, uri, c->sequence_elements,
                               ContentHash(doc)));
  return stats.doc_id;
}

Status Warehouse::RemoveDocument(int64_t doc_id) {
  rel::WriteGuard guard(db_);
  return shredder_->DeleteDocument(doc_id);
}

Result<Warehouse::LoadStats> Warehouse::LoadSource(
    const std::string& collection, const XmlTransformer& transformer,
    std::string_view raw) {
  // One write batch for the whole load: snapshots taken before the guard
  // releases see none of it, snapshots taken after see all of it.
  // Concurrent readers are NOT blocked — they read at their own epoch.
  rel::WriteGuard guard(db_);
  XQ_RETURN_IF_ERROR(RegisterCollectionLocked(collection, transformer));
  const Collection* c = FindCollection(collection);
  static common::Histogram* transform_hist =
      common::MetricsRegistry::Global().GetHistogram("hounds.stage.transform");
  static common::Histogram* shred_hist =
      common::MetricsRegistry::Global().GetHistogram("hounds.stage.shred");
  static common::Counter* docs_loaded =
      common::MetricsRegistry::Global().GetCounter("hounds.documents_loaded");
  std::vector<TransformedDocument> docs;
  {
    common::TraceSpan span("hounds.transform", transform_hist);
    XQ_ASSIGN_OR_RETURN(docs, transformer.Transform(raw));
  }
  common::TraceSpan span("hounds.shred", shred_hist);
  LoadStats stats;
  for (const TransformedDocument& doc : docs) {
    // Fault point hounds.load.shred: fail the load between documents. The
    // exclusive latch still makes the half-load invisible to queries only
    // if the caller discards the database; crash-recovery keeps whatever
    // the WAL committed, which tests assert is a per-document prefix.
    XQ_FAULT_POINT("hounds.load.shred");
    XQ_RETURN_IF_ERROR(c->dtd.CheckValid(doc.document));
    XQ_ASSIGN_OR_RETURN(Shredder::ShredStats s,
                        shredder_->ShredDocument(doc.document, collection,
                                                 doc.uri,
                                                 c->sequence_elements,
                                                 ContentHash(doc.document)));
    ++stats.documents;
    docs_loaded->Inc();
    stats.nodes += s.nodes;
    stats.text_values += s.text_values;
    stats.numeric_values += s.numeric_values;
    stats.sequence_values += s.sequence_values;
    // Deferred past epoch publish + latch release: subscribers observe a
    // database state that already contains the document they are told
    // about, and may re-enter the warehouse safely.
    guard.Defer([this, collection, uri = doc.uri, id = s.doc_id] {
      Fire({ChangeEvent::Kind::kAdded, collection, uri, id});
    });
  }
  return stats;
}

Result<UpdateStats> Warehouse::SyncSource(const std::string& collection,
                                          const XmlTransformer& transformer,
                                          std::string_view raw) {
  // One write batch across diff + apply. ChangeEvents used to fire while
  // the exclusive latch was held — a subscriber that queried back
  // deadlocked, and one that cached responses could capture a state
  // where the event's document was not yet query-visible. They are now
  // deferred past epoch publish and latch release.
  rel::WriteGuard guard(db_);
  XQ_RETURN_IF_ERROR(RegisterCollectionLocked(collection, transformer));
  const Collection* c = FindCollection(collection);
  XQ_ASSIGN_OR_RETURN(std::vector<TransformedDocument> docs,
                      transformer.Transform(raw));

  // Current warehouse state for the collection: uri -> (doc_id, hash).
  XQ_ASSIGN_OR_RETURN(const rel::Table* doc_table,
                      db_->GetTable(kDocumentTable));
  std::unordered_map<std::string, std::pair<int64_t, int64_t>> existing;
  doc_table->Scan([&](RowId, const Tuple& t) {
    if (t[1].AsText() == collection) {
      existing[t[2].AsText()] = {t[0].AsInt(),
                                 t[4].is_null() ? 0 : t[4].AsInt()};
    }
    return true;
  });

  UpdateStats stats;
  for (const TransformedDocument& doc : docs) {
    // Fault point hounds.sync.apply: fail the sync between per-document
    // apply steps (add / update / remove), leaving a prefix applied.
    XQ_FAULT_POINT("hounds.sync.apply");
    int64_t hash = ContentHash(doc.document);
    auto it = existing.find(doc.uri);
    if (it == existing.end()) {
      XQ_ASSIGN_OR_RETURN(
          Shredder::ShredStats s,
          shredder_->ShredDocument(doc.document, collection, doc.uri,
                                   c->sequence_elements, hash));
      ++stats.added;
      guard.Defer([this, collection, uri = doc.uri, id = s.doc_id] {
        Fire({ChangeEvent::Kind::kAdded, collection, uri, id});
      });
      continue;
    }
    auto [doc_id, old_hash] = it->second;
    existing.erase(it);
    if (old_hash == hash) {
      ++stats.unchanged;
      continue;
    }
    XQ_RETURN_IF_ERROR(shredder_->DeleteDocument(doc_id));
    XQ_ASSIGN_OR_RETURN(
        Shredder::ShredStats s,
        shredder_->ShredDocument(doc.document, collection, doc.uri,
                                 c->sequence_elements, hash));
    ++stats.updated;
    guard.Defer([this, collection, uri = doc.uri, id = s.doc_id] {
      Fire({ChangeEvent::Kind::kUpdated, collection, uri, id});
    });
  }
  // Entries no longer present remotely ("without any information being
  // left out or added twice", §2).
  for (const auto& [uri, info] : existing) {
    XQ_FAULT_POINT("hounds.sync.apply");
    XQ_RETURN_IF_ERROR(shredder_->DeleteDocument(info.first));
    ++stats.removed;
    guard.Defer([this, collection, uri, id = info.first] {
      Fire({ChangeEvent::Kind::kRemoved, collection, uri, id});
    });
  }
  return stats;
}

Result<std::vector<int64_t>> Warehouse::DocumentsIn(
    const std::string& collection) const {
  rel::Snapshot snap = db_->BeginSnapshot();
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(kDocumentTable));
  std::vector<int64_t> ids;
  table->Scan(snap.epoch(), [&](RowId, const Tuple& t) {
    if (t[1].AsText() == collection) ids.push_back(t[0].AsInt());
    return true;
  });
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<int64_t> Warehouse::FindDocument(const std::string& uri) const {
  rel::Snapshot snap = db_->BeginSnapshot();
  const rel::IndexEntry* idx = db_->FindIndexByName("idx_doc_uri");
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(kDocumentTable));
  if (idx != nullptr) {
    // Copy the postings under the shared entry latch, then fetch at the
    // snapshot epoch and re-verify the key (the index is single-version).
    std::vector<RowId> row_ids;
    {
      std::shared_lock lk(idx->latch);
      const std::vector<RowId>* rows = idx->hash->Lookup({Value::Text(uri)});
      if (rows != nullptr) row_ids = *rows;
    }
    for (RowId row : row_ids) {
      auto tuple = table->Get(row, snap.epoch());
      if (!tuple.ok()) continue;  // not visible at this snapshot
      if ((**tuple)[2].AsText() == uri) return (**tuple)[0].AsInt();
    }
    return Status::NotFound("no document with uri " + uri);
  }
  int64_t found = -1;
  table->Scan(snap.epoch(), [&](RowId, const Tuple& t) {
    if (t[2].AsText() == uri) {
      found = t[0].AsInt();
      return false;
    }
    return true;
  });
  if (found < 0) return Status::NotFound("no document with uri " + uri);
  return found;
}

}  // namespace xomatiq::hounds
