#ifndef XOMATIQ_DATAHOUNDS_GENERIC_SCHEMA_H_
#define XOMATIQ_DATAHOUNDS_GENERIC_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace xomatiq::hounds {

// Table names of the generic XML-shredding schema (paper §2.2: "the XML
// documents are modeled by a generic relational schema, independent of any
// particular instance of XML data"). See DESIGN.md for the full layout.
inline constexpr char kDocumentTable[] = "xml_document";
inline constexpr char kNameTable[] = "xml_name";
inline constexpr char kPathTable[] = "xml_path";
inline constexpr char kNodeTable[] = "xml_node";
inline constexpr char kTextTable[] = "xml_text";
inline constexpr char kNumberTable[] = "xml_number";
inline constexpr char kSequenceTable[] = "xml_sequence";
inline constexpr char kCollectionTable[] = "xq_collections";

// Node kinds stored in xml_node.kind. Document order is captured by
// (ordinal, end_ordinal) interval encoding: descendant(b, a) iff
// a.ordinal < b.ordinal <= a.end_ordinal (Zhang et al. containment join,
// which the paper cites as its implementation basis).
inline constexpr int64_t kKindElement = 1;
inline constexpr int64_t kKindAttribute = 2;

// Sentinel parent_id of each document's root element.
inline constexpr int64_t kNoParent = -1;

// Creates the generic schema tables when absent. Idempotent.
common::Status EnsureGenericTables(rel::Database* db);

// Creates the production index set (the §3.2 "set of indexes created by
// meticulous analysis of the query plans"). Idempotent.
common::Status EnsureGenericIndexes(rel::Database* db);

// Names of all generic-schema indexes (used by the index-ablation bench
// to drop/recreate individual indexes).
std::vector<std::string> GenericIndexNames();

// Drops every generic-schema index that exists.
common::Status DropGenericIndexes(rel::Database* db);

}  // namespace xomatiq::hounds

#endif  // XOMATIQ_DATAHOUNDS_GENERIC_SCHEMA_H_
