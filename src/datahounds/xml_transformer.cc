#include "datahounds/xml_transformer.h"

#include "common/string_util.h"

namespace xomatiq::hounds {

using common::Result;
using common::Status;
using flatfile::EmblEntry;
using flatfile::EnzymeEntry;
using flatfile::SwissProtEntry;
using xml::XmlDocument;
using xml::XmlNode;

// --- ENZYME --------------------------------------------------------------

// The paper's Fig 5 DTD (element names use '_' where the camera-ready
// renders spaces).
std::string EnzymeXmlTransformer::dtd_text() const {
  return R"(<!ELEMENT hlx_enzyme (db_entry)>
<!ELEMENT db_entry (enzyme_id, enzyme_description+, alternate_name_list,
  catalytic_activity*, cofactor_list, comment_list, prosite_reference*,
  swissprot_reference_list, disease_list)>
<!ELEMENT enzyme_id (#PCDATA)>
<!ELEMENT enzyme_description (#PCDATA)>
<!ELEMENT alternate_name_list (alternate_name*)>
<!ELEMENT alternate_name (#PCDATA)>
<!ELEMENT catalytic_activity (#PCDATA)>
<!ELEMENT cofactor_list (cofactor*)>
<!ELEMENT cofactor (#PCDATA)>
<!ELEMENT comment_list (comment*)>
<!ELEMENT comment (#PCDATA)>
<!ELEMENT prosite_reference (#PCDATA)>
<!ATTLIST prosite_reference
  prosite_accession_number NMTOKEN #REQUIRED>
<!ELEMENT swissprot_reference_list (reference*)>
<!ELEMENT reference (#PCDATA)>
<!ATTLIST reference
  name CDATA #REQUIRED
  swissprot_accession_number NMTOKEN #REQUIRED>
<!ELEMENT disease_list (disease*)>
<!ELEMENT disease (#PCDATA)>
<!ATTLIST disease
  mim_id CDATA #REQUIRED>
)";
}

XmlDocument EnzymeXmlTransformer::EntryToXml(const EnzymeEntry& entry) {
  XmlDocument doc;
  doc.set_doctype_name("hlx_enzyme");
  XmlNode* root = doc.CreateRoot("hlx_enzyme");
  XmlNode* db = root->AddElement("db_entry");
  db->AddTextElement("enzyme_id", entry.id);
  for (const std::string& de : entry.descriptions) {
    db->AddTextElement("enzyme_description", de);
  }
  XmlNode* an_list = db->AddElement("alternate_name_list");
  for (const std::string& an : entry.alternate_names) {
    an_list->AddTextElement("alternate_name", an);
  }
  for (const std::string& ca : entry.catalytic_activities) {
    db->AddTextElement("catalytic_activity", ca);
  }
  XmlNode* cf_list = db->AddElement("cofactor_list");
  for (const std::string& cf : entry.cofactors) {
    cf_list->AddTextElement("cofactor", cf);
  }
  XmlNode* cc_list = db->AddElement("comment_list");
  for (const std::string& cc : entry.comments) {
    cc_list->AddTextElement("comment", cc);
  }
  for (const std::string& pr : entry.prosite_refs) {
    XmlNode* ref = db->AddElement("prosite_reference");
    ref->AddAttribute("prosite_accession_number", pr);
  }
  XmlNode* sp_list = db->AddElement("swissprot_reference_list");
  for (const EnzymeEntry::SwissProtRef& ref : entry.swissprot_refs) {
    XmlNode* r = sp_list->AddElement("reference");
    r->AddAttribute("name", ref.name);
    r->AddAttribute("swissprot_accession_number", ref.accession);
  }
  XmlNode* di_list = db->AddElement("disease_list");
  for (const EnzymeEntry::DiseaseRef& di : entry.diseases) {
    XmlNode* d = di_list->AddTextElement("disease", di.description);
    d->AddAttribute("mim_id", di.mim_id);
  }
  return doc;
}

Result<EnzymeEntry> EnzymeXmlTransformer::XmlToEntry(const XmlNode& root) {
  if (root.name() != "hlx_enzyme") {
    return Status::InvalidArgument("expected <hlx_enzyme>, got <" +
                                   root.name() + ">");
  }
  const XmlNode* db = root.FirstChildElement("db_entry");
  if (db == nullptr) return Status::InvalidArgument("missing <db_entry>");
  EnzymeEntry entry;
  entry.id = db->ChildText("enzyme_id");
  for (const XmlNode* de : db->ChildElements("enzyme_description")) {
    entry.descriptions.push_back(de->Text());
  }
  if (const XmlNode* list = db->FirstChildElement("alternate_name_list")) {
    for (const XmlNode* an : list->ChildElements("alternate_name")) {
      entry.alternate_names.push_back(an->Text());
    }
  }
  for (const XmlNode* ca : db->ChildElements("catalytic_activity")) {
    entry.catalytic_activities.push_back(ca->Text());
  }
  if (const XmlNode* list = db->FirstChildElement("cofactor_list")) {
    for (const XmlNode* cf : list->ChildElements("cofactor")) {
      entry.cofactors.push_back(cf->Text());
    }
  }
  if (const XmlNode* list = db->FirstChildElement("comment_list")) {
    for (const XmlNode* cc : list->ChildElements("comment")) {
      entry.comments.push_back(cc->Text());
    }
  }
  for (const XmlNode* pr : db->ChildElements("prosite_reference")) {
    const std::string* acc = pr->FindAttribute("prosite_accession_number");
    if (acc == nullptr) {
      return Status::InvalidArgument("prosite_reference without accession");
    }
    entry.prosite_refs.push_back(*acc);
  }
  if (const XmlNode* list =
          db->FirstChildElement("swissprot_reference_list")) {
    for (const XmlNode* ref : list->ChildElements("reference")) {
      const std::string* name = ref->FindAttribute("name");
      const std::string* acc =
          ref->FindAttribute("swissprot_accession_number");
      if (name == nullptr || acc == nullptr) {
        return Status::InvalidArgument("reference missing attributes");
      }
      entry.swissprot_refs.push_back({*acc, *name});
    }
  }
  if (const XmlNode* list = db->FirstChildElement("disease_list")) {
    for (const XmlNode* di : list->ChildElements("disease")) {
      const std::string* mim = di->FindAttribute("mim_id");
      if (mim == nullptr) {
        return Status::InvalidArgument("disease without mim_id");
      }
      entry.diseases.push_back({*mim, di->Text()});
    }
  }
  return entry;
}

Result<std::vector<TransformedDocument>> EnzymeXmlTransformer::Transform(
    std::string_view raw) const {
  XQ_ASSIGN_OR_RETURN(std::vector<EnzymeEntry> entries,
                      flatfile::ParseEnzymeFile(raw));
  std::vector<TransformedDocument> docs;
  docs.reserve(entries.size());
  for (const EnzymeEntry& entry : entries) {
    TransformedDocument doc;
    doc.uri = "enzyme:" + entry.id;
    doc.document = EntryToXml(entry);
    docs.push_back(std::move(doc));
  }
  return docs;
}

// --- EMBL ------------------------------------------------------------------

std::string EmblXmlTransformer::dtd_text() const {
  return R"(<!ELEMENT hlx_n_sequence (db_entry)>
<!ELEMENT db_entry (entry_name, molecule, division, embl_accession_number+,
  description?, keyword*, organism?, database_reference*, feature_table,
  sequence)>
<!ELEMENT entry_name (#PCDATA)>
<!ELEMENT molecule (#PCDATA)>
<!ELEMENT division (#PCDATA)>
<!ELEMENT embl_accession_number (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT organism (#PCDATA)>
<!ELEMENT database_reference EMPTY>
<!ATTLIST database_reference
  database CDATA #REQUIRED
  primary_id CDATA #REQUIRED
  secondary_id CDATA #IMPLIED>
<!ELEMENT feature_table (feature*)>
<!ELEMENT feature (location, qualifier*)>
<!ATTLIST feature
  key CDATA #REQUIRED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT qualifier (#PCDATA)>
<!ATTLIST qualifier
  qualifier_type CDATA #REQUIRED>
<!ELEMENT sequence (#PCDATA)>
<!ATTLIST sequence
  length CDATA #REQUIRED>
)";
}

namespace {

// The paper's Fig 11 matches qualifier[@qualifier_type = "EC number"];
// flat-file qualifier names map to display names.
std::string QualifierDisplayName(const std::string& name) {
  if (name == "EC_number") return "EC number";
  return name;
}

std::string QualifierFlatName(const std::string& display) {
  if (display == "EC number") return "EC_number";
  return display;
}

}  // namespace

XmlDocument EmblXmlTransformer::EntryToXml(const EmblEntry& entry) {
  XmlDocument doc;
  doc.set_doctype_name("hlx_n_sequence");
  XmlNode* root = doc.CreateRoot("hlx_n_sequence");
  XmlNode* db = root->AddElement("db_entry");
  db->AddTextElement("entry_name", entry.id);
  db->AddTextElement("molecule", entry.molecule);
  db->AddTextElement("division", entry.division);
  for (const std::string& acc : entry.accessions) {
    db->AddTextElement("embl_accession_number", acc);
  }
  if (!entry.description.empty()) {
    db->AddTextElement("description", entry.description);
  }
  for (const std::string& kw : entry.keywords) {
    db->AddTextElement("keyword", kw);
  }
  if (!entry.organism.empty()) {
    db->AddTextElement("organism", entry.organism);
  }
  for (const flatfile::EmblDbXref& xref : entry.xrefs) {
    XmlNode* ref = db->AddElement("database_reference");
    ref->AddAttribute("database", xref.database);
    ref->AddAttribute("primary_id", xref.primary);
    if (!xref.secondary.empty()) {
      ref->AddAttribute("secondary_id", xref.secondary);
    }
  }
  XmlNode* ft = db->AddElement("feature_table");
  for (const flatfile::EmblFeature& feature : entry.features) {
    XmlNode* f = ft->AddElement("feature");
    f->AddAttribute("key", feature.key);
    f->AddTextElement("location", feature.location);
    for (const flatfile::EmblQualifier& q : feature.qualifiers) {
      XmlNode* qe = f->AddTextElement("qualifier", q.value);
      qe->AddAttribute("qualifier_type", QualifierDisplayName(q.name));
    }
  }
  XmlNode* seq = db->AddTextElement("sequence", entry.sequence);
  seq->AddAttribute("length", std::to_string(entry.sequence.size()));
  return doc;
}

Result<EmblEntry> EmblXmlTransformer::XmlToEntry(const XmlNode& root) {
  if (root.name() != "hlx_n_sequence") {
    return Status::InvalidArgument("expected <hlx_n_sequence>, got <" +
                                   root.name() + ">");
  }
  const XmlNode* db = root.FirstChildElement("db_entry");
  if (db == nullptr) return Status::InvalidArgument("missing <db_entry>");
  EmblEntry entry;
  entry.id = db->ChildText("entry_name");
  entry.molecule = db->ChildText("molecule");
  entry.division = db->ChildText("division");
  for (const XmlNode* acc : db->ChildElements("embl_accession_number")) {
    entry.accessions.push_back(acc->Text());
  }
  entry.description = db->ChildText("description");
  for (const XmlNode* kw : db->ChildElements("keyword")) {
    entry.keywords.push_back(kw->Text());
  }
  entry.organism = db->ChildText("organism");
  for (const XmlNode* ref : db->ChildElements("database_reference")) {
    flatfile::EmblDbXref xref;
    const std::string* dbname = ref->FindAttribute("database");
    const std::string* primary = ref->FindAttribute("primary_id");
    if (dbname == nullptr || primary == nullptr) {
      return Status::InvalidArgument("database_reference missing attributes");
    }
    xref.database = *dbname;
    xref.primary = *primary;
    if (const std::string* secondary = ref->FindAttribute("secondary_id")) {
      xref.secondary = *secondary;
    }
    entry.xrefs.push_back(std::move(xref));
  }
  if (const XmlNode* ft = db->FirstChildElement("feature_table")) {
    for (const XmlNode* f : ft->ChildElements("feature")) {
      flatfile::EmblFeature feature;
      const std::string* key = f->FindAttribute("key");
      if (key == nullptr) {
        return Status::InvalidArgument("feature missing key");
      }
      feature.key = *key;
      feature.location = f->ChildText("location");
      for (const XmlNode* q : f->ChildElements("qualifier")) {
        const std::string* type = q->FindAttribute("qualifier_type");
        if (type == nullptr) {
          return Status::InvalidArgument("qualifier missing qualifier_type");
        }
        feature.qualifiers.push_back({QualifierFlatName(*type), q->Text()});
      }
      entry.features.push_back(std::move(feature));
    }
  }
  entry.sequence = db->ChildText("sequence");
  return entry;
}

Result<std::vector<TransformedDocument>> EmblXmlTransformer::Transform(
    std::string_view raw) const {
  XQ_ASSIGN_OR_RETURN(std::vector<EmblEntry> entries,
                      flatfile::ParseEmblFile(raw));
  std::vector<TransformedDocument> docs;
  docs.reserve(entries.size());
  for (const EmblEntry& entry : entries) {
    TransformedDocument doc;
    doc.uri = "embl:" + entry.id;
    doc.document = EntryToXml(entry);
    docs.push_back(std::move(doc));
  }
  return docs;
}

// --- Swiss-Prot -------------------------------------------------------------

std::string SwissProtXmlTransformer::dtd_text() const {
  return R"(<!ELEMENT hlx_n_sequence (db_entry)>
<!ELEMENT db_entry (entry_name, sprot_accession_number+, description?,
  gene_name*, organism?, keyword*, comment_list, database_reference*,
  sequence)>
<!ELEMENT entry_name (#PCDATA)>
<!ELEMENT sprot_accession_number (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT gene_name (#PCDATA)>
<!ELEMENT organism (#PCDATA)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT comment_list (comment*)>
<!ELEMENT comment (#PCDATA)>
<!ELEMENT database_reference EMPTY>
<!ATTLIST database_reference
  database CDATA #REQUIRED
  primary_id CDATA #REQUIRED
  secondary_id CDATA #IMPLIED>
<!ELEMENT sequence (#PCDATA)>
<!ATTLIST sequence
  length CDATA #REQUIRED>
)";
}

XmlDocument SwissProtXmlTransformer::EntryToXml(const SwissProtEntry& entry) {
  XmlDocument doc;
  doc.set_doctype_name("hlx_n_sequence");
  XmlNode* root = doc.CreateRoot("hlx_n_sequence");
  XmlNode* db = root->AddElement("db_entry");
  db->AddTextElement("entry_name", entry.id);
  for (const std::string& acc : entry.accessions) {
    db->AddTextElement("sprot_accession_number", acc);
  }
  if (!entry.description.empty()) {
    db->AddTextElement("description", entry.description);
  }
  for (const std::string& gene : entry.gene_names) {
    db->AddTextElement("gene_name", gene);
  }
  if (!entry.organism.empty()) {
    db->AddTextElement("organism", entry.organism);
  }
  for (const std::string& kw : entry.keywords) {
    db->AddTextElement("keyword", kw);
  }
  XmlNode* cc_list = db->AddElement("comment_list");
  for (const std::string& cc : entry.comments) {
    cc_list->AddTextElement("comment", cc);
  }
  for (const flatfile::SwissProtDbXref& xref : entry.xrefs) {
    XmlNode* ref = db->AddElement("database_reference");
    ref->AddAttribute("database", xref.database);
    ref->AddAttribute("primary_id", xref.primary);
    if (!xref.secondary.empty()) {
      ref->AddAttribute("secondary_id", xref.secondary);
    }
  }
  XmlNode* seq = db->AddTextElement("sequence", entry.sequence);
  seq->AddAttribute("length", std::to_string(entry.sequence.size()));
  return doc;
}

Result<SwissProtEntry> SwissProtXmlTransformer::XmlToEntry(
    const XmlNode& root) {
  if (root.name() != "hlx_n_sequence") {
    return Status::InvalidArgument("expected <hlx_n_sequence>, got <" +
                                   root.name() + ">");
  }
  const XmlNode* db = root.FirstChildElement("db_entry");
  if (db == nullptr) return Status::InvalidArgument("missing <db_entry>");
  SwissProtEntry entry;
  entry.id = db->ChildText("entry_name");
  entry.status = "STANDARD";
  for (const XmlNode* acc : db->ChildElements("sprot_accession_number")) {
    entry.accessions.push_back(acc->Text());
  }
  entry.description = db->ChildText("description");
  for (const XmlNode* gene : db->ChildElements("gene_name")) {
    entry.gene_names.push_back(gene->Text());
  }
  entry.organism = db->ChildText("organism");
  for (const XmlNode* kw : db->ChildElements("keyword")) {
    entry.keywords.push_back(kw->Text());
  }
  if (const XmlNode* list = db->FirstChildElement("comment_list")) {
    for (const XmlNode* cc : list->ChildElements("comment")) {
      entry.comments.push_back(cc->Text());
    }
  }
  for (const XmlNode* ref : db->ChildElements("database_reference")) {
    flatfile::SwissProtDbXref xref;
    const std::string* dbname = ref->FindAttribute("database");
    const std::string* primary = ref->FindAttribute("primary_id");
    if (dbname == nullptr || primary == nullptr) {
      return Status::InvalidArgument("database_reference missing attributes");
    }
    xref.database = *dbname;
    xref.primary = *primary;
    if (const std::string* secondary = ref->FindAttribute("secondary_id")) {
      xref.secondary = *secondary;
    }
    entry.xrefs.push_back(std::move(xref));
  }
  entry.sequence = db->ChildText("sequence");
  entry.length = entry.sequence.size();
  return entry;
}

Result<std::vector<TransformedDocument>> SwissProtXmlTransformer::Transform(
    std::string_view raw) const {
  XQ_ASSIGN_OR_RETURN(std::vector<SwissProtEntry> entries,
                      flatfile::ParseSwissProtFile(raw));
  std::vector<TransformedDocument> docs;
  docs.reserve(entries.size());
  for (const SwissProtEntry& entry : entries) {
    TransformedDocument doc;
    doc.uri = "sprot:" + entry.id;
    doc.document = EntryToXml(entry);
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace xomatiq::hounds
