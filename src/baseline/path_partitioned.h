#ifndef XOMATIQ_BASELINE_PATH_PARTITIONED_H_
#define XOMATIQ_BASELINE_PATH_PARTITIONED_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "datahounds/xml_transformer.h"
#include "relational/database.h"
#include "xml/dom.h"

namespace xomatiq::baseline {

// The path-partitioned ("binary" / inlined) shredding alternative from
// the literature the paper builds on (STORED, Shanmugasundaram et al.):
// instead of one generic node/text schema, every distinct rooted label
// path gets its own value table
//
//   pp_<n>(doc_id INT, ordinal INT, value TEXT)
//
// with a btree on value, an inverted keyword index, and a hash index on
// doc_id. Leaf text and attribute values are stored; structure beyond the
// path is not (no parent chain), so full-document reconstruction is NOT
// possible — the classic trade-off against the paper's generic schema:
// fewer, smaller tables and fewer joins per query, but schema churn on
// every new path and loss of order/structure generality. bench_schema
// measures both sides of that trade on identical workloads.
class PathPartitionedStore {
 public:
  // Tables are created lazily in `db` under the "pp_" prefix; a catalog
  // table pp_paths(collection, path, table_name) maps paths to tables.
  explicit PathPartitionedStore(rel::Database* db);

  // Creates the catalog table if absent.
  common::Status Init();

  struct LoadStats {
    size_t documents = 0;
    size_t values = 0;
    size_t tables = 0;  // total path tables after the load
  };

  // Shreds transformed documents into per-path tables.
  common::Result<LoadStats> LoadDocuments(
      const std::string& collection,
      const std::vector<hounds::TransformedDocument>& docs);

  // Table name holding values whose rooted path ends with `suffix`
  // (e.g. "catalytic_activity" or "sequence/@length") within
  // `collection`. NotFound / InvalidArgument (ambiguous) otherwise.
  common::Result<std::string> TableForPathSuffix(
      const std::string& collection, const std::string& suffix) const;

  size_t num_tables() const { return tables_.size(); }
  rel::Database* db() { return db_; }

 private:
  common::Result<std::string> TableFor(const std::string& collection,
                                       const std::string& path);

  rel::Database* db_;
  int64_t next_doc_id_ = 1;
  int64_t next_table_id_ = 0;
  // (collection, path) -> table name.
  std::map<std::pair<std::string, std::string>, std::string> tables_;
};

}  // namespace xomatiq::baseline

#endif  // XOMATIQ_BASELINE_PATH_PARTITIONED_H_
