#include "baseline/native_xml.h"

#include <set>

#include "common/string_util.h"
#include "sql/expr_eval.h"

namespace xomatiq::baseline {

using common::Result;
using common::Status;
using xml::NodeKind;
using xml::XmlDocument;
using xml::XmlNode;

Result<std::vector<NativeStep>> ParseNativePath(std::string_view path) {
  std::vector<NativeStep> steps;
  size_t i = 0;
  while (i < path.size()) {
    NativeStep step;
    if (path.substr(i, 2) == "//") {
      step.descendant = true;
      i += 2;
    } else if (path[i] == '/') {
      ++i;
    } else if (i == 0) {
      // Bare leading name defaults to a descendant step, matching the
      // builders' NormalizePath convention.
      step.descendant = true;
    } else {
      return Status::ParseError("bad path syntax: " + std::string(path));
    }
    if (i < path.size() && path[i] == '@') {
      step.is_attribute = true;
      ++i;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') ++i;
    step.name = std::string(path.substr(start, i - start));
    if (step.name.empty()) {
      return Status::ParseError("empty step in path: " + std::string(path));
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

std::string NodeValue(const XmlNode& node) { return node.Text(); }

namespace {

void EvalStep(const XmlNode& base, const std::vector<NativeStep>& steps,
              size_t index, std::vector<std::string>* out) {
  if (index == steps.size()) {
    out->push_back(NodeValue(base));
    return;
  }
  const NativeStep& step = steps[index];
  if (step.is_attribute) {
    // Attribute steps terminate a path.
    auto visit = [&](const XmlNode& node) {
      const std::string* value = node.FindAttribute(step.name);
      if (value != nullptr && index + 1 == steps.size()) {
        out->push_back(*value);
      }
      return true;
    };
    if (step.descendant) {
      base.Visit(visit);
    } else {
      visit(base);
    }
    return;
  }
  if (step.descendant) {
    for (const XmlNode* node : base.Descendants(step.name)) {
      if (node == &base) continue;
      EvalStep(*node, steps, index + 1, out);
    }
    return;
  }
  for (const XmlNode* child : base.ChildElements(step.name)) {
    EvalStep(*child, steps, index + 1, out);
  }
}

}  // namespace

std::vector<std::string> EvalPathValues(const XmlNode& base,
                                        const std::vector<NativeStep>& steps) {
  std::vector<std::string> out;
  EvalStep(base, steps, 0, &out);
  return out;
}

bool SubtreeContains(const XmlNode& node, std::string_view keywords) {
  bool found = false;
  node.Visit([&](const XmlNode& n) {
    if (n.kind() == NodeKind::kText &&
        sql::MatchContains(n.value(), keywords)) {
      found = true;
      return false;
    }
    for (const xml::XmlAttribute& attr : n.attributes()) {
      if (sql::MatchContains(attr.value, keywords)) {
        found = true;
        return false;
      }
    }
    return true;
  });
  return found;
}

void NativeXmlStore::Load(const std::string& collection, XmlDocument doc) {
  collections_[collection].push_back(std::move(doc));
}

const std::vector<XmlDocument>& NativeXmlStore::Docs(
    const std::string& collection) const {
  static const std::vector<XmlDocument>* kEmpty =
      new std::vector<XmlDocument>();
  auto it = collections_.find(collection);
  return it == collections_.end() ? *kEmpty : it->second;
}

std::vector<const XmlDocument*> NativeXmlStore::KeywordSearch(
    const std::string& collection, std::string_view keyword) const {
  std::vector<const XmlDocument*> out;
  for (const XmlDocument& doc : Docs(collection)) {
    const XmlNode* root = doc.root();
    if (root != nullptr && SubtreeContains(*root, keyword)) {
      out.push_back(&doc);
    }
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> NativeXmlStore::SubtreeQuery(
    const std::string& collection, const std::string& cond_path,
    const std::string& keyword,
    const std::vector<std::string>& return_paths) const {
  XQ_ASSIGN_OR_RETURN(std::vector<NativeStep> cond_steps,
                      ParseNativePath(cond_path));
  std::vector<std::vector<NativeStep>> ret_steps;
  for (const std::string& path : return_paths) {
    XQ_ASSIGN_OR_RETURN(std::vector<NativeStep> steps, ParseNativePath(path));
    ret_steps.push_back(std::move(steps));
  }
  std::vector<std::vector<std::string>> rows;
  for (const XmlDocument& doc : Docs(collection)) {
    const XmlNode* root = doc.root();
    if (root == nullptr) continue;
    bool match = false;
    for (const std::string& value : EvalPathValues(*root, cond_steps)) {
      if (sql::MatchContains(value, keyword)) {
        match = true;
        break;
      }
    }
    if (!match) continue;
    std::vector<std::string> row;
    for (const auto& steps : ret_steps) {
      std::vector<std::string> values = EvalPathValues(*root, steps);
      row.push_back(values.empty() ? "" : values.front());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<std::vector<std::string>>> NativeXmlStore::JoinQuery(
    const std::string& left_collection, const std::string& left_path,
    const std::string& right_collection, const std::string& right_path,
    const std::vector<std::string>& left_return_paths) const {
  XQ_ASSIGN_OR_RETURN(std::vector<NativeStep> left_steps,
                      ParseNativePath(left_path));
  XQ_ASSIGN_OR_RETURN(std::vector<NativeStep> right_steps,
                      ParseNativePath(right_path));
  std::vector<std::vector<NativeStep>> ret_steps;
  for (const std::string& path : left_return_paths) {
    XQ_ASSIGN_OR_RETURN(std::vector<NativeStep> steps, ParseNativePath(path));
    ret_steps.push_back(std::move(steps));
  }
  std::vector<std::vector<std::string>> rows;
  // Nested-loop value join over DOM trees: the no-RDBMS alternative.
  for (const XmlDocument& left : Docs(left_collection)) {
    const XmlNode* lroot = left.root();
    if (lroot == nullptr) continue;
    std::vector<std::string> lvalues = EvalPathValues(*lroot, left_steps);
    if (lvalues.empty()) continue;
    std::set<std::string> lset(lvalues.begin(), lvalues.end());
    bool joined = false;
    for (const XmlDocument& right : Docs(right_collection)) {
      const XmlNode* rroot = right.root();
      if (rroot == nullptr) continue;
      for (const std::string& rv : EvalPathValues(*rroot, right_steps)) {
        if (lset.count(rv) > 0) {
          joined = true;
          break;
        }
      }
      if (joined) break;
    }
    if (!joined) continue;
    std::vector<std::string> row;
    for (const auto& steps : ret_steps) {
      std::vector<std::string> values = EvalPathValues(*lroot, steps);
      row.push_back(values.empty() ? "" : values.front());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

size_t NativeXmlStore::TotalDocs() const {
  size_t n = 0;
  for (const auto& [name, docs] : collections_) n += docs.size();
  return n;
}

}  // namespace xomatiq::baseline
