#include "baseline/path_partitioned.h"

#include "common/string_util.h"

namespace xomatiq::baseline {

using common::Result;
using common::Status;
using rel::Value;

namespace {
constexpr char kCatalogTable[] = "pp_paths";
}  // namespace

PathPartitionedStore::PathPartitionedStore(rel::Database* db) : db_(db) {}

Status PathPartitionedStore::Init() {
  if (!db_->HasTable(kCatalogTable)) {
    XQ_RETURN_IF_ERROR(db_->CreateTable(
        kCatalogTable,
        rel::Schema({{"collection", rel::ValueType::kText, true},
                     {"path", rel::ValueType::kText, true},
                     {"table_name", rel::ValueType::kText, true}})));
  }
  // Reload the path map (and counters) from the catalog.
  tables_.clear();
  next_table_id_ = 0;
  XQ_ASSIGN_OR_RETURN(const rel::Table* catalog,
                      db_->GetTable(kCatalogTable));
  catalog->Scan([&](rel::RowId, const rel::Tuple& t) {
    tables_[{t[0].AsText(), t[1].AsText()}] = t[2].AsText();
    ++next_table_id_;
    return true;
  });
  return Status::OK();
}

Result<std::string> PathPartitionedStore::TableFor(
    const std::string& collection, const std::string& path) {
  auto it = tables_.find({collection, path});
  if (it != tables_.end()) return it->second;
  std::string name = "pp_" + std::to_string(next_table_id_++);
  XQ_RETURN_IF_ERROR(db_->CreateTable(
      name, rel::Schema({{"doc_id", rel::ValueType::kInt, true},
                         {"ordinal", rel::ValueType::kInt, true},
                         {"value", rel::ValueType::kText, true}})));
  XQ_RETURN_IF_ERROR(db_->CreateIndex(
      {name + "_value", name, {"value"}, rel::IndexKind::kBTree, false}));
  XQ_RETURN_IF_ERROR(db_->CreateIndex(
      {name + "_kw", name, {"value"}, rel::IndexKind::kInverted, false}));
  XQ_RETURN_IF_ERROR(db_->CreateIndex(
      {name + "_doc", name, {"doc_id"}, rel::IndexKind::kHash, false}));
  XQ_RETURN_IF_ERROR(
      db_->Insert(kCatalogTable, {Value::Text(collection), Value::Text(path),
                                  Value::Text(name)})
          .status());
  tables_[{collection, path}] = name;
  return name;
}

Result<PathPartitionedStore::LoadStats> PathPartitionedStore::LoadDocuments(
    const std::string& collection,
    const std::vector<hounds::TransformedDocument>& docs) {
  LoadStats stats;
  for (const hounds::TransformedDocument& doc : docs) {
    int64_t doc_id = next_doc_id_++;
    int64_t ordinal = 0;
    Status status;
    doc.document.root()->Visit([&](const xml::XmlNode& node) {
      if (node.kind() != xml::NodeKind::kElement) return true;
      ++ordinal;
      std::string path = node.LabelPath();
      for (const xml::XmlAttribute& attr : node.attributes()) {
        auto table = TableFor(collection, path + "/@" + attr.name);
        if (!table.ok()) {
          status = table.status();
          return false;
        }
        Status s = db_->Insert(*table, {Value::Int(doc_id),
                                        Value::Int(ordinal),
                                        Value::Text(attr.value)})
                       .status();
        if (!s.ok()) {
          status = s;
          return false;
        }
        ++stats.values;
      }
      std::string text = node.Text();
      if (!text.empty() && node.ChildElements().empty()) {
        auto table = TableFor(collection, path);
        if (!table.ok()) {
          status = table.status();
          return false;
        }
        Status s = db_->Insert(*table, {Value::Int(doc_id),
                                        Value::Int(ordinal),
                                        Value::Text(std::move(text))})
                       .status();
        if (!s.ok()) {
          status = s;
          return false;
        }
        ++stats.values;
      }
      return true;
    });
    XQ_RETURN_IF_ERROR(status);
    ++stats.documents;
  }
  stats.tables = tables_.size();
  return stats;
}

Result<std::string> PathPartitionedStore::TableForPathSuffix(
    const std::string& collection, const std::string& suffix) const {
  std::string found;
  for (const auto& [key, table] : tables_) {
    if (key.first != collection) continue;
    const std::string& path = key.second;
    if (path == suffix ||
        common::EndsWith(path, "/" + suffix)) {
      if (!found.empty()) {
        return Status::InvalidArgument("ambiguous path suffix: " + suffix);
      }
      found = table;
    }
  }
  if (found.empty()) {
    return Status::NotFound("no path ends with " + suffix + " in " +
                            collection);
  }
  return found;
}

}  // namespace xomatiq::baseline
