#ifndef XOMATIQ_BASELINE_SRS_H_
#define XOMATIQ_BASELINE_SRS_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace xomatiq::baseline {

// SRS-style indexed flat-file retrieval engine (paper §4 related work):
// libraries of entries with *pre-declared* indexed fields and predefined
// cross-library links. Searches are "only permitted on pre-defined
// indexed attributes"; ad-hoc joins, value comparisons or queries on
// unindexed structure are out of scope by design — exactly the
// expressiveness gap XomatiQ claims to close. Used as the comparison
// baseline in bench_keyword.
class SrsEngine {
 public:
  struct Entry {
    std::string id;  // entry identifier within its library
    // Field values by field name; only fields declared for the library
    // are indexed.
    std::map<std::string, std::vector<std::string>> fields;
  };

  // Declares a library with its indexed fields.
  common::Status CreateLibrary(const std::string& library,
                               std::vector<std::string> indexed_fields);

  // Adds an entry, tokenizing and indexing its declared fields.
  common::Status AddEntry(const std::string& library, Entry entry);

  // Declares a link set: entries of `from` reference entries of `to`
  // (resolved by target entry id).
  common::Status AddLink(const std::string& from_library,
                         const std::string& from_entry,
                         const std::string& to_library,
                         const std::string& to_entry);

  // Index lookup: entry ids of `library` whose `field` contains `token`
  // (case-insensitive token match). Error when the field is not indexed
  // — the SRS expressiveness restriction.
  common::Result<std::vector<std::string>> Lookup(
      const std::string& library, const std::string& field,
      const std::string& token) const;

  // Lookup across all indexed fields of a library.
  common::Result<std::vector<std::string>> LookupAnyField(
      const std::string& library, const std::string& token) const;

  // Follows predefined links from `entry` into `to_library`.
  common::Result<std::vector<std::string>> FollowLinks(
      const std::string& from_library, const std::string& from_entry,
      const std::string& to_library) const;

  common::Result<const Entry*> GetEntry(const std::string& library,
                                        const std::string& id) const;

  size_t NumEntries(const std::string& library) const;

 private:
  struct Library {
    std::vector<std::string> indexed_fields;
    std::vector<Entry> entries;
    std::unordered_map<std::string, size_t> by_id;
    // field -> token -> entry indexes (sorted, unique)
    std::map<std::string, std::unordered_map<std::string, std::vector<size_t>>>
        index;
    // (entry index, to_library) -> target entry ids
    std::map<std::pair<size_t, std::string>, std::vector<std::string>> links;
  };

  const Library* FindLibrary(const std::string& name) const;

  std::map<std::string, Library> libraries_;
};

}  // namespace xomatiq::baseline

#endif  // XOMATIQ_BASELINE_SRS_H_
