#ifndef XOMATIQ_BASELINE_NATIVE_XML_H_
#define XOMATIQ_BASELINE_NATIVE_XML_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace xomatiq::baseline {

// Parses a path fragment of the form "a/b//c/@d" (leading '/' or '//'
// optional; '//' segments match descendants) and evaluates it against a
// DOM subtree. Attribute steps yield the owning element with the
// attribute value as the node string value.
struct NativeStep {
  bool descendant = false;
  bool is_attribute = false;
  std::string name;
};

common::Result<std::vector<NativeStep>> ParseNativePath(
    std::string_view path);

// Element-node string value (concatenated direct text).
std::string NodeValue(const xml::XmlNode& node);

// Evaluates `steps` starting below `base`; for attribute final steps the
// returned strings are the attribute values, else element text values.
std::vector<std::string> EvalPathValues(const xml::XmlNode& base,
                                        const std::vector<NativeStep>& steps);

// True when any text or attribute value in the subtree contains every
// token of `keywords` (same semantics as the warehouse CONTAINS).
bool SubtreeContains(const xml::XmlNode& node, std::string_view keywords);

// In-memory "semistructured database" alternative the paper's §2.2
// discussion weighs against the relational route: documents stay as DOM
// trees and every query walks them directly (no shredding, no indexes).
// Used by benches as the native-XML comparison point.
class NativeXmlStore {
 public:
  void Load(const std::string& collection, xml::XmlDocument doc);
  const std::vector<xml::XmlDocument>& Docs(
      const std::string& collection) const;

  // Documents whose subtree contains the keyword (Fig 8 per-database leg).
  std::vector<const xml::XmlDocument*> KeywordSearch(
      const std::string& collection, std::string_view keyword) const;

  // Fig 9 shape: value of `return_path` for documents where `cond_path`'s
  // value contains `keyword`.
  common::Result<std::vector<std::vector<std::string>>> SubtreeQuery(
      const std::string& collection, const std::string& cond_path,
      const std::string& keyword,
      const std::vector<std::string>& return_paths) const;

  // Fig 11 shape: nested-loop value join between two collections.
  common::Result<std::vector<std::vector<std::string>>> JoinQuery(
      const std::string& left_collection, const std::string& left_path,
      const std::string& right_collection, const std::string& right_path,
      const std::vector<std::string>& left_return_paths) const;

  size_t TotalDocs() const;

 private:
  std::map<std::string, std::vector<xml::XmlDocument>> collections_;
};

}  // namespace xomatiq::baseline

#endif  // XOMATIQ_BASELINE_NATIVE_XML_H_
