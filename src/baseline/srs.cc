#include "baseline/srs.h"

#include <algorithm>

#include "common/string_util.h"

namespace xomatiq::baseline {

using common::Result;
using common::Status;

Status SrsEngine::CreateLibrary(const std::string& library,
                                std::vector<std::string> indexed_fields) {
  if (libraries_.count(library) > 0) {
    return Status::AlreadyExists("library exists: " + library);
  }
  Library lib;
  lib.indexed_fields = std::move(indexed_fields);
  libraries_.emplace(library, std::move(lib));
  return Status::OK();
}

const SrsEngine::Library* SrsEngine::FindLibrary(
    const std::string& name) const {
  auto it = libraries_.find(name);
  return it == libraries_.end() ? nullptr : &it->second;
}

Status SrsEngine::AddEntry(const std::string& library, Entry entry) {
  auto it = libraries_.find(library);
  if (it == libraries_.end()) {
    return Status::NotFound("no such library: " + library);
  }
  Library& lib = it->second;
  if (lib.by_id.count(entry.id) > 0) {
    return Status::AlreadyExists("duplicate entry " + entry.id + " in " +
                                 library);
  }
  size_t index = lib.entries.size();
  lib.by_id[entry.id] = index;
  for (const std::string& field : lib.indexed_fields) {
    auto fit = entry.fields.find(field);
    if (fit == entry.fields.end()) continue;
    auto& token_map = lib.index[field];
    for (const std::string& value : fit->second) {
      for (const std::string& token : common::TokenizeKeywords(value)) {
        std::vector<size_t>& postings = token_map[token];
        if (postings.empty() || postings.back() != index) {
          postings.push_back(index);
        }
      }
    }
  }
  lib.entries.push_back(std::move(entry));
  return Status::OK();
}

Status SrsEngine::AddLink(const std::string& from_library,
                          const std::string& from_entry,
                          const std::string& to_library,
                          const std::string& to_entry) {
  auto it = libraries_.find(from_library);
  if (it == libraries_.end()) {
    return Status::NotFound("no such library: " + from_library);
  }
  auto eit = it->second.by_id.find(from_entry);
  if (eit == it->second.by_id.end()) {
    return Status::NotFound("no entry " + from_entry + " in " + from_library);
  }
  it->second.links[{eit->second, to_library}].push_back(to_entry);
  return Status::OK();
}

Result<std::vector<std::string>> SrsEngine::Lookup(
    const std::string& library, const std::string& field,
    const std::string& token) const {
  const Library* lib = FindLibrary(library);
  if (lib == nullptr) return Status::NotFound("no such library: " + library);
  if (std::find(lib->indexed_fields.begin(), lib->indexed_fields.end(),
                field) == lib->indexed_fields.end()) {
    return Status::Unsupported("field '" + field + "' of library " + library +
                               " is not indexed (SRS searches require a "
                               "pre-defined index)");
  }
  std::vector<std::string> ids;
  auto fit = lib->index.find(field);
  if (fit == lib->index.end()) return ids;
  auto tit = fit->second.find(common::AsciiToLower(token));
  if (tit == fit->second.end()) return ids;
  for (size_t i : tit->second) ids.push_back(lib->entries[i].id);
  return ids;
}

Result<std::vector<std::string>> SrsEngine::LookupAnyField(
    const std::string& library, const std::string& token) const {
  const Library* lib = FindLibrary(library);
  if (lib == nullptr) return Status::NotFound("no such library: " + library);
  std::vector<size_t> hits;
  std::string lower = common::AsciiToLower(token);
  for (const auto& [field, token_map] : lib->index) {
    auto tit = token_map.find(lower);
    if (tit == token_map.end()) continue;
    hits.insert(hits.end(), tit->second.begin(), tit->second.end());
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  std::vector<std::string> ids;
  ids.reserve(hits.size());
  for (size_t i : hits) ids.push_back(lib->entries[i].id);
  return ids;
}

Result<std::vector<std::string>> SrsEngine::FollowLinks(
    const std::string& from_library, const std::string& from_entry,
    const std::string& to_library) const {
  const Library* lib = FindLibrary(from_library);
  if (lib == nullptr) {
    return Status::NotFound("no such library: " + from_library);
  }
  auto eit = lib->by_id.find(from_entry);
  if (eit == lib->by_id.end()) {
    return Status::NotFound("no entry " + from_entry + " in " + from_library);
  }
  auto lit = lib->links.find({eit->second, to_library});
  if (lit == lib->links.end()) return std::vector<std::string>{};
  return lit->second;
}

Result<const SrsEngine::Entry*> SrsEngine::GetEntry(
    const std::string& library, const std::string& id) const {
  const Library* lib = FindLibrary(library);
  if (lib == nullptr) return Status::NotFound("no such library: " + library);
  auto eit = lib->by_id.find(id);
  if (eit == lib->by_id.end()) {
    return Status::NotFound("no entry " + id + " in " + library);
  }
  return &lib->entries[eit->second];
}

size_t SrsEngine::NumEntries(const std::string& library) const {
  const Library* lib = FindLibrary(library);
  return lib == nullptr ? 0 : lib->entries.size();
}

}  // namespace xomatiq::baseline
