#include "server/session.h"

#include <optional>
#include <string>

#include "common/metrics.h"
#include "common/query_log.h"
#include "common/trace.h"
#include "relational/snapshot.h"
#include "server/query_service.h"

namespace xomatiq::srv {

using common::Status;

std::string Session::Handle(const Request& request) {
  static common::Counter* requests =
      common::MetricsRegistry::Global().GetCounter("server.requests");
  static common::Gauge* inflight =
      common::MetricsRegistry::Global().GetGauge("server.inflight");
  requests->Inc();
  inflight->Add(1);
  requests_.fetch_add(1, std::memory_order_relaxed);
  // Outermost query-log scope: owns the record for this request; the
  // engine layers below annotate plan fingerprint / est-vs-actual rows.
  common::QueryLogScope qlog(request.text, RequestModeName(request.mode));
  if (common::QueryLogRecord* rec = common::QueryLogScope::Current()) {
    rec->trace_id = request.options.trace_id;
  }
  common::QueryOptions opts = request.options;
  if (opts.deadline_ms == 0) {
    opts.deadline_ms = service_->options_.default_deadline_ms;
  }
  // Trace when the client asked, and opportunistically for a sampled
  // slice of ordinary requests so some slow-query-log entries carry a
  // trace without the operator having planned ahead.
  const bool sampled = common::QueryLog::Global().ShouldSampleTrace();
  std::string reply;
  if (!opts.trace && !sampled) {
    reply = Execute(request, opts);
  } else {
    // Traced request: install a per-request Trace for this worker thread,
    // keep the Chrome JSON for LastTraceJson / the trace ring, and mark
    // the response.
    common::Trace trace;
    trace.set_trace_id(opts.trace_id);
    {
      common::TraceScope scope(&trace);
      reply = Execute(request, opts);
    }
    std::string json = trace.ToChromeJson(/*pid=*/1);
    if (common::QueryLogRecord* rec = common::QueryLogScope::Current()) {
      rec->trace_json = json;  // dropped on append unless the query is slow
    }
    service_->RecordTrace(opts.trace, opts.trace_id, std::move(json));
    if (opts.trace) {
      // Reply layout: u64 id | u8 status | (u8 kind | u8 flags | ...).
      // Patch the flags byte of OK responses the same way ServeCached does.
      constexpr size_t kReplyFlags = 8 + kFlagsOffset;
      if (reply.size() > kReplyFlags && reply[8] == 0) {
        reply[kReplyFlags] = static_cast<char>(
            static_cast<uint8_t>(reply[kReplyFlags]) | kFlagTraced);
      }
    }
  }
  // Stamp error status on the record (the SQL engine already does this for
  // its own failures; XQ translation errors and bad modes land here).
  if (common::QueryLogRecord* rec = common::QueryLogScope::Current()) {
    if (reply.size() > 8 && reply[8] != 0) rec->ok = false;
  }
  inflight->Add(-1);
  return reply;
}

std::string Session::Execute(const Request& request,
                             const common::QueryOptions& opts) {
  hounds::Warehouse* warehouse = service_->warehouse_;
  const ServiceOptions& soptions = service_->options_;
  // Read-your-writes gate: a data read carrying a min_lsn token must not
  // observe state older than that position. The gate waits on
  // committed_lsn — the highest LSN whose write batch has PUBLISHED its
  // epoch — not applied_lsn: between apply and publish a record is in the
  // WAL but invisible to snapshots, and a snapshot pinned in that window
  // would break the client's read-your-writes promise.
  if (opts.min_lsn != 0 &&
      (request.mode == RequestMode::kSql || request.mode == RequestMode::kXq ||
       request.mode == RequestMode::kXqXml)) {
    if (warehouse->db()->committed_lsn() < opts.min_lsn) {
      bool reached =
          soptions.wait_for_lsn != nullptr &&
          soptions.wait_for_lsn(opts.min_lsn, soptions.min_lsn_wait_ms);
      // The waiter is satisfied by applied_lsn; re-check the published
      // position (one batch may still be between apply and publish).
      if (reached && warehouse->db()->committed_lsn() < opts.min_lsn) {
        reached = false;
      }
      if (!reached) {
        static common::Counter* lagging =
            common::MetricsRegistry::Global().GetCounter(
                "server.lagging_rejected");
        lagging->Inc();
        return EncodeErrorResponse(
            request.id,
            Status::Lagging("replica at lsn " +
                            std::to_string(warehouse->db()->committed_lsn()) +
                            " behind requested min_lsn " +
                            std::to_string(opts.min_lsn)));
      }
    }
  }
  // Pin ONE snapshot for the whole request on read modes, strictly after
  // the gate above: every statement the request runs — and the result
  // cache key — sees the same committed epoch. SQL mutations/DDL must run
  // unpinned (a Snapshot holds the DDL latch shared; DDL takes it
  // exclusive on this very thread). Explain/Stats/Ping read no heap rows
  // through this path.
  rel::Snapshot snap;
  std::optional<uint64_t> read_epoch;
  const bool pin =
      request.mode == RequestMode::kXq || request.mode == RequestMode::kXqXml ||
      (request.mode == RequestMode::kSql &&
       FirstSqlKeyword(request.text) == "select");
  if (pin) {
    snap = warehouse->db()->BeginSnapshot();
    read_epoch = snap.epoch();
  }
  return service_->Dispatch(request, opts, read_epoch);
}

}  // namespace xomatiq::srv
