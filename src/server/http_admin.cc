#include "server/http_admin.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>

#include "common/net.h"

namespace xomatiq::srv {

using common::Status;

namespace {

constexpr size_t kMaxRequestBytes = 4096;

// Sends one complete HTTP/1.0 response; best effort (the scraper may
// already be gone).
void WriteHttp(int fd, int code, const char* reason, const char* content_type,
               std::string_view body) {
  char header[256];
  int n = std::snprintf(header, sizeof header,
                        "HTTP/1.0 %d %s\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n\r\n",
                        code, reason, content_type, body.size());
  std::string out(header, static_cast<size_t>(n));
  out += body;
  (void)net::WriteAll(fd, out);
}

void WriteError(int fd, int code, const char* reason) {
  std::string body = std::string(reason) + "\n";
  WriteHttp(fd, code, reason, "text/plain; charset=utf-8", body);
}

}  // namespace

HttpAdminServer::HttpAdminServer(AdminHooks hooks, HttpAdminOptions options)
    : hooks_(std::move(hooks)), options_(std::move(options)) {}

HttpAdminServer::~HttpAdminServer() { Shutdown(); }

Status HttpAdminServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad admin address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void HttpAdminServer::Shutdown() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpAdminServer::ServeLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener was shut down (or unrecoverable)
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.read_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.read_timeout_ms / 1000;
      tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    ServeOne(fd);
    ::close(fd);
  }
}

void HttpAdminServer::ServeOne(int fd) {
  // Read until the end of the request head (or caps / timeout). Bodies are
  // never read: GET-only.
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.size() < kMaxRequestBytes) {
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (head.empty()) return;  // closed without a request
      break;
    }
    head.append(buf, static_cast<size_t>(n));
  }
  // Request line: METHOD SP TARGET SP VERSION.
  size_t eol = head.find("\r\n");
  if (eol == std::string::npos) eol = head.find('\n');
  if (eol == std::string::npos) {
    WriteError(fd, 400, "Bad Request");
    return;
  }
  std::string_view line(head.data(), eol);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    WriteError(fd, 400, "Bad Request");
    return;
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    WriteError(fd, 405, "Method Not Allowed");
    return;
  }
  std::string_view path = target;
  std::string_view query;
  if (size_t qpos = target.find('?'); qpos != std::string_view::npos) {
    path = target.substr(0, qpos);
    query = target.substr(qpos + 1);
  }
  if (path == "/metrics" && hooks_.metrics) {
    WriteHttp(fd, 200, "OK", "text/plain; version=0.0.4; charset=utf-8",
              hooks_.metrics());
  } else if (path == "/healthz" && hooks_.healthz) {
    auto [healthy, body] = hooks_.healthz();
    if (healthy) {
      WriteHttp(fd, 200, "OK", "application/json", body);
    } else {
      WriteHttp(fd, 503, "Service Unavailable", "application/json", body);
    }
  } else if (path == "/statusz" && hooks_.statusz) {
    WriteHttp(fd, 200, "OK", "application/json", hooks_.statusz());
  } else if (path == "/queryz" && hooks_.queryz) {
    WriteHttp(fd, 200, "OK", "application/json", hooks_.queryz());
  } else if (path == "/tracez" && hooks_.tracez) {
    WriteHttp(fd, 200, "OK", "application/json", hooks_.tracez(query));
  } else if (path == "/") {
    WriteHttp(fd, 200, "OK", "text/plain; charset=utf-8",
              "xomatiq admin endpoints:\n"
              "  /metrics  Prometheus text exposition\n"
              "  /healthz  liveness + recovery readiness\n"
              "  /statusz  uptime, sessions, in-flight, queue, cache\n"
              "  /queryz   recent + slow query log\n"
              "  /tracez   recent request traces (?id=<16-hex>)\n");
  } else {
    WriteError(fd, 404, "Not Found");
  }
}

}  // namespace xomatiq::srv
