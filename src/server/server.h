#ifndef XOMATIQ_SERVER_SERVER_H_
#define XOMATIQ_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "datahounds/warehouse.h"
#include "server/http_admin.h"
#include "server/query_service.h"
#include "server/thread_pool.h"

namespace xomatiq::srv {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port from port()
  size_t workers = 4;
  size_t max_queue = 64;  // admission queue bound (see BoundedThreadPool)
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // SO_RCVTIMEO on accepted sockets: a client that stalls mid-frame for
  // longer than this is timed out and disconnected. 0 disables the guard.
  int read_timeout_ms = 5000;
  // Embedded HTTP admin endpoint (/metrics /healthz /statusz /queryz
  // /tracez): -1 disables it, 0 binds an ephemeral port (read it from
  // admin_port()), >0 binds that port on `host`.
  int admin_port = -1;
  ServiceOptions service;
  // Replication wiring, set by the embedder (server_main / tests) so this
  // library never links the replication one:
  //  - replication_statusz returns the JSON object shown as /statusz's
  //    "replication" section (primary shipper or replica applier stats);
  //  - replica_ready gates /healthz on a replica: false (HTTP 503) while
  //    the applier is disconnected, never caught up, or stale.
  std::function<std::string()> replication_statusz;
  std::function<bool()> replica_ready;
};

// Multi-threaded TCP front end for one Database/Warehouse/XomatiQ stack.
//
// Threading model (see DESIGN.md "Service layer"):
//   - one accept thread;
//   - one reader thread per connection, which decodes frames and enqueues
//     request tasks on the shared BoundedThreadPool;
//   - `workers` pool threads execute requests through the connection's
//     logical srv::Session and write responses back, serialized
//     per-connection by Conn::write_mu.
// When the admission queue is full the reader answers OVERLOADED inline —
// the server never queues without bound and never blocks the socket read
// loop on the engine.
//
// Shutdown() is graceful: stop accepting, half-close every session for
// reading (in-flight requests keep their sockets writable), drain the
// pool so every admitted request gets its response, then join.
class QueryServer {
 public:
  QueryServer(hounds::Warehouse* warehouse, ServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds, listens and spawns the accept thread.
  common::Status Start();

  // Graceful stop; idempotent.
  void Shutdown();

  // Bound port (after Start()).
  uint16_t port() const { return port_; }

  // Bound admin-endpoint port (0 when the admin server is disabled).
  uint16_t admin_port() const;

  QueryService* service() { return &service_; }

 private:
  // One wire connection: shared by the reader thread and any worker
  // running one of its requests; the last owner closes the socket, so a
  // response can still be written after the reader exited. `session` is
  // the logical srv::Session the requests execute through (snapshot
  // acquisition, query-log scope, trace propagation).
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    std::mutex write_mu;  // serializes response frames on this socket
    std::shared_ptr<Session> session;
    ~Conn();
  };

  void AcceptLoop();
  void SessionLoop(std::shared_ptr<Conn> conn);

  // Builds the AdminHooks closures over this server's state.
  common::Status StartAdmin();

  hounds::Warehouse* warehouse_;
  QueryService service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::unique_ptr<BoundedThreadPool> pool_;
  std::unique_ptr<HttpAdminServer> admin_;
  std::thread accept_thread_;
  int64_t start_unix_s_ = 0;      // wall-clock second Start() succeeded
  uint64_t start_steady_ns_ = 0;  // steady clock at Start(), for uptime

  std::mutex sessions_mu_;
  uint64_t next_session_id_ = 1;
  // Connections still reading; a connection removes itself when its
  // reader exits. Shutdown half-closes whatever is left.
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> sessions_;
  std::vector<std::thread> session_threads_;
};

}  // namespace xomatiq::srv

#endif  // XOMATIQ_SERVER_SERVER_H_
