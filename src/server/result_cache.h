#ifndef XOMATIQ_SERVER_RESULT_CACHE_H_
#define XOMATIQ_SERVER_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace xomatiq::srv {

// LRU cache of encoded response *bodies* (protocol.h layout, everything
// after the request id) keyed on normalized query text. A hit is re-served
// to any session by patching the request id and the cached-flag byte; rows
// are never re-encoded.
//
// Invalidation is tag-based: each entry carries the collections its query
// read (XQ translations know them; see Translation::collections). A
// hounds::ChangeEvent for collection C evicts entries tagged C *and*
// entries with no tags (SQL entries — table-level dependencies are not
// tracked, so they conservatively die on any change).
//
// The generation counter closes the lookup/execute/insert race: a query
// that started before a sync must not install its stale result after the
// sync invalidated. Callers capture generation() before executing and pass
// it to Insert(), which discards on mismatch. ChangeEvents fire while the
// writer holds the Database latch exclusively, so any execution that
// observed pre-sync data also observed the pre-bump generation.
//
// Thread-safe; the internal mutex is a leaf in the server's lock order
// (never held while acquiring the Database latch or Warehouse mutex).
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  // Whitespace-collapsed query text prefixed by the mode tag and the
  // snapshot epoch the query reads at, so "SELECT  *\nFROM t" and
  // "select * from t" share an entry only when byte-identical after
  // normalization (case is preserved: string literals are
  // case-sensitive) AND pinned to the same committed epoch. Epoch keying
  // makes a hit byte-exact for the snapshot the request would otherwise
  // execute against; entries for superseded epochs age out via LRU (and
  // via tag/generation invalidation, which still fires on every change).
  // Epochs never alias across a replica snapshot install — the epoch
  // counter is kept monotone.
  static std::string MakeKey(uint8_t mode, std::string_view query_text,
                             uint64_t epoch);

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // Returns the encoded body and refreshes LRU recency, or nullopt.
  std::optional<std::string> Lookup(const std::string& key);

  // Installs `body` unless the cache was invalidated after `generation`
  // was captured. Evicts least-recently-used entries beyond capacity.
  void Insert(const std::string& key, std::string body,
              std::vector<std::string> tags, uint64_t generation);

  // Evicts entries tagged with `collection` plus all untagged entries,
  // and bumps the generation.
  void Invalidate(const std::string& collection);

  // Evicts everything and bumps the generation (DDL/DML path).
  void Clear();

  size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::string body;
    std::vector<std::string> tags;  // empty = evict on any change
  };

  void EvictLocked(std::list<Entry>::iterator it);

  const size_t capacity_;
  std::atomic<uint64_t> generation_{0};
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace xomatiq::srv

#endif  // XOMATIQ_SERVER_RESULT_CACHE_H_
