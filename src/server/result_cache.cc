#include "server/result_cache.h"

#include <algorithm>

#include "common/fault_injector.h"
#include "common/metrics.h"

namespace xomatiq::srv {

namespace {

struct CacheMetrics {
  common::Counter* hits;
  common::Counter* misses;
  common::Counter* evictions;
  common::Counter* invalidations;
  common::Gauge* entries;

  static CacheMetrics& Get() {
    static CacheMetrics m = [] {
      auto& reg = common::MetricsRegistry::Global();
      return CacheMetrics{reg.GetCounter("server.cache.hits"),
                          reg.GetCounter("server.cache.misses"),
                          reg.GetCounter("server.cache.evictions"),
                          reg.GetCounter("server.cache.invalidations"),
                          reg.GetGauge("server.cache.entries")};
    }();
    return m;
  }
};

}  // namespace

std::string ResultCache::MakeKey(uint8_t mode, std::string_view query_text,
                                 uint64_t epoch) {
  std::string key;
  key.reserve(query_text.size() + 24);
  key.push_back(static_cast<char>('0' + mode));
  key.push_back('@');
  key += std::to_string(epoch);
  key.push_back(':');
  bool pending_space = false;
  for (char c : query_text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      pending_space = !key.empty();
      continue;
    }
    if (pending_space && key.back() != ':') key.push_back(' ');
    pending_space = false;
    key.push_back(c);
  }
  return key;
}

std::optional<std::string> ResultCache::Lookup(const std::string& key) {
  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    CacheMetrics::Get().misses->Inc();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  CacheMetrics::Get().hits->Inc();
  return it->second->body;
}

void ResultCache::Insert(const std::string& key, std::string body,
                         std::vector<std::string> tags, uint64_t generation) {
  // Fault point cache.insert: drop the install silently. The cache is an
  // optimization — losing an insert must never affect correctness, only
  // hit rate, and tests assert exactly that.
  if (common::FaultInjector::Global().ShouldFail("cache.insert")) return;
  std::lock_guard lock(mu_);
  if (generation != generation_.load(std::memory_order_relaxed)) {
    return;  // invalidated while the query ran; result may be stale
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->body = std::move(body);
    it->second->tags = std::move(tags);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(body), std::move(tags)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    CacheMetrics::Get().evictions->Inc();
    EvictLocked(std::prev(lru_.end()));
  }
  CacheMetrics::Get().entries->Set(static_cast<int64_t>(lru_.size()));
}

void ResultCache::Invalidate(const std::string& collection) {
  std::lock_guard lock(mu_);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  CacheMetrics::Get().invalidations->Inc();
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto next = std::next(it);
    const bool hit = it->tags.empty() ||
                     std::find(it->tags.begin(), it->tags.end(), collection) !=
                         it->tags.end();
    if (hit) EvictLocked(it);
    it = next;
  }
  CacheMetrics::Get().entries->Set(static_cast<int64_t>(lru_.size()));
}

void ResultCache::Clear() {
  std::lock_guard lock(mu_);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  index_.clear();
  lru_.clear();
  CacheMetrics::Get().entries->Set(0);
}

size_t ResultCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

void ResultCache::EvictLocked(std::list<Entry>::iterator it) {
  index_.erase(it->key);
  lru_.erase(it);
}

}  // namespace xomatiq::srv
