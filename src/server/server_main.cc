// xomatiq_server: the XomatiQ query service over TCP.
//
//   xomatiq_server [--port N] [--workers N] [--exec-workers N] [--queue N]
//                  [--cache N] [--db DIR] [--demo N] [--admin-port N]
//                  [--slow-ms MS]
//                  [--replication-port N | --replica-of HOST:PORT]
//
// Serves SQL and XomatiQ queries against one shared warehouse. --db opens
// (or creates) a durable database directory; without it the server runs
// in-memory. --demo N loads a deterministic N-entry synthetic corpus
// (ENZYME + Swiss-Prot + EMBL collections) so the shell has something to
// query out of the box. Connect with xomatiq_shell.
//
// Replication (see DESIGN.md "Replication"):
//   --replication-port N   act as a primary: ship WAL records to any
//                          replica that connects on port N.
//   --replica-of H:P       act as a read replica of the primary whose
//                          replication port is H:P — bootstrap from a
//                          snapshot, tail the WAL, reject writes with a
//                          typed READ_ONLY error, and honor min_lsn
//                          read-your-writes tokens.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/query_log.h"
#include "datagen/corpus.h"
#include "exec/worker_pool.h"
#include "datahounds/warehouse.h"
#include "relational/database.h"
#include "replication/repl_server.h"
#include "replication/replica.h"
#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

void LoadDemo(xomatiq::hounds::Warehouse* warehouse, size_t n) {
  using namespace xomatiq;
  datagen::CorpusOptions options;
  options.num_enzymes = n;
  options.num_proteins = n;
  options.num_nucleotides = n;
  options.ketone_fraction = 0.15;  // same planted keyword as xq_shell's \demo
  datagen::Corpus corpus = datagen::GenerateCorpus(options);

  hounds::EnzymeXmlTransformer enzyme;
  hounds::SwissProtXmlTransformer sprot;
  hounds::EmblXmlTransformer embl;
  struct Load {
    const char* collection;
    const hounds::XmlTransformer* transformer;
    std::string flatfile;
  } loads[] = {
      {"hlx_enzyme.DEFAULT", &enzyme, datagen::ToEnzymeFlatFile(corpus)},
      {"hlx_sprot.DEFAULT", &sprot, datagen::ToSwissProtFlatFile(corpus)},
      {"hlx_embl.inv", &embl, datagen::ToEmblFlatFile(corpus)},
  };
  for (const Load& load : loads) {
    auto stats =
        warehouse->LoadSource(load.collection, *load.transformer,
                              load.flatfile);
    if (!stats.ok()) {
      std::fprintf(stderr, "demo load %s: %s\n", load.collection,
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("loaded %-20s %zu documents\n", load.collection,
                stats->documents);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xomatiq;

  srv::ServerOptions options;
  options.port = 7333;
  std::string db_dir;
  size_t demo = 0;
  size_t cache_capacity = 256;
  int replication_port = -1;        // >= 0: primary, ship WAL on this port
  std::string replica_of;           // "host:port": replica of that primary
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      options.workers = static_cast<size_t>(std::atoi(next("--workers")));
    } else if (std::strcmp(argv[i], "--exec-workers") == 0) {
      // Width of the process-wide intra-query worker pool (morsel-driven
      // parallel operators). Distinct from --workers, which sizes the
      // one-thread-per-query service pool; per-query admission splits the
      // exec pool fairly among whatever those sessions run concurrently.
      // Default: hardware concurrency - 1. 0 disables parallel execution.
      exec::WorkerPool::ConfigureGlobal(
          static_cast<size_t>(std::atoi(next("--exec-workers"))));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      options.max_queue = static_cast<size_t>(std::atoi(next("--queue")));
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      cache_capacity = static_cast<size_t>(std::atoi(next("--cache")));
    } else if (std::strcmp(argv[i], "--db") == 0) {
      db_dir = next("--db");
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = static_cast<size_t>(std::atoi(next("--demo")));
    } else if (std::strcmp(argv[i], "--admin-port") == 0) {
      options.admin_port = std::atoi(next("--admin-port"));
    } else if (std::strcmp(argv[i], "--slow-ms") == 0) {
      xomatiq::common::QueryLog::Global().set_slow_threshold_ns(
          static_cast<uint64_t>(std::atof(next("--slow-ms")) * 1e6));
    } else if (std::strcmp(argv[i], "--replication-port") == 0) {
      replication_port = std::atoi(next("--replication-port"));
    } else if (std::strcmp(argv[i], "--replica-of") == 0) {
      replica_of = next("--replica-of");
    } else {
      std::fprintf(stderr,
                   "usage: xomatiq_server [--port N] [--workers N] "
                   "[--exec-workers N] [--queue N] [--cache N] [--db DIR] "
                   "[--demo N] [--admin-port N] [--slow-ms MS] "
                   "[--replication-port N | --replica-of HOST:PORT]\n");
      return 2;
    }
  }
  if (replication_port >= 0 && !replica_of.empty()) {
    std::fprintf(stderr,
                 "--replication-port and --replica-of are exclusive: a node "
                 "is a primary or a replica, not both\n");
    return 2;
  }
  const bool is_replica = !replica_of.empty();

  std::unique_ptr<rel::Database> db;
  if (db_dir.empty()) {
    db = rel::Database::OpenInMemory();
  } else {
    auto opened = rel::Database::Open(db_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", db_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(opened).value();
  }

  // Replica bring-up must precede Warehouse::Open: the warehouse would
  // create its schema locally (local WAL records, diverging LSNs) when the
  // catalog is empty, whereas the applier installs the primary's state
  // verbatim and the warehouse then just finds it.
  std::unique_ptr<repl::ReplicaApplier> applier;
  std::shared_ptr<srv::ResultCache> cache;
  if (cache_capacity > 0) {
    cache = std::make_shared<srv::ResultCache>(cache_capacity);
  }
  if (is_replica) {
    size_t colon = replica_of.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--replica-of wants HOST:PORT, got %s\n",
                   replica_of.c_str());
      return 2;
    }
    repl::ReplicaApplierOptions ropts;
    ropts.primary_host = replica_of.substr(0, colon);
    ropts.primary_port =
        static_cast<uint16_t>(std::atoi(replica_of.c_str() + colon + 1));
    if (cache != nullptr) {
      std::weak_ptr<srv::ResultCache> weak = cache;
      ropts.invalidate = [weak](const std::string& collection) {
        auto c = weak.lock();
        if (c == nullptr) return;
        if (collection.empty()) {
          c->Clear();
        } else {
          c->Invalidate(collection);
        }
      };
    }
    applier = std::make_unique<repl::ReplicaApplier>(db.get(), ropts);
    if (auto status = applier->Start(); !status.ok()) {
      std::fprintf(stderr, "replica start: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("replica of %s: catching up...\n", replica_of.c_str());
    if (auto status = applier->WaitUntilCaughtUp(/*timeout_ms=*/60000);
        !status.ok()) {
      std::fprintf(stderr, "replica catch-up: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("caught up at lsn %llu\n",
                static_cast<unsigned long long>(applier->applied_lsn()));
  }

  auto warehouse = hounds::Warehouse::Open(db.get());
  if (!warehouse.ok()) {
    std::fprintf(stderr, "open warehouse: %s\n",
                 warehouse.status().ToString().c_str());
    return 1;
  }
  if (demo > 0) {
    if (is_replica) {
      std::fprintf(stderr, "--demo is a write; load it on the primary\n");
      return 2;
    }
    LoadDemo(warehouse->get(), demo);
  }

  options.service.cache = cache;
  std::unique_ptr<repl::ReplicationServer> shipper;
  if (replication_port >= 0) {
    repl::ReplicationServerOptions sopts;
    sopts.host = options.host;
    sopts.port = static_cast<uint16_t>(replication_port);
    shipper = std::make_unique<repl::ReplicationServer>(db.get(), sopts);
    if (auto status = shipper->Start(); !status.ok()) {
      std::fprintf(stderr, "replication start: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    options.replication_statusz = [s = shipper.get()] {
      return s->StatuszJson();
    };
  }
  if (is_replica) {
    options.service.read_only = true;
    options.service.wait_for_lsn = [a = applier.get()](uint64_t lsn,
                                                       uint32_t budget_ms) {
      return a->WaitForLsn(lsn, budget_ms);
    };
    options.replication_statusz = [a = applier.get()] {
      return a->StatuszJson();
    };
    options.replica_ready = [a = applier.get()] { return a->ready(); };
  }

  srv::QueryServer server(warehouse->get(), options);
  if (auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("xomatiq_server listening on %s:%u (%zu workers, queue %zu, "
              "cache %zu)%s\n",
              options.host.c_str(), server.port(), options.workers,
              options.max_queue, cache_capacity,
              is_replica ? " [read-only replica]" : "");
  if (shipper != nullptr) {
    std::printf("shipping WAL to replicas on %s:%u\n", options.host.c_str(),
                shipper->port());
  }
  if (server.admin_port() != 0) {
    std::printf("admin endpoint on http://%s:%u/ "
                "(/metrics /healthz /statusz /queryz /tracez)\n",
                options.host.c_str(), server.admin_port());
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("shutting down (draining in-flight queries)\n");
  server.Shutdown();
  if (shipper != nullptr) shipper->Shutdown();
  if (applier != nullptr) applier->Shutdown();
  return 0;
}
