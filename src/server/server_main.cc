// xomatiq_server: the XomatiQ query service over TCP.
//
//   xomatiq_server [--port N] [--workers N] [--queue N] [--cache N]
//                  [--db DIR] [--demo N] [--admin-port N] [--slow-ms MS]
//
// Serves SQL and XomatiQ queries against one shared warehouse. --db opens
// (or creates) a durable database directory; without it the server runs
// in-memory. --demo N loads a deterministic N-entry synthetic corpus
// (ENZYME + Swiss-Prot + EMBL collections) so the shell has something to
// query out of the box. Connect with xomatiq_shell.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/query_log.h"
#include "datagen/corpus.h"
#include "datahounds/warehouse.h"
#include "relational/database.h"
#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

void LoadDemo(xomatiq::hounds::Warehouse* warehouse, size_t n) {
  using namespace xomatiq;
  datagen::CorpusOptions options;
  options.num_enzymes = n;
  options.num_proteins = n;
  options.num_nucleotides = n;
  options.ketone_fraction = 0.15;  // same planted keyword as xq_shell's \demo
  datagen::Corpus corpus = datagen::GenerateCorpus(options);

  hounds::EnzymeXmlTransformer enzyme;
  hounds::SwissProtXmlTransformer sprot;
  hounds::EmblXmlTransformer embl;
  struct Load {
    const char* collection;
    const hounds::XmlTransformer* transformer;
    std::string flatfile;
  } loads[] = {
      {"hlx_enzyme.DEFAULT", &enzyme, datagen::ToEnzymeFlatFile(corpus)},
      {"hlx_sprot.DEFAULT", &sprot, datagen::ToSwissProtFlatFile(corpus)},
      {"hlx_embl.inv", &embl, datagen::ToEmblFlatFile(corpus)},
  };
  for (const Load& load : loads) {
    auto stats =
        warehouse->LoadSource(load.collection, *load.transformer,
                              load.flatfile);
    if (!stats.ok()) {
      std::fprintf(stderr, "demo load %s: %s\n", load.collection,
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("loaded %-20s %zu documents\n", load.collection,
                stats->documents);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xomatiq;

  srv::ServerOptions options;
  options.port = 7333;
  std::string db_dir;
  size_t demo = 0;
  size_t cache_capacity = 256;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      options.workers = static_cast<size_t>(std::atoi(next("--workers")));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      options.max_queue = static_cast<size_t>(std::atoi(next("--queue")));
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      cache_capacity = static_cast<size_t>(std::atoi(next("--cache")));
    } else if (std::strcmp(argv[i], "--db") == 0) {
      db_dir = next("--db");
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = static_cast<size_t>(std::atoi(next("--demo")));
    } else if (std::strcmp(argv[i], "--admin-port") == 0) {
      options.admin_port = std::atoi(next("--admin-port"));
    } else if (std::strcmp(argv[i], "--slow-ms") == 0) {
      xomatiq::common::QueryLog::Global().set_slow_threshold_ns(
          static_cast<uint64_t>(std::atof(next("--slow-ms")) * 1e6));
    } else {
      std::fprintf(stderr,
                   "usage: xomatiq_server [--port N] [--workers N] "
                   "[--queue N] [--cache N] [--db DIR] [--demo N] "
                   "[--admin-port N] [--slow-ms MS]\n");
      return 2;
    }
  }

  std::unique_ptr<rel::Database> db;
  if (db_dir.empty()) {
    db = rel::Database::OpenInMemory();
  } else {
    auto opened = rel::Database::Open(db_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", db_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(opened).value();
  }
  auto warehouse = hounds::Warehouse::Open(db.get());
  if (!warehouse.ok()) {
    std::fprintf(stderr, "open warehouse: %s\n",
                 warehouse.status().ToString().c_str());
    return 1;
  }
  if (demo > 0) LoadDemo(warehouse->get(), demo);

  if (cache_capacity > 0) {
    options.service.cache =
        std::make_shared<srv::ResultCache>(cache_capacity);
  }
  srv::QueryServer server(warehouse->get(), options);
  if (auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("xomatiq_server listening on %s:%u (%zu workers, queue %zu, "
              "cache %zu)\n",
              options.host.c_str(), server.port(), options.workers,
              options.max_queue, cache_capacity);
  if (server.admin_port() != 0) {
    std::printf("admin endpoint on http://%s:%u/ "
                "(/metrics /healthz /statusz /queryz /tracez)\n",
                options.host.c_str(), server.admin_port());
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("shutting down (draining in-flight queries)\n");
  server.Shutdown();
  return 0;
}
