#include "server/protocol.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/net.h"
#include "relational/serde.h"

namespace xomatiq::srv {

using common::Result;
using common::Status;
using common::StatusCode;
using rel::BinaryReader;
using rel::BinaryWriter;

std::string_view RequestModeName(RequestMode mode) {
  switch (mode) {
    case RequestMode::kSql:
      return "SQL";
    case RequestMode::kXq:
      return "XQ";
    case RequestMode::kXqXml:
      return "XQ_XML";
    case RequestMode::kExplain:
      return "EXPLAIN";
    case RequestMode::kStats:
      return "STATS";
    case RequestMode::kPing:
      return "PING";
  }
  return "?";
}

// --- hello ------------------------------------------------------------

namespace {
// Option-flag bits in the optional request tail.
constexpr uint8_t kOptTrace = 1;
constexpr uint8_t kOptBypassCache = 2;
// A u64 trace id follows deadline_ms (kFeatureTraceContext peers only).
constexpr uint8_t kOptTraceId = 4;
// A u64 min_lsn consistency token follows (kFeatureLsn peers only).
constexpr uint8_t kOptMinLsn = 8;
}  // namespace

std::string EncodeHello(const Hello& hello) {
  BinaryWriter w;
  std::string out(kWireMagic, sizeof(kWireMagic));
  w.PutU8(hello.major);
  w.PutU8(hello.minor);
  w.PutU32(hello.features);
  out += w.TakeBuffer();
  return out;
}

bool IsHelloFrame(std::string_view body) {
  return body.size() >= sizeof(kWireMagic) &&
         std::memcmp(body.data(), kWireMagic, sizeof(kWireMagic)) == 0;
}

Result<Hello> DecodeHello(std::string_view body) {
  if (!IsHelloFrame(body)) {
    return Status::InvalidArgument("not a hello frame (bad magic)");
  }
  BinaryReader r(body.substr(sizeof(kWireMagic)));
  Hello hello;
  XQ_ASSIGN_OR_RETURN(hello.major, r.GetU8());
  XQ_ASSIGN_OR_RETURN(hello.minor, r.GetU8());
  XQ_ASSIGN_OR_RETURN(hello.features, r.GetU32());
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after hello");
  }
  return hello;
}

// --- requests ---------------------------------------------------------

std::string EncodeRequest(const Request& request) {
  BinaryWriter w;
  w.PutU64(request.id);
  w.PutU8(static_cast<uint8_t>(request.mode));
  w.PutString(request.text);
  if (request.has_options) {
    uint8_t flags = 0;
    if (request.options.trace) flags |= kOptTrace;
    if (request.options.bypass_cache) flags |= kOptBypassCache;
    if (request.options.trace_id != 0) flags |= kOptTraceId;
    if (request.options.min_lsn != 0) flags |= kOptMinLsn;
    w.PutU8(flags);
    w.PutU32(request.options.deadline_ms);
    if (request.options.trace_id != 0) w.PutU64(request.options.trace_id);
    if (request.options.min_lsn != 0) w.PutU64(request.options.min_lsn);
  }
  return w.TakeBuffer();
}

Result<Request> DecodeRequest(std::string_view body) {
  BinaryReader r(body);
  Request request;
  XQ_ASSIGN_OR_RETURN(request.id, r.GetU64());
  XQ_ASSIGN_OR_RETURN(uint8_t mode, r.GetU8());
  if (mode > kMaxRequestMode) {
    return Status::InvalidArgument("bad request mode " + std::to_string(mode));
  }
  request.mode = static_cast<RequestMode>(mode);
  XQ_ASSIGN_OR_RETURN(request.text, r.GetString());
  if (!r.AtEnd()) {
    // Optional options tail (sent only after kFeatureQueryOptions was
    // negotiated; its absence means defaults).
    XQ_ASSIGN_OR_RETURN(uint8_t flags, r.GetU8());
    XQ_ASSIGN_OR_RETURN(request.options.deadline_ms, r.GetU32());
    request.options.trace = (flags & kOptTrace) != 0;
    request.options.bypass_cache = (flags & kOptBypassCache) != 0;
    if ((flags & kOptTraceId) != 0) {
      XQ_ASSIGN_OR_RETURN(request.options.trace_id, r.GetU64());
    }
    if ((flags & kOptMinLsn) != 0) {
      XQ_ASSIGN_OR_RETURN(request.options.min_lsn, r.GetU64());
    }
    request.has_options = true;
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after request");
  }
  return request;
}

std::string EncodeResponseBody(const Response& response) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(response.code));
  if (!response.ok()) {
    w.PutString(response.error);
    return w.TakeBuffer();
  }
  w.PutU8(static_cast<uint8_t>(response.kind));
  uint8_t flags = response.flags;
  if (response.lsn != 0) flags |= kFlagLsn;
  w.PutU8(flags);
  if (response.kind == PayloadKind::kRows) {
    w.PutU32(static_cast<uint32_t>(response.columns.size()));
    for (const std::string& col : response.columns) w.PutString(col);
    w.PutU32(static_cast<uint32_t>(response.rows.size()));
    for (const rel::Tuple& row : response.rows) rel::EncodeTuple(row, &w);
  } else {
    w.PutString(response.text);
  }
  // Trailing position keeps cached bodies patchable: the cache rewrites
  // only the flags byte, never this field's offset.
  if (response.lsn != 0) w.PutU64(response.lsn);
  return w.TakeBuffer();
}

std::string EncodeResponse(const Response& response) {
  BinaryWriter w;
  w.PutU64(response.id);
  std::string out = w.TakeBuffer();
  out += EncodeResponseBody(response);
  return out;
}

std::string EncodeErrorResponse(uint64_t id, const Status& status) {
  Response response;
  response.id = id;
  response.code = status.code();
  response.error = status.message();
  return EncodeResponse(response);
}

Result<Response> DecodeResponse(std::string_view body) {
  BinaryReader r(body);
  Response response;
  XQ_ASSIGN_OR_RETURN(response.id, r.GetU64());
  XQ_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  if (code > common::kMaxStatusCode) {
    return Status::Corruption("bad status code " + std::to_string(code));
  }
  response.code = static_cast<StatusCode>(code);
  if (!response.ok()) {
    XQ_ASSIGN_OR_RETURN(response.error, r.GetString());
    return response;
  }
  XQ_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind > kMaxPayloadKind) {
    return Status::Corruption("bad payload kind " + std::to_string(kind));
  }
  response.kind = static_cast<PayloadKind>(kind);
  XQ_ASSIGN_OR_RETURN(response.flags, r.GetU8());
  if (response.kind == PayloadKind::kRows) {
    XQ_ASSIGN_OR_RETURN(uint32_t ncols, r.GetU32());
    for (uint32_t i = 0; i < ncols; ++i) {
      XQ_ASSIGN_OR_RETURN(std::string col, r.GetString());
      response.columns.push_back(std::move(col));
    }
    XQ_ASSIGN_OR_RETURN(uint32_t nrows, r.GetU32());
    for (uint32_t i = 0; i < nrows; ++i) {
      XQ_ASSIGN_OR_RETURN(rel::Tuple row, rel::DecodeTuple(&r));
      response.rows.push_back(std::move(row));
    }
  } else {
    XQ_ASSIGN_OR_RETURN(response.text, r.GetString());
  }
  if ((response.flags & kFlagLsn) != 0) {
    XQ_ASSIGN_OR_RETURN(response.lsn, r.GetU64());
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after response");
  }
  return response;
}

// --- framing ----------------------------------------------------------

namespace {

// recv() into [buf, buf+len); returns bytes read, 0 on EOF, -1 on error.
// `consumed_any` selects the timeout semantics documented on ReadFrame:
// EAGAIN with nothing consumed keeps waiting (idle connection), EAGAIN
// mid-frame is the slow-client violation.
Result<size_t> ReadSome(int fd, char* buf, size_t len, bool consumed_any) {
  while (true) {
    ssize_t n = ::recv(fd, buf, len, 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) return size_t{0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (consumed_any) {
        return Status::Timeout("read timed out mid-frame");
      }
      continue;  // idle between frames: keep waiting
    }
    return Status::IoError(std::string("recv: ") + std::strerror(errno));
  }
}

Status ReadExact(int fd, char* buf, size_t len, bool consumed_any) {
  size_t done = 0;
  while (done < len) {
    XQ_ASSIGN_OR_RETURN(size_t n,
                        ReadSome(fd, buf + done, len - done, consumed_any));
    if (n == 0) {
      return consumed_any ? Status::Corruption("eof mid-frame")
                          : Status::NotFound("connection closed");
    }
    done += n;
    consumed_any = true;
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view body) {
  char header[4];
  uint32_t len = static_cast<uint32_t>(body.size());
  std::memcpy(header, &len, 4);
  std::string buf(header, 4);
  buf.append(body);
  return net::WriteAll(fd, buf);
}

Result<std::string> ReadFrame(int fd, size_t max_bytes) {
  char header[4];
  // The first byte of the header may wait forever (idle session); once any
  // byte arrives the peer owes us the rest of the frame within the socket's
  // receive timeout.
  XQ_RETURN_IF_ERROR(ReadExact(fd, header, 1, /*consumed_any=*/false));
  XQ_RETURN_IF_ERROR(ReadExact(fd, header + 1, 3, /*consumed_any=*/true));
  uint32_t len;
  std::memcpy(&len, header, 4);
  if (len > max_bytes) {
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds limit of " +
                                   std::to_string(max_bytes));
  }
  std::string body(len, '\0');
  if (len > 0) {
    XQ_RETURN_IF_ERROR(ReadExact(fd, body.data(), len, /*consumed_any=*/true));
  }
  return body;
}

}  // namespace xomatiq::srv
