#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/query_log.h"
#include "common/string_util.h"

namespace xomatiq::srv {

using common::Status;

namespace {

struct ServerMetrics {
  common::Counter* connections;
  common::Counter* rejected;
  common::Gauge* active_sessions;

  static ServerMetrics& Get() {
    static ServerMetrics m = [] {
      auto& reg = common::MetricsRegistry::Global();
      return ServerMetrics{reg.GetCounter("server.connections"),
                           reg.GetCounter("server.rejected_overload"),
                           reg.GetGauge("server.active_sessions")};
    }();
    return m;
  }
};

}  // namespace

QueryServer::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

QueryServer::QueryServer(hounds::Warehouse* warehouse, ServerOptions options)
    : warehouse_(warehouse),
      service_(warehouse, options.service),
      options_(std::move(options)) {}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  pool_ = std::make_unique<BoundedThreadPool>(options_.workers,
                                              options_.max_queue);
  start_unix_s_ = static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  start_steady_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  if (options_.admin_port >= 0) {
    XQ_RETURN_IF_ERROR(StartAdmin());
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

uint16_t QueryServer::admin_port() const {
  return admin_ != nullptr ? admin_->port() : 0;
}

Status QueryServer::StartAdmin() {
  AdminHooks hooks;
  hooks.metrics = [] {
    return common::MetricsRegistry::Global().Snapshot().ToPrometheusText();
  };
  hooks.healthz = [this]() -> std::pair<bool, std::string> {
    rel::Database* db = warehouse_->db();
    bool serving = !stopping_.load(std::memory_order_acquire);
    // A replica that is disconnected / never caught up / stale answers 503
    // so load balancers stop routing reads at it; the primary has no
    // replica_ready hook and is unaffected.
    bool replica_ready =
        options_.replica_ready == nullptr || options_.replica_ready();
    const char* status = !serving ? "shutting_down"
                         : !replica_ready ? "replica_stale"
                                          : "ok";
    std::string body = common::StrFormat(
        "{\"status\":\"%s\",\"durable\":%s,\"records_recovered\":%zu,"
        "\"recovered_torn_tail\":%s,\"durable_lsn\":%llu,"
        "\"applied_lsn\":%llu,\"replica_ready\":%s}",
        status, db->durable() ? "true" : "false", db->records_recovered(),
        db->recovered_torn_tail() ? "true" : "false",
        static_cast<unsigned long long>(db->durable_lsn()),
        static_cast<unsigned long long>(db->applied_lsn()),
        replica_ready ? "true" : "false");
    return {serving && replica_ready, std::move(body)};
  };
  hooks.statusz = [this] {
    auto& reg = common::MetricsRegistry::Global();
    uint64_t now_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    size_t sessions;
    {
      std::lock_guard lock(sessions_mu_);
      sessions = sessions_.size();
    }
    uint64_t hits = reg.GetCounter("server.cache.hits")->Value();
    uint64_t misses = reg.GetCounter("server.cache.misses")->Value();
    uint64_t lookups = hits + misses;
    std::string out = common::StrFormat(
        "{\"uptime_s\":%.3f,\"start_unix_s\":%lld,\"port\":%u,"
        "\"active_sessions\":%zu,\"inflight_requests\":%lld,"
        "\"pool_queue_depth\":%zu,\"requests\":%llu,"
        "\"cache_hits\":%llu,\"cache_misses\":%llu,\"cache_hit_rate\":%.4f,"
        "\"slow_queries\":%zu,\"query_log_total\":%llu,"
        "\"durable_lsn\":%llu,\"applied_lsn\":%llu",
        static_cast<double>(now_ns - start_steady_ns_) / 1e9,
        static_cast<long long>(start_unix_s_), port_, sessions,
        static_cast<long long>(reg.GetGauge("server.inflight")->Value()),
        pool_ != nullptr ? pool_->queue_depth() : 0,
        static_cast<unsigned long long>(
            reg.GetCounter("server.requests")->Value()),
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses),
        lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                    : 0.0,
        common::QueryLog::Global().Slow().size(),
        static_cast<unsigned long long>(common::QueryLog::Global().total()),
        static_cast<unsigned long long>(warehouse_->db()->durable_lsn()),
        static_cast<unsigned long long>(warehouse_->db()->applied_lsn()));
    if (options_.replication_statusz != nullptr) {
      out += ",\"replication\":" + options_.replication_statusz();
    }
    out += "}";
    return out;
  };
  hooks.queryz = [] {
    common::QueryLog& log = common::QueryLog::Global();
    std::string out = common::StrFormat(
        "{\"total\":%llu,\"slow_threshold_ms\":%.3f,\"recent\":[",
        static_cast<unsigned long long>(log.total()),
        static_cast<double>(log.slow_threshold_ns()) / 1e6);
    std::vector<common::QueryLogRecord> recent = log.Recent();
    for (size_t i = 0; i < recent.size(); ++i) {
      if (i > 0) out += ",";
      AppendQueryLogRecordJson(&out, recent[i]);
    }
    out += "],\"slow\":[";
    std::vector<common::QueryLogRecord> slow = log.Slow();
    for (size_t i = 0; i < slow.size(); ++i) {
      if (i > 0) out += ",";
      AppendQueryLogRecordJson(&out, slow[i]);
    }
    out += "]}";
    return out;
  };
  hooks.tracez = [this](std::string_view query) -> std::string {
    // ?id=<16-hex>: just that trace's Chrome dump (directly loadable in
    // chrome://tracing), so a client can fetch its request's server half.
    if (query.rfind("id=", 0) == 0) {
      uint64_t id = std::strtoull(std::string(query.substr(3)).c_str(),
                                  nullptr, 16);
      std::string json = service_.TraceJsonFor(id);
      return json.empty() ? std::string("{\"error\":\"no such trace\"}")
                          : json;
    }
    std::string out = "{\"traces\":[";
    auto traces = service_.RecentTraces();
    for (size_t i = 0; i < traces.size(); ++i) {
      if (i > 0) out += ",";
      out += common::StrFormat(
          "{\"trace_id\":\"%016llx\",\"trace\":",
          static_cast<unsigned long long>(traces[i].first));
      out += traces[i].second;
      out += "}";
    }
    out += "]}";
    return out;
  };
  HttpAdminOptions admin_options;
  admin_options.host = options_.host;
  admin_options.port = static_cast<uint16_t>(options_.admin_port);
  admin_ = std::make_unique<HttpAdminServer>(std::move(hooks), admin_options);
  return admin_->Start();
}

void QueryServer::Shutdown() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Stop the admin endpoint first so its hooks never observe the server
  // mid-teardown.
  if (admin_ != nullptr) admin_->Shutdown();
  if (listen_fd_ >= 0) {
    // Unblocks accept(); the fd itself is closed after the thread exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Half-close live connections: readers see EOF and exit, while
    // sockets stay writable for responses still in flight.
    std::lock_guard lock(sessions_mu_);
    for (auto& [id, conn] : sessions_) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  if (pool_ != nullptr) pool_->Drain();
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(sessions_mu_);
    threads.swap(session_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener was shut down (or unrecoverable)
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.read_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.read_timeout_ms / 1000;
      tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->session = service_.StartSession();
    ServerMetrics::Get().connections->Inc();
    std::lock_guard lock(sessions_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      return;  // raced with Shutdown; ~Conn closes the socket
    }
    conn->id = next_session_id_++;
    sessions_[conn->id] = conn;
    ServerMetrics::Get().active_sessions->Set(
        static_cast<int64_t>(sessions_.size()));
    session_threads_.emplace_back([this, conn] { SessionLoop(conn); });
  }
}

void QueryServer::SessionLoop(std::shared_ptr<Conn> conn) {
  bool first_frame = true;
  while (true) {
    common::Result<std::string> frame =
        ReadFrame(conn->fd, options_.max_frame_bytes);
    if (frame.ok()) {
      // Fault point server.session.read: fail a successfully read frame
      // as if the socket read itself had failed.
      Status injected = common::FaultInjector::Global().Check(
          "server.session.read");
      if (!injected.ok()) frame = injected;
    }
    if (!frame.ok()) {
      const common::StatusCode code = frame.status().code();
      if (code != common::StatusCode::kNotFound) {
        // Timeout / oversized / corrupt: tell the peer why (best effort —
        // it may already be gone), then drop the connection.
        std::string reply = EncodeErrorResponse(0, frame.status());
        std::lock_guard lock(conn->write_mu);
        WriteFrame(conn->fd, reply);
      }
      break;
    }
    if (first_frame) {
      first_frame = false;
      if (IsHelloFrame(*frame)) {
        common::Result<Hello> hello = DecodeHello(*frame);
        if (!hello.ok()) {
          std::string reply = EncodeErrorResponse(0, hello.status());
          std::lock_guard lock(conn->write_mu);
          WriteFrame(conn->fd, reply);
          break;
        }
        if (hello->major != kProtocolMajor) {
          std::string reply = EncodeErrorResponse(
              0, Status::Unsupported(
                     "protocol major version " +
                     std::to_string(hello->major) + " not supported (server " +
                     std::to_string(kProtocolMajor) + "." +
                     std::to_string(kProtocolMinor) + ")"));
          std::lock_guard lock(conn->write_mu);
          WriteFrame(conn->fd, reply);
          break;
        }
        Hello ack;
        ack.features = hello->features & kSupportedFeatures;
        std::string reply = EncodeHello(ack);
        std::lock_guard lock(conn->write_mu);
        if (!WriteFrame(conn->fd, reply).ok()) break;
        continue;
      }
      // No magic: a legacy client's bare request — fall through and treat
      // it as protocol 1.0 with no negotiated features.
    }
    common::Result<Request> request = DecodeRequest(*frame);
    if (!request.ok()) {
      std::string reply = EncodeErrorResponse(0, request.status());
      std::lock_guard lock(conn->write_mu);
      WriteFrame(conn->fd, reply);
      break;  // framing is suspect; don't trust subsequent bytes
    }
    const uint64_t id = request->id;
    bool admitted = pool_->TryEnqueue(
        [conn, request = *std::move(request)] {
          std::string reply = conn->session->Handle(request);
          // Fault point server.session.write: drop the response and sever
          // the connection, as a worker crashing between execution and
          // reply would; the client's retry layer must reconnect+resend.
          if (common::FaultInjector::Global().ShouldFail(
                  "server.session.write")) {
            ::shutdown(conn->fd, SHUT_RDWR);
            return;
          }
          std::lock_guard lock(conn->write_mu);
          WriteFrame(conn->fd, reply);
        });
    if (!admitted) {
      ServerMetrics::Get().rejected->Inc();
      std::string reply = EncodeErrorResponse(
          id, Status::Overloaded("admission queue full; retry later"));
      std::lock_guard lock(conn->write_mu);
      if (!WriteFrame(conn->fd, reply).ok()) break;
    }
  }
  std::lock_guard lock(sessions_mu_);
  sessions_.erase(conn->id);
  ServerMetrics::Get().active_sessions->Set(
      static_cast<int64_t>(sessions_.size()));
}

}  // namespace xomatiq::srv
