#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>

#include "common/fault_injector.h"
#include "common/metrics.h"

namespace xomatiq::srv {

using common::Status;

namespace {

struct ServerMetrics {
  common::Counter* connections;
  common::Counter* rejected;
  common::Gauge* active_sessions;

  static ServerMetrics& Get() {
    static ServerMetrics m = [] {
      auto& reg = common::MetricsRegistry::Global();
      return ServerMetrics{reg.GetCounter("server.connections"),
                           reg.GetCounter("server.rejected_overload"),
                           reg.GetGauge("server.active_sessions")};
    }();
    return m;
  }
};

}  // namespace

QueryServer::Session::~Session() {
  if (fd >= 0) ::close(fd);
}

QueryServer::QueryServer(hounds::Warehouse* warehouse, ServerOptions options)
    : service_(warehouse, options.service), options_(std::move(options)) {}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  pool_ = std::make_unique<BoundedThreadPool>(options_.workers,
                                              options_.max_queue);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Shutdown() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // Unblocks accept(); the fd itself is closed after the thread exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Half-close live sessions: readers see EOF and exit, while sockets
    // stay writable for responses still in flight.
    std::lock_guard lock(sessions_mu_);
    for (auto& [id, session] : sessions_) {
      ::shutdown(session->fd, SHUT_RD);
    }
  }
  if (pool_ != nullptr) pool_->Drain();
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(sessions_mu_);
    threads.swap(session_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener was shut down (or unrecoverable)
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.read_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.read_timeout_ms / 1000;
      tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    ServerMetrics::Get().connections->Inc();
    std::lock_guard lock(sessions_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      return;  // raced with Shutdown; ~Session closes the socket
    }
    session->id = next_session_id_++;
    sessions_[session->id] = session;
    ServerMetrics::Get().active_sessions->Set(
        static_cast<int64_t>(sessions_.size()));
    session_threads_.emplace_back(
        [this, session] { SessionLoop(session); });
  }
}

void QueryServer::SessionLoop(std::shared_ptr<Session> session) {
  bool first_frame = true;
  while (true) {
    common::Result<std::string> frame =
        ReadFrame(session->fd, options_.max_frame_bytes);
    if (frame.ok()) {
      // Fault point server.session.read: fail a successfully read frame
      // as if the socket read itself had failed.
      Status injected = common::FaultInjector::Global().Check(
          "server.session.read");
      if (!injected.ok()) frame = injected;
    }
    if (!frame.ok()) {
      const common::StatusCode code = frame.status().code();
      if (code != common::StatusCode::kNotFound) {
        // Timeout / oversized / corrupt: tell the peer why (best effort —
        // it may already be gone), then drop the connection.
        std::string reply = EncodeErrorResponse(0, frame.status());
        std::lock_guard lock(session->write_mu);
        WriteFrame(session->fd, reply);
      }
      break;
    }
    if (first_frame) {
      first_frame = false;
      if (IsHelloFrame(*frame)) {
        common::Result<Hello> hello = DecodeHello(*frame);
        if (!hello.ok()) {
          std::string reply = EncodeErrorResponse(0, hello.status());
          std::lock_guard lock(session->write_mu);
          WriteFrame(session->fd, reply);
          break;
        }
        if (hello->major != kProtocolMajor) {
          std::string reply = EncodeErrorResponse(
              0, Status::Unsupported(
                     "protocol major version " +
                     std::to_string(hello->major) + " not supported (server " +
                     std::to_string(kProtocolMajor) + "." +
                     std::to_string(kProtocolMinor) + ")"));
          std::lock_guard lock(session->write_mu);
          WriteFrame(session->fd, reply);
          break;
        }
        Hello ack;
        ack.features = hello->features & kSupportedFeatures;
        std::string reply = EncodeHello(ack);
        std::lock_guard lock(session->write_mu);
        if (!WriteFrame(session->fd, reply).ok()) break;
        continue;
      }
      // No magic: a legacy client's bare request — fall through and treat
      // it as protocol 1.0 with no negotiated features.
    }
    common::Result<Request> request = DecodeRequest(*frame);
    if (!request.ok()) {
      std::string reply = EncodeErrorResponse(0, request.status());
      std::lock_guard lock(session->write_mu);
      WriteFrame(session->fd, reply);
      break;  // framing is suspect; don't trust subsequent bytes
    }
    const uint64_t id = request->id;
    bool admitted = pool_->TryEnqueue(
        [this, session, request = *std::move(request)] {
          std::string reply = service_.Handle(request);
          // Fault point server.session.write: drop the response and sever
          // the connection, as a worker crashing between execution and
          // reply would; the client's retry layer must reconnect+resend.
          if (common::FaultInjector::Global().ShouldFail(
                  "server.session.write")) {
            ::shutdown(session->fd, SHUT_RDWR);
            return;
          }
          std::lock_guard lock(session->write_mu);
          WriteFrame(session->fd, reply);
        });
    if (!admitted) {
      ServerMetrics::Get().rejected->Inc();
      std::string reply = EncodeErrorResponse(
          id, Status::Overloaded("admission queue full; retry later"));
      std::lock_guard lock(session->write_mu);
      if (!WriteFrame(session->fd, reply).ok()) break;
    }
  }
  std::lock_guard lock(sessions_mu_);
  sessions_.erase(session->id);
  ServerMetrics::Get().active_sessions->Set(
      static_cast<int64_t>(sessions_.size()));
}

}  // namespace xomatiq::srv
