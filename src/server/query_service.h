#ifndef XOMATIQ_SERVER_QUERY_SERVICE_H_
#define XOMATIQ_SERVER_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/query_options.h"
#include "datahounds/warehouse.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/session.h"
#include "xomatiq/xomatiq.h"

namespace xomatiq::srv {

struct ServiceOptions {
  // Shared result cache; null disables caching. The service subscribes
  // cache invalidation to the warehouse's ChangeEvents (holding only a
  // weak_ptr, so the cache may die before the warehouse).
  std::shared_ptr<ResultCache> cache;
  // Honor "#sleep <ms>" PING payloads. Test-only: lets a test pin a
  // worker for a deterministic interval to fill the admission queue.
  bool allow_sleep = false;
  // Server-side deadline applied to requests that don't carry their own
  // (0 = none). A request's explicit deadline always wins, even if longer:
  // the knob is a default, not a cap.
  uint32_t default_deadline_ms = 0;
  // Replica mode: SQL mutations (and ANALYZE) are rejected with a typed
  // kReadOnly status telling the client to retry against the primary.
  // Replicated writes bypass this service entirely (the applier writes
  // straight to the database), so the flag fully fences user writes.
  bool read_only = false;
  // Read-your-writes support: called as (min_lsn, budget_ms) when a
  // request carries a min_lsn the database has not reached; returns true
  // once the position is visible, false on timeout (the request is then
  // refused with kLagging so the client can bounce to the primary).
  // Unset = never wait; a stale read is refused immediately. Wired to
  // ReplicaApplier::WaitForLsn on replicas.
  std::function<bool(uint64_t, uint32_t)> wait_for_lsn;
  // Budget handed to wait_for_lsn. Short by design: a replica briefly
  // riding out replication lag is useful, a replica stalling reads is not.
  uint32_t min_lsn_wait_ms = 100;
};

// SQL keyword helpers shared by the service and Session: the first
// leading identifier of `text`, lowercased ("" when it opens with
// something else), and whether that keyword mutates.
std::string FirstSqlKeyword(std::string_view text);
bool IsSqlMutation(std::string_view keyword);

// Transport-independent request handler: one instance per server, shared
// by every connection. Per-request orchestration (query-log scope, trace,
// min_lsn gate, snapshot pin) lives in Session; this class owns what is
// genuinely shared — the engine stack, the result cache, the trace ring —
// plus the mode dispatch.
//
// Thread-safety: Dispatch may run on many worker threads at once. Reads
// run against pinned snapshots (no latch); writes serialize on the
// database write latch via the engine's WriteGuard; the cache has its own
// leaf mutex. No mutable per-request state is kept here.
class QueryService {
 public:
  QueryService(hounds::Warehouse* warehouse, ServiceOptions options = {});
  ~QueryService();

  // Opens a logical session. The server creates one per accepted wire
  // connection; its Handle() is the request entry point.
  std::shared_ptr<Session> StartSession();

  // Back-compat one-shot entry point: routes through an internal
  // "sessionless" Session (id 0). Same semantics as Session::Handle.
  std::string Handle(const Request& request);

  // Chrome trace_event JSON of the most recent traced request ("" when no
  // request asked for a trace yet). One slot, last-writer-wins: the
  // diagnosing operator traces one query at a time. Only explicitly
  // requested traces land here; sampled traces go to the ring below.
  std::string LastTraceJson() const;

  // Ring of the most recent request traces (requested + sampled), newest
  // first, as (trace_id, Chrome JSON) pairs. Feeds /tracez.
  std::vector<std::pair<uint64_t, std::string>> RecentTraces() const;

  // Chrome JSON of the most recent trace tagged `trace_id` ("" when it has
  // aged out or never existed). Lets a client stitch its half of the
  // timeline to the server's by the id it put on the wire.
  std::string TraceJsonFor(uint64_t trace_id) const;

  ResultCache* cache() { return options_.cache.get(); }
  xq::XomatiQ* xomatiq() { return &xomatiq_; }

 private:
  friend class Session;

  // The mode dispatch, with the effective (defaulted) options applied.
  // `read_epoch` is the snapshot epoch the owning Session pinned for this
  // request (nullopt for mutations and non-data modes).
  std::string Dispatch(const Request& request,
                       const common::QueryOptions& opts,
                       std::optional<uint64_t> read_epoch);
  std::string HandleSql(const Request& request,
                        const common::QueryOptions& opts,
                        std::optional<uint64_t> read_epoch);
  std::string HandleXq(const Request& request, bool as_xml,
                       const common::QueryOptions& opts,
                       std::optional<uint64_t> read_epoch);
  // Stores a finished request trace: the ring always, the operator's
  // last-trace slot only when the client explicitly asked.
  void RecordTrace(bool explicit_trace, uint64_t trace_id, std::string json);

  hounds::Warehouse* warehouse_;
  xq::XomatiQ xomatiq_;
  ServiceOptions options_;
  std::atomic<uint64_t> next_session_id_{1};
  std::shared_ptr<Session> default_session_;
  mutable std::mutex trace_mu_;
  std::string last_trace_json_;
  // Newest-first ring of recent request traces, capped at kTraceRingCap.
  static constexpr size_t kTraceRingCap = 8;
  std::deque<std::pair<uint64_t, std::string>> recent_traces_;
};

}  // namespace xomatiq::srv

#endif  // XOMATIQ_SERVER_QUERY_SERVICE_H_
