#ifndef XOMATIQ_SERVER_THREAD_POOL_H_
#define XOMATIQ_SERVER_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xomatiq::srv {

// Fixed-size worker pool with a *bounded* admission queue. TryEnqueue
// refuses work instead of queueing without limit — the server turns a
// refusal into a typed OVERLOADED response, which is the backpressure
// contract: a client always gets an answer, never an unbounded wait.
//
// Shutdown drains: Drain() stops admission, lets every queued and running
// task finish, then joins the workers. Tasks must not TryEnqueue from
// inside the pool.
class BoundedThreadPool {
 public:
  // `max_queue` counts tasks waiting beyond the ones running.
  BoundedThreadPool(size_t workers, size_t max_queue);
  ~BoundedThreadPool();

  BoundedThreadPool(const BoundedThreadPool&) = delete;
  BoundedThreadPool& operator=(const BoundedThreadPool&) = delete;

  // False when the queue is full or the pool is draining.
  bool TryEnqueue(std::function<void()> task);

  // Stops admission, waits for queued + in-flight tasks, joins workers.
  // Idempotent.
  void Drain();

  size_t queue_depth() const;

 private:
  void WorkerLoop();

  const size_t max_queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable drain_cv_;  // Drain waits for quiescence
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;  // tasks currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace xomatiq::srv

#endif  // XOMATIQ_SERVER_THREAD_POOL_H_
