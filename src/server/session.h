#ifndef XOMATIQ_SERVER_SESSION_H_
#define XOMATIQ_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "server/protocol.h"

namespace xomatiq::srv {

class QueryService;

// Server-side logical session: one per wire connection (plus one internal
// "sessionless" instance backing QueryService::Handle for embedders).
// Owns the per-request execution context that used to be ad-hoc plumbing
// inside QueryService:
//   - the outermost query-log scope and the trace id stamped onto it;
//   - the per-request Trace when the client asked (or sampling fired);
//   - the read-your-writes min_lsn gate, which must pass BEFORE a
//     snapshot is pinned (a snapshot taken early could freeze a cut older
//     than the LSN the client demanded);
//   - snapshot acquisition: one rel::Snapshot pinned for the whole
//     request on read modes (SQL SELECT, XQ, XQ-XML), so every statement
//     a request touches — and the result-cache key — sees one committed
//     epoch. Mutations deliberately run unpinned: a Snapshot holds the
//     DDL latch shared, and DDL needs it exclusive.
//
// Thread-safety: Handle() may run on many worker threads at once
// (pipelined requests on one connection). All per-request state lives on
// the calling worker's stack; the object itself carries only identity and
// monotonically-increasing counters.
class Session {
 public:
  // Full request pipeline; never throws and never fails — any error
  // becomes an encoded error response carrying the request id.
  std::string Handle(const Request& request);

  uint64_t id() const { return id_; }
  uint64_t requests_handled() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  friend class QueryService;  // constructed by QueryService::StartSession
  Session(QueryService* service, uint64_t id) : service_(service), id_(id) {}

  // Gate + snapshot pin + dispatch (the part of Handle that runs inside
  // the query-log / trace scopes).
  std::string Execute(const Request& request,
                      const common::QueryOptions& opts);

  QueryService* service_;
  const uint64_t id_;
  std::atomic<uint64_t> requests_{0};
};

}  // namespace xomatiq::srv

#endif  // XOMATIQ_SERVER_SESSION_H_
