#include "server/query_service.h"

#include <chrono>
#include <cstdlib>
#include <string_view>
#include <thread>

#include "common/metrics.h"
#include "common/query_log.h"
#include "common/trace.h"
#include "relational/serde.h"
#include "xml/writer.h"

namespace xomatiq::srv {

using common::Result;
using common::Status;

namespace {

std::string FirstKeyword(std::string_view text) {
  size_t i = text.find_first_not_of(" \t\r\n");
  std::string word;
  for (; i != std::string_view::npos && i < text.size(); ++i) {
    char c = text[i];
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))) break;
    if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
    word.push_back(c);
  }
  return word;
}

bool IsMutation(std::string_view keyword) {
  return keyword == "insert" || keyword == "update" || keyword == "delete" ||
         keyword == "create" || keyword == "drop";
}

// Serves a cached body under `id`, marking it as a cache hit by patching
// the single flags byte — the rows themselves are reused verbatim.
std::string ServeCached(uint64_t id, std::string body) {
  if (body.size() > kFlagsOffset) body[kFlagsOffset] |= kFlagCached;
  rel::BinaryWriter w;
  w.PutU64(id);
  std::string out = w.TakeBuffer();
  out += body;
  return out;
}

std::string Finish(uint64_t id, std::string body) {
  rel::BinaryWriter w;
  w.PutU64(id);
  std::string out = w.TakeBuffer();
  out += body;
  return out;
}

}  // namespace

QueryService::QueryService(hounds::Warehouse* warehouse,
                           ServiceOptions options)
    : warehouse_(warehouse),
      xomatiq_(warehouse),
      options_(std::move(options)) {
  if (options_.cache != nullptr) {
    // Weak capture: the subscription is never removed (see
    // Warehouse::Subscribe), but the cache may be dropped first.
    std::weak_ptr<ResultCache> weak = options_.cache;
    warehouse_->Subscribe([weak](const hounds::ChangeEvent& event) {
      if (auto cache = weak.lock()) cache->Invalidate(event.collection);
    });
  }
}

std::string QueryService::Handle(const Request& request) {
  static common::Counter* requests =
      common::MetricsRegistry::Global().GetCounter("server.requests");
  static common::Gauge* inflight =
      common::MetricsRegistry::Global().GetGauge("server.inflight");
  requests->Inc();
  inflight->Add(1);
  // Outermost query-log scope: owns the record for this request; the
  // engine layers below annotate plan fingerprint / est-vs-actual rows.
  common::QueryLogScope qlog(request.text, RequestModeName(request.mode));
  if (common::QueryLogRecord* rec = common::QueryLogScope::Current()) {
    rec->trace_id = request.options.trace_id;
  }
  common::QueryOptions opts = request.options;
  if (opts.deadline_ms == 0) opts.deadline_ms = options_.default_deadline_ms;
  // Trace when the client asked, and opportunistically for a sampled
  // slice of ordinary requests so some slow-query-log entries carry a
  // trace without the operator having planned ahead.
  const bool sampled = common::QueryLog::Global().ShouldSampleTrace();
  std::string reply;
  if (!opts.trace && !sampled) {
    reply = Dispatch(request, opts);
  } else {
    // Traced request: install a per-request Trace for this worker thread,
    // keep the Chrome JSON for LastTraceJson / the trace ring, and mark
    // the response.
    common::Trace trace;
    trace.set_trace_id(opts.trace_id);
    {
      common::TraceScope scope(&trace);
      reply = Dispatch(request, opts);
    }
    std::string json = trace.ToChromeJson(/*pid=*/1);
    if (common::QueryLogRecord* rec = common::QueryLogScope::Current()) {
      rec->trace_json = json;  // dropped on append unless the query is slow
    }
    {
      std::lock_guard lock(trace_mu_);
      // Only explicit traces update the operator's last-trace slot.
      if (opts.trace) last_trace_json_ = json;
      recent_traces_.emplace_front(opts.trace_id, std::move(json));
      if (recent_traces_.size() > kTraceRingCap) recent_traces_.pop_back();
    }
    if (opts.trace) {
      // Reply layout: u64 id | u8 status | (u8 kind | u8 flags | ...).
      // Patch the flags byte of OK responses the same way ServeCached does.
      constexpr size_t kReplyFlags = 8 + kFlagsOffset;
      if (reply.size() > kReplyFlags && reply[8] == 0) {
        reply[kReplyFlags] = static_cast<char>(
            static_cast<uint8_t>(reply[kReplyFlags]) | kFlagTraced);
      }
    }
  }
  // Stamp error status on the record (the SQL engine already does this for
  // its own failures; XQ translation errors and bad modes land here).
  if (common::QueryLogRecord* rec = common::QueryLogScope::Current()) {
    if (reply.size() > 8 && reply[8] != 0) rec->ok = false;
  }
  inflight->Add(-1);
  return reply;
}

std::string QueryService::LastTraceJson() const {
  std::lock_guard lock(trace_mu_);
  return last_trace_json_;
}

std::vector<std::pair<uint64_t, std::string>> QueryService::RecentTraces()
    const {
  std::lock_guard lock(trace_mu_);
  return {recent_traces_.begin(), recent_traces_.end()};
}

std::string QueryService::TraceJsonFor(uint64_t trace_id) const {
  std::lock_guard lock(trace_mu_);
  for (const auto& [id, json] : recent_traces_) {
    if (id == trace_id) return json;
  }
  return "";
}

std::string QueryService::Dispatch(const Request& request,
                                   const common::QueryOptions& opts) {
  static common::Histogram* latency =
      common::MetricsRegistry::Global().GetHistogram(
          "server.request_latency_us");
  common::TraceSpan span("server.request", latency);
  // Read-your-writes gate: a data read carrying a min_lsn token must not
  // observe state older than that position. Wait briefly for replication
  // to catch up, then refuse with kLagging (the client reads elsewhere).
  if (opts.min_lsn != 0 &&
      (request.mode == RequestMode::kSql || request.mode == RequestMode::kXq ||
       request.mode == RequestMode::kXqXml)) {
    uint64_t applied = warehouse_->db()->applied_lsn();
    if (applied < opts.min_lsn) {
      bool reached =
          options_.wait_for_lsn != nullptr &&
          options_.wait_for_lsn(opts.min_lsn, options_.min_lsn_wait_ms);
      if (!reached) {
        static common::Counter* lagging =
            common::MetricsRegistry::Global().GetCounter(
                "server.lagging_rejected");
        lagging->Inc();
        return EncodeErrorResponse(
            request.id,
            Status::Lagging("replica at lsn " +
                            std::to_string(warehouse_->db()->applied_lsn()) +
                            " behind requested min_lsn " +
                            std::to_string(opts.min_lsn)));
      }
    }
  }
  switch (request.mode) {
    case RequestMode::kSql:
      return HandleSql(request, opts);
    case RequestMode::kXq:
      return HandleXq(request, /*as_xml=*/false, opts);
    case RequestMode::kXqXml:
      return HandleXq(request, /*as_xml=*/true, opts);
    case RequestMode::kExplain: {
      Result<std::string> text = xomatiq_.Explain(request.text);
      if (!text.ok()) return EncodeErrorResponse(request.id, text.status());
      Response response;
      response.id = request.id;
      response.kind = PayloadKind::kText;
      response.text = *std::move(text);
      return EncodeResponse(response);
    }
    case RequestMode::kStats: {
      Response response;
      response.id = request.id;
      response.kind = PayloadKind::kText;
      response.text = common::MetricsRegistry::Global().Snapshot().ToJson();
      return EncodeResponse(response);
    }
    case RequestMode::kPing: {
      if (options_.allow_sleep && request.text.rfind("#sleep ", 0) == 0) {
        int ms = std::atoi(request.text.c_str() + 7);
        if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
      Response response;
      response.id = request.id;
      response.kind = PayloadKind::kText;
      response.text = "pong";
      return EncodeResponse(response);
    }
  }
  return EncodeErrorResponse(
      request.id, Status::InvalidArgument("unhandled request mode"));
}

std::string QueryService::HandleSql(const Request& request,
                                    const common::QueryOptions& opts) {
  ResultCache* cache = options_.cache.get();
  const std::string keyword = FirstKeyword(request.text);
  if (options_.read_only && (IsMutation(keyword) || keyword == "analyze")) {
    static common::Counter* rejected =
        common::MetricsRegistry::Global().GetCounter(
            "server.read_only_rejected");
    rejected->Inc();
    return EncodeErrorResponse(
        request.id, Status::ReadOnly("replica is read-only; send " +
                                     keyword + " to the primary"));
  }
  const bool cacheable =
      cache != nullptr && keyword == "select" && !opts.bypass_cache;
  std::string key;
  uint64_t generation = 0;
  if (cacheable) {
    key = ResultCache::MakeKey(static_cast<uint8_t>(request.mode),
                               request.text);
    generation = cache->generation();
    if (std::optional<std::string> body = cache->Lookup(key)) {
      if (auto* rec = common::QueryLogScope::Current()) rec->cache_hit = true;
      return ServeCached(request.id, *std::move(body));
    }
  }
  Result<sql::QueryResult> result =
      xomatiq_.engine()->Execute(request.text, opts);
  if (!result.ok()) return EncodeErrorResponse(request.id, result.status());
  Response response;
  response.id = request.id;
  if (!result->explain_text.empty()) {
    response.kind = PayloadKind::kText;
    response.text = result->explain_text;
  } else if (result->schema.size() > 0 || !result->rows.empty()) {
    response.kind = PayloadKind::kRows;
    for (const rel::Column& col : result->schema.columns()) {
      response.columns.push_back(col.name);
    }
    response.rows = std::move(result->rows);
  } else {
    response.kind = PayloadKind::kText;
    response.text = "OK (" + std::to_string(result->affected) + " rows)";
  }
  // Commit LSN for writes, serving position for reads. A cached body keeps
  // the LSN it was built at — older, but the result is still exactly what
  // that position held (the cache would have evicted it otherwise).
  response.lsn = warehouse_->db()->durable_lsn();
  std::string body = EncodeResponseBody(response);
  if (cacheable) {
    // SQL entries carry no collection tags: table-level dependencies are
    // not tracked, so they die on any warehouse change.
    cache->Insert(key, body, /*tags=*/{}, generation);
  } else if (cache != nullptr && IsMutation(keyword)) {
    // A write went through this service; everything cached may be stale.
    cache->Clear();
  }
  return Finish(request.id, std::move(body));
}

std::string QueryService::HandleXq(const Request& request, bool as_xml,
                                   const common::QueryOptions& opts) {
  ResultCache* cache = options_.cache.get();
  const bool use_cache = cache != nullptr && !opts.bypass_cache;
  std::string key;
  uint64_t generation = 0;
  if (use_cache) {
    key = ResultCache::MakeKey(static_cast<uint8_t>(request.mode),
                               request.text);
    generation = cache->generation();
    if (std::optional<std::string> body = cache->Lookup(key)) {
      if (auto* rec = common::QueryLogScope::Current()) rec->cache_hit = true;
      return ServeCached(request.id, *std::move(body));
    }
  }
  Result<xq::XqResult> result = xomatiq_.Execute(request.text, opts);
  if (!result.ok()) return EncodeErrorResponse(request.id, result.status());
  Response response;
  response.id = request.id;
  if (as_xml) {
    response.kind = PayloadKind::kXml;
    response.text = xml::WriteXml(xomatiq_.ResultsAsXml(*result));
  } else {
    response.kind = PayloadKind::kRows;
    response.columns = std::move(result->columns);
    response.rows = std::move(result->rows);
  }
  response.lsn = warehouse_->db()->durable_lsn();
  std::string body = EncodeResponseBody(response);
  if (use_cache) {
    cache->Insert(key, body, std::move(result->collections), generation);
  }
  return Finish(request.id, std::move(body));
}

}  // namespace xomatiq::srv
