#include "server/query_service.h"

#include <chrono>
#include <cstdlib>
#include <string_view>
#include <thread>

#include "common/metrics.h"
#include "common/query_log.h"
#include "common/query_request.h"
#include "common/trace.h"
#include "relational/serde.h"
#include "xml/writer.h"

namespace xomatiq::srv {

using common::Result;
using common::Status;

namespace {

// Serves a cached body under `id`, marking it as a cache hit by patching
// the single flags byte — the rows themselves are reused verbatim.
std::string ServeCached(uint64_t id, std::string body) {
  if (body.size() > kFlagsOffset) body[kFlagsOffset] |= kFlagCached;
  rel::BinaryWriter w;
  w.PutU64(id);
  std::string out = w.TakeBuffer();
  out += body;
  return out;
}

std::string Finish(uint64_t id, std::string body) {
  rel::BinaryWriter w;
  w.PutU64(id);
  std::string out = w.TakeBuffer();
  out += body;
  return out;
}

}  // namespace

std::string FirstSqlKeyword(std::string_view text) {
  size_t i = text.find_first_not_of(" \t\r\n");
  std::string word;
  for (; i != std::string_view::npos && i < text.size(); ++i) {
    char c = text[i];
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))) break;
    if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
    word.push_back(c);
  }
  return word;
}

bool IsSqlMutation(std::string_view keyword) {
  return keyword == "insert" || keyword == "update" || keyword == "delete" ||
         keyword == "create" || keyword == "drop";
}

QueryService::QueryService(hounds::Warehouse* warehouse,
                           ServiceOptions options)
    : warehouse_(warehouse),
      xomatiq_(warehouse),
      options_(std::move(options)) {
  // Session id 0 = the internal "sessionless" session behind Handle().
  default_session_ = std::shared_ptr<Session>(new Session(this, 0));
  if (options_.cache != nullptr) {
    // Weak capture: the subscription is never removed (see
    // Warehouse::Subscribe), but the cache may be dropped first.
    std::weak_ptr<ResultCache> weak = options_.cache;
    warehouse_->Subscribe([weak](const hounds::ChangeEvent& event) {
      if (auto cache = weak.lock()) cache->Invalidate(event.collection);
    });
  }
}

QueryService::~QueryService() = default;

std::shared_ptr<Session> QueryService::StartSession() {
  uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<Session>(new Session(this, id));
}

std::string QueryService::Handle(const Request& request) {
  return default_session_->Handle(request);
}

std::string QueryService::LastTraceJson() const {
  std::lock_guard lock(trace_mu_);
  return last_trace_json_;
}

std::vector<std::pair<uint64_t, std::string>> QueryService::RecentTraces()
    const {
  std::lock_guard lock(trace_mu_);
  return {recent_traces_.begin(), recent_traces_.end()};
}

std::string QueryService::TraceJsonFor(uint64_t trace_id) const {
  std::lock_guard lock(trace_mu_);
  for (const auto& [id, json] : recent_traces_) {
    if (id == trace_id) return json;
  }
  return "";
}

void QueryService::RecordTrace(bool explicit_trace, uint64_t trace_id,
                               std::string json) {
  std::lock_guard lock(trace_mu_);
  // Only explicit traces update the operator's last-trace slot.
  if (explicit_trace) last_trace_json_ = json;
  recent_traces_.emplace_front(trace_id, std::move(json));
  if (recent_traces_.size() > kTraceRingCap) recent_traces_.pop_back();
}

std::string QueryService::Dispatch(const Request& request,
                                   const common::QueryOptions& opts,
                                   std::optional<uint64_t> read_epoch) {
  static common::Histogram* latency =
      common::MetricsRegistry::Global().GetHistogram(
          "server.request_latency_us");
  common::TraceSpan span("server.request", latency);
  switch (request.mode) {
    case RequestMode::kSql:
      return HandleSql(request, opts, read_epoch);
    case RequestMode::kXq:
      return HandleXq(request, /*as_xml=*/false, opts, read_epoch);
    case RequestMode::kXqXml:
      return HandleXq(request, /*as_xml=*/true, opts, read_epoch);
    case RequestMode::kExplain: {
      Result<std::string> text = xomatiq_.Explain(request.text);
      if (!text.ok()) return EncodeErrorResponse(request.id, text.status());
      Response response;
      response.id = request.id;
      response.kind = PayloadKind::kText;
      response.text = *std::move(text);
      return EncodeResponse(response);
    }
    case RequestMode::kStats: {
      Response response;
      response.id = request.id;
      response.kind = PayloadKind::kText;
      response.text = common::MetricsRegistry::Global().Snapshot().ToJson();
      return EncodeResponse(response);
    }
    case RequestMode::kPing: {
      if (options_.allow_sleep && request.text.rfind("#sleep ", 0) == 0) {
        int ms = std::atoi(request.text.c_str() + 7);
        if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
      Response response;
      response.id = request.id;
      response.kind = PayloadKind::kText;
      response.text = "pong";
      return EncodeResponse(response);
    }
  }
  return EncodeErrorResponse(
      request.id, Status::InvalidArgument("unhandled request mode"));
}

std::string QueryService::HandleSql(const Request& request,
                                    const common::QueryOptions& opts,
                                    std::optional<uint64_t> read_epoch) {
  ResultCache* cache = options_.cache.get();
  const std::string keyword = FirstSqlKeyword(request.text);
  if (options_.read_only && (IsSqlMutation(keyword) || keyword == "analyze")) {
    static common::Counter* rejected =
        common::MetricsRegistry::Global().GetCounter(
            "server.read_only_rejected");
    rejected->Inc();
    return EncodeErrorResponse(
        request.id, Status::ReadOnly("replica is read-only; send " +
                                     keyword + " to the primary"));
  }
  // Cache entries are keyed on the pinned snapshot epoch, so a hit is
  // byte-exact for the cut this request reads (no epoch = no caching).
  const bool cacheable = cache != nullptr && keyword == "select" &&
                         !opts.bypass_cache && read_epoch.has_value();
  std::string key;
  uint64_t generation = 0;
  if (cacheable) {
    key = ResultCache::MakeKey(static_cast<uint8_t>(request.mode),
                               request.text, *read_epoch);
    generation = cache->generation();
    if (std::optional<std::string> body = cache->Lookup(key)) {
      if (auto* rec = common::QueryLogScope::Current()) rec->cache_hit = true;
      return ServeCached(request.id, *std::move(body));
    }
  }
  common::QueryRequest qreq = common::QueryRequest::Sql(request.text, opts);
  qreq.read_epoch = read_epoch;  // the Session owns the pinning Snapshot
  Result<sql::QueryResult> result = xomatiq_.engine()->Execute(qreq);
  if (!result.ok()) return EncodeErrorResponse(request.id, result.status());
  Response response;
  response.id = request.id;
  if (!result->explain_text.empty()) {
    response.kind = PayloadKind::kText;
    response.text = result->explain_text;
  } else if (result->schema.size() > 0 || !result->rows.empty()) {
    response.kind = PayloadKind::kRows;
    for (const rel::Column& col : result->schema.columns()) {
      response.columns.push_back(col.name);
    }
    response.rows = std::move(result->rows);
  } else {
    response.kind = PayloadKind::kText;
    response.text = "OK (" + std::to_string(result->affected) + " rows)";
  }
  // Commit LSN for writes, serving position for reads. A cached body keeps
  // the LSN it was built at — older, but the result is still exactly what
  // that position held (the cache would have evicted it otherwise).
  response.lsn = warehouse_->db()->durable_lsn();
  std::string body = EncodeResponseBody(response);
  if (cacheable) {
    // SQL entries carry no collection tags: table-level dependencies are
    // not tracked, so they die on any warehouse change.
    cache->Insert(key, body, /*tags=*/{}, generation);
  } else if (cache != nullptr && IsSqlMutation(keyword)) {
    // A write went through this service; everything cached may be stale.
    cache->Clear();
  }
  return Finish(request.id, std::move(body));
}

std::string QueryService::HandleXq(const Request& request, bool as_xml,
                                   const common::QueryOptions& opts,
                                   std::optional<uint64_t> read_epoch) {
  ResultCache* cache = options_.cache.get();
  const bool use_cache =
      cache != nullptr && !opts.bypass_cache && read_epoch.has_value();
  std::string key;
  uint64_t generation = 0;
  if (use_cache) {
    key = ResultCache::MakeKey(static_cast<uint8_t>(request.mode),
                               request.text, *read_epoch);
    generation = cache->generation();
    if (std::optional<std::string> body = cache->Lookup(key)) {
      if (auto* rec = common::QueryLogScope::Current()) rec->cache_hit = true;
      return ServeCached(request.id, *std::move(body));
    }
  }
  common::QueryRequest qreq;
  qreq.mode = as_xml ? common::QueryMode::kXqXml : common::QueryMode::kXq;
  qreq.text = request.text;
  qreq.options = opts;
  qreq.read_epoch = read_epoch;  // the Session owns the pinning Snapshot
  Result<xq::XqResult> result = xomatiq_.Execute(qreq);
  if (!result.ok()) return EncodeErrorResponse(request.id, result.status());
  Response response;
  response.id = request.id;
  if (as_xml) {
    response.kind = PayloadKind::kXml;
    response.text = xml::WriteXml(xomatiq_.ResultsAsXml(*result));
  } else {
    response.kind = PayloadKind::kRows;
    response.columns = std::move(result->columns);
    response.rows = std::move(result->rows);
  }
  response.lsn = warehouse_->db()->durable_lsn();
  std::string body = EncodeResponseBody(response);
  if (use_cache) {
    cache->Insert(key, body, std::move(result->collections), generation);
  }
  return Finish(request.id, std::move(body));
}

}  // namespace xomatiq::srv
