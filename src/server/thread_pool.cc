#include "server/thread_pool.h"

#include "common/metrics.h"

namespace xomatiq::srv {

namespace {

common::Gauge* QueueDepthGauge() {
  static common::Gauge* g =
      common::MetricsRegistry::Global().GetGauge("server.queue_depth");
  return g;
}

}  // namespace

BoundedThreadPool::BoundedThreadPool(size_t workers, size_t max_queue)
    : max_queue_(max_queue) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BoundedThreadPool::~BoundedThreadPool() { Drain(); }

bool BoundedThreadPool::TryEnqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    if (stopping_ || queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(task));
    QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
  }
  work_cv_.notify_one();
  return true;
}

void BoundedThreadPool::Drain() {
  {
    std::unique_lock lock(mu_);
    stopping_ = true;
    work_cv_.notify_all();
    drain_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

size_t BoundedThreadPool::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void BoundedThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ with an empty queue: this worker is done; wake Drain
        // in case it is waiting on the last task.
        drain_cv_.notify_all();
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
    }
    drain_cv_.notify_all();
  }
}

}  // namespace xomatiq::srv
