#ifndef XOMATIQ_SERVER_PROTOCOL_H_
#define XOMATIQ_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/query_options.h"
#include "common/result.h"
#include "relational/schema.h"

namespace xomatiq::srv {

// Length-prefixed binary wire protocol between xomatiq_server and its
// clients (see DESIGN.md "Service layer" for the framing diagram).
//
//   frame    := u32 body_length (little-endian) | body
//   hello    := "XQWP" | u8 major | u8 minor | u32 feature_bits
//   request  := u64 request_id | u8 mode | string query_text
//               | [u8 option_flags | u32 deadline_ms
//                  | [u64 trace_id]                     (iff kOptTraceId)
//                  | [u64 min_lsn]]                     (iff kOptMinLsn;
//                    optional tail, flags gate each extra field)
//   response := u64 request_id | u8 status_code
//               | string error_message                  (status_code != 0)
//               | u8 kind | u8 flags | payload
//               | [u64 lsn]                             (status_code == 0;
//                    lsn present iff flags has kFlagLsn)
//   payload  := rows: u32 ncols | ncols * string
//                     | u32 nrows | nrows * tuple       (kind == kRows)
//            := string                                  (kind == kText/kXml)
//
// Strings and tuples reuse the rel::serde encoding (u32-length-prefixed
// strings, tagged values), so the wire shares one binary dialect with the
// WAL and snapshots.
//
// Versioning: a session MAY open with a hello frame; the server answers
// with its own hello (features = the intersection) and rejects a
// mismatched major version with a typed kUnsupported error response. A
// first frame that does not start with the magic is a legacy bare request
// (protocol 1.0 behavior, no features) — existing clients keep working.
// The optional request tail is only sent once the server has acknowledged
// kFeatureQueryOptions.

inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;  // 16 MiB

// --- protocol version & feature negotiation ---

inline constexpr char kWireMagic[4] = {'X', 'Q', 'W', 'P'};
inline constexpr uint8_t kProtocolMajor = 1;
inline constexpr uint8_t kProtocolMinor = 3;

// Feature bits carried in the hello exchange.
inline constexpr uint32_t kFeatureQueryOptions = 1u << 0;
// The options tail may carry a client-generated u64 trace id (flagged by
// kOptTraceId) for cross-process trace correlation. Requires
// kFeatureQueryOptions; a 1.1 peer never sets kOptTraceId, so the tail
// stays decodable in both directions.
inline constexpr uint32_t kFeatureTraceContext = 1u << 1;
// 1.3: LSN-aware sessions. The options tail may carry a u64 min_lsn
// read-your-writes token (flagged by kOptMinLsn), and OK responses carry
// the database LSN observed by the request as a trailing u64 (flagged by
// kFlagLsn) — the commit LSN for writes, the serving position for reads.
// Requires kFeatureQueryOptions for the request side.
inline constexpr uint32_t kFeatureLsn = 1u << 2;
inline constexpr uint32_t kSupportedFeatures =
    kFeatureQueryOptions | kFeatureTraceContext | kFeatureLsn;

// Hello body — used in both directions (the server's reply carries the
// negotiated feature intersection).
struct Hello {
  uint8_t major = kProtocolMajor;
  uint8_t minor = kProtocolMinor;
  uint32_t features = kSupportedFeatures;
};

std::string EncodeHello(const Hello& hello);
common::Result<Hello> DecodeHello(std::string_view body);
// True when `body` opens with the wire magic (i.e. is a hello, not a
// legacy bare request whose first bytes are a request id).
bool IsHelloFrame(std::string_view body);

enum class RequestMode : uint8_t {
  kSql = 0,      // one SQL statement (SELECT/DML/DDL/EXPLAIN/STATS text)
  kXq = 1,       // XomatiQ FLWR query, rows response
  kXqXml = 2,    // XomatiQ FLWR query, re-tagged XML response (§3.3)
  kExplain = 3,  // XomatiQ query -> relational plans, text response
  kStats = 4,    // server + engine metrics snapshot as JSON text
  kPing = 5,     // liveness probe; echoes "pong"
};
inline constexpr uint8_t kMaxRequestMode =
    static_cast<uint8_t>(RequestMode::kPing);

std::string_view RequestModeName(RequestMode mode);

struct Request {
  uint64_t id = 0;
  RequestMode mode = RequestMode::kSql;
  std::string text;
  // Per-query options (deadline / trace / cache bypass). Encoded as the
  // optional request tail only when `has_options` is set; decoding a
  // request without the tail leaves defaults and has_options == false.
  common::QueryOptions options;
  bool has_options = false;
};

enum class PayloadKind : uint8_t {
  kRows = 0,
  kText = 1,
  kXml = 2,
};
inline constexpr uint8_t kMaxPayloadKind =
    static_cast<uint8_t>(PayloadKind::kXml);

// Response flag bits.
inline constexpr uint8_t kFlagCached = 1;  // served from the result cache
inline constexpr uint8_t kFlagTraced = 2;  // a query trace was recorded
inline constexpr uint8_t kFlagLsn = 4;     // trailing u64 LSN present

// Byte offset of the flags byte inside an OK response *body* (the part
// after the request id): [0]=status, [1]=kind, [2]=flags. The result cache
// stores encoded bodies and patches exactly this byte when re-serving.
inline constexpr size_t kFlagsOffset = 2;

struct Response {
  uint64_t id = 0;
  common::StatusCode code = common::StatusCode::kOk;
  std::string error;  // set when code != kOk
  PayloadKind kind = PayloadKind::kText;
  uint8_t flags = 0;
  std::vector<std::string> columns;  // kRows
  std::vector<rel::Tuple> rows;      // kRows
  std::string text;                  // kText / kXml
  // Database LSN observed by this request (0 = server did not attach
  // one). For DML this is the commit LSN — feed it back as min_lsn on a
  // subsequent replica read for read-your-writes. Encoded as the trailing
  // u64 behind kFlagLsn, after the payload, so the result cache's stored
  // bodies (which patch only the flags byte) stay valid.
  uint64_t lsn = 0;

  bool ok() const { return code == common::StatusCode::kOk; }
  bool cached() const { return (flags & kFlagCached) != 0; }
  common::Status status() const {
    return ok() ? common::Status::OK() : common::Status(code, error);
  }
};

// --- body encoding (no framing) ---

std::string EncodeRequest(const Request& request);
common::Result<Request> DecodeRequest(std::string_view body);

// Everything after the request id; what the result cache stores.
std::string EncodeResponseBody(const Response& response);
// id + body.
std::string EncodeResponse(const Response& response);
common::Result<Response> DecodeResponse(std::string_view body);

// Convenience: an error response for `id` carrying `status`.
std::string EncodeErrorResponse(uint64_t id, const common::Status& status);

// --- framing over a connected socket / pipe fd ---
// Both helpers loop over partial reads/writes and retry EINTR; writes use
// MSG_NOSIGNAL so a dead peer surfaces as IoError, not SIGPIPE.

common::Status WriteFrame(int fd, std::string_view body);

// Reads one complete frame body. Status codes distinguish the outcomes a
// session loop must treat differently:
//   NotFound    clean EOF on a frame boundary (peer hung up)
//   Timeout     SO_RCVTIMEO expired while a frame was partially read
//               (the slow-client guard) -- never fired while idle between
//               frames, where the read simply keeps waiting
//   InvalidArgument  declared length exceeds `max_bytes`
//   Corruption  EOF mid-frame
//   IoError     any other socket error
common::Result<std::string> ReadFrame(int fd, size_t max_bytes);

}  // namespace xomatiq::srv

#endif  // XOMATIQ_SERVER_PROTOCOL_H_
