#ifndef XOMATIQ_SERVER_HTTP_ADMIN_H_
#define XOMATIQ_SERVER_HTTP_ADMIN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "common/result.h"

namespace xomatiq::srv {

// Content callbacks the admin endpoint serves. Each returns a complete
// response body; the HTTP layer owns status lines, headers and framing.
// Handlers run on the admin thread concurrently with query execution, so
// they must only touch thread-safe state (metrics snapshots, the query
// log, the trace ring).
struct AdminHooks {
  // GET /metrics — Prometheus text exposition (text/plain).
  std::function<std::string()> metrics;
  // GET /healthz — liveness + readiness. first = healthy (HTTP 200 vs
  // 503), second = JSON body.
  std::function<std::pair<bool, std::string>()> healthz;
  // GET /statusz — uptime / sessions / in-flight / queue depth / cache
  // hit rate as JSON.
  std::function<std::string()> statusz;
  // GET /queryz — recent + slow query-log records as JSON.
  std::function<std::string()> queryz;
  // GET /tracez[?id=<16-hex>] — recent request traces as JSON; with an id,
  // just that trace's Chrome dump. Receives the raw query string ("" when
  // none).
  std::function<std::string(std::string_view query)> tracez;
};

struct HttpAdminOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port from port()
  // SO_RCVTIMEO for request reads; a stalled client is dropped.
  int read_timeout_ms = 2000;
};

// Minimal embedded HTTP/1.0 endpoint for operators and scrapers: GET-only,
// Connection: close, one request per connection, zero dependencies. Runs
// one listener thread that also serves requests inline — every handler is
// a quick in-memory render, and serialized handling bounds the endpoint's
// interference with query work on small machines.
class HttpAdminServer {
 public:
  explicit HttpAdminServer(AdminHooks hooks, HttpAdminOptions options = {});
  ~HttpAdminServer();

  HttpAdminServer(const HttpAdminServer&) = delete;
  HttpAdminServer& operator=(const HttpAdminServer&) = delete;

  // Binds, listens and spawns the serving thread.
  common::Status Start();

  // Stops serving; idempotent.
  void Shutdown();

  // Bound port (after Start()).
  uint16_t port() const { return port_; }

 private:
  void ServeLoop();
  void ServeOne(int fd);

  AdminHooks hooks_;
  HttpAdminOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace xomatiq::srv

#endif  // XOMATIQ_SERVER_HTTP_ADMIN_H_
