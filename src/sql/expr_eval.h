#ifndef XOMATIQ_SQL_EXPR_EVAL_H_
#define XOMATIQ_SQL_EXPR_EVAL_H_

#include <optional>

#include "common/result.h"
#include "relational/schema.h"
#include "sql/ast.h"

namespace xomatiq::sql {

// Resolves every kColumnRef in `e` against `schema`, filling bound_index.
// Rejects aggregates when `allow_aggregates` is false.
common::Status Bind(Expr* e, const rel::Schema& schema,
                    bool allow_aggregates = false);

// Evaluates a bound expression against `tuple`. Booleans are INT 0/1;
// SQL three-valued logic propagates NULL.
common::Result<rel::Value> Eval(const Expr& e, const rel::Tuple& tuple);

// Evaluates `e` as a predicate: NULL -> nullopt, otherwise truthiness.
common::Result<std::optional<bool>> EvalPredicate(const Expr& e,
                                                  const rel::Tuple& tuple);

// NULL-aware truthiness of a value; NULL -> nullopt. Shared between the
// tree walker and the compiled-expression interpreter.
std::optional<bool> Truthiness(const rel::Value& v);

// Scalar binary evaluation (comparison, arithmetic, concat) with SQL NULL
// propagation. kAnd/kOr are control flow, not scalar ops, and are rejected.
common::Result<rel::Value> EvalBinaryScalar(BinaryOp op, const rel::Value& l,
                                            const rel::Value& r);

// SQL LIKE with % (any run) and _ (any one char); case-sensitive.
bool MatchLike(std::string_view text, std::string_view pattern);

// CONTAINS keyword semantics: every keyword token occurs as a token of
// `text` (case-insensitive). Matches what InvertedIndex::LookupAll returns.
bool MatchContains(std::string_view text, std::string_view keywords);

// Infers the result type of a bound expression (for derived schemas).
rel::ValueType InferType(const Expr& e, const rel::Schema& schema);

// True when the expression tree contains an aggregate node.
bool ContainsAggregate(const Expr& e);

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_EXPR_EVAL_H_
