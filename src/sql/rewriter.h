#ifndef XOMATIQ_SQL_REWRITER_H_
#define XOMATIQ_SQL_REWRITER_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "sql/ast.h"

namespace xomatiq::sql {

// Expression-level rewrites shared by the rule-based planner and the
// cost-based logical-plan pipeline. Moved here from planner.cc so both
// paths classify and normalize predicates identically.

// Splits a boolean expression into top-level AND conjuncts (consumes the
// expression tree).
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out);

// True when every column reference in `e` resolves in `schema`.
bool BindableAgainst(const Expr& e, const rel::Schema& schema);

// Bare column name (strips any "alias." qualifier).
std::string BareName(const std::string& name);

// AND-combines a conjunct list back into one expression (null when empty).
ExprPtr AndAll(std::vector<ExprPtr> conjuncts);

// Constant folding: evaluates literal-only pure subexpressions (arithmetic,
// comparisons, scalar functions, NOT/negation) down to literals. AND/OR are
// left alone so conjunct structure survives; any evaluation error leaves
// the subtree untouched.
ExprPtr FoldConstants(ExprPtr e);

// --- predicate classification (index-usable shapes) -------------------

// A single-table predicate decomposed for index matching.
struct EqPred {
  std::string bare_column;
  rel::Value literal;
  size_t conjunct_index;
};

struct RangePred {
  std::string bare_column;
  std::optional<rel::Value> lo;
  bool lo_inclusive = true;
  std::optional<rel::Value> hi;
  bool hi_inclusive = true;
  size_t conjunct_index;
  // True when the range is a superset of the predicate (e.g. the prefix
  // range of a LIKE): the original conjunct must stay as a filter.
  bool keep_conjunct = false;
};

struct ContainsPred {
  std::string bare_column;
  std::string keyword;
  size_t conjunct_index;
};

// Classifies `e` (already known to bind only against one table) into an
// index-usable shape, if any: column-vs-literal equality / range / BETWEEN,
// LIKE with a literal prefix (range + residual), CONTAINS keyword.
void ClassifyPredicate(const Expr& e, size_t conjunct_index,
                       std::vector<EqPred>* eqs,
                       std::vector<RangePred>* ranges,
                       std::vector<ContainsPred>* contains);

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_REWRITER_H_
