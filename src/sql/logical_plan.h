#ifndef XOMATIQ_SQL_LOGICAL_PLAN_H_
#define XOMATIQ_SQL_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "sql/ast.h"
#include "sql/plan.h"

namespace xomatiq::sql {

// Logical (pre-costing) plan IR. The Binder produces it from a SelectStmt;
// the rewrite pass (RewriteLogicalPlan) folds constants and pushes
// single-table predicates into the Get leaves; the cost-based physical
// planner (physical_planner.h) lowers it to a PlanNode tree.
//
// Shape invariant: the tree is a chain of unary operators
// (Limit/Distinct/Sort/Project/Filter/Aggregate) ending in one n-ary kJoin
// whose children are kGet leaves. kJoin is unordered — it carries the full
// cross-relation conjunct pool and leaves join order, join methods and
// access paths to the physical planner (the same role Calcite's MultiJoin
// plays in front of its join-order rules).
enum class LogicalKind {
  kGet,        // base table access; `pushed` = single-table conjuncts
  kJoin,       // n-ary join set with a shared conjunct pool
  kFilter,     // predicate above child (HAVING, residuals)
  kProject,
  kAggregate,
  kSort,
  kLimit,
  kDistinct,
};

std::string_view LogicalKindName(LogicalKind kind);

struct LogicalOp;
using LogicalPtr = std::unique_ptr<LogicalOp>;

struct LogicalOp {
  LogicalKind kind = LogicalKind::kGet;
  // Output schema. For kJoin: children concatenated in FROM order (the
  // physical join order may differ; the Project above re-establishes
  // output column order by name).
  rel::Schema schema;
  std::vector<LogicalPtr> children;

  // kGet.
  std::string table;
  std::string alias;
  std::vector<ExprPtr> pushed;  // single-table conjuncts (moved by rewrite)

  // kJoin: conjuncts spanning two or more children (after rewrite).
  std::vector<ExprPtr> conjuncts;

  // kFilter.
  ExprPtr predicate;

  // kProject.
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;

  // kAggregate (schema = _grp0.._grpN-1, _agg0.._aggM-1).
  std::vector<ExprPtr> group_exprs;
  std::vector<AggSpec> aggs;

  // kSort.
  std::vector<SortKey> keys;

  // kLimit.
  int64_t limit = -1;
  int64_t offset = 0;

  // Debug / test rendering of the IR tree.
  std::string ToString(int indent = 0) const;
};

// Binds a SELECT AST into the logical IR: resolves tables, validates that
// every predicate binds against the joined schema, rewrites aggregate
// expressions to _grpN/_aggN references, and types every derived column.
// Semantics (error messages included) mirror the rule-based planner so the
// auto-dispatching planner can fall back without behavior change.
class Binder {
 public:
  explicit Binder(rel::Database* db) : db_(db) {}

  common::Result<LogicalPtr> BindSelect(const SelectStmt& stmt);

 private:
  rel::Database* db_;
};

// The rewrite pass: constant-folds every expression, then pushes each
// kJoin conjunct that references exactly one child Get down into that
// Get's `pushed` list.
common::Status RewriteLogicalPlan(LogicalOp* root);

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_LOGICAL_PLAN_H_
