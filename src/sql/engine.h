#ifndef XOMATIQ_SQL_ENGINE_H_
#define XOMATIQ_SQL_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/query_options.h"
#include "common/query_request.h"
#include "common/result.h"
#include "relational/database.h"
#include "relational/snapshot.h"
#include "sql/executor.h"
#include "sql/plan.h"
#include "sql/planner.h"

namespace xomatiq::sql {

// Engine-level knobs, forwarded to the planner and executor.
struct EngineOptions {
  PlannerOptions planner;
  ExecutorOptions executor;
};

// Result of one statement: rows for SELECT/EXPLAIN, affected count for DML.
struct QueryResult {
  rel::Schema schema;
  std::vector<rel::Tuple> rows;
  size_t affected = 0;
  std::string explain_text;  // set for EXPLAIN [ANALYZE] and STATS

  // Renders rows as a fixed-width ASCII table (the "simple table format"
  // result view of the paper's Figs 7(b)/12).
  std::string ToTable() const;
};

// Statement-level facade over parse -> plan -> execute. This is the full
// SQL surface XomatiQ's XQ2SQL translator targets.
//
// Thread-safety: Execute / ExecuteSelectBatched may be called from many
// threads against one engine (or several engines over one Database).
// SELECT / EXPLAIN run latch-free under a rel::Snapshot — a pinned
// committed epoch — fully concurrent with writers; DML / DDL / ANALYZE
// serialize among themselves on the write latch via rel::WriteGuard and
// publish their batch's epoch on completion. A caller that already owns a
// snapshot (XomatiQ spanning several translated statements, a server
// Session) passes its epoch through QueryRequest::read_epoch and the
// engine skips acquiring one. Plan(), which hands back a raw plan without
// snapshotting, remains a single-threaded test/bench entry point.
class SqlEngine {
 public:
  explicit SqlEngine(rel::Database* db, EngineOptions options = {})
      : db_(db), options_(options), planner_(db, options.planner) {}

  // Parses and runs one statement (req.mode must be kSql). The relative
  // `req.options.deadline_ms` is converted to an absolute deadline here,
  // once; SELECT execution past it fails with kTimeout (DML/DDL run to
  // completion — partial mutations are worse than late ones).
  // `req.options.trace` / `bypass_cache` are honored by the layers that
  // own tracing and caching (server QueryService); the engine itself only
  // consumes the deadline and the snapshot read token.
  common::Result<QueryResult> Execute(const common::QueryRequest& req);

  // Shorthand for embedded/test use: Execute with default options.
  common::Result<QueryResult> Execute(std::string_view sql) {
    return Execute(common::QueryRequest::Sql(std::string(sql)));
  }
  [[deprecated("pass a common::QueryRequest instead")]]  //
  common::Result<QueryResult>
  Execute(std::string_view sql, const common::QueryOptions& opts) {
    return Execute(common::QueryRequest::Sql(std::string(sql), opts));
  }

  // Parses, plans and streams a SELECT's output batches into `sink`
  // without materializing the result set. Returns the output schema.
  // Deadline/read-token come from the request; `req.options.deadline_ms`
  // is resolved to an absolute deadline at entry.
  common::Result<rel::Schema> ExecuteSelectBatched(
      const common::QueryRequest& req, const Executor::BatchSink& sink);

  [[deprecated("pass a common::QueryRequest instead")]]  //
  common::Result<rel::Schema>
  ExecuteSelectBatched(std::string_view sql, const Executor::BatchSink& sink,
                       common::Deadline deadline = {});

  // Like ExecuteSelectBatched but from an already-built AST: no lexing or
  // parsing happens on this path. XomatiQ's direct XQ->plan pipeline uses
  // this for its translated statements (the generated SQL text is kept
  // for display only). `deadline` is absolute so a multi-statement caller
  // shares one budget; `read_epoch` is the same snapshot token as
  // QueryRequest::read_epoch (XomatiQ runs all disjuncts of one query
  // against one snapshot).
  common::Result<rel::Schema> ExecuteSelectStmtBatched(
      const SelectStmt& stmt, const Executor::BatchSink& sink,
      common::Deadline deadline = {},
      std::optional<uint64_t> read_epoch = std::nullopt);

  // Plans a pre-parsed SELECT and returns its EXPLAIN rendering (used by
  // XomatiQ's EXPLAIN surface to show the final physical plan without
  // round-tripping through SQL text).
  common::Result<std::string> ExplainSelectStmt(const SelectStmt& stmt);

  // Plans a pre-parsed SELECT (exposed for tests and benchmarks).
  common::Result<PlanPtr> Plan(const SelectStmt& stmt) {
    return planner_.PlanSelect(stmt);
  }

  rel::Database* db() { return db_; }

 private:
  // Execute minus the query-log bookkeeping (the public wrapper owns the
  // QueryLogScope and stamps status/row counts on the record).
  common::Result<QueryResult> ExecuteImpl(std::string_view sql,
                                          const common::QueryOptions& opts,
                                          std::optional<uint64_t> read_epoch);
  // `analyze` = EXPLAIN ANALYZE: execute with per-operator stats
  // collection and return the annotated plan tree instead of the rows.
  // `epoch` is the snapshot epoch every heap read evaluates against; the
  // caller owns the Snapshot pinning it.
  common::Result<QueryResult> ExecuteSelect(const SelectStmt& stmt,
                                            bool explain_only, bool analyze,
                                            common::Deadline deadline,
                                            uint64_t epoch);
  common::Result<QueryResult> ExecuteInsert(const InsertStmt& stmt);
  common::Result<QueryResult> ExecuteDelete(const DeleteStmt& stmt);
  common::Result<QueryResult> ExecuteUpdate(const UpdateStmt& stmt);
  common::Result<QueryResult> ExecuteAnalyze(const AnalyzeStmt& stmt);

  rel::Database* db_;
  EngineOptions options_;
  Planner planner_;
};

}  // namespace xomatiq::sql

#endif  // XOMATIQ_SQL_ENGINE_H_
