#include "sql/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>

#include "common/metrics.h"
#include "common/query_log.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "relational/serde.h"
#include "sql/executor.h"
#include "sql/expr_eval.h"
#include "sql/parser.h"

namespace xomatiq::sql {

using common::Result;
using common::Status;
using rel::RowId;
using rel::Tuple;
using rel::Value;

std::string QueryResult::ToTable() const {
  std::vector<size_t> widths(schema.size());
  for (size_t c = 0; c < schema.size(); ++c) {
    widths[c] = schema.column(c).name.size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Tuple& row : rows) {
    std::vector<std::string> line;
    for (size_t c = 0; c < row.size(); ++c) {
      line.push_back(row[c].ToString());
      widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  auto rule = [&] {
    std::string out = "+";
    for (size_t w : widths) out += std::string(w + 2, '-') + "+";
    return out + "\n";
  };
  std::string out = rule();
  out += "|";
  for (size_t c = 0; c < schema.size(); ++c) {
    const std::string& name = schema.column(c).name;
    out += " " + name + std::string(widths[c] - name.size(), ' ') + " |";
  }
  out += "\n" + rule();
  for (const auto& line : cells) {
    out += "|";
    for (size_t c = 0; c < line.size(); ++c) {
      out += " " + line[c] + std::string(widths[c] - line[c].size(), ' ') +
             " |";
    }
    out += "\n";
  }
  out += rule();
  out += std::to_string(rows.size()) + " row(s)\n";
  return out;
}

namespace {

uint64_t EngineNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Marks the chosen plan's fingerprint on the current trace (when one is
// installed): a zero-duration span named "sql.plan.fp=XXXXXXXX", the CRC32
// of the rendered plan tree. Lets trace consumers spot plan changes (e.g.
// after ANALYZE flips a query to the cost-based path) without diffing
// whole EXPLAIN outputs. The same fingerprint, planner mode and root
// estimate also annotate the in-flight query-log record.
void LogPlanFingerprint(const PlanNode& plan) {
  common::Trace* trace = common::Trace::Current();
  common::QueryLogRecord* rec = common::QueryLogScope::Current();
  if (trace == nullptr && rec == nullptr) return;
  uint32_t fp = rel::Crc32(plan.ToString());
  if (trace != nullptr) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "sql.plan.fp=%08x", fp);
    trace->EndSpan(trace->BeginSpan(buf));
  }
  if (rec != nullptr) {
    rec->plan_fp = fp;
    // est_rows >= 0 iff the cost-based planner annotated the tree
    // (rule-based plans stay uncosted by design).
    rec->planner = plan.est_rows >= 0 ? "cost" : "rule";
    rec->est_rows =
        plan.est_rows >= 0 ? static_cast<int64_t>(plan.est_rows) : -1;
  }
}

// After execution: if the query has already crossed the slow threshold,
// capture its EXPLAIN ANALYZE rendering into the armed query-log record
// while the plan (and its per-operator actuals) is still alive. Callers
// enable stats collection whenever a record is armed, so the rendering
// carries real actuals.
void MaybeCaptureSlowPlan(const PlanNode& plan) {
  common::QueryLogRecord* rec = common::QueryLogScope::Current();
  if (rec == nullptr) return;
  uint64_t elapsed = EngineNowNs() - rec->start_ns;
  if (elapsed < common::QueryLog::Global().slow_threshold_ns()) return;
  rec->explain = plan.ToString(0, /*analyze=*/true);
}

// Text rendering of the slow-query ring for the SLOW QUERIES statement
// (/queryz serves the JSON view of the same records).
std::string RenderSlowQueries() {
  common::QueryLog& log = common::QueryLog::Global();
  std::vector<common::QueryLogRecord> slow = log.Slow();
  std::string out = common::StrFormat(
      "%zu slow quer%s (threshold %.3f ms, newest first)\n", slow.size(),
      slow.size() == 1 ? "y" : "ies",
      static_cast<double>(log.slow_threshold_ns()) / 1e6);
  for (const common::QueryLogRecord& rec : slow) {
    out += common::StrFormat(
        "-- #%llu  %.3f ms  mode=%s planner=%s fp=%08x est_rows=%lld "
        "actual_rows=%lld cached=%s status=%s\n",
        static_cast<unsigned long long>(rec.id),
        static_cast<double>(rec.latency_ns) / 1e6, rec.mode.c_str(),
        rec.planner.empty() ? "-" : rec.planner.c_str(), rec.plan_fp,
        static_cast<long long>(rec.est_rows),
        static_cast<long long>(rec.actual_rows),
        rec.cache_hit ? "yes" : "no", rec.ok ? "ok" : rec.error.c_str());
    out += rec.text + "\n";
    if (!rec.explain.empty()) out += rec.explain;
  }
  return out;
}

}  // namespace

Result<QueryResult> SqlEngine::Execute(const common::QueryRequest& req) {
  if (req.mode != common::QueryMode::kSql) {
    return Status::InvalidArgument(
        std::string("SqlEngine::Execute requires mode=sql, got ") +
        std::string(common::QueryModeName(req.mode)));
  }
  // Registered once; the registry hands back stable pointers, so the hot
  // path is one atomic add plus the histogram record.
  static common::Counter* queries =
      common::MetricsRegistry::Global().GetCounter("sql.queries");
  queries->Inc();
  // Owns the query-log record when the engine is the outermost layer
  // (embedded use); under QueryService the service's scope owns it and
  // this one is a no-op observer.
  common::QueryLogScope qlog(req.text, "sql");
  Result<QueryResult> result =
      ExecuteImpl(req.text, req.options, req.read_epoch);
  if (common::QueryLogRecord* rec = common::QueryLogScope::Current()) {
    if (!result.ok()) {
      rec->ok = false;
      rec->error = result.status().message();
    } else if (rec->actual_rows < 0) {
      rec->actual_rows = static_cast<int64_t>(result->rows.size());
    }
  }
  return result;
}

Result<QueryResult> SqlEngine::ExecuteImpl(
    std::string_view sql, const common::QueryOptions& opts,
    std::optional<uint64_t> read_epoch) {
  static common::Histogram* parse_hist =
      common::MetricsRegistry::Global().GetHistogram("sql.stage.parse");
  // The relative budget becomes absolute exactly once, here, so parsing
  // and planning draw from the same clock as execution.
  common::Deadline deadline = common::Deadline::After(opts.deadline_ms);
  Statement stmt;
  {
    common::TraceSpan span("sql.parse", parse_hist);
    XQ_ASSIGN_OR_RETURN(stmt, ParseStatement(sql));
  }
  // Statement-level concurrency (see rel::Database): SELECT / EXPLAIN
  // pin a snapshot epoch and run latch-free; DML / DDL / ANALYZE take the
  // write latch through rel::WriteGuard, which publishes the statement's
  // epoch as one batch on release. Parsing happens above with neither. A
  // caller-supplied read token (`read_epoch`) replaces snapshot
  // acquisition: the caller owns a live rel::Snapshot at that epoch.
  auto pin_read = [&](rel::Snapshot* snap) -> uint64_t {
    if (read_epoch.has_value()) return *read_epoch;
    *snap = db_->BeginSnapshot();
    return snap->epoch();
  };
  switch (stmt.kind) {
    case StatementKind::kCreateTable: {
      std::vector<rel::Column> cols;
      for (const ColumnDefAst& c : stmt.create_table.columns) {
        cols.push_back({c.name, c.type, c.not_null});
      }
      rel::WriteGuard guard(db_);
      XQ_RETURN_IF_ERROR(db_->CreateTable(stmt.create_table.table,
                                          rel::Schema(std::move(cols))));
      return QueryResult{};
    }
    case StatementKind::kCreateIndex: {
      rel::IndexDef def;
      def.name = stmt.create_index.index;
      def.table = stmt.create_index.table;
      def.columns = stmt.create_index.columns;
      def.kind = stmt.create_index.kind;
      def.unique = stmt.create_index.unique;
      rel::WriteGuard guard(db_);
      XQ_RETURN_IF_ERROR(db_->CreateIndex(def));
      return QueryResult{};
    }
    case StatementKind::kDrop: {
      rel::WriteGuard guard(db_);
      if (stmt.drop.is_table) {
        XQ_RETURN_IF_ERROR(db_->DropTable(stmt.drop.name));
      } else {
        XQ_RETURN_IF_ERROR(db_->DropIndex(stmt.drop.name));
      }
      return QueryResult{};
    }
    case StatementKind::kInsert: {
      rel::WriteGuard guard(db_);
      return ExecuteInsert(stmt.insert);
    }
    case StatementKind::kSelect: {
      rel::Snapshot snap;
      uint64_t epoch = pin_read(&snap);
      return ExecuteSelect(stmt.select, /*explain_only=*/false,
                           /*analyze=*/false, deadline, epoch);
    }
    case StatementKind::kExplain: {
      // Plain EXPLAIN prints the plan without running it; EXPLAIN ANALYZE
      // runs the query with stats collection and prints the same tree
      // annotated with per-operator actuals.
      rel::Snapshot snap;
      uint64_t epoch = pin_read(&snap);
      return ExecuteSelect(stmt.select, /*explain_only=*/!stmt.analyze,
                           /*analyze=*/stmt.analyze, deadline, epoch);
    }
    case StatementKind::kDelete: {
      rel::WriteGuard guard(db_);
      return ExecuteDelete(stmt.del);
    }
    case StatementKind::kUpdate: {
      rel::WriteGuard guard(db_);
      return ExecuteUpdate(stmt.update);
    }
    case StatementKind::kStats: {
      QueryResult result;
      result.explain_text =
          common::MetricsRegistry::Global().Snapshot().ToPrometheusText();
      return result;
    }
    case StatementKind::kResetStats:
      common::MetricsRegistry::Global().Reset();
      return QueryResult{};
    case StatementKind::kSlowQueries: {
      QueryResult result;
      result.explain_text = RenderSlowQueries();
      return result;
    }
    case StatementKind::kAnalyze: {
      rel::WriteGuard guard(db_);
      return ExecuteAnalyze(stmt.analyze_stmt);
    }
    case StatementKind::kWalStatus: {
      // Field/value rows so shells and scripts can read one position
      // without parsing the metrics dump. Shared latch (not a snapshot:
      // this reads WAL positions, not the heap): LSNs and WAL byte
      // counts must come from one writer-quiescent instant.
      std::shared_lock lock(db_->latch());
      QueryResult result;
      result.schema =
          rel::Schema({{"field", rel::ValueType::kText, false},
                       {"value", rel::ValueType::kText, false}});
      auto add = [&result](const char* field, std::string value) {
        result.rows.push_back(
            {Value::Text(field), Value::Text(std::move(value))});
      };
      add("durable", db_->durable() ? "true" : "false");
      add("durable_lsn", std::to_string(db_->durable_lsn()));
      add("applied_lsn", std::to_string(db_->applied_lsn()));
      add("committed_lsn", std::to_string(db_->committed_lsn()));
      add("wal_bytes", std::to_string(db_->wal_bytes()));
      add("records_recovered", std::to_string(db_->records_recovered()));
      add("recovered_torn_tail",
          db_->recovered_torn_tail() ? "true" : "false");
      return result;
    }
  }
  return Status::Internal("bad statement kind");
}

Result<QueryResult> SqlEngine::ExecuteAnalyze(const AnalyzeStmt& stmt) {
  std::vector<std::string> targets;
  if (stmt.table.empty()) {
    targets = db_->TableNames();
  } else {
    targets.push_back(stmt.table);
  }
  QueryResult result;
  result.schema = rel::Schema({{"table", rel::ValueType::kText, false},
                               {"rows", rel::ValueType::kInt, false},
                               {"columns", rel::ValueType::kInt, false}});
  for (const std::string& name : targets) {
    XQ_RETURN_IF_ERROR(db_->Analyze(name));
    std::shared_ptr<const rel::TableStats> stats = db_->StatsFor(name);
    result.rows.push_back(
        {Value::Text(name),
         Value::Int(static_cast<int64_t>(stats->row_count)),
         Value::Int(static_cast<int64_t>(stats->columns.size()))});
    ++result.affected;
  }
  return result;
}

Result<QueryResult> SqlEngine::ExecuteSelect(const SelectStmt& stmt,
                                             bool explain_only, bool analyze,
                                             common::Deadline deadline,
                                             uint64_t epoch) {
  static common::Histogram* plan_hist =
      common::MetricsRegistry::Global().GetHistogram("sql.stage.plan");
  static common::Histogram* exec_hist =
      common::MetricsRegistry::Global().GetHistogram("sql.stage.execute");
  PlanPtr plan;
  {
    common::TraceSpan span("sql.plan", plan_hist);
    XQ_ASSIGN_OR_RETURN(plan, planner_.PlanSelect(stmt));
  }
  LogPlanFingerprint(*plan);
  QueryResult result;
  result.schema = plan->schema;
  if (explain_only) {
    result.explain_text = plan->ToString();
    return result;
  }
  ExecutorOptions exec_options = options_.executor;
  exec_options.deadline = deadline;
  exec_options.snapshot_epoch = epoch;
  // Collect per-operator actuals whenever a query-log record is armed, so
  // a query that turns out slow can capture a fully annotated EXPLAIN
  // ANALYZE tree after the fact (stats cannot be gathered retroactively;
  // the per-batch counting overhead is noise).
  bool log_armed = common::QueryLogScope::Current() != nullptr;
  if (analyze || log_armed) {
    exec_options.collect_stats = true;
    plan->ClearStats();
  }
  Executor executor(db_, exec_options);
  {
    common::TraceSpan span("sql.execute", exec_hist);
    XQ_ASSIGN_OR_RETURN(result.rows, executor.ExecuteToVector(*plan));
  }
  if (common::QueryLogRecord* rec = common::QueryLogScope::Current()) {
    rec->actual_rows = static_cast<int64_t>(result.rows.size());
  }
  MaybeCaptureSlowPlan(*plan);
  if (analyze) {
    // EXPLAIN ANALYZE returns the annotated tree, not the result rows.
    result.explain_text = plan->ToString(0, /*analyze=*/true);
    result.rows.clear();
  }
  return result;
}

namespace {

// Shared front half of both ExecuteSelectBatched overloads: parse and
// insist on a SELECT.
Result<Statement> ParseSelectOnly(std::string_view sql) {
  static common::Histogram* parse_hist =
      common::MetricsRegistry::Global().GetHistogram("sql.stage.parse");
  Statement stmt;
  {
    common::TraceSpan span("sql.parse", parse_hist);
    XQ_ASSIGN_OR_RETURN(stmt, ParseStatement(sql));
  }
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("ExecuteSelectBatched requires a SELECT");
  }
  return stmt;
}

}  // namespace

Result<rel::Schema> SqlEngine::ExecuteSelectBatched(
    const common::QueryRequest& req, const Executor::BatchSink& sink) {
  if (req.mode != common::QueryMode::kSql) {
    return Status::InvalidArgument(
        "ExecuteSelectBatched requires mode=sql");
  }
  XQ_ASSIGN_OR_RETURN(Statement stmt, ParseSelectOnly(req.text));
  return ExecuteSelectStmtBatched(
      stmt.select, sink, common::Deadline::After(req.options.deadline_ms),
      req.read_epoch);
}

Result<rel::Schema> SqlEngine::ExecuteSelectBatched(
    std::string_view sql, const Executor::BatchSink& sink,
    common::Deadline deadline) {
  XQ_ASSIGN_OR_RETURN(Statement stmt, ParseSelectOnly(sql));
  return ExecuteSelectStmtBatched(stmt.select, sink, deadline);
}

Result<rel::Schema> SqlEngine::ExecuteSelectStmtBatched(
    const SelectStmt& stmt, const Executor::BatchSink& sink,
    common::Deadline deadline, std::optional<uint64_t> read_epoch) {
  static common::Histogram* plan_hist =
      common::MetricsRegistry::Global().GetHistogram("sql.stage.plan");
  static common::Histogram* exec_hist =
      common::MetricsRegistry::Global().GetHistogram("sql.stage.execute");
  // Pin a snapshot unless the caller already owns one and passed its
  // epoch (XomatiQ evaluates all disjuncts of one query at one epoch).
  rel::Snapshot snap;
  uint64_t epoch;
  if (read_epoch.has_value()) {
    epoch = *read_epoch;
  } else {
    snap = db_->BeginSnapshot();
    epoch = snap.epoch();
  }
  PlanPtr plan;
  {
    common::TraceSpan span("sql.plan", plan_hist);
    XQ_ASSIGN_OR_RETURN(plan, planner_.PlanSelect(stmt));
  }
  LogPlanFingerprint(*plan);
  ExecutorOptions exec_options = options_.executor;
  exec_options.deadline = deadline;
  exec_options.snapshot_epoch = epoch;
  bool log_armed = common::QueryLogScope::Current() != nullptr;
  if (log_armed) {
    exec_options.collect_stats = true;
    plan->ClearStats();
  }
  Executor executor(db_, exec_options);
  {
    common::TraceSpan span("sql.execute", exec_hist);
    XQ_RETURN_IF_ERROR(executor.ExecuteBatched(*plan, sink));
  }
  if (common::QueryLogRecord* rec = common::QueryLogScope::Current()) {
    rec->actual_rows = static_cast<int64_t>(plan->stats.rows_out);
  }
  MaybeCaptureSlowPlan(*plan);
  return plan->schema;
}

Result<std::string> SqlEngine::ExplainSelectStmt(const SelectStmt& stmt) {
  // Planning reads catalog shape and stats; a snapshot's shared DDL hold
  // keeps both stable without touching the write latch.
  rel::Snapshot snap = db_->BeginSnapshot();
  XQ_ASSIGN_OR_RETURN(PlanPtr plan, planner_.PlanSelect(stmt));
  return plan->ToString();
}

Result<QueryResult> SqlEngine::ExecuteInsert(const InsertStmt& stmt) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(stmt.table));
  const rel::Schema& schema = table->schema();
  // Map column-name list to positions (empty list = positional).
  std::vector<size_t> positions;
  if (!stmt.columns.empty()) {
    for (const std::string& col : stmt.columns) {
      XQ_ASSIGN_OR_RETURN(size_t idx, schema.ResolveColumn(col));
      positions.push_back(idx);
    }
  }
  QueryResult result;
  for (const std::vector<ExprPtr>& row_exprs : stmt.rows) {
    Tuple tuple(schema.size(), Value::Null());
    if (positions.empty()) {
      if (row_exprs.size() != schema.size()) {
        return Status::InvalidArgument(
            "INSERT arity mismatch for table " + stmt.table);
      }
      for (size_t i = 0; i < row_exprs.size(); ++i) {
        XQ_ASSIGN_OR_RETURN(tuple[i], Eval(*row_exprs[i], {}));
      }
    } else {
      if (row_exprs.size() != positions.size()) {
        return Status::InvalidArgument(
            "INSERT arity mismatch for table " + stmt.table);
      }
      for (size_t i = 0; i < row_exprs.size(); ++i) {
        XQ_ASSIGN_OR_RETURN(tuple[positions[i]], Eval(*row_exprs[i], {}));
      }
    }
    XQ_ASSIGN_OR_RETURN(RowId row, db_->Insert(stmt.table, std::move(tuple)));
    (void)row;
    ++result.affected;
  }
  return result;
}

namespace {

// Collects RowIds of live rows matching `where` (null = all).
Result<std::vector<RowId>> MatchRows(rel::Database* db,
                                     const std::string& table_name,
                                     const ExprPtr& where) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db->GetTable(table_name));
  ExprPtr bound;
  if (where) {
    bound = where->Clone();
    XQ_RETURN_IF_ERROR(Bind(bound.get(), table->schema()));
  }
  std::vector<RowId> rows;
  Status inner;
  table->Scan([&](RowId row, const Tuple& tuple) {
    if (bound) {
      auto pass = EvalPredicate(*bound, tuple);
      if (!pass.ok()) {
        inner = pass.status();
        return false;
      }
      if (!pass->has_value() || !**pass) return true;
    }
    rows.push_back(row);
    return true;
  });
  XQ_RETURN_IF_ERROR(inner);
  return rows;
}

}  // namespace

Result<QueryResult> SqlEngine::ExecuteDelete(const DeleteStmt& stmt) {
  XQ_ASSIGN_OR_RETURN(std::vector<RowId> rows,
                      MatchRows(db_, stmt.table, stmt.where));
  for (RowId row : rows) {
    XQ_RETURN_IF_ERROR(db_->Delete(stmt.table, row));
  }
  QueryResult result;
  result.affected = rows.size();
  return result;
}

Result<QueryResult> SqlEngine::ExecuteUpdate(const UpdateStmt& stmt) {
  XQ_ASSIGN_OR_RETURN(const rel::Table* table, db_->GetTable(stmt.table));
  const rel::Schema& schema = table->schema();
  std::vector<std::pair<size_t, ExprPtr>> sets;
  for (const auto& [col, expr] : stmt.sets) {
    XQ_ASSIGN_OR_RETURN(size_t idx, schema.ResolveColumn(col));
    ExprPtr bound = expr->Clone();
    XQ_RETURN_IF_ERROR(Bind(bound.get(), schema));
    sets.emplace_back(idx, std::move(bound));
  }
  XQ_ASSIGN_OR_RETURN(std::vector<RowId> rows,
                      MatchRows(db_, stmt.table, stmt.where));
  for (RowId row : rows) {
    XQ_ASSIGN_OR_RETURN(const Tuple* current, table->Get(row));
    Tuple updated = *current;
    for (const auto& [idx, expr] : sets) {
      XQ_ASSIGN_OR_RETURN(updated[idx], Eval(*expr, *current));
    }
    XQ_RETURN_IF_ERROR(db_->Update(stmt.table, row, std::move(updated)));
  }
  QueryResult result;
  result.affected = rows.size();
  return result;
}

}  // namespace xomatiq::sql
