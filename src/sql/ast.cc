#include "sql/ast.h"

namespace xomatiq::sql {

namespace {

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

std::string_view AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kAvg: return "AVG";
  }
  return "?";
}

std::string_view ScalarFuncName(ScalarFunc f) {
  switch (f) {
    case ScalarFunc::kLower: return "LOWER";
    case ScalarFunc::kUpper: return "UPPER";
    case ScalarFunc::kLength: return "LENGTH";
  }
  return "?";
}

std::string QuoteLiteral(const rel::Value& v) {
  if (v.type() == rel::ValueType::kText) {
    std::string out = "'";
    for (char c : v.AsText()) {
      if (c == '\'') out += "''";
      else out.push_back(c);
    }
    out += "'";
    return out;
  }
  return v.ToString();
}

}  // namespace

ExprPtr Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->value = value;
  copy->column_name = column_name;
  copy->bound_index = bound_index;
  copy->bin_op = bin_op;
  copy->un_op = un_op;
  copy->func = func;
  copy->agg = agg;
  copy->negated = negated;
  if (left) copy->left = left->Clone();
  if (right) copy->right = right->Clone();
  if (extra) copy->extra = extra->Clone();
  for (const ExprPtr& e : list) copy->list.push_back(e->Clone());
  return copy;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return QuoteLiteral(value);
    case ExprKind::kColumnRef:
      return column_name;
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " +
             std::string(BinaryOpName(bin_op)) + " " + right->ToString() + ")";
    case ExprKind::kUnary:
      return un_op == UnaryOp::kNot ? "NOT " + left->ToString()
                                    : "-" + left->ToString();
    case ExprKind::kIsNull:
      return left->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kLike:
      return left->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             right->ToString();
    case ExprKind::kContains:
      return "CONTAINS(" + left->ToString() + ", " + right->ToString() + ")";
    case ExprKind::kBetween:
      return left->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             right->ToString() + " AND " + extra->ToString();
    case ExprKind::kInList: {
      std::string out =
          left->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) out += ", ";
        out += list[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kFunc:
      return std::string(ScalarFuncName(func)) + "(" + left->ToString() + ")";
    case ExprKind::kAggregate:
      return std::string(AggFuncName(agg)) + "(" +
             (left ? left->ToString() : "*") + ")";
    case ExprKind::kStar:
      return "*";
  }
  return "?";
}

ExprPtr MakeLiteral(rel::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->value = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_name = std::move(name);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->left = std::move(operand);
  return e;
}

}  // namespace xomatiq::sql
