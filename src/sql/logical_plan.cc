#include "sql/logical_plan.h"

#include <functional>

#include "sql/expr_eval.h"
#include "sql/rewriter.h"

namespace xomatiq::sql {

using common::Result;
using common::Status;
using rel::Schema;

std::string_view LogicalKindName(LogicalKind kind) {
  switch (kind) {
    case LogicalKind::kGet: return "Get";
    case LogicalKind::kJoin: return "Join";
    case LogicalKind::kFilter: return "Filter";
    case LogicalKind::kProject: return "Project";
    case LogicalKind::kAggregate: return "Aggregate";
    case LogicalKind::kSort: return "Sort";
    case LogicalKind::kLimit: return "Limit";
    case LogicalKind::kDistinct: return "Distinct";
  }
  return "?";
}

std::string LogicalOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + std::string(LogicalKindName(kind));
  switch (kind) {
    case LogicalKind::kGet:
      out += " " + table + (alias != table ? " AS " + alias : "");
      for (size_t i = 0; i < pushed.size(); ++i) {
        out += i == 0 ? " [" : " AND ";
        out += pushed[i]->ToString();
        if (i + 1 == pushed.size()) out += "]";
      }
      break;
    case LogicalKind::kJoin:
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        out += i == 0 ? " on " : " AND ";
        out += conjuncts[i]->ToString();
      }
      break;
    case LogicalKind::kFilter:
      out += " " + predicate->ToString();
      break;
    case LogicalKind::kProject: {
      out += " [";
      for (size_t i = 0; i < names.size(); ++i) {
        if (i > 0) out += ", ";
        out += names[i];
      }
      out += "]";
      break;
    }
    case LogicalKind::kAggregate:
      out += " groups=" + std::to_string(group_exprs.size()) +
             " aggs=" + std::to_string(aggs.size());
      break;
    case LogicalKind::kSort: {
      out += " by ";
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += keys[i].expr->ToString();
        if (keys[i].desc) out += " DESC";
      }
      break;
    }
    case LogicalKind::kLimit:
      out += " " + std::to_string(limit);
      if (offset > 0) out += " OFFSET " + std::to_string(offset);
      break;
    case LogicalKind::kDistinct:
      break;
  }
  out += "\n";
  for (const LogicalPtr& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

Result<LogicalPtr> Binder::BindSelect(const SelectStmt& stmt) {
  // Relations in FROM order; aliases must be unique (same diagnostics as
  // the rule-based planner, so auto-dispatch never changes error text).
  std::vector<TableRef> tables = stmt.from;
  for (const JoinClause& j : stmt.joins) tables.push_back(j.table);
  if (tables.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  for (size_t i = 0; i < tables.size(); ++i) {
    for (size_t j = i + 1; j < tables.size(); ++j) {
      if (tables[i].alias == tables[j].alias) {
        return Status::InvalidArgument("duplicate table alias: " +
                                       tables[i].alias);
      }
    }
  }

  auto join = std::make_unique<LogicalOp>();
  join->kind = LogicalKind::kJoin;
  for (const TableRef& ref : tables) {
    XQ_ASSIGN_OR_RETURN(const rel::Table* t, db_->GetTable(ref.table));
    auto get = std::make_unique<LogicalOp>();
    get->kind = LogicalKind::kGet;
    get->table = ref.table;
    get->alias = ref.alias;
    get->schema = t->schema().Qualified(ref.alias);
    join->schema = Schema::Concat(join->schema, get->schema);
    join->children.push_back(std::move(get));
  }
  if (stmt.where) SplitConjuncts(stmt.where->Clone(), &join->conjuncts);
  for (const JoinClause& j : stmt.joins) {
    if (j.on) SplitConjuncts(j.on->Clone(), &join->conjuncts);
  }
  for (const ExprPtr& c : join->conjuncts) {
    if (!BindableAgainst(*c, join->schema)) {
      return Status::InvalidArgument("predicate references unknown columns: " +
                                     c->ToString());
    }
  }
  LogicalPtr plan = std::move(join);

  // Aggregation detection and output expression working copies, mirroring
  // the rule-based planner's upper-plan construction. SELECT * expands in
  // FROM order (the kJoin schema), independent of the physical join order
  // the cost-based lowering later picks.
  bool has_agg = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (item.expr && ContainsAggregate(*item.expr)) has_agg = true;
  }
  if (stmt.having && ContainsAggregate(*stmt.having)) has_agg = true;

  std::vector<ExprPtr> out_exprs;
  std::vector<std::string> out_names;
  std::vector<ExprPtr> order_exprs;
  ExprPtr having;

  for (const SelectItem& item : stmt.items) {
    if (item.is_star) {
      if (has_agg) {
        return Status::InvalidArgument("SELECT * cannot mix with aggregates");
      }
      for (const rel::Column& col : plan->schema.columns()) {
        out_exprs.push_back(MakeColumnRef(col.name));
        out_names.push_back(BareName(col.name));
      }
      continue;
    }
    out_exprs.push_back(item.expr->Clone());
    if (!item.alias.empty()) {
      out_names.push_back(item.alias);
    } else if (item.expr->kind == ExprKind::kColumnRef) {
      out_names.push_back(BareName(item.expr->column_name));
    } else {
      out_names.push_back(item.expr->ToString());
    }
  }
  for (const OrderItem& o : stmt.order_by) {
    order_exprs.push_back(o.expr->Clone());
  }
  if (stmt.having) having = stmt.having->Clone();

  if (has_agg) {
    auto agg_node = std::make_unique<LogicalOp>();
    agg_node->kind = LogicalKind::kAggregate;
    Schema agg_schema;
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      ExprPtr g = stmt.group_by[i]->Clone();
      XQ_RETURN_IF_ERROR(Bind(g.get(), plan->schema));
      agg_schema.AddColumn({"_grp" + std::to_string(i),
                            InferType(*g, plan->schema), false});
      agg_node->group_exprs.push_back(std::move(g));
    }
    std::vector<std::string> group_strings;
    for (const ExprPtr& g : stmt.group_by) {
      group_strings.push_back(g->ToString());
    }
    std::vector<AggSpec>* aggs = &agg_node->aggs;
    Schema* agg_schema_ptr = &agg_schema;
    const Schema& input_schema = plan->schema;
    std::function<Result<ExprPtr>(ExprPtr)> rewrite =
        [&](ExprPtr e) -> Result<ExprPtr> {
      std::string repr = e->ToString();
      for (size_t i = 0; i < group_strings.size(); ++i) {
        if (repr == group_strings[i]) {
          return MakeColumnRef("_grp" + std::to_string(i));
        }
      }
      if (e->kind == ExprKind::kAggregate) {
        AggSpec spec;
        spec.func = e->agg;
        if (e->left) {
          spec.arg = e->left->Clone();
          XQ_RETURN_IF_ERROR(Bind(spec.arg.get(), input_schema));
        }
        size_t idx = aggs->size();
        rel::ValueType t = InferType(*e, input_schema);
        aggs->push_back(std::move(spec));
        agg_schema_ptr->AddColumn({"_agg" + std::to_string(idx), t, false});
        return MakeColumnRef("_agg" + std::to_string(idx));
      }
      if (e->kind == ExprKind::kColumnRef) {
        return Status::InvalidArgument(
            "column " + e->column_name +
            " must appear in GROUP BY or inside an aggregate");
      }
      if (e->left) {
        XQ_ASSIGN_OR_RETURN(e->left, rewrite(std::move(e->left)));
      }
      if (e->right) {
        XQ_ASSIGN_OR_RETURN(e->right, rewrite(std::move(e->right)));
      }
      if (e->extra) {
        XQ_ASSIGN_OR_RETURN(e->extra, rewrite(std::move(e->extra)));
      }
      for (ExprPtr& item : e->list) {
        XQ_ASSIGN_OR_RETURN(item, rewrite(std::move(item)));
      }
      return e;
    };
    for (ExprPtr& e : out_exprs) {
      XQ_ASSIGN_OR_RETURN(e, rewrite(std::move(e)));
    }
    for (ExprPtr& e : order_exprs) {
      XQ_ASSIGN_OR_RETURN(e, rewrite(std::move(e)));
    }
    if (having) {
      XQ_ASSIGN_OR_RETURN(having, rewrite(std::move(having)));
    }
    agg_node->schema = std::move(agg_schema);
    agg_node->children.push_back(std::move(plan));
    plan = std::move(agg_node);
    if (having) {
      XQ_RETURN_IF_ERROR(Bind(having.get(), plan->schema));
      auto filter = std::make_unique<LogicalOp>();
      filter->kind = LogicalKind::kFilter;
      filter->schema = plan->schema;
      filter->predicate = std::move(having);
      filter->children.push_back(std::move(plan));
      plan = std::move(filter);
    }
  } else if (stmt.having) {
    return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
  }

  // ORDER BY: sort before projection when the keys bind against the
  // pre-projection schema, otherwise after (keys naming select aliases).
  bool sort_pre = !order_exprs.empty();
  for (const ExprPtr& e : order_exprs) {
    if (!BindableAgainst(*e, plan->schema)) sort_pre = false;
  }
  auto make_sort = [&](LogicalPtr child,
                       std::vector<ExprPtr> keys) -> Result<LogicalPtr> {
    auto sort = std::make_unique<LogicalOp>();
    sort->kind = LogicalKind::kSort;
    sort->schema = child->schema;
    for (size_t i = 0; i < keys.size(); ++i) {
      XQ_RETURN_IF_ERROR(Bind(keys[i].get(), child->schema));
      SortKey sk;
      sk.expr = std::move(keys[i]);
      sk.desc = stmt.order_by[i].desc;
      sort->keys.push_back(std::move(sk));
    }
    sort->children.push_back(std::move(child));
    return LogicalPtr(std::move(sort));
  };
  if (sort_pre) {
    XQ_ASSIGN_OR_RETURN(plan,
                        make_sort(std::move(plan), std::move(order_exprs)));
    order_exprs.clear();
  }

  auto project = std::make_unique<LogicalOp>();
  project->kind = LogicalKind::kProject;
  Schema out_schema;
  for (size_t i = 0; i < out_exprs.size(); ++i) {
    XQ_RETURN_IF_ERROR(Bind(out_exprs[i].get(), plan->schema));
    out_schema.AddColumn(
        {out_names[i], InferType(*out_exprs[i], plan->schema), false});
    project->exprs.push_back(std::move(out_exprs[i]));
  }
  project->names = std::move(out_names);
  project->schema = std::move(out_schema);
  project->children.push_back(std::move(plan));
  plan = std::move(project);

  if (!order_exprs.empty()) {
    XQ_ASSIGN_OR_RETURN(plan,
                        make_sort(std::move(plan), std::move(order_exprs)));
  }

  if (stmt.distinct) {
    auto distinct = std::make_unique<LogicalOp>();
    distinct->kind = LogicalKind::kDistinct;
    distinct->schema = plan->schema;
    distinct->children.push_back(std::move(plan));
    plan = std::move(distinct);
  }

  if (stmt.limit.has_value() || stmt.offset.has_value()) {
    auto limit = std::make_unique<LogicalOp>();
    limit->kind = LogicalKind::kLimit;
    limit->schema = plan->schema;
    limit->limit = stmt.limit.value_or(-1);
    limit->offset = stmt.offset.value_or(0);
    limit->children.push_back(std::move(plan));
    plan = std::move(limit);
  }
  return plan;
}

namespace {

void FoldList(std::vector<ExprPtr>* exprs) {
  for (ExprPtr& e : *exprs) e = FoldConstants(std::move(e));
}

}  // namespace

Status RewriteLogicalPlan(LogicalOp* op) {
  switch (op->kind) {
    case LogicalKind::kFilter:
      op->predicate = FoldConstants(std::move(op->predicate));
      break;
    case LogicalKind::kProject:
      FoldList(&op->exprs);
      break;
    case LogicalKind::kAggregate:
      FoldList(&op->group_exprs);
      for (AggSpec& a : op->aggs) {
        if (a.arg) a.arg = FoldConstants(std::move(a.arg));
      }
      break;
    case LogicalKind::kSort:
      for (SortKey& k : op->keys) k.expr = FoldConstants(std::move(k.expr));
      break;
    case LogicalKind::kJoin: {
      FoldList(&op->conjuncts);
      // Predicate pushdown: a conjunct that binds against a single child
      // Get moves into that Get's `pushed` list (column-free conjuncts go
      // to the first child, which applies them earliest). The remaining
      // pool holds only genuinely cross-relation predicates.
      std::vector<ExprPtr> remaining;
      for (ExprPtr& c : op->conjuncts) {
        size_t home = op->children.size();
        size_t bind_count = 0;
        for (size_t i = 0; i < op->children.size(); ++i) {
          if (BindableAgainst(*c, op->children[i]->schema)) {
            ++bind_count;
            if (home == op->children.size()) home = i;
          }
        }
        // bind_count > 1 means the conjunct references no columns at all
        // (a folded constant); it still pushes to the first child.
        if (home < op->children.size()) {
          op->children[home]->pushed.push_back(std::move(c));
        } else {
          remaining.push_back(std::move(c));
        }
      }
      op->conjuncts = std::move(remaining);
      for (LogicalPtr& child : op->children) {
        FoldList(&child->pushed);
      }
      break;
    }
    default:
      break;
  }
  for (LogicalPtr& child : op->children) {
    if (child->kind != LogicalKind::kGet) {
      XQ_RETURN_IF_ERROR(RewriteLogicalPlan(child.get()));
    }
  }
  return Status::OK();
}

}  // namespace xomatiq::sql
