#include "sql/plan.h"

#include <cstdio>

namespace xomatiq::sql {

std::string_view PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSeqScan: return "SeqScan";
    case PlanKind::kParallelSeqScan: return "ParallelSeqScan";
    case PlanKind::kIndexScan: return "IndexScan";
    case PlanKind::kKeywordScan: return "KeywordScan";
    case PlanKind::kFilter: return "Filter";
    case PlanKind::kProject: return "Project";
    case PlanKind::kNestedLoopJoin: return "NestedLoopJoin";
    case PlanKind::kHashJoin: return "HashJoin";
    case PlanKind::kIndexNLJoin: return "IndexNLJoin";
    case PlanKind::kSort: return "Sort";
    case PlanKind::kLimit: return "Limit";
    case PlanKind::kAggregate: return "Aggregate";
    case PlanKind::kDistinct: return "Distinct";
  }
  return "?";
}

namespace {

// `actual rows=... batches=... time=...ms` suffix for EXPLAIN ANALYZE.
// One formatter serves both printers, so the plain and analyzed trees
// cannot drift: ToString always renders the node label through the switch
// below and appends this only when `analyze` is set.
std::string StatsSuffix(const PlanNode& node) {
  const OpStats& st = node.stats;
  if (st.fused) {
    std::string out = " (fused into parent";
    if (!st.partition_rows.empty()) {
      out += "; partitions=[";
      for (size_t i = 0; i < st.partition_rows.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(st.partition_rows[i]);
      }
      out += "]";
    }
    return out + ")";
  }
  char ms[32];
  std::snprintf(ms, sizeof ms, "%.3f", static_cast<double>(st.ns) / 1e6);
  std::string out = " (actual rows=" + std::to_string(st.rows_out) +
                    " batches=" + std::to_string(st.batches) + " time=" +
                    ms + "ms";
  if (st.invocations > 1) {
    out += " loops=" + std::to_string(st.invocations);
  }
  if (!st.partition_rows.empty()) {
    out += " partitions=[";
    for (size_t i = 0; i < st.partition_rows.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(st.partition_rows[i]);
    }
    out += "]";
  }
  if (st.morsels > 0) {
    out += " morsels=" + std::to_string(st.morsels);
  }
  return out + ")";
}

}  // namespace

void PlanNode::ClearStats() const {
  stats.Clear();
  for (const auto& child : children) child->ClearStats();
}

std::string PlanNode::ToString(int indent, bool analyze) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + std::string(PlanKindName(kind));
  switch (kind) {
    case PlanKind::kSeqScan:
      out += " " + table + (alias != table ? " AS " + alias : "");
      break;
    case PlanKind::kParallelSeqScan:
      out += " " + table + (alias != table ? " AS " + alias : "") +
             " workers=" + std::to_string(parallel_degree);
      break;
    case PlanKind::kIndexScan: {
      out += " " + table + " USING " + index->def.name;
      if (!eq_key.empty()) {
        out += " key=(";
        for (size_t i = 0; i < eq_key.size(); ++i) {
          if (i > 0) out += ", ";
          out += eq_key[i].ToString();
        }
        out += ")";
      }
      if (lo.has_value()) {
        out += lo_inclusive ? " >= " : " > ";
        out += lo->ToString();
      }
      if (hi.has_value()) {
        out += hi_inclusive ? " <= " : " < ";
        out += hi->ToString();
      }
      break;
    }
    case PlanKind::kKeywordScan:
      out += " " + table + " USING " + index->def.name + " keyword='" +
             keyword + "'";
      break;
    case PlanKind::kFilter:
      out += " " + predicate->ToString();
      break;
    case PlanKind::kProject: {
      out += " [";
      for (size_t i = 0; i < project_exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += schema.column(i).name;
      }
      out += "]";
      break;
    }
    case PlanKind::kNestedLoopJoin:
      if (predicate) out += " on " + predicate->ToString();
      break;
    case PlanKind::kHashJoin: {
      out += " on ";
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) out += " AND ";
        out += left_keys[i]->ToString() + " = " + right_keys[i]->ToString();
      }
      break;
    }
    case PlanKind::kIndexNLJoin: {
      out += " inner=" + table + " USING " + index->def.name + " key=(";
      for (size_t i = 0; i < outer_key_exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += outer_key_exprs[i]->ToString();
      }
      out += ")";
      break;
    }
    case PlanKind::kSort: {
      out += " by ";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += sort_keys[i].expr->ToString();
        if (sort_keys[i].desc) out += " DESC";
      }
      break;
    }
    case PlanKind::kLimit:
      out += " " + std::to_string(limit);
      if (offset > 0) out += " OFFSET " + std::to_string(offset);
      break;
    case PlanKind::kAggregate: {
      out += " groups=" + std::to_string(group_exprs.size()) +
             " aggs=" + std::to_string(aggs.size());
      break;
    }
    case PlanKind::kDistinct:
      break;
  }
  // Parallel-annotated pipeline breakers advertise their planned degree
  // (ParallelSeqScan prints it inline above).
  if (parallel_degree >= 2 && kind != PlanKind::kParallelSeqScan &&
      (kind == PlanKind::kHashJoin || kind == PlanKind::kSort ||
       kind == PlanKind::kAggregate || kind == PlanKind::kDistinct)) {
    out += " workers=" + std::to_string(parallel_degree);
  }
  if (est_rows >= 0) {
    char est[64];
    std::snprintf(est, sizeof est, " (est rows=%.0f cost=%.0f)", est_rows,
                  est_cost);
    out += est;
  }
  if (analyze) out += StatsSuffix(*this);
  out += "\n";
  for (const auto& child : children) {
    out += child->ToString(indent + 1, analyze);
  }
  return out;
}

}  // namespace xomatiq::sql
